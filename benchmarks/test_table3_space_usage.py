"""Table III — index space usage of GB-KMV versus LSH Ensemble.

GB-KMV is built with its default 10% budget, so its space usage is ~10%
of the dataset by construction.  LSH-E stores 256 hash values per record
regardless of the record's size, so its relative space usage explodes on
datasets whose records are shorter than 256 elements (NETFLIX, DELIC,
ENRON, REUTERS, WDC in the paper) and stays small on the huge-record
datasets (COD, WEBSPAM).
"""

from __future__ import annotations

from _util import ALL_DATASETS, bench_dataset, write_report

from repro.baselines import LSHEnsembleIndex
from repro.core import GBKMVIndex

LSHE_NUM_PERM = 256


def _run() -> list[list[object]]:
    rows: list[list[object]] = []
    for name in ALL_DATASETS:
        records = bench_dataset(name)
        avg_record = sum(len(set(r)) for r in records) / len(records)
        gbkmv = GBKMVIndex.build(records, space_fraction=0.10)
        lshe = LSHEnsembleIndex.build(records, num_perm=LSHE_NUM_PERM, num_partitions=32)
        rows.append(
            [
                name,
                round(avg_record, 1),
                round(gbkmv.space_fraction() * 100, 1),
                round(lshe.space_fraction() * 100, 1),
            ]
        )
    return rows


def test_table3_space_usage(run_once):
    rows = run_once(_run)
    write_report(
        "table3_space_usage",
        "Table III: space usage (% of dataset size)",
        ["dataset", "avg_record_len", "gbkmv_space_%", "lshe_space_%"],
        rows,
    )
    for row in rows:
        # GB-KMV respects its 10% budget everywhere.
        assert row[2] <= 11.0
        # LSH-E uses (256 / avg_record_len) of the dataset: above 100% for
        # short-record datasets, far less for the huge-record ones.
        if row[1] < LSHE_NUM_PERM:
            assert row[3] > 100.0
        else:
            assert row[3] < 100.0
