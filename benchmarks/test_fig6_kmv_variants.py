"""Figure 6 — KMV vs G-KMV vs GB-KMV at matched space budgets.

For every proxy dataset and space budgets of 5% and 10%, report the F1
score of the three KMV-family methods.  The paper's claimed ordering is
GB-KMV ≥ G-KMV ≥ KMV (the global threshold helps, the buffer helps
further).
"""

from __future__ import annotations

from _util import ALL_DATASETS, DEFAULT_THRESHOLD, bench_dataset, bench_workload, evaluate_methods, write_report

from repro.baselines import GKMVSearchIndex, KMVSearchIndex
from repro.core import GBKMVIndex

SPACE_FRACTIONS = (0.05, 0.10)


def _run() -> list[list[object]]:
    rows: list[list[object]] = []
    for name in ALL_DATASETS:
        records = bench_dataset(name)
        queries, truth = bench_workload(name)
        for fraction in SPACE_FRACTIONS:
            evaluations = evaluate_methods(
                records,
                queries,
                truth,
                DEFAULT_THRESHOLD,
                {
                    "KMV": lambda f=fraction: KMVSearchIndex.build(records, space_fraction=f),
                    "G-KMV": lambda f=fraction: GKMVSearchIndex.build(records, space_fraction=f),
                    "GB-KMV": lambda f=fraction: GBKMVIndex.build(records, space_fraction=f),
                },
            )
            rows.append(
                [
                    name,
                    f"{fraction:.0%}",
                    round(evaluations["KMV"].accuracy.f1, 4),
                    round(evaluations["G-KMV"].accuracy.f1, 4),
                    round(evaluations["GB-KMV"].accuracy.f1, 4),
                ]
            )
    return rows


def test_fig6_kmv_variant_comparison(run_once):
    rows = run_once(_run)
    write_report(
        "fig6_kmv_variants",
        "Figure 6: F1 of KMV / G-KMV / GB-KMV vs space budget",
        ["dataset", "space", "f1_kmv", "f1_gkmv", "f1_gbkmv"],
        rows,
    )
    # Shape check: averaged over datasets and budgets, the paper's ordering
    # GB-KMV >= G-KMV >= KMV must hold.
    mean = lambda index: sum(row[index] for row in rows) / len(rows)  # noqa: E731
    assert mean(4) >= mean(3) - 0.02
    assert mean(3) >= mean(2) - 0.02
