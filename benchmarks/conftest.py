"""Benchmark-suite configuration.

The benchmarks are experiment harnesses (one per paper table/figure), so
each is executed exactly once per session via ``benchmark.pedantic`` —
statistical repetition is meaningless for accuracy experiments and would
multiply runtimes.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
