"""Figures 7–13 — accuracy versus space: GB-KMV against LSH Ensemble.

For every proxy dataset, compare GB-KMV and LSH-E at two space settings
(GB-KMV: 5% and 10% budgets; LSH-E: 64 and 128 hash functions, i.e. its
two smaller space points) and report F1, precision, recall and F0.5.

The paper's claims: GB-KMV wins the space–accuracy trade-off with a big
margin on every dataset; LSH-E's recall is high but its precision (and
hence F1 / F0.5) is poor because it returns unverified candidates based
on a per-partition size upper bound.
"""

from __future__ import annotations

from _util import ALL_DATASETS, DEFAULT_THRESHOLD, bench_dataset, bench_workload, evaluate_methods, write_report

from repro.baselines import LSHEnsembleIndex
from repro.core import GBKMVIndex

GBKMV_FRACTIONS = (0.05, 0.10)
LSHE_NUM_PERMS = (64, 128)
LSHE_PARTITIONS = 16


def _run() -> list[list[object]]:
    rows: list[list[object]] = []
    for name in ALL_DATASETS:
        records = bench_dataset(name)
        queries, truth = bench_workload(name)

        methods = {}
        for fraction in GBKMV_FRACTIONS:
            methods[f"GB-KMV@{fraction:.0%}"] = (
                lambda f=fraction: GBKMVIndex.build(records, space_fraction=f)
            )
        for num_perm in LSHE_NUM_PERMS:
            methods[f"LSH-E@{num_perm}"] = (
                lambda n=num_perm: LSHEnsembleIndex.build(
                    records, num_perm=n, num_partitions=LSHE_PARTITIONS
                )
            )
        evaluations = evaluate_methods(records, queries, truth, DEFAULT_THRESHOLD, methods)
        for method_name, evaluation in evaluations.items():
            rows.append(
                [
                    name,
                    method_name,
                    round(evaluation.space_fraction, 3),
                    round(evaluation.accuracy.f1, 4),
                    round(evaluation.accuracy.precision, 4),
                    round(evaluation.accuracy.recall, 4),
                    round(evaluation.accuracy.f05, 4),
                ]
            )
    return rows


def test_fig7_13_space_vs_accuracy(run_once):
    rows = run_once(_run)
    write_report(
        "fig7_13_space_accuracy",
        "Figures 7-13: accuracy vs space, GB-KMV vs LSH-E (per dataset)",
        ["dataset", "method", "space_frac", "f1", "precision", "recall", "f05"],
        rows,
    )
    # Shape check: on average over datasets, GB-KMV at 10% budget beats the
    # larger LSH-E configuration on F1 and on precision.
    gbkmv = [row for row in rows if row[1] == "GB-KMV@10%"]
    lshe = [row for row in rows if row[1] == f"LSH-E@{max(LSHE_NUM_PERMS)}"]
    mean = lambda rows_, i: sum(row[i] for row in rows_) / len(rows_)  # noqa: E731
    assert mean(gbkmv, 3) > mean(lshe, 3)
    assert mean(gbkmv, 4) > mean(lshe, 4)
    # And LSH-E remains recall-leaning (recall > precision on average).
    assert mean(lshe, 5) > mean(lshe, 4)
