"""Micro-benchmark — columnar batched query engine vs per-record scoring.

The PR that introduced :class:`~repro.core.store.ColumnarSketchStore`
claims that consolidating sketch state into flat arrays and batching
candidate scoring removes the interpreter overhead that used to dominate
query time.  This benchmark pins that claim on a 10k-record power-law
dataset:

* **per-record path** — score a query against every record by
  materialising per-record sketch objects and calling the scalar
  Equation-25 estimator pair by pair (what a naive reproduction does);
* **looped path** — one :meth:`GBKMVIndex.search` call per query (the
  single-query engine: one vectorised CSR merge per query);
* **batched path** — one :meth:`GBKMVIndex.search_many` call for the
  whole workload (query preparation and estimator arithmetic batched
  over the value→record join index).

Asserted invariants:

* the batched scores are **bitwise identical** to the per-record
  sketch-object scores, and ``search_many`` returns exactly the hits of
  looped ``search`` — the speed comes from batching, not approximation;
* the batched path scores records at least **5×** faster than the
  per-record path (in practice the gap is orders of magnitude).

The measured throughputs are also written to ``BENCH_query_engine.json``
at the repository root so future PRs can track the trajectory.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from _util import bench_num_queries, bench_scale, write_report

from repro.core import GBKMVIndex
from repro.datasets import generate_zipf_dataset, sample_queries

SPACE_FRACTION = 0.10
THRESHOLD = 0.5
NUM_PER_RECORD_QUERIES = 3  # the per-record path is slow; sample it

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_query_engine.json"


def _num_records() -> int:
    """10k records at the default scale (0.25); REPRO_BENCH_SCALE tunes it."""
    return max(int(40_000 * bench_scale()), 1_000)


def _dataset(num_records: int) -> list[list[int]]:
    return generate_zipf_dataset(
        num_records=num_records,
        universe_size=80_000,
        element_exponent=1.15,
        size_exponent=3.0,
        min_record_size=10,
        max_record_size=200,
        seed=41,
    )


def _timed(function) -> float:
    start = time.perf_counter()
    function()
    return time.perf_counter() - start


def _per_record_scores(index: GBKMVIndex, query) -> np.ndarray:
    """Score every record through per-record sketch objects (the old path)."""
    query_sketch = index.query_sketch(query)
    return np.array(
        [
            query_sketch.intersection_size_estimate(index.sketch(record_id))
            for record_id in range(index.num_records)
        ],
        dtype=np.float64,
    )


def _run() -> dict[str, object]:
    num_records = _num_records()
    num_queries = bench_num_queries()
    records = _dataset(num_records)
    queries, _ids = sample_queries(records, num_queries=num_queries, seed=17)

    build_start = time.perf_counter()
    index = GBKMVIndex.build(records, space_fraction=SPACE_FRACTION)
    build_seconds = time.perf_counter() - build_start
    index.store.finalize()  # measure query paths, not one-off cache building

    def best_of(function, rounds: int = 3):
        """Warm up once, then keep the fastest of ``rounds`` runs."""
        result = function()
        seconds = min(
            _timed(function) for _ in range(rounds)
        )
        return result, seconds

    # Per-record sketch-object path (a sample of the workload; it is slow,
    # so one timed pass is plenty).
    per_record_queries = queries[:NUM_PER_RECORD_QUERIES]
    start = time.perf_counter()
    per_record_scores = [_per_record_scores(index, query) for query in per_record_queries]
    per_record_seconds = time.perf_counter() - start
    per_record_rps = num_records * len(per_record_queries) / per_record_seconds

    # Looped single-query engine.
    looped_results, looped_seconds = best_of(
        lambda: [index.search(query, THRESHOLD) for query in queries]
    )
    looped_rps = num_records * len(queries) / looped_seconds

    # Batched engine.
    batched_results, batched_seconds = best_of(
        lambda: index.search_many(queries, THRESHOLD)
    )
    batched_rps = num_records * len(queries) / batched_seconds

    # --- identity checks -------------------------------------------------
    # search_many must return exactly what looped search returns.
    for looped, batched in zip(looped_results, batched_results):
        assert [(hit.record_id, hit.score) for hit in looped] == [
            (hit.record_id, hit.score) for hit in batched
        ]
    # The engine's intersection estimates must be bitwise identical to the
    # per-record sketch-object estimates (same hasher, same formulas).
    batched_scores = index.search_many(
        per_record_queries, 0.0
    )  # threshold 0 keeps every record
    for reference, engine_hits, query in zip(
        per_record_scores, batched_scores, per_record_queries
    ):
        assert len(engine_hits) == num_records
        q = len(set(query))
        engine_scores = np.empty(num_records, dtype=np.float64)
        for hit in engine_hits:
            engine_scores[hit.record_id] = hit.score
        # search reports containment (estimate / |Q|); apply the same
        # division to the reference so the comparison stays bit-exact.
        assert np.array_equal(engine_scores, reference / q), (
            "batched scores are not bitwise identical to the per-record path"
        )

    speedup_vs_per_record = batched_rps / per_record_rps
    speedup_vs_looped = batched_rps / looped_rps
    assert speedup_vs_per_record >= 5.0, (
        f"batched path is only {speedup_vs_per_record:.1f}x the per-record path"
    )

    payload = {
        "dataset": {
            "num_records": num_records,
            "distribution": "power-law (zipf element frequency, zipf record size)",
            "space_fraction": SPACE_FRACTION,
            "threshold": THRESHOLD,
            "num_queries": num_queries,
        },
        "build_seconds": round(build_seconds, 3),
        "records_per_second": {
            "per_record_sketch_objects": round(per_record_rps, 1),
            "looped_search": round(looped_rps, 1),
            "batched_search_many": round(batched_rps, 1),
        },
        "speedup": {
            "batched_vs_per_record": round(speedup_vs_per_record, 1),
            "batched_vs_looped_search": round(speedup_vs_looped, 1),
        },
        "identical_results": True,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def test_query_engine_speedup(run_once):
    payload = run_once(_run)
    rates = payload["records_per_second"]
    write_report(
        "query_engine_speedup",
        "Batched query engine: records scored per second (10k power-law records)",
        ["path", "records_per_second"],
        [
            ["per-record sketch objects", rates["per_record_sketch_objects"]],
            ["looped search()", rates["looped_search"]],
            ["batched search_many()", rates["batched_search_many"]],
        ],
    )
    assert payload["speedup"]["batched_vs_per_record"] >= 5.0
