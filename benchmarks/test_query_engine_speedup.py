"""Micro-benchmark — fused workload kernels vs per-query kernels vs loops.

The columnar-store PR claimed that batching candidate scoring removes the
interpreter overhead that used to dominate query time; the fused-kernel
PR pushes the batching *into* the kernels and bounds memory.  This
benchmark pins both claims on a 10k-record power-law dataset:

* **per-record path** — score a query against every record by
  materialising per-record sketch objects and calling the scalar
  Equation-25 estimator pair by pair (what a naive reproduction does);
* **looped path** — one :meth:`GBKMVIndex.search` call per query (the
  single-query engine: one vectorised CSR merge per query);
* **per-query-kernel path** — ``search_many(kernels="per-query")``: the
  historical batched engine, one store-kernel call per query over a
  dense ``(B, num_rows)`` score matrix;
* **fused path** — ``search_many()`` (the default): all queries resolved
  against the value→record join index in one ``searchsorted`` +
  flat-``bincount`` pass, signature overlap as one packed-matrix
  popcount, rows swept in blocks of ``row_block_size``, and zero-count /
  zero-overlap pairs pruned before the Equation-25 estimator.

Asserted invariants:

* fused ``search_many`` returns **exactly** the hits of looped
  ``search`` and of the per-query-kernel engine, and its scores are
  **bitwise identical** to the per-record sketch-object scores — the
  speed comes from fusion, not approximation;
* the fused path is at least **3×** the per-query-kernel path at the
  full 10k-record scale on a clean machine (the number recorded in
  ``BENCH_query_engine.json``); the in-suite assertion guards a lower
  backstop because a full-suite run adds cache and allocator pressure,
  and a reduced-size run (the CI smoke step) only a sanity floor;
* the batched engine scores records at least **5×** faster than the
  per-record path (in practice the gap is orders of magnitude);
* with ``row_block_size < num_rows`` the dense ``(B, num_rows)`` score
  matrix is never materialised — the peak per-block footprint is
  ``B × row_block_size`` cells.

The measured throughputs and the fused execution footprint are written
to ``BENCH_query_engine.json`` at the repository root so future PRs can
track the trajectory.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from _util import bench_num_queries, bench_scale, write_report

from repro.core import GBKMVIndex
from repro.datasets import generate_zipf_dataset, sample_queries

SPACE_FRACTION = 0.10
THRESHOLD = 0.5
NUM_PER_RECORD_QUERIES = 3  # the per-record path is slow; sample it
#: The fused-vs-per-query claim is about *large* workloads; never measure
#: it on fewer than this many queries.
MIN_WORKLOAD_QUERIES = 100
#: Block size used for the measured fused runs (< num_records at full
#: scale, so the blocked path is what gets measured).
ROW_BLOCK_SIZE = 8192
#: Records at full benchmark scale, below which the 3x fused guard
#: degrades to a sanity floor (reduced-size CI smoke runs).
FULL_SCALE_RECORDS = 10_000

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_query_engine.json"


def _num_records() -> int:
    """10k records at the default scale (0.25); REPRO_BENCH_SCALE tunes it."""
    return max(int(40_000 * bench_scale()), 1_000)


def _dataset(num_records: int) -> list[list[int]]:
    return generate_zipf_dataset(
        num_records=num_records,
        universe_size=80_000,
        element_exponent=1.15,
        size_exponent=3.0,
        min_record_size=10,
        max_record_size=200,
        seed=41,
    )


def _timed(function) -> float:
    start = time.perf_counter()
    function()
    return time.perf_counter() - start


def _per_record_scores(index: GBKMVIndex, query) -> np.ndarray:
    """Score every record through per-record sketch objects (the old path)."""
    query_sketch = index.query_sketch(query)
    return np.array(
        [
            query_sketch.intersection_size_estimate(index.sketch(record_id))
            for record_id in range(index.num_records)
        ],
        dtype=np.float64,
    )


def _as_pairs(results):
    return [[(hit.record_id, hit.score) for hit in hits] for hits in results]


def _run() -> dict[str, object]:
    num_records = _num_records()
    num_queries = max(bench_num_queries(), MIN_WORKLOAD_QUERIES)
    records = _dataset(num_records)
    queries, _ids = sample_queries(records, num_queries=num_queries, seed=17)

    build_start = time.perf_counter()
    index = GBKMVIndex.build(records, space_fraction=SPACE_FRACTION)
    build_seconds = time.perf_counter() - build_start
    index.store.finalize()  # measure query paths, not one-off cache building

    def best_of(function, rounds: int = 3):
        """Warm up once, then keep the fastest of ``rounds`` runs."""
        result = function()
        seconds = min(
            _timed(function) for _ in range(rounds)
        )
        return result, seconds

    # Per-record sketch-object path (a sample of the workload; it is slow,
    # so one timed pass is plenty).
    per_record_queries = queries[:NUM_PER_RECORD_QUERIES]
    start = time.perf_counter()
    per_record_scores = [_per_record_scores(index, query) for query in per_record_queries]
    per_record_seconds = time.perf_counter() - start
    per_record_rps = num_records * len(per_record_queries) / per_record_seconds

    # Looped single-query engine.
    looped_results, looped_seconds = best_of(
        lambda: [index.search(query, THRESHOLD) for query in queries]
    )
    looped_rps = num_records * len(queries) / looped_seconds

    # Per-query-kernel engine (the pre-fusion baseline) vs the fused
    # blocked engine.  Each path is timed in consecutive rounds (warm
    # caches — the steady state of a serving workload), best-of kept.
    per_query_results, per_query_seconds = best_of(
        lambda: index.search_many(queries, THRESHOLD, kernels="per-query"),
        rounds=5,
    )
    per_query_rps = num_records * len(queries) / per_query_seconds

    fused_results, fused_seconds = best_of(
        lambda: index.search_many(queries, THRESHOLD, row_block_size=ROW_BLOCK_SIZE),
        rounds=5,
    )
    fused_rps = num_records * len(queries) / fused_seconds
    stats = index.last_workload_stats
    assert stats is not None

    # --- identity checks -------------------------------------------------
    # The fused engine must return exactly what looped search and the
    # per-query-kernel engine return.
    assert _as_pairs(fused_results) == _as_pairs(looped_results)
    assert _as_pairs(fused_results) == _as_pairs(per_query_results)
    # The engine's intersection estimates must be bitwise identical to the
    # per-record sketch-object estimates (same hasher, same formulas).
    batched_scores = index.search_many(
        per_record_queries, 0.0
    )  # threshold 0 keeps every record
    for reference, engine_hits, query in zip(
        per_record_scores, batched_scores, per_record_queries
    ):
        assert len(engine_hits) == num_records
        q = len(set(query))
        engine_scores = np.empty(num_records, dtype=np.float64)
        for hit in engine_hits:
            engine_scores[hit.record_id] = hit.score
        # search reports containment (estimate / |Q|); apply the same
        # division to the reference so the comparison stays bit-exact.
        assert np.array_equal(engine_scores, reference / q), (
            "batched scores are not bitwise identical to the per-record path"
        )

    # --- blocked-execution footprint -------------------------------------
    # With row_block_size < num_rows the fused engine must never have
    # materialised a dense (B, num_rows) intermediate.
    blocked_execution = stats.row_block_size < stats.num_rows
    if blocked_execution:
        assert stats.peak_block_cells < stats.dense_cells, (
            "blocked engine materialised the dense score matrix"
        )
        assert stats.peak_block_cells <= num_queries * ROW_BLOCK_SIZE

    speedup_vs_per_record = fused_rps / per_record_rps
    speedup_vs_looped = fused_rps / looped_rps
    speedup_vs_per_query = fused_rps / per_query_rps
    assert speedup_vs_per_record >= 5.0, (
        f"fused path is only {speedup_vs_per_record:.1f}x the per-record path"
    )
    # The headline fusion claim — >= 3x on a clean machine at full scale,
    # see BENCH_query_engine.json — degrades under the cache/allocator
    # pressure of a full-suite run, so the in-suite guard is a regression
    # backstop, not the headline: well below it means the fusion broke.
    fused_guard = 2.0 if num_records >= FULL_SCALE_RECORDS else 1.2
    assert speedup_vs_per_query >= fused_guard, (
        f"fused kernels are only {speedup_vs_per_query:.2f}x the per-query "
        f"kernels (guard: {fused_guard}x at {num_records} records)"
    )

    payload = {
        "dataset": {
            "num_records": num_records,
            "distribution": "power-law (zipf element frequency, zipf record size)",
            "space_fraction": SPACE_FRACTION,
            "threshold": THRESHOLD,
            "num_queries": num_queries,
        },
        "build_seconds": round(build_seconds, 3),
        "records_per_second": {
            "per_record_sketch_objects": round(per_record_rps, 1),
            "looped_search": round(looped_rps, 1),
            "per_query_kernels_search_many": round(per_query_rps, 1),
            "fused_search_many": round(fused_rps, 1),
        },
        "speedup": {
            "fused_vs_per_record": round(speedup_vs_per_record, 1),
            "fused_vs_looped_search": round(speedup_vs_looped, 1),
            "fused_vs_per_query_kernels": round(speedup_vs_per_query, 2),
        },
        "fused_execution": {
            "row_block_size": stats.row_block_size,
            "num_blocks": stats.num_blocks,
            "peak_block_cells": stats.peak_block_cells,
            "dense_cells": stats.dense_cells,
            "estimator_pairs": stats.estimator_pairs,
            "hit_pairs": stats.hit_pairs,
            "dense_score_matrix_materialised": not blocked_execution,
        },
        "identical_results": True,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def test_query_engine_speedup(run_once):
    payload = run_once(_run)
    rates = payload["records_per_second"]
    dataset = payload["dataset"]
    write_report(
        "query_engine_speedup",
        # The workload is clamped to >= MIN_WORKLOAD_QUERIES, so state the
        # sizes actually measured rather than the suite-wide defaults.
        f"Fused query engine: records scored per second "
        f"({dataset['num_records']} power-law records, "
        f"{dataset['num_queries']}-query workload)",
        ["path", "records_per_second"],
        [
            ["per-record sketch objects", rates["per_record_sketch_objects"]],
            ["looped search()", rates["looped_search"]],
            ["per-query kernels search_many()", rates["per_query_kernels_search_many"]],
            ["fused search_many()", rates["fused_search_many"]],
        ],
    )
    assert payload["speedup"]["fused_vs_per_record"] >= 5.0
