"""Figure 14 — distribution of per-query accuracy (min / average / max F1).

The paper plots, per dataset, the spread of per-query accuracy for GB-KMV
and LSH-E.  This benchmark reports min, mean and max per-query F1 for
both methods at their default settings.
"""

from __future__ import annotations

from _util import ALL_DATASETS, DEFAULT_THRESHOLD, bench_dataset, bench_workload, evaluate_methods, write_report

from repro.baselines import LSHEnsembleIndex
from repro.core import GBKMVIndex


def _run() -> list[list[object]]:
    rows: list[list[object]] = []
    for name in ALL_DATASETS:
        records = bench_dataset(name)
        queries, truth = bench_workload(name)
        evaluations = evaluate_methods(
            records,
            queries,
            truth,
            DEFAULT_THRESHOLD,
            {
                "GB-KMV": lambda: GBKMVIndex.build(records, space_fraction=0.10),
                "LSH-E": lambda: LSHEnsembleIndex.build(records, num_perm=128, num_partitions=16),
            },
        )
        for method_name, evaluation in evaluations.items():
            accuracy = evaluation.accuracy
            rows.append(
                [
                    name,
                    method_name,
                    round(accuracy.f1_min, 4),
                    round(accuracy.f1, 4),
                    round(accuracy.f1_max, 4),
                ]
            )
    return rows


def test_fig14_accuracy_distribution(run_once):
    rows = run_once(_run)
    write_report(
        "fig14_accuracy_distribution",
        "Figure 14: per-query F1 distribution (min / avg / max)",
        ["dataset", "method", "f1_min", "f1_avg", "f1_max"],
        rows,
    )
    # Shape check: distributions are well-formed and GB-KMV's average F1 is
    # at least LSH-E's on average across datasets.
    for row in rows:
        assert row[2] <= row[3] <= row[4]
    gbkmv_avg = [row[3] for row in rows if row[1] == "GB-KMV"]
    lshe_avg = [row[3] for row in rows if row[1] == "LSH-E"]
    assert sum(gbkmv_avg) / len(gbkmv_avg) >= sum(lshe_avg) / len(lshe_avg)
