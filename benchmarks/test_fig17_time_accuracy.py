"""Figure 17 — query-time versus accuracy trade-off.

Sweeps the knob each method exposes (GB-KMV: space budget; LSH-E: number
of hash functions) and reports average per-query time together with F1.
The paper's claim is that, at comparable F1, GB-KMV answers queries one
to two orders of magnitude faster, and that LSH-E's F1 barely improves
with more hash functions because its precision stays poor.

GB-KMV runs through the batched query engine (``search_many`` over the
columnar sketch store), so its reported per-query time is the workload
wall clock divided by the number of queries; LSH-E has no batched path
and is looped per query.
"""

from __future__ import annotations

from _util import DEFAULT_THRESHOLD, bench_dataset, bench_workload, evaluate_methods, write_report

from repro.api import GBKMVConfig, LSHEnsembleConfig, create_index

DATASETS = ("COD", "NETFLIX", "DELIC", "ENRON")
GBKMV_FRACTIONS = (0.02, 0.05, 0.10, 0.20)
LSHE_NUM_PERMS = (32, 64, 128)


def _run() -> list[list[object]]:
    rows: list[list[object]] = []
    for name in DATASETS:
        records = bench_dataset(name)
        queries, truth = bench_workload(name)
        methods = {}
        for fraction in GBKMV_FRACTIONS:
            methods[f"GB-KMV@{fraction:.0%}"] = (
                lambda f=fraction: create_index(
                    "gbkmv", records, GBKMVConfig(space_fraction=f)
                )
            )
        for num_perm in LSHE_NUM_PERMS:
            methods[f"LSH-E@{num_perm}"] = (
                lambda n=num_perm: create_index(
                    "lsh-ensemble",
                    records,
                    LSHEnsembleConfig(num_perm=n, num_partitions=16),
                )
            )
        evaluations = evaluate_methods(
            records, queries, truth, DEFAULT_THRESHOLD, methods, use_batched=True
        )
        for method_name, evaluation in evaluations.items():
            rows.append(
                [
                    name,
                    method_name,
                    round(evaluation.avg_query_seconds * 1e3, 3),
                    round(evaluation.accuracy.f1, 4),
                ]
            )
    return rows


def test_fig17_time_vs_accuracy(run_once):
    rows = run_once(_run)
    write_report(
        "fig17_time_accuracy",
        "Figure 17: average query time (ms) vs F1",
        ["dataset", "method", "query_ms", "f1"],
        rows,
    )
    # Shape check: for each dataset, the best GB-KMV configuration reaches a
    # higher F1 than the best LSH-E configuration.
    for name in DATASETS:
        gbkmv_best = max(row[3] for row in rows if row[0] == name and "GB-KMV" in row[1])
        lshe_best = max(row[3] for row in rows if row[0] == name and "LSH-E" in row[1])
        assert gbkmv_best >= lshe_best
