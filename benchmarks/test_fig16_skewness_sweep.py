"""Figure 16 — accuracy on synthetic Zipf data while varying skewness.

The paper generates 100K-record synthetic datasets and varies (a) the
element-frequency Zipf exponent with the record-size exponent fixed, and
(b) the record-size exponent with the element-frequency exponent fixed,
reporting F1 for GB-KMV and LSH-E.  This benchmark does the same on
laptop-scale synthetic corpora.

Claimed shape: GB-KMV consistently outperforms LSH-E across the whole
skewness range.
"""

from __future__ import annotations

from _util import DEFAULT_THRESHOLD, bench_num_queries, bench_scale, write_report

from repro.baselines import LSHEnsembleIndex
from repro.core import GBKMVIndex
from repro.datasets import generate_zipf_dataset, sample_queries
from repro.evaluation import evaluate_search_method, exact_result_sets

ELEMENT_EXPONENTS = (0.4, 0.8, 1.2)
SIZE_EXPONENTS = (0.8, 1.0, 1.4)
FIXED_SIZE_EXPONENT = 1.0
FIXED_ELEMENT_EXPONENT = 0.8


def _evaluate(element_exponent: float, size_exponent: float, label: str) -> list[object]:
    num_records = max(int(2_000 * bench_scale()), 200)
    records = generate_zipf_dataset(
        num_records=num_records,
        universe_size=20_000,
        element_exponent=element_exponent,
        size_exponent=size_exponent,
        min_record_size=20,
        max_record_size=500,
        seed=17,
    )
    queries, _ids = sample_queries(records, num_queries=bench_num_queries(), seed=5)
    truth = exact_result_sets(records, queries, DEFAULT_THRESHOLD)
    gbkmv = GBKMVIndex.build(records, space_fraction=0.10)
    lshe = LSHEnsembleIndex.build(records, num_perm=128, num_partitions=16)
    gbkmv_eval = evaluate_search_method("GB-KMV", gbkmv, queries, truth, DEFAULT_THRESHOLD)
    lshe_eval = evaluate_search_method("LSH-E", lshe, queries, truth, DEFAULT_THRESHOLD)
    return [
        label,
        element_exponent,
        size_exponent,
        round(gbkmv_eval.accuracy.f1, 4),
        round(lshe_eval.accuracy.f1, 4),
    ]


def _run() -> list[list[object]]:
    rows = []
    for exponent in ELEMENT_EXPONENTS:
        rows.append(_evaluate(exponent, FIXED_SIZE_EXPONENT, "vary eleFreq z"))
    for exponent in SIZE_EXPONENTS:
        rows.append(_evaluate(FIXED_ELEMENT_EXPONENT, exponent, "vary recSize z"))
    return rows


def test_fig16_skewness_sweep(run_once):
    rows = run_once(_run)
    write_report(
        "fig16_skewness_sweep",
        "Figure 16: F1 on synthetic Zipf data vs skewness (GB-KMV vs LSH-E)",
        ["sweep", "eleFreq_z", "recSize_z", "f1_gbkmv", "f1_lshe"],
        rows,
    )
    # Shape check: GB-KMV is not worse than LSH-E at any skewness setting.
    for row in rows:
        assert row[3] >= row[4] - 0.05
