"""Micro-benchmark — bulk construction pipeline vs the per-record builder.

The bulk-build PR claims Algorithm 1 no longer needs to run
record-at-a-time through Python: the whole dataset is flattened into one
CSR pair, fingerprinted and hashed in single vectorised passes,
frequencies come from ``np.unique`` instead of a ``Counter`` loop, each
record's kept residual hashes are selected with one global lexsort, and
the columnar store ingests the entire batch through one staged-batch
merge (``append_bulk``).  This benchmark pins the claim on a 10k-record
power-law dataset:

* **per-record build** — ``GBKMVIndex.build(method="per-record")``, the
  historical path kept verbatim as the baseline;
* **bulk build** — ``GBKMVIndex.build()`` (the default), the vectorised
  pipeline;
* the same pair for the plain-KMV baseline builder; and
* **looped insert vs insert_many** on a 2k-record ingest stream against
  an existing warm index (both paths charged through to a finalized
  store, since looped inserts defer the join-index merge to the next
  search).

Asserted invariants:

* the bulk index is **bitwise identical** to the per-record one — same
  vocabulary, same threshold, same store ``state_arrays()``, same
  ``search_many`` hits/scores/ordering — the speed comes from batching,
  not approximation;
* bulk build is at least **5×** the per-record builder at the full
  10k-record scale (reduced-size runs guard a sanity floor only);
* ``insert_many`` beats looping ``insert`` over the 2k-insert stream,
  with identical post-ingest store state and search results.

Results land in ``BENCH_bulk_build.json`` at the repository root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from _util import bench_num_queries, bench_scale, write_report

from repro.baselines import KMVSearchIndex
from repro.core import GBKMVIndex
from repro.datasets import generate_zipf_dataset, sample_queries

SPACE_FRACTION = 0.10
THRESHOLD = 0.5
NUM_INSERTS = 2_000
#: Records at full benchmark scale, below which the 5x bulk guard
#: degrades to a sanity floor (reduced-size CI smoke runs).
FULL_SCALE_RECORDS = 10_000

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_bulk_build.json"


def _num_records() -> int:
    """10k records at the default scale (0.25); REPRO_BENCH_SCALE tunes it."""
    return max(int(40_000 * bench_scale()), 1_000)


def _dataset(num_records: int, seed: int = 41) -> list[list[int]]:
    return generate_zipf_dataset(
        num_records=num_records,
        universe_size=80_000,
        element_exponent=1.15,
        size_exponent=3.0,
        min_record_size=10,
        max_record_size=200,
        seed=seed,
    )


def _best_of(function, rounds: int = 3):
    """Keep the last result and the fastest wall-clock of ``rounds`` runs."""
    result = None
    seconds = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        result = function()
        seconds = min(seconds, time.perf_counter() - start)
    return result, seconds


def _flatten(results) -> list[list[tuple[int, float]]]:
    return [[(hit.record_id, hit.score) for hit in hits] for hits in results]


def _states_identical(left: GBKMVIndex, right: GBKMVIndex) -> bool:
    left_state = left.store.state_arrays()
    right_state = right.store.state_arrays()
    return left_state.keys() == right_state.keys() and all(
        np.array_equal(left_state[name], right_state[name])
        for name in left_state
    )


def _run() -> dict[str, object]:
    num_records = _num_records()
    records = _dataset(num_records)
    insert_pool = _dataset(NUM_INSERTS, seed=43)
    queries, _ids = sample_queries(records, num_queries=bench_num_queries(), seed=17)

    # --- whole-dataset construction ---------------------------------------
    per_record_index, per_record_seconds = _best_of(
        lambda: GBKMVIndex.build(
            records, space_fraction=SPACE_FRACTION, method="per-record"
        )
    )
    bulk_index, bulk_seconds = _best_of(
        lambda: GBKMVIndex.build(records, space_fraction=SPACE_FRACTION)
    )
    build_speedup = per_record_seconds / bulk_seconds

    identical_results = (
        per_record_index.vocabulary == bulk_index.vocabulary
        and per_record_index.threshold == bulk_index.threshold
        and _states_identical(per_record_index, bulk_index)
        and _flatten(per_record_index.search_many(queries, THRESHOLD))
        == _flatten(bulk_index.search_many(queries, THRESHOLD))
    )
    assert identical_results, "bulk build drifted from the per-record builder"

    # --- KMV baseline construction ----------------------------------------
    kmv_per_record, kmv_per_record_seconds = _best_of(
        lambda: KMVSearchIndex.build(
            records, space_fraction=SPACE_FRACTION, method="per-record"
        )
    )
    kmv_bulk, kmv_bulk_seconds = _best_of(
        lambda: KMVSearchIndex.build(records, space_fraction=SPACE_FRACTION)
    )
    kmv_speedup = kmv_per_record_seconds / kmv_bulk_seconds
    assert _flatten(kmv_per_record.search_many(queries, THRESHOLD)) == _flatten(
        kmv_bulk.search_many(queries, THRESHOLD)
    ), "bulk KMV build drifted from the per-record builder"

    # --- batched ingest: insert_many vs looped insert ---------------------
    # Fresh pinned-parameter indexes; the timed region runs the ingest
    # through store.finalize() so the looped path is charged for the
    # join-index merge it defers to the next search.
    def _pinned() -> GBKMVIndex:
        index = GBKMVIndex.from_parameters(
            records,
            vocabulary=bulk_index.vocabulary,
            threshold=bulk_index.threshold,
            hasher=bulk_index.hasher,
            budget=bulk_index.budget,
        )
        index.store.finalize()
        return index

    looped_index = _pinned()
    start = time.perf_counter()
    looped_ids = [looped_index.insert(record) for record in insert_pool]
    looped_index.store.finalize()
    looped_insert_seconds = time.perf_counter() - start

    batched_index = _pinned()
    start = time.perf_counter()
    batched_ids = batched_index.insert_many(insert_pool)
    batched_index.store.finalize()
    insert_many_seconds = time.perf_counter() - start
    insert_speedup = looped_insert_seconds / insert_many_seconds

    assert looped_ids == batched_ids, "insert_many assigned different record ids"
    insert_identical = _states_identical(looped_index, batched_index) and (
        _flatten(looped_index.search_many(queries, THRESHOLD))
        == _flatten(batched_index.search_many(queries, THRESHOLD))
    )
    assert insert_identical, "insert_many drifted from looped insert"
    assert insert_speedup > 1.0, (
        f"insert_many ({insert_many_seconds:.4f}s) does not beat looped "
        f"insert ({looped_insert_seconds:.4f}s) on the {NUM_INSERTS}-insert stream"
    )

    # The headline claim — >= 5x at the full 10k-record scale (see
    # BENCH_bulk_build.json); reduced-size runs only sanity-check that
    # the bulk path is not slower than the loop.
    build_guard = 5.0 if num_records >= FULL_SCALE_RECORDS else 1.5
    assert build_speedup >= build_guard, (
        f"bulk build is only {build_speedup:.1f}x the per-record builder "
        f"(guard: {build_guard}x at {num_records} records)"
    )

    payload = {
        "dataset": {
            "num_records": num_records,
            "distribution": "power-law (zipf element frequency, zipf record size)",
            "space_fraction": SPACE_FRACTION,
            "threshold": THRESHOLD,
            "num_queries": len(queries),
        },
        "build_seconds": {
            "gbkmv_per_record": round(per_record_seconds, 4),
            "gbkmv_bulk": round(bulk_seconds, 4),
            "kmv_per_record": round(kmv_per_record_seconds, 4),
            "kmv_bulk": round(kmv_bulk_seconds, 4),
        },
        "build_records_per_second": {
            "gbkmv_per_record": round(num_records / per_record_seconds, 1),
            "gbkmv_bulk": round(num_records / bulk_seconds, 1),
        },
        "speedup": {
            "gbkmv_bulk_vs_per_record": round(build_speedup, 1),
            "kmv_bulk_vs_per_record": round(kmv_speedup, 1),
            "insert_many_vs_looped_insert": round(insert_speedup, 1),
        },
        "insert_stream": {
            "num_inserts": NUM_INSERTS,
            "looped_insert_seconds": round(looped_insert_seconds, 4),
            "insert_many_seconds": round(insert_many_seconds, 4),
        },
        # Per-stage breakdown of the (fastest-round) bulk build: where
        # the remaining wall-clock goes — flatten / vocabulary / sketch /
        # append — from GBKMVIndex.last_build_profile.
        "build_profile": bulk_index.last_build_profile.as_dict(),
        "identical_results": bool(identical_results and insert_identical),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def test_bulk_build_speedup(run_once):
    payload = run_once(_run)
    build = payload["build_seconds"]
    stream = payload["insert_stream"]
    speedup = payload["speedup"]
    write_report(
        "bulk_build",
        f"Bulk construction pipeline ({payload['dataset']['num_records']} "
        "power-law records)",
        ["path", "seconds", "speedup_vs_baseline"],
        [
            ["GB-KMV per-record build", build["gbkmv_per_record"], 1.0],
            [
                "GB-KMV bulk build",
                build["gbkmv_bulk"],
                speedup["gbkmv_bulk_vs_per_record"],
            ],
            ["KMV per-record build", build["kmv_per_record"], 1.0],
            ["KMV bulk build", build["kmv_bulk"], speedup["kmv_bulk_vs_per_record"]],
            [
                f"looped insert x{stream['num_inserts']}",
                stream["looped_insert_seconds"],
                1.0,
            ],
            [
                "insert_many",
                stream["insert_many_seconds"],
                speedup["insert_many_vs_looped_insert"],
            ],
        ],
    )
    assert payload["identical_results"] is True
    assert payload["speedup"]["insert_many_vs_looped_insert"] > 1.0
