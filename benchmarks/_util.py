"""Shared plumbing for the benchmark suite.

Every benchmark module regenerates one table or figure of the paper on
proxy datasets (see ``repro.datasets.proxies`` and DESIGN.md for the
substitution rationale).  The helpers here keep the modules declarative:
they load (and cache) proxies, run the standard query workload, evaluate
methods, and write a plain-text report both to stdout and to
``benchmarks/results/<name>.txt`` so the regenerated rows survive pytest's
output capturing.

Environment knobs
-----------------
``REPRO_BENCH_SCALE``
    Multiplier on proxy dataset sizes (default ``0.25``).  Use ``1.0`` for
    a slower, higher-fidelity run.
``REPRO_BENCH_QUERIES``
    Number of queries per workload (default ``30``; the paper uses 200).
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path
from typing import Callable, Sequence

from repro.datasets import DATASET_PROFILES, load_proxy, sample_queries
from repro.evaluation import evaluate_search_method, exact_result_sets, format_table
from repro.evaluation.harness import MethodEvaluation, time_construction

RESULTS_DIR = Path(__file__).parent / "results"

#: Dataset names in the order the paper's figures present them.
ALL_DATASETS = tuple(DATASET_PROFILES)

#: The paper's default containment similarity threshold.
DEFAULT_THRESHOLD = 0.5


def bench_scale() -> float:
    """Proxy-size multiplier, from ``REPRO_BENCH_SCALE`` (default 0.25)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))


def bench_num_queries() -> int:
    """Workload size, from ``REPRO_BENCH_QUERIES`` (default 30)."""
    return int(os.environ.get("REPRO_BENCH_QUERIES", "30"))


@lru_cache(maxsize=None)
def bench_dataset(name: str) -> tuple[tuple[object, ...], ...]:
    """Load (and memoise) the proxy dataset for a paper corpus."""
    records = load_proxy(name, scale=bench_scale(), seed=7)
    return tuple(tuple(record) for record in records)


@lru_cache(maxsize=None)
def bench_workload(
    name: str, threshold: float = DEFAULT_THRESHOLD
) -> tuple[tuple[tuple[object, ...], ...], tuple[frozenset[int], ...]]:
    """Queries drawn from the proxy plus their exact ground truth."""
    records = bench_dataset(name)
    queries, _ids = sample_queries(records, num_queries=bench_num_queries(), seed=13)
    truth = exact_result_sets(records, queries, threshold)
    return tuple(tuple(q) for q in queries), tuple(truth)


def evaluate_methods(
    records: Sequence[Sequence[object]],
    queries: Sequence[Sequence[object]],
    ground_truth: Sequence[frozenset[int]],
    threshold: float,
    methods: dict[str, Callable[[], object]],
    use_batched: bool = True,
) -> dict[str, MethodEvaluation]:
    """Build and evaluate each method on a shared workload.

    Methods exposing ``search_many`` (GB-KMV and the KMV/G-KMV baselines)
    are driven through the batched query engine; the rest (LSH-E,
    asymmetric MinHash, the exact searchers) fall back to per-query
    loops inside the harness.
    """
    evaluations: dict[str, MethodEvaluation] = {}
    for name, builder in methods.items():
        built, construction_seconds = time_construction(builder)
        evaluations[name] = evaluate_search_method(
            name,
            built,
            queries,
            ground_truth,
            threshold,
            construction_seconds=construction_seconds,
            use_batched=use_batched,
        )
    return evaluations


def write_report(name: str, title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a table, print it, and persist it under ``benchmarks/results/``."""
    table = format_table(headers, rows)
    report = f"{title}\n{'=' * len(title)}\n(scale={bench_scale()}, queries={bench_num_queries()})\n\n{table}\n"
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(report, encoding="utf-8")
    print(f"\n{report}")
    return report
