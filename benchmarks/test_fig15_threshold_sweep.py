"""Figure 15 — accuracy versus the containment similarity threshold.

Sweeps the search threshold t* from 0.2 to 0.8 on every proxy dataset and
reports the F1 of GB-KMV and LSH-E at each point.  The paper's claim is
that GB-KMV dominates LSH-E across the whole threshold range.
"""

from __future__ import annotations

from _util import ALL_DATASETS, bench_dataset, bench_num_queries, write_report

from repro.baselines import LSHEnsembleIndex
from repro.core import GBKMVIndex
from repro.datasets import sample_queries
from repro.evaluation import evaluate_search_method, exact_result_sets

THRESHOLDS = (0.2, 0.4, 0.6, 0.8)


def _run() -> list[list[object]]:
    rows: list[list[object]] = []
    for name in ALL_DATASETS:
        records = bench_dataset(name)
        queries, _ids = sample_queries(records, num_queries=bench_num_queries(), seed=13)
        gbkmv = GBKMVIndex.build(records, space_fraction=0.10)
        lshe = LSHEnsembleIndex.build(records, num_perm=128, num_partitions=16)
        for threshold in THRESHOLDS:
            truth = exact_result_sets(records, queries, threshold)
            gbkmv_eval = evaluate_search_method("GB-KMV", gbkmv, queries, truth, threshold)
            lshe_eval = evaluate_search_method("LSH-E", lshe, queries, truth, threshold)
            rows.append(
                [
                    name,
                    threshold,
                    round(gbkmv_eval.accuracy.f1, 4),
                    round(lshe_eval.accuracy.f1, 4),
                ]
            )
    return rows


def test_fig15_threshold_sweep(run_once):
    rows = run_once(_run)
    write_report(
        "fig15_threshold_sweep",
        "Figure 15: F1 vs containment similarity threshold",
        ["dataset", "threshold", "f1_gbkmv", "f1_lshe"],
        rows,
    )
    # Shape check: averaged over datasets, GB-KMV leads at every threshold.
    for threshold in THRESHOLDS:
        subset = [row for row in rows if row[1] == threshold]
        gbkmv_mean = sum(row[2] for row in subset) / len(subset)
        lshe_mean = sum(row[3] for row in subset) / len(subset)
        assert gbkmv_mean >= lshe_mean - 0.02
