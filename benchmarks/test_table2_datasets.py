"""Table II — characteristics of the (proxy) datasets.

Regenerates the columns of Table II for every proxy corpus: number of
records, average record length, number of distinct elements, and the
fitted power-law exponents of element frequency (α1) and record size
(α2).  The proxies are scaled down, so record counts differ from the
paper by design; the exponents — which are what the analysis and the
method depend on — should land near the published values.
"""

from __future__ import annotations

from _util import ALL_DATASETS, bench_dataset, write_report

from repro.datasets import DATASET_PROFILES, dataset_characteristics


def _build_rows() -> list[list[object]]:
    rows: list[list[object]] = []
    for name in ALL_DATASETS:
        records = bench_dataset(name)
        stats = dataset_characteristics([list(r) for r in records])
        profile = DATASET_PROFILES[name]
        rows.append(
            [
                name,
                int(stats["num_records"]),
                round(stats["avg_record_size"], 1),
                int(stats["num_distinct_elements"]),
                round(stats["alpha_element_frequency"], 2),
                profile.element_exponent,
                round(stats["alpha_record_size"], 2),
                profile.size_exponent,
            ]
        )
    return rows


def test_table2_dataset_characteristics(run_once):
    rows = run_once(_build_rows)
    write_report(
        "table2_datasets",
        "Table II: dataset characteristics (proxy vs paper exponents)",
        [
            "dataset",
            "#records",
            "avg_len",
            "#distinct",
            "alpha1_fit",
            "alpha1_paper",
            "alpha2_fit",
            "alpha2_paper",
        ],
        rows,
    )
    # Shape check: every proxy must be non-trivially skewed in element
    # frequency, as every paper dataset is (α1 between 1.08 and 1.33).
    for row in rows:
        assert row[4] > 1.0
        assert row[1] >= 10
