"""Micro-benchmark — segmented dynamic store vs rebuilding on every batch.

The segmented-store PR claims that a GB-KMV index can absorb an
insert-heavy stream incrementally: inserts land in a mutable tail
segment and the value→record join index is maintained with a sorted
two-run merge (``O(T + S log S)`` for ``S`` staged values over ``T``
stored ones) instead of either re-sorting everything on each
search-after-insert (the pre-segmented behaviour) or rebuilding the
index from scratch on every batch (what a build-once reproduction must
do).  This benchmark pins that claim on a 10k-record power-law dataset
driven through an insert-heavy stream of interleaved batch-inserts and
searches:

* **incremental merge** — one index maintained with
  :meth:`GBKMVIndex.insert_many` (the batched-ingest path of the bulk
  construction pipeline), tail merged into the sealed segment at each
  search;
* **invalidation re-sort** — the same stream on a store with
  ``incremental_merge`` disabled, so every search after an insert pays
  the full ``O(T log T)`` join-index rebuild (the seed behaviour);
* **rebuild from scratch** — :meth:`GBKMVIndex.from_parameters` over the
  accumulated records at every checkpoint, the only option an index
  without dynamic maintenance offers.  The rebuild runs through the
  *bulk* construction pipeline, so the incremental-vs-rebuild comparison
  charges rebuild at its post-bulk-PR (much cheaper) price.

Asserted invariants:

* all three paths return **identical** hits at every checkpoint, and the
  final incremental index answers exactly like a freshly built index
  over the full dataset — dynamic maintenance is free of drift;
* the incremental path beats rebuild-from-scratch by at least **3×**
  wall-clock on the stream (in practice the gap is far larger);
* a :meth:`GBKMVIndex.save` → :meth:`GBKMVIndex.load` round-trip of the
  final index reproduces its ``search_many`` output bitwise.

A mixed insert/delete/query stream (the new
:func:`~repro.datasets.build_dynamic_workload` /
:func:`~repro.evaluation.evaluate_dynamic_stream` path) is also replayed
to record end-to-end accuracy under churn.  Results land in
``BENCH_dynamic_store.json`` at the repository root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from _util import bench_num_queries, bench_scale, write_report

from repro.core import GBKMVIndex
from repro.datasets import build_dynamic_workload, generate_zipf_dataset, sample_queries
from repro.evaluation import evaluate_dynamic_stream

SPACE_FRACTION = 0.10
THRESHOLD = 0.5
NUM_CHECKPOINTS = 8
INSERT_GROWTH = 0.20  # total inserted fraction of the base dataset
NUM_ALTERNATIONS = 300  # single insert → single search cycles

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_dynamic_store.json"


def _num_records() -> int:
    """10k records at the default scale (0.25); REPRO_BENCH_SCALE tunes it."""
    return max(int(40_000 * bench_scale()), 1_000)


def _dataset(num_records: int) -> list[list[int]]:
    return generate_zipf_dataset(
        num_records=num_records,
        universe_size=80_000,
        element_exponent=1.15,
        size_exponent=3.0,
        min_record_size=10,
        max_record_size=200,
        seed=41,
    )


def _pinned_index(parameters: GBKMVIndex, records) -> GBKMVIndex:
    """Fresh index over ``records`` under ``parameters``' pinned sketch config."""
    index = GBKMVIndex.from_parameters(
        records,
        vocabulary=parameters.vocabulary,
        threshold=parameters.threshold,
        hasher=parameters.hasher,
        budget=parameters.budget,
    )
    index.store.finalize()
    return index


def _flatten(results) -> list[list[tuple[int, float]]]:
    return [[(hit.record_id, hit.score) for hit in hits] for hits in results]


def _drive_maintained(index: GBKMVIndex, batches, queries):
    """Ingest each batch (batched) then search — the maintenance stream."""
    checkpoints = []
    start = time.perf_counter()
    for batch in batches:
        index.insert_many(batch)
        checkpoints.append(_flatten(index.search_many(queries, THRESHOLD)))
    return checkpoints, time.perf_counter() - start


def _run(tmp_path: Path) -> dict[str, object]:
    num_records = _num_records()
    num_inserts = int(num_records * INSERT_GROWTH)
    records = _dataset(num_records + num_inserts + NUM_ALTERNATIONS)
    base = records[:num_records]
    pool = records[num_records : num_records + num_inserts]
    alternation_pool = records[num_records + num_inserts :]
    queries, _ids = sample_queries(base, num_queries=bench_num_queries(), seed=17)

    # One cost-model build fixes vocabulary / threshold / hasher; every
    # path sketches under these pinned parameters so results must agree.
    built = GBKMVIndex.build(base, space_fraction=SPACE_FRACTION)

    per_checkpoint = max(num_inserts // NUM_CHECKPOINTS, 1)
    batches = [
        pool[position : position + per_checkpoint]
        for position in range(0, len(pool), per_checkpoint)
    ]

    # Incremental merge (the segmented store's default).
    incremental_index = _pinned_index(built, base)
    incremental_checkpoints, incremental_seconds = _drive_maintained(
        incremental_index, batches, queries
    )

    # Invalidation re-sort (the pre-segmented behaviour, kept as a mode).
    resort_index = _pinned_index(built, base)
    resort_index.store.incremental_merge = False
    resort_checkpoints, resort_seconds = _drive_maintained(
        resort_index, batches, queries
    )

    # Rebuild from scratch at every checkpoint.
    rebuild_checkpoints = []
    accumulated = list(base)
    start = time.perf_counter()
    for batch in batches:
        accumulated.extend(batch)
        rebuilt = _pinned_index(built, accumulated)
        rebuild_checkpoints.append(_flatten(rebuilt.search_many(queries, THRESHOLD)))
    rebuild_seconds = time.perf_counter() - start

    # --- identity checks --------------------------------------------------
    assert incremental_checkpoints == resort_checkpoints, (
        "incremental merge drifted from the full re-sort path"
    )
    assert incremental_checkpoints == rebuild_checkpoints, (
        "incremental maintenance drifted from rebuild-from-scratch"
    )
    fresh = _pinned_index(built, records[: num_records + num_inserts])
    identical_results = (
        _flatten(incremental_index.search_many(queries, THRESHOLD))
        == _flatten(fresh.search_many(queries, THRESHOLD))
    )
    assert identical_results, (
        "incrementally maintained index differs from a freshly built one"
    )

    # --- snapshot round-trip ----------------------------------------------
    snapshot = tmp_path / "gbkmv_dynamic.npz"
    incremental_index.save(snapshot)
    restored = GBKMVIndex.load(snapshot)
    roundtrip_identical = (
        _flatten(incremental_index.search_many(queries, THRESHOLD))
        == _flatten(restored.search_many(queries, THRESHOLD))
    )
    assert roundtrip_identical, "save → load changed search_many output"

    speedup_vs_rebuild = rebuild_seconds / incremental_seconds
    speedup_vs_resort = resort_seconds / incremental_seconds
    assert speedup_vs_rebuild >= 3.0, (
        f"incremental merge is only {speedup_vs_rebuild:.1f}x rebuild-from-scratch"
    )

    # --- fine-grained alternation: one insert, one search, repeat ---------
    # Batch streams amortise the derived-cache rebuild over many inserts;
    # a service interleaving single writes with reads cannot.  Here the
    # re-sort mode pays the full O(T log T) join-index rebuild on every
    # cycle while the segmented store pays one two-run merge of a single
    # staged row — the regime the tentpole optimisation targets.
    alternation = {}
    for mode, merge in (("incremental_merge", True), ("invalidation_resort", False)):
        index = incremental_index if merge else resort_index
        index.store.incremental_merge = merge
        hits = []
        start = time.perf_counter()
        for record in alternation_pool:
            index.insert(record)
            hits.append(_flatten([index.search(record, THRESHOLD)]))
        alternation[mode] = time.perf_counter() - start
        if merge:
            alternation_hits = hits
        else:
            assert hits == alternation_hits, "alternation results drifted between modes"
    alternation_speedup = alternation["invalidation_resort"] / alternation["incremental_merge"]

    # --- mixed stream through the evaluation path -------------------------
    mixed_records = base[: max(num_records // 5, 500)]
    workload = build_dynamic_workload(
        mixed_records,
        threshold=THRESHOLD,
        num_operations=200,
        insert_fraction=0.4,
        delete_fraction=0.2,
        seed=29,
    )
    mixed_index = GBKMVIndex.build(
        list(workload.initial_records), space_fraction=SPACE_FRACTION
    )
    mixed = evaluate_dynamic_stream("GB-KMV", mixed_index, workload)
    # At full budget the sketches are exact, so churn must not cost a
    # single false positive or negative — the end-to-end correctness
    # guard for the insert/delete/query path.
    exact_index = GBKMVIndex.build(
        list(workload.initial_records), space_fraction=1.0
    )
    exact = evaluate_dynamic_stream("GB-KMV (full budget)", exact_index, workload)
    assert exact.accuracy.f1 == 1.0, "full-budget stream must be exact under churn"

    payload = {
        "dataset": {
            "num_records": num_records,
            "distribution": "power-law (zipf element frequency, zipf record size)",
            "space_fraction": SPACE_FRACTION,
            "threshold": THRESHOLD,
            "num_queries": len(queries),
        },
        "stream": {
            "num_checkpoints": len(batches),
            "inserts_per_checkpoint": per_checkpoint,
            "total_inserts": num_inserts,
        },
        "seconds": {
            "incremental_merge": round(incremental_seconds, 4),
            "invalidation_resort": round(resort_seconds, 4),
            "rebuild_from_scratch": round(rebuild_seconds, 4),
        },
        "speedup": {
            "incremental_vs_rebuild": round(speedup_vs_rebuild, 1),
            "incremental_vs_resort": round(speedup_vs_resort, 1),
        },
        "single_insert_search_alternation": {
            "num_cycles": len(alternation_pool),
            "incremental_merge_seconds": round(alternation["incremental_merge"], 4),
            "invalidation_resort_seconds": round(alternation["invalidation_resort"], 4),
            "incremental_vs_resort": round(alternation_speedup, 1),
        },
        "identical_results": bool(identical_results),
        "save_load_roundtrip_identical": bool(roundtrip_identical),
        "mixed_stream": {
            "num_operations": mixed.num_operations,
            "inserts": mixed.num_inserts,
            "deletes": mixed.num_deletes,
            "queries": mixed.num_queries,
            "f1": round(mixed.accuracy.f1, 4),
            "precision": round(mixed.accuracy.precision, 4),
            "recall": round(mixed.accuracy.recall, 4),
            "full_budget_f1": round(exact.accuracy.f1, 4),
        },
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def test_dynamic_store_speedup(run_once, tmp_path):
    payload = run_once(_run, tmp_path)
    seconds = payload["seconds"]
    alternation = payload["single_insert_search_alternation"]
    write_report(
        "dynamic_store",
        "Dynamic segmented store: insert-heavy stream maintenance (10k power-law records)",
        ["path", "batch_stream_seconds", "alternation_seconds", "speedup_vs_incremental"],
        [
            [
                "incremental merge",
                seconds["incremental_merge"],
                alternation["incremental_merge_seconds"],
                1.0,
            ],
            [
                "invalidation re-sort",
                seconds["invalidation_resort"],
                alternation["invalidation_resort_seconds"],
                alternation["incremental_vs_resort"],
            ],
            [
                "rebuild from scratch",
                seconds["rebuild_from_scratch"],
                "-",
                payload["speedup"]["incremental_vs_rebuild"],
            ],
        ],
    )
    assert payload["speedup"]["incremental_vs_rebuild"] >= 3.0
    assert payload["identical_results"] is True
    assert payload["save_load_roundtrip_identical"] is True
