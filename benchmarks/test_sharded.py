"""Macro-benchmark — the sharded backend at the million-record scale.

The sharding PR claims the ``sharded`` backend turns GB-KMV into a
multi-core index without changing a single answer: records are
partitioned by id hash across independent inner GB-KMV stores that share
one globally-planned parameter set, search fans out across shards on a
thread pool (the numpy kernels release the GIL), and the per-shard hits
merge back into exactly the ordering the unsharded index produces.

This benchmark pins the claim on the first million-record dataset the
repository builds: a vectorised power-law corpus (4M records x
``REPRO_BENCH_SCALE``, so 1M at the default 0.25) pushed through

* the plain ``gbkmv`` backend as the unsharded baseline, and
* the ``sharded`` backend at 1, 2, 4 and 8 shards,

timing construction and the batched ``search_many`` workload for each
shard count.  Asserted invariants:

* every shard count returns **bitwise-identical** hits/scores/ordering
  to the unsharded baseline — sharding is a layout change, not an
  approximation;
* a **parallel-built** index (``build_workers=4`` through the shard
  executor) is bitwise-identical to a serially built one
  (``build_workers=1``) — parallel construction is a scheduling change,
  not an approximation;
* on a machine with >= 4 cores at the full 1M-record scale, the best
  multi-shard ``search_many`` wall-clock beats the single-shard
  configuration by at least **2x**, and the best multi-shard *build*
  beats the single-shard build by at least **2x** (reduced-size or
  few-core runs — CI smoke, this container — record the scaling table
  without the guards);
* shard occupancy is balanced: the emptiest shard holds at least half
  the records of the fullest.

Every build also attaches its per-stage profile (flatten / vocabulary /
sketch / append wall-clock from ``last_build_profile``), so the table
shows *where* construction time goes as the shard count grows.

Results (including ``cpu_count``, so a 1-core table cannot be mistaken
for a scaling failure) land in ``BENCH_sharded.json`` at the repository
root.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from _util import bench_num_queries, bench_scale, write_report

from repro.api import GBKMVConfig, ShardedConfig, create_index
from repro.core import GBKMVIndex

SPACE_FRACTION = 0.10
THRESHOLD = 0.5
SHARD_COUNTS = (1, 2, 4, 8)
#: Records at full benchmark scale, below which the 2x multi-shard guard
#: is recorded but not enforced (reduced-size CI smoke runs).
FULL_SCALE_RECORDS = 1_000_000
#: Cores below which the 2x guard is meaningless: the shard executor
#: runs inline on a single worker and parallel speedup is impossible.
MIN_CORES_FOR_GUARD = 4
#: PR 7's unsharded 1M-record build on this container (BENCH_sharded.json
#: before the flatten-once + sort-once-reuse work), kept as the reference
#: the refreshed single-core build is compared against in the payload.
PR7_BASELINE_BUILD_SECONDS = 8.3718

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_sharded.json"


def _num_records() -> int:
    """1M records at the default scale (0.25); REPRO_BENCH_SCALE tunes it."""
    return max(int(4_000_000 * bench_scale()), 20_000)


def _power_law_dataset(
    num_records: int, universe_size: int = 2_000_000, seed: int = 47
) -> list[np.ndarray]:
    """Vectorised power-law corpus.

    ``generate_zipf_dataset`` draws record-at-a-time through Python and
    is unusable at the million-record scale this benchmark targets, so
    every record size and element is drawn here in single vectorised
    passes: zipf-tailed record sizes, inverse-CDF power-law element
    frequencies (small ids are hot, mirroring the proxy corpora), and
    one ``np.split`` slicing the flat element array into per-record
    views.
    """
    rng = np.random.default_rng(seed)
    sizes = np.minimum(rng.zipf(2.2, size=num_records) + 4, 64).astype(np.int64)
    draws = rng.random(int(sizes.sum()))
    elements = np.floor(universe_size * draws**2.5).astype(np.int64)
    return np.split(elements, np.cumsum(sizes)[:-1])


def _queries(records: list[np.ndarray]) -> list[np.ndarray]:
    """An evenly-strided sample of records, reused as the query workload."""
    num_queries = min(bench_num_queries(), len(records))
    stride = max(len(records) // num_queries, 1)
    return records[::stride][:num_queries]


def _best_of(function, rounds: int = 3):
    """Keep the last result and the fastest wall-clock of ``rounds`` runs."""
    result = None
    seconds = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        result = function()
        seconds = min(seconds, time.perf_counter() - start)
    return result, seconds


def _flatten(results) -> list[list[tuple[int, float]]]:
    return [[(hit.record_id, hit.score) for hit in hits] for hits in results]


def _run() -> dict[str, object]:
    num_records = _num_records()
    records = _power_law_dataset(num_records)
    queries = _queries(records)
    cpu_count = os.cpu_count() or 1

    # --- unsharded baseline ------------------------------------------------
    # Builds are timed single-shot: at 1M records a best-of-3 would
    # triple a multi-minute benchmark for a number that barely moves.
    start = time.perf_counter()
    baseline = GBKMVIndex.build(records, space_fraction=SPACE_FRACTION)
    baseline_build_seconds = time.perf_counter() - start
    baseline_hits, baseline_search_seconds = _best_of(
        lambda: baseline.search_many(queries, THRESHOLD)
    )
    expected = _flatten(baseline_hits)

    # --- sharded scaling table --------------------------------------------
    scaling: list[dict[str, object]] = []
    search_seconds_by_shards: dict[int, float] = {}
    build_seconds_by_shards: dict[int, float] = {}
    identical = True
    for num_shards in SHARD_COUNTS:
        config = ShardedConfig(
            num_shards=num_shards,
            inner_backend="gbkmv",
            inner_config=GBKMVConfig(space_fraction=SPACE_FRACTION),
        )
        start = time.perf_counter()
        index = create_index("sharded", records, config)
        build_seconds = time.perf_counter() - start
        hits, search_seconds = _best_of(
            lambda index=index: index.search_many(queries, THRESHOLD)
        )
        identical = identical and _flatten(hits) == expected
        occupancy = [shard.num_records for shard in index.shards]
        assert min(occupancy) >= 0.5 * max(occupancy), (
            f"unbalanced shards at num_shards={num_shards}: {occupancy}"
        )
        search_seconds_by_shards[num_shards] = search_seconds
        build_seconds_by_shards[num_shards] = build_seconds
        scaling.append(
            {
                "num_shards": num_shards,
                "build_seconds": round(build_seconds, 4),
                "build_stage_seconds": {
                    name: round(seconds, 4)
                    for name, seconds in index.last_build_profile.stage_seconds().items()
                },
                "search_many_seconds": round(search_seconds, 4),
                "speedup_vs_one_shard": None,  # filled once the 1-shard row exists
                "shard_records_min": int(min(occupancy)),
                "shard_records_max": int(max(occupancy)),
            }
        )
        index.close()
    assert identical, "sharded search drifted from the unsharded baseline"

    # --- parallel vs serial construction ----------------------------------
    # The same 4-shard configuration built with an explicit single-worker
    # executor and with a forced 4-worker pool: wall-clocks land in the
    # payload and the two indexes must be bitwise interchangeable.
    serial_config = ShardedConfig(
        num_shards=4,
        inner_backend="gbkmv",
        inner_config=GBKMVConfig(space_fraction=SPACE_FRACTION),
        build_workers=1,
    )
    start = time.perf_counter()
    serial_index = create_index("sharded", records, serial_config)
    serial_build_seconds = time.perf_counter() - start
    parallel_config = ShardedConfig(
        num_shards=4,
        inner_backend="gbkmv",
        inner_config=GBKMVConfig(space_fraction=SPACE_FRACTION),
        build_workers=4,
    )
    start = time.perf_counter()
    parallel_index = create_index("sharded", records, parallel_config)
    parallel_build_seconds = time.perf_counter() - start
    parallel_identical = (
        _flatten(serial_index.search_many(queries, THRESHOLD)) == expected
        and _flatten(parallel_index.search_many(queries, THRESHOLD)) == expected
        and all(
            serial_shard.store.state_arrays().keys()
            == parallel_shard.store.state_arrays().keys()
            and all(
                np.array_equal(
                    serial_shard.store.state_arrays()[name],
                    parallel_shard.store.state_arrays()[name],
                )
                for name in serial_shard.store.state_arrays()
            )
            for serial_shard, parallel_shard in zip(
                serial_index.shards, parallel_index.shards
            )
        )
    )
    assert parallel_identical, "parallel build drifted from the serial build"
    serial_index.close()
    parallel_index.close()

    one_shard_seconds = search_seconds_by_shards[SHARD_COUNTS[0]]
    for row in scaling:
        row["speedup_vs_one_shard"] = round(
            one_shard_seconds / row["search_many_seconds"], 2
        )
    multi_shard = [s for s in SHARD_COUNTS if s > 1]
    best_shards = min(multi_shard, key=search_seconds_by_shards.__getitem__)
    best_speedup = one_shard_seconds / search_seconds_by_shards[best_shards]
    one_shard_build = build_seconds_by_shards[SHARD_COUNTS[0]]
    best_build_shards = min(multi_shard, key=build_seconds_by_shards.__getitem__)
    best_build_speedup = one_shard_build / build_seconds_by_shards[best_build_shards]

    # The headline claims — >= 2x search AND >= 2x build at the full
    # million-record scale on a multi-core machine.  Single-core or
    # reduced-size runs still emit the full scaling table (with
    # cpu_count) but skip the guards: the shard executor degrades to
    # inline execution and cannot speed up.
    guard_applies = num_records >= FULL_SCALE_RECORDS and cpu_count >= MIN_CORES_FOR_GUARD
    if guard_applies:
        assert best_speedup >= 2.0, (
            f"search_many at {best_shards} shards is only {best_speedup:.2f}x "
            f"the single-shard configuration ({cpu_count} cores)"
        )
        assert best_build_speedup >= 2.0, (
            f"build at {best_build_shards} shards is only "
            f"{best_build_speedup:.2f}x the single-shard build "
            f"({cpu_count} cores)"
        )

    payload = {
        "dataset": {
            "num_records": num_records,
            "distribution": "power-law (zipf record size, inverse-CDF element frequency)",
            "space_fraction": SPACE_FRACTION,
            "threshold": THRESHOLD,
            "num_queries": len(queries),
        },
        "machine": {"cpu_count": cpu_count},
        "baseline_gbkmv": {
            "build_seconds": round(baseline_build_seconds, 4),
            "search_many_seconds": round(baseline_search_seconds, 4),
            "build_profile": baseline.last_build_profile.as_dict(),
            "pr7_build_seconds_reference": PR7_BASELINE_BUILD_SECONDS,
        },
        "sharded_scaling": scaling,
        "parallel_build": {
            "num_shards": 4,
            "serial_build_seconds": round(serial_build_seconds, 4),
            "parallel_build_seconds": round(parallel_build_seconds, 4),
            "build_workers": 4,
            "identical_to_serial": bool(parallel_identical),
        },
        "best_multi_shard": {
            "num_shards": best_shards,
            "speedup_vs_one_shard": round(best_speedup, 2),
            "build_speedup_vs_one_shard": round(best_build_speedup, 2),
            "guard_enforced": guard_applies,
        },
        "identical_results": bool(identical and parallel_identical),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def test_sharded_scaling(run_once):
    payload = run_once(_run)
    rows = [
        [
            "gbkmv (unsharded)",
            payload["baseline_gbkmv"]["build_seconds"],
            payload["baseline_gbkmv"]["search_many_seconds"],
            "-",
        ]
    ]
    rows.extend(
        [
            f"sharded x{row['num_shards']}",
            row["build_seconds"],
            row["search_many_seconds"],
            row["speedup_vs_one_shard"],
        ]
        for row in payload["sharded_scaling"]
    )
    write_report(
        "sharded",
        f"Sharded backend scaling ({payload['dataset']['num_records']} "
        f"power-law records, {payload['machine']['cpu_count']} cores)",
        ["configuration", "build_seconds", "search_many_seconds", "speedup_vs_1_shard"],
        rows,
    )
    assert payload["identical_results"] is True
