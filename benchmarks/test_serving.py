"""Macro-benchmark — the serving layer's micro-batching under closed-loop load.

The serving PR claims :class:`repro.api.SimilarityService` recovers the
fused query engine's batch advantage at a live front door: concurrent
single-request searches that land inside the micro-batch window execute
as one ``search_many`` call, without changing a single answer.

This benchmark pins the claim with the closed-loop load generator
(``repro.serving.loadgen``) over a power-law corpus (40k records x
``REPRO_BENCH_SCALE`` / 0.25, so 10k at the default):

* an **unbatched baseline** service (``max_batch_size=1`` — one engine
  call per request, the per-query path), and
* the **batched** service (64-deep window) under the same 32-client
  closed loop,

plus a **mixed read/write** phase exercising write coalescing end to
end.  Asserted invariants:

* answers served through the batcher are **bitwise identical** to
  direct ``search_many``/``top_k_many`` calls on the wrapped index —
  micro-batching is a scheduling change, not an approximation;
* the batched service actually fuses (mean batch size > 1) and the
  mixed phase actually coalesces (fewer bulk ingests than inserts);
* on a machine with >= 4 cores, batched closed-loop throughput beats
  the unbatched baseline by at least **2x** (single-core runs — CI
  smoke, this container — record the comparison without the guard: the
  event loop and the worker lane contend for one core, so the window
  cannot accumulate while the engine runs).

Results (including ``cpu_count``, so a single-core table cannot be
mistaken for a fusion failure) land in ``BENCH_serving.json`` at the
repository root.
"""

from __future__ import annotations

import asyncio
import json
import os
from pathlib import Path

import numpy as np

from _util import bench_num_queries, bench_scale, write_report

from repro.api import GBKMVConfig, ServingConfig, create_index
from repro.serving import SimilarityService, run_load

SPACE_FRACTION = 0.10
THRESHOLD = 0.5
NUM_CLIENTS = 32
REQUESTS_PER_CLIENT = 25
#: Cores below which the 2x fusion guard is meaningless: the event loop
#: cannot accumulate the next window while the engine runs the current
#: batch on the same core.
MIN_CORES_FOR_GUARD = 4

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_serving.json"


def _num_records() -> int:
    """10k records at the default scale (0.25); REPRO_BENCH_SCALE tunes it."""
    return max(int(40_000 * bench_scale()), 2_000)


def _power_law_dataset(
    num_records: int, universe_size: int = 200_000, seed: int = 53
) -> list[np.ndarray]:
    """Vectorised power-law corpus (same recipe as the sharded benchmark)."""
    rng = np.random.default_rng(seed)
    sizes = np.minimum(rng.zipf(2.2, size=num_records) + 4, 64).astype(np.int64)
    draws = rng.random(int(sizes.sum()))
    elements = np.floor(universe_size * draws**2.5).astype(np.int64)
    return np.split(elements, np.cumsum(sizes)[:-1])


def _queries(records: list[np.ndarray]) -> list[np.ndarray]:
    num_queries = min(bench_num_queries(), len(records))
    stride = max(len(records) // num_queries, 1)
    return records[::stride][:num_queries]


def _flatten(results) -> list[list[tuple[int, float]]]:
    return [[(hit.record_id, hit.score) for hit in hits] for hits in results]


def _assert_identity(index, queries) -> None:
    """Batched answers must equal direct engine calls, bit for bit."""
    expected_search = _flatten(index.search_many(queries, THRESHOLD))
    expected_top_k = _flatten(index.top_k_many(queries, 10))

    async def scenario():
        service = SimilarityService(index, close_index=False)
        async with service:
            searches = await asyncio.gather(
                *(service.search(query, THRESHOLD) for query in queries)
            )
            tops = await asyncio.gather(
                *(service.top_k(query, 10) for query in queries)
            )
            return searches, tops, service.stats()

    searches, tops, stats = asyncio.run(scenario())
    assert _flatten(searches) == expected_search, (
        "micro-batched search drifted from direct search_many"
    )
    assert _flatten(tops) == expected_top_k, (
        "micro-batched top_k drifted from direct top_k_many"
    )
    assert stats.batcher.largest_batch > 1, "the identity burst never fused"


def _report_row(report) -> dict[str, object]:
    return {
        "throughput_rps": round(report.throughput_rps, 2),
        "wall_seconds": round(report.wall_seconds, 4),
        "total_requests": report.total_requests,
        "p50_ms": round(report.latency.p50_ms, 4),
        "p99_ms": round(report.latency.p99_ms, 4),
    }


def _run() -> dict[str, object]:
    num_records = _num_records()
    records = _power_law_dataset(num_records)
    queries = _queries(records)
    cpu_count = os.cpu_count() or 1

    index = create_index(
        "gbkmv", records, GBKMVConfig(space_fraction=SPACE_FRACTION)
    )
    _assert_identity(index, queries)

    # --- read-only closed loops: unbatched baseline vs micro-batched -------
    unbatched_config = ServingConfig(max_batch_size=1, max_batch_delay_us=0.0)
    unbatched = run_load(
        SimilarityService(index, unbatched_config, close_index=False),
        queries,
        THRESHOLD,
        num_clients=NUM_CLIENTS,
        requests_per_client=REQUESTS_PER_CLIENT,
        top_k_fraction=0.25,
        seed=19,
    )
    batched_config = ServingConfig(max_batch_size=64, max_batch_delay_us=200.0)
    batched_service = SimilarityService(index, batched_config, close_index=False)
    batched = run_load(
        batched_service,
        queries,
        THRESHOLD,
        num_clients=NUM_CLIENTS,
        requests_per_client=REQUESTS_PER_CLIENT,
        top_k_fraction=0.25,
        seed=19,
    )
    batch_stats = batched_service.stats().batcher
    assert batch_stats.mean_batch_size > 1.0, (
        f"the batched closed loop never fused "
        f"(mean batch size {batch_stats.mean_batch_size:.2f})"
    )
    speedup = (
        batched.throughput_rps / unbatched.throughput_rps
        if unbatched.throughput_rps
        else 0.0
    )

    # --- mixed read/write phase: write coalescing end to end ---------------
    mixed_service = SimilarityService(index, batched_config, close_index=False)
    mixed = run_load(
        mixed_service,
        queries,
        THRESHOLD,
        num_clients=NUM_CLIENTS,
        requests_per_client=REQUESTS_PER_CLIENT,
        insert_pool=records[: NUM_CLIENTS * REQUESTS_PER_CLIENT],
        write_fraction=0.25,
        top_k_fraction=0.25,
        seed=19,
    )
    write_stats = mixed_service.stats().writes
    assert write_stats.pending == 0, "the mixed loop left writes buffered"
    assert write_stats.insert_batches <= write_stats.inserts, (
        "coalescing produced more bulk ingests than inserts"
    )
    coalescing_factor = (
        write_stats.inserts / write_stats.insert_batches
        if write_stats.insert_batches
        else 0.0
    )

    # The headline claim — >= 2x batched throughput — needs cores: on one
    # core the loop and the engine serialize and fusion only saves
    # per-call overhead.  The comparison is always recorded.
    guard_applies = cpu_count >= MIN_CORES_FOR_GUARD
    if guard_applies:
        assert speedup >= 2.0, (
            f"batched closed-loop throughput is only {speedup:.2f}x the "
            f"unbatched baseline ({cpu_count} cores)"
        )

    index.close()
    payload = {
        "dataset": {
            "num_records": num_records,
            "distribution": "power-law (zipf record size, inverse-CDF element frequency)",
            "space_fraction": SPACE_FRACTION,
            "threshold": THRESHOLD,
            "num_queries": len(queries),
        },
        "machine": {"cpu_count": cpu_count},
        "closed_loop": {
            "num_clients": NUM_CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "top_k_fraction": 0.25,
        },
        "unbatched": _report_row(unbatched),
        "batched": {
            **_report_row(batched),
            "mean_batch_size": round(batch_stats.mean_batch_size, 2),
            "largest_batch": batch_stats.largest_batch,
        },
        "mixed_read_write": {
            **_report_row(mixed),
            "write_fraction": 0.25,
            "inserts": write_stats.inserts,
            "deletes": write_stats.deletes,
            "insert_batches": write_stats.insert_batches,
            "coalescing_factor": round(coalescing_factor, 2),
            "latency_by_operation": {
                name: summary.as_dict()
                for name, summary in sorted(mixed.latency_by_operation.items())
            },
        },
        "batched_vs_unbatched_speedup": round(speedup, 2),
        "guard_enforced": guard_applies,
        "identical_results": True,  # _assert_identity raised otherwise
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def test_serving_closed_loop(run_once):
    payload = run_once(_run)
    rows = [
        [
            "unbatched (max_batch_size=1)",
            payload["unbatched"]["throughput_rps"],
            payload["unbatched"]["p50_ms"],
            payload["unbatched"]["p99_ms"],
            "-",
        ],
        [
            "batched (64-deep window)",
            payload["batched"]["throughput_rps"],
            payload["batched"]["p50_ms"],
            payload["batched"]["p99_ms"],
            payload["batched"]["mean_batch_size"],
        ],
        [
            "mixed 25% writes (batched)",
            payload["mixed_read_write"]["throughput_rps"],
            payload["mixed_read_write"]["p50_ms"],
            payload["mixed_read_write"]["p99_ms"],
            payload["mixed_read_write"]["coalescing_factor"],
        ],
    ]
    write_report(
        "serving",
        f"Serving layer closed loop ({payload['dataset']['num_records']} "
        f"power-law records, {payload['closed_loop']['num_clients']} clients, "
        f"{payload['machine']['cpu_count']} cores)",
        ["configuration", "throughput_rps", "p50_ms", "p99_ms", "fusion/coalescing"],
        rows,
    )
    assert payload["identical_results"] is True
    assert payload["batched_vs_unbatched_speedup"] > 0.0
