"""Figure 19(a) — time versus accuracy on a uniform-distribution dataset.

The supplementary experiment: 100K records (scaled down here) with record
sizes uniform in a range and elements drawn uniformly from the universe —
the α1 = α2 = 0 regime of Theorem 5.  The paper's claim: even without any
skewness to exploit, GB-KMV reaches the same F1 as LSH-E with much less
query time.  GB-KMV answers the workload through the batched query
engine (``search_many``); LSH-E is looped per query.
"""

from __future__ import annotations

from _util import DEFAULT_THRESHOLD, bench_num_queries, bench_scale, evaluate_methods, write_report

from repro.api import GBKMVConfig, LSHEnsembleConfig, create_index
from repro.datasets import generate_uniform_dataset, sample_queries
from repro.evaluation import exact_result_sets

GBKMV_FRACTIONS = (0.05, 0.10, 0.20)
LSHE_NUM_PERMS = (64, 128)


def _run() -> list[list[object]]:
    num_records = max(int(2_000 * bench_scale()), 200)
    records = generate_uniform_dataset(
        num_records=num_records,
        universe_size=100_000,
        min_record_size=10,
        max_record_size=2_000,
        seed=29,
    )
    queries, _ids = sample_queries(records, num_queries=bench_num_queries(), seed=3)
    truth = exact_result_sets(records, queries, DEFAULT_THRESHOLD)

    methods = {}
    for fraction in GBKMV_FRACTIONS:
        methods[f"GB-KMV@{fraction:.0%}"] = (
            lambda f=fraction: create_index(
                "gbkmv", records, GBKMVConfig(space_fraction=f)
            )
        )
    for num_perm in LSHE_NUM_PERMS:
        methods[f"LSH-E@{num_perm}"] = (
            lambda n=num_perm: create_index(
                "lsh-ensemble",
                records,
                LSHEnsembleConfig(num_perm=n, num_partitions=16),
            )
        )
    evaluations = evaluate_methods(
        records, queries, truth, DEFAULT_THRESHOLD, methods, use_batched=True
    )
    return [
        [
            method_name,
            round(evaluation.avg_query_seconds * 1e3, 3),
            round(evaluation.accuracy.f1, 4),
            round(evaluation.accuracy.recall, 4),
        ]
        for method_name, evaluation in evaluations.items()
    ]


def test_fig19a_uniform_distribution(run_once):
    rows = run_once(_run)
    write_report(
        "fig19a_uniform",
        "Figure 19(a): time vs accuracy on a uniform-distribution dataset",
        ["method", "query_ms", "f1", "recall"],
        rows,
    )
    gbkmv_best = max(row[2] for row in rows if "GB-KMV" in row[0])
    lshe_best = max(row[2] for row in rows if "LSH-E" in row[0])
    assert gbkmv_best >= lshe_best - 0.02
