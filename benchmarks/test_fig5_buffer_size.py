"""Figure 5 — effect of the buffer size on accuracy and on the cost model.

For the NETFLIX and ENRON proxies, sweep the buffer size ``r`` under a
fixed 10% space budget and report, per ``r``:

* the empirical F1 of GB-KMV built with that buffer size, and
* the cost model's estimated average variance (Section IV-C6).

The paper's claim (Fig. 5) is that the variance curve is a reliable guide
to a good buffer size: the ``r`` minimising the model variance should be
near the ``r`` maximising empirical F1 (small values preferred for the
variance, large for F1).
"""

from __future__ import annotations

import numpy as np
from _util import DEFAULT_THRESHOLD, bench_dataset, bench_workload, write_report

from repro.core import GBKMVIndex, average_variance
from repro.datasets.powerlaw import element_frequencies, record_sizes
from repro.evaluation import evaluate_search_method

DATASETS = ("NETFLIX", "ENRON")
SPACE_FRACTION = 0.10


def _sweep(name: str) -> list[list[object]]:
    records = bench_dataset(name)
    queries, truth = bench_workload(name)
    sizes = record_sizes(records)
    frequencies = np.array(
        list(element_frequencies(records).values()), dtype=np.float64
    )
    budget = SPACE_FRACTION * sizes.sum()
    cap = int((budget - 1) * 32 / len(records))
    grid = sorted({0, cap // 8, cap // 4, cap // 2, 3 * cap // 4, cap})

    rows: list[list[object]] = []
    for buffer_size in grid:
        index = GBKMVIndex.build(
            records, space_fraction=SPACE_FRACTION, buffer_size=buffer_size
        )
        evaluation = evaluate_search_method(
            f"r={buffer_size}", index, queries, truth, DEFAULT_THRESHOLD
        )
        variance = average_variance(sizes, frequencies, budget, buffer_size)
        rows.append(
            [
                name,
                buffer_size,
                round(evaluation.accuracy.f1, 4),
                float(f"{variance:.3e}") if np.isfinite(variance) else float("inf"),
            ]
        )
    return rows


def test_fig5_buffer_size_effect(run_once):
    rows = run_once(lambda: [row for name in DATASETS for row in _sweep(name)])
    write_report(
        "fig5_buffer_size",
        "Figure 5: effect of buffer size (F1 and model variance vs r)",
        ["dataset", "buffer_r", "f1", "model_variance"],
        rows,
    )
    # Shape check per dataset: the model-optimal r should achieve an F1 close
    # to the best F1 observed anywhere on the grid.
    for name in DATASETS:
        subset = [row for row in rows if row[0] == name]
        best_f1 = max(row[2] for row in subset)
        model_best = min(subset, key=lambda row: row[3])
        assert model_best[2] >= best_f1 - 0.15
