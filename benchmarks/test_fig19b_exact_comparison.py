"""Figure 19(b) — running time against exact algorithms as records grow.

The paper partitions WEBSPAM (average record length ≈ 3700) into groups
by record size and reports the per-query running time of GB-KMV against
the exact methods PPjoin* and FrequentSet.  The claims: exact methods
slow down as records grow, while GB-KMV's query time stays flat (it only
ever touches a fixed number of samples), all while keeping recall above
0.9 and F1 above 0.8.

Here the groups are synthetic datasets with increasing record sizes,
shaped like WEBSPAM (very skewed element frequency, near-constant record
size within a group).
"""

from __future__ import annotations

import time

from _util import DEFAULT_THRESHOLD, bench_num_queries, bench_scale, write_report

from repro.core import GBKMVIndex
from repro.datasets import generate_zipf_dataset, sample_queries
from repro.evaluation import evaluate_search_method, exact_result_sets
from repro.exact import FrequentSetSearcher, PPJoinSearcher

RECORD_SIZE_GROUPS = (250, 500, 1_000, 2_000)


def _group_dataset(record_size: int) -> list[list[int]]:
    num_records = max(int(400 * bench_scale()), 60)
    return generate_zipf_dataset(
        num_records=num_records,
        universe_size=60_000,
        element_exponent=1.33,
        size_exponent=9.34,
        min_record_size=max(record_size - 50, 10),
        max_record_size=record_size,
        seed=31,
    )


def _average_query_seconds(searcher, queries, threshold, rounds: int = 2) -> float:
    """Best-of-``rounds`` average per-query time (same footing for every method)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for query in queries:
            searcher.search(query, threshold)
        best = min(best, (time.perf_counter() - start) / len(queries))
    return best


def _run() -> list[list[object]]:
    rows: list[list[object]] = []
    num_queries = min(bench_num_queries(), 15)
    # The paper's point is that GB-KMV uses "a fixed number of samples for a
    # given budget": the absolute budget is fixed across the record-size
    # groups (10% of the smallest group's volume), so per-record sample
    # counts do not grow with the records.
    smallest = _group_dataset(RECORD_SIZE_GROUPS[0])
    fixed_budget = 0.10 * sum(len(set(record)) for record in smallest)
    for record_size in RECORD_SIZE_GROUPS:
        records = _group_dataset(record_size)
        queries, _ids = sample_queries(records, num_queries=num_queries, seed=7)
        truth = exact_result_sets(records, queries, DEFAULT_THRESHOLD)

        gbkmv = GBKMVIndex.build(records, space_budget=fixed_budget)
        # GB-KMV goes through the batched engine; the exact searchers below
        # have no batched path and are looped per query.  Every method is
        # timed best-of-two on the same footing — GB-KMV per-query times
        # are sub-millisecond, so a single GC pause would otherwise
        # distort the growth-ratio shape check.
        gbkmv_eval = evaluate_search_method(
            "GB-KMV", gbkmv, queries, truth, DEFAULT_THRESHOLD, use_batched=True
        )
        retimed = evaluate_search_method(
            "GB-KMV", gbkmv, queries, truth, DEFAULT_THRESHOLD, use_batched=True
        )
        gbkmv_seconds = min(
            gbkmv_eval.avg_query_seconds, retimed.avg_query_seconds
        )
        ppjoin_seconds = _average_query_seconds(PPJoinSearcher(records), queries, DEFAULT_THRESHOLD)
        freqset_seconds = _average_query_seconds(FrequentSetSearcher(records), queries, DEFAULT_THRESHOLD)
        rows.append(
            [
                record_size,
                round(gbkmv_seconds * 1e3, 3),
                round(ppjoin_seconds * 1e3, 3),
                round(freqset_seconds * 1e3, 3),
                round(gbkmv_eval.accuracy.f1, 3),
                round(gbkmv_eval.accuracy.recall, 3),
            ]
        )
    return rows


def test_fig19b_exact_algorithm_comparison(run_once):
    rows = run_once(_run)
    write_report(
        "fig19b_exact_comparison",
        "Figure 19(b): per-query time (ms) vs record size — GB-KMV vs exact methods",
        ["record_size", "gbkmv_ms", "ppjoin_ms", "freqset_ms", "gbkmv_f1", "gbkmv_recall"],
        rows,
    )
    # Shape checks: exact methods' query time grows with record size much
    # faster than GB-KMV's, and GB-KMV keeps a decent accuracy throughout.
    first, last = rows[0], rows[-1]
    gbkmv_growth = last[1] / max(first[1], 1e-9)
    exact_growth = last[3] / max(first[3], 1e-9)
    assert exact_growth > gbkmv_growth
    for row in rows:
        assert row[5] >= 0.5  # recall stays reasonably high throughout
