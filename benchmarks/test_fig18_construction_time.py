"""Figure 18 — sketch construction time, GB-KMV versus LSH Ensemble.

Builds both indexes at their default settings (GB-KMV: 10% space budget,
single hash function; LSH-E: 256 hash functions, 32 partitions) on every
proxy dataset and reports the wall-clock construction time.  The paper's
claim is that GB-KMV builds much faster because it hashes every element
once instead of 256 times.

GB-KMV is timed through the shipped builder — the vectorised bulk
construction pipeline — with the historical per-record loop reported
alongside so the figure shows what the bulk-build PR changed.
"""

from __future__ import annotations

import time

from _util import ALL_DATASETS, bench_dataset, write_report

from repro.baselines import LSHEnsembleIndex
from repro.core import GBKMVIndex


def _run() -> list[list[object]]:
    rows: list[list[object]] = []
    for name in ALL_DATASETS:
        records = bench_dataset(name)
        start = time.perf_counter()
        GBKMVIndex.build(records, space_fraction=0.10)
        gbkmv_seconds = time.perf_counter() - start
        start = time.perf_counter()
        GBKMVIndex.build(records, space_fraction=0.10, method="per-record")
        per_record_seconds = time.perf_counter() - start
        start = time.perf_counter()
        LSHEnsembleIndex.build(records, num_perm=256, num_partitions=32)
        lshe_seconds = time.perf_counter() - start
        rows.append(
            [
                name,
                round(gbkmv_seconds, 3),
                round(per_record_seconds, 3),
                round(lshe_seconds, 3),
                round(lshe_seconds / max(gbkmv_seconds, 1e-9), 1),
            ]
        )
    return rows


def test_fig18_construction_time(run_once):
    rows = run_once(_run)
    write_report(
        "fig18_construction_time",
        "Figure 18: sketch construction time (seconds)",
        ["dataset", "gbkmv_bulk_s", "gbkmv_per_record_s", "lshe_s", "speedup_vs_lshe"],
        rows,
    )
    # Shape checks: GB-KMV construction is faster than LSH-E on every
    # dataset, through both the bulk and the per-record builder.
    for row in rows:
        assert row[1] < row[3]
        assert row[2] < row[3]
