"""Ablation study of GB-KMV's design choices (beyond the paper's figures).

DESIGN.md calls out three design decisions the paper argues for
analytically; this benchmark measures each one empirically on the
NETFLIX proxy:

1. the global threshold (Theorem 3): plain KMV vs G-KMV at equal space;
2. the frequent-element buffer (Section IV-A(3)): G-KMV vs GB-KMV with
   the cost-model buffer;
3. the estimation framework (Section III-B): LSH-E without and with
   candidate verification, and the earlier asymmetric-MinHash baseline.
"""

from __future__ import annotations

from _util import DEFAULT_THRESHOLD, bench_dataset, bench_workload, evaluate_methods, write_report

from repro.api import (
    AsymmetricMinHashConfig,
    GBKMVConfig,
    GKMVConfig,
    KMVConfig,
    LSHEnsembleConfig,
    create_index,
)

DATASET = "NETFLIX"
SPACE_FRACTION = 0.10


def _run() -> list[list[object]]:
    records = bench_dataset(DATASET)
    queries, truth = bench_workload(DATASET)
    evaluations = evaluate_methods(
        records,
        queries,
        truth,
        DEFAULT_THRESHOLD,
        {
            "KMV (no threshold, no buffer)": lambda: create_index(
                "kmv", records, KMVConfig(space_fraction=SPACE_FRACTION)
            ),
            "G-KMV (global threshold)": lambda: create_index(
                "gkmv", records, GKMVConfig(space_fraction=SPACE_FRACTION)
            ),
            "GB-KMV (threshold + buffer)": lambda: create_index(
                "gbkmv", records, GBKMVConfig(space_fraction=SPACE_FRACTION)
            ),
            "LSH-E (raw candidates)": lambda: create_index(
                "lsh-ensemble",
                records,
                LSHEnsembleConfig(num_perm=128, num_partitions=16),
            ),
            "LSH-E (verified candidates)": lambda: create_index(
                "lsh-ensemble",
                records,
                LSHEnsembleConfig(num_perm=128, num_partitions=16, verify=True),
            ),
            "AsymMinHash": lambda: create_index(
                "asymmetric-minhash", records, AsymmetricMinHashConfig(num_perm=128)
            ),
        },
    )

    return [
        [
            method_name,
            round(evaluation.accuracy.f1, 4),
            round(evaluation.accuracy.precision, 4),
            round(evaluation.accuracy.recall, 4),
            round(evaluation.space_fraction, 3),
        ]
        for method_name, evaluation in evaluations.items()
    ]


def test_ablation_design_choices(run_once):
    rows = run_once(_run)
    write_report(
        "ablation_design_choices",
        "Ablation: each GB-KMV design choice on the NETFLIX proxy",
        ["method", "f1", "precision", "recall", "space_frac"],
        rows,
    )
    by_name = {row[0]: row for row in rows}
    # Global threshold helps; the buffer helps further (Figure 6 ordering).
    assert by_name["G-KMV (global threshold)"][1] >= by_name["KMV (no threshold, no buffer)"][1] - 0.02
    assert by_name["GB-KMV (threshold + buffer)"][1] >= by_name["G-KMV (global threshold)"][1] - 0.02
    # GB-KMV beats both LSH-E variants and the asymmetric-MinHash baseline.
    assert by_name["GB-KMV (threshold + buffer)"][1] >= by_name["LSH-E (raw candidates)"][1]
    assert by_name["GB-KMV (threshold + buffer)"][1] >= by_name["AsymMinHash"][1]
