"""Quickstart: build a GB-KMV index and run containment similarity searches.

This walks through the paper's running example (Example 1) and then a
slightly larger synthetic dataset, showing the three things a user does
with the library — all through the unified :mod:`repro.api` surface:

1. build an index with ``create_index("gbkmv", records, config)`` under
   a space budget,
2. run threshold searches (``search``) and top-k searches (``top_k``), and
3. compare the approximate answers against the exact ``"brute-force"``
   backend.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import (
    GBKMVConfig,
    containment_similarity,
    create_index,
    generate_zipf_dataset,
)


def paper_example() -> None:
    """The four-record dataset and query of Example 1 in the paper."""
    records = [
        ["e1", "e2", "e3", "e4", "e7"],   # X1
        ["e2", "e3", "e5"],               # X2
        ["e2", "e4", "e5"],               # X3
        ["e1", "e2", "e6", "e10"],        # X4
    ]
    query = ["e1", "e2", "e3", "e5", "e7", "e9"]

    print("=== Paper Example 1 ===")
    for name, record in zip(("X1", "X2", "X3", "X4"), records):
        print(f"  C(Q, {name}) = {containment_similarity(query, record):.2f}")

    # A 100% space budget keeps every hash value, so the index is exact;
    # real deployments use a small fraction (the paper's default is 10%).
    index = create_index(
        "gbkmv", records, GBKMVConfig(space_fraction=1.0, buffer_size=2)
    )
    hits = index.search(query, threshold=0.5)
    print(f"  records with containment >= 0.5: "
          f"{[(f'X{hit.record_id + 1}', round(hit.score, 2)) for hit in hits]}")
    print()


def synthetic_example() -> None:
    """A skewed synthetic dataset searched under a 10% space budget."""
    print("=== Synthetic dataset under a 10% space budget ===")
    records = generate_zipf_dataset(
        num_records=2_000,
        universe_size=20_000,
        element_exponent=1.15,
        size_exponent=3.0,
        min_record_size=20,
        max_record_size=500,
        seed=7,
    )
    index = create_index("gbkmv", records, GBKMVConfig(space_fraction=0.10))
    stats = index.statistics()
    print(f"  records indexed       : {stats.num_records}")
    print(f"  buffer size (cost model): {stats.buffer_size}")
    print(f"  global threshold tau  : {stats.threshold:.4f}")
    print(f"  space used            : {stats.space_fraction:.1%} of the dataset")

    query = records[42]
    threshold = 0.5
    approximate = index.search(query, threshold)
    exact = create_index("brute-force", records).search(query, threshold)
    approximate_ids = {hit.record_id for hit in approximate}
    exact_ids = {hit.record_id for hit in exact}
    true_positives = len(approximate_ids & exact_ids)
    print(f"  query record id       : 42   (|Q| = {len(set(query))})")
    print(f"  exact answers         : {len(exact_ids)}")
    print(f"  approximate answers   : {len(approximate_ids)}")
    if approximate_ids:
        print(f"  precision             : {true_positives / len(approximate_ids):.2f}")
    if exact_ids:
        print(f"  recall                : {true_positives / len(exact_ids):.2f}")

    top = index.top_k(query, k=5)
    print("  top-5 by estimated containment:")
    for hit in top:
        truth = containment_similarity(query, records[hit.record_id])
        print(f"    record {hit.record_id:5d}  estimate={hit.score:.2f}  exact={truth:.2f}")


if __name__ == "__main__":
    paper_example()
    synthetic_example()
