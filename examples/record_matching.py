"""Error-tolerant record matching with containment similarity.

The introduction of the paper motivates containment similarity with a
record-matching example: the query {"five", "guys"} should match the long
restaurant description containing both words rather than a short record
sharing only one, which is what Jaccard similarity (biased towards short
records) would prefer.

This example builds a small corpus of noisy business descriptions
(token sets), indexes it with the ``"gbkmv"`` backend of
:mod:`repro.api`, and shows that:

* containment ranks the intuitively correct records first, while Jaccard
  favours short records;
* the sketch-based search returns the same matches as the exact
  ``"brute-force"`` backend.

Run with::

    python examples/record_matching.py
"""

from __future__ import annotations

import random

from repro.api import (
    GBKMVConfig,
    containment_similarity,
    create_index,
    jaccard_similarity,
)


BUSINESSES = [
    "five guys burgers and fries downtown brooklyn new york",
    "five kitchen berkeley",
    "shake shack madison square park new york",
    "in n out burger fisherman wharf san francisco california",
    "five guys burgers and fries mission street san francisco",
    "joes pizza carmine street greenwich village new york",
    "burger king times square manhattan new york",
    "the halal guys west 53rd street and 6th avenue new york",
    "five star indian kitchen and curry house downtown san jose",
    "guys and dolls cocktail bar lower east side",
]

STREET_WORDS = "street avenue road boulevard lane plaza market main first second".split()
CITY_WORDS = "austin dallas seattle portland chicago boston denver miami".split()


def tokenize(text: str) -> list[str]:
    return text.lower().split()


def build_corpus(seed: int = 5) -> list[list[str]]:
    """The hand-written businesses plus synthetic noisy variations."""
    rng = random.Random(seed)
    corpus = [tokenize(text) for text in BUSINESSES]
    for _ in range(300):
        base = tokenize(rng.choice(BUSINESSES))
        noise = rng.sample(STREET_WORDS, 3) + rng.sample(CITY_WORDS, 2)
        rng.shuffle(noise)
        # Drop a couple of tokens and add noise, simulating dirty records.
        kept = [token for token in base if rng.random() > 0.25]
        corpus.append(kept + noise if kept else base + noise)
    return corpus


def main() -> None:
    corpus = build_corpus()
    query = ["five", "guys"]

    print("=== Why containment, not Jaccard (intro example) ===")
    for text in BUSINESSES[:2]:
        record = tokenize(text)
        print(
            f"  {text[:42]:44s} jaccard={jaccard_similarity(query, record):.2f}  "
            f"containment={containment_similarity(query, record):.2f}"
        )

    print("\n=== GB-KMV search over the noisy corpus ===")
    index = create_index("gbkmv", corpus, GBKMVConfig(space_fraction=0.5))
    exact = create_index("brute-force", corpus)

    threshold = 1.0  # every query word must appear
    approx_hits = {hit.record_id for hit in index.search(query, threshold)}
    exact_hits = {hit.record_id for hit in exact.search(query, threshold)}
    print(f"  records containing all query words (exact)  : {len(exact_hits)}")
    print(f"  records containing all query words (GB-KMV) : {len(approx_hits)}")
    print(f"  agreement: {len(approx_hits & exact_hits)} shared")

    print("\n  Top matches by estimated containment:")
    for hit in index.top_k(query, k=5):
        text = " ".join(corpus[hit.record_id][:8])
        print(f"    {hit.score:.2f}  {text}...")

    # Error-tolerant variant: one of the query words is misspelled/missing,
    # so we lower the threshold instead of requiring an exact keyword match.
    noisy_query = ["five", "guys", "burgrs"]
    hits = index.search(noisy_query, threshold=0.6)
    print(f"\n  error-tolerant search ({noisy_query}, t*=0.6): {len(hits)} matches")


if __name__ == "__main__":
    main()
