"""Approximate inclusion-dependency (foreign key) discovery between columns.

The paper lists data profiling as a key application: the *inclusion
coefficient* of column A in column B is exactly the containment similarity
C(A, B) = |A ∩ B| / |A|, and columns with coefficient close to 1 are
foreign-key candidates.

This example synthesises a small relational schema (a few "dimension"
columns and many "fact" columns referencing them, plus noise columns),
then uses the ``"gbkmv"`` backend of :mod:`repro.api` to find, for every
column, the columns that contain it — without ever computing exact
pairwise intersections.

Run with::

    python examples/inclusion_dependency.py
"""

from __future__ import annotations

import random

from repro.api import GBKMVConfig, containment_similarity, create_index


def build_schema(seed: int = 3) -> dict[str, list[int]]:
    """Synthetic columns: dimension keys, referencing fact columns, noise."""
    rng = random.Random(seed)
    columns: dict[str, list[int]] = {}

    # Dimension tables: primary key columns with disjoint id ranges.
    columns["customers.id"] = list(range(0, 5_000))
    columns["products.id"] = list(range(10_000, 12_500))
    columns["stores.id"] = list(range(20_000, 20_200))

    # Fact tables: foreign-key columns drawing (with repetition) from a
    # dimension, so their distinct values are subsets of the dimension key.
    columns["orders.customer_id"] = rng.sample(columns["customers.id"], 3_500)
    columns["orders.product_id"] = rng.sample(columns["products.id"], 2_000)
    columns["orders.store_id"] = rng.sample(columns["stores.id"], 180)
    columns["returns.customer_id"] = rng.sample(columns["customers.id"], 800)
    # A dirty foreign key: 5% of its values reference deleted customers.
    dirty = rng.sample(columns["customers.id"], 1_900) + list(range(90_000, 90_100))
    columns["invoices.customer_id"] = dirty

    # Noise columns that should not be reported.
    for i in range(20):
        low = rng.randrange(30_000, 80_000)
        columns[f"misc.col{i}"] = [low + j * 3 for j in range(rng.randrange(200, 2_000))]
    return columns


def main() -> None:
    columns = build_schema()
    names = list(columns)
    records = [columns[name] for name in names]

    print("=== Approximate inclusion dependency discovery ===")
    index = create_index("gbkmv", records, GBKMVConfig(space_fraction=0.15))
    print(f"  columns: {len(records)}, space used: {index.space_fraction():.1%}\n")

    threshold = 0.9  # report A ⊆~ B when at least 90% of A's values are in B
    print(f"  candidate inclusion dependencies (coefficient >= {threshold}):")
    found: list[tuple[str, str, float, float]] = []
    for column_id, name in enumerate(names):
        hits = index.search(records[column_id], threshold)
        for hit in hits:
            if hit.record_id == column_id:
                continue  # a column trivially contains itself
            exact = containment_similarity(records[column_id], records[hit.record_id])
            found.append((name, names[hit.record_id], hit.score, exact))

    found.sort(key=lambda row: -row[2])
    print(f"    {'column A':24s} {'⊑  column B':24s} {'estimate':>9s} {'exact':>7s}")
    for left, right, estimate, exact in found:
        print(f"    {left:24s} {right:24s} {estimate:9.3f} {exact:7.3f}")

    expected = {
        ("orders.customer_id", "customers.id"),
        ("orders.product_id", "products.id"),
        ("orders.store_id", "stores.id"),
        ("returns.customer_id", "customers.id"),
        ("invoices.customer_id", "customers.id"),
    }
    reported = {(left, right) for left, right, _e, _x in found}
    print(f"\n  true foreign keys recovered: {len(expected & reported)} / {len(expected)}")
    print(f"  spurious reports           : {len(reported - expected)}")


if __name__ == "__main__":
    main()
