"""Serving demo: an async front with micro-batching and write coalescing.

A built index answers a *workload* of queries far faster than the same
queries one at a time, but a live service receives them one at a time.
:class:`repro.api.SimilarityService` recovers the workload shape at the
front door:

1. concurrent searches landing inside a small window fuse into one
   batched engine call (invisibly — answers are identical to direct
   index calls),
2. inserts and deletes coalesce in a write buffer that flushes as bulk
   ingests under an explicit visibility policy (here read-your-writes:
   a query never misses a write this service accepted), and
3. a closed-loop load generator measures the throughput and latency a
   deployment would see.

Run with::

    python examples/serving_demo.py
"""

from __future__ import annotations

import asyncio

from repro.api import (
    GBKMVConfig,
    ServingConfig,
    SimilarityService,
    create_index,
    generate_zipf_dataset,
    run_closed_loop,
    sample_queries,
)


async def main() -> None:
    records = generate_zipf_dataset(
        num_records=2_000,
        universe_size=20_000,
        element_exponent=1.15,
        size_exponent=3.0,
        min_record_size=10,
        max_record_size=200,
        seed=7,
    )
    queries, _ids = sample_queries(records, num_queries=32, seed=11)
    index = create_index("gbkmv", records, GBKMVConfig(space_fraction=0.10))

    config = ServingConfig(
        max_batch_size=64,
        max_batch_delay_us=200.0,
        visibility="read-your-writes",
    )
    async with SimilarityService(index, config) as service:
        # --- a burst of concurrent searches fuses into few engine calls
        print("=== Concurrent searches, micro-batched ===")
        results = await asyncio.gather(
            *(service.search(query, threshold=0.5) for query in queries)
        )
        stats = service.stats()
        print(f"  {stats.batcher.requests} requests answered in "
              f"{stats.batcher.batches} engine calls "
              f"(mean batch size {stats.batcher.mean_batch_size:.1f})")
        total_hits = sum(len(hits) for hits in results)
        print(f"  {total_hits} hits above threshold 0.5 across the burst")
        print()

        # --- writes coalesce, and read-your-writes means no query misses them
        print("=== Write coalescing under read-your-writes ===")
        new_id = await service.insert(records[0])
        hits = await service.search(records[0], threshold=0.0)
        visible = any(hit.record_id == new_id for hit in hits)
        print(f"  inserted record got id {new_id}; "
              f"visible to the very next query: {visible}")
        await service.delete(new_id)
        print()

        # --- a small closed-loop run: throughput and tail latency
        print("=== Closed-loop load (16 clients, mixed reads/writes) ===")
        report = await run_closed_loop(
            service,
            queries,
            threshold=0.5,
            num_clients=16,
            requests_per_client=8,
            insert_pool=records[:64],
            write_fraction=0.25,
            top_k_fraction=0.25,
            seed=3,
        )
        print(f"  {report.total_requests} requests at "
              f"{report.throughput_rps:,.0f} req/s "
              f"(p50 {report.latency.p50_ms:.2f} ms, "
              f"p99 {report.latency.p99_ms:.2f} ms)")
        writes = service.stats().writes
        print(f"  write coalescing: {writes.inserts} inserts flushed in "
              f"{writes.insert_batches} bulk ingests")


if __name__ == "__main__":
    asyncio.run(main())
