"""Domain search over open-data-style tables (the LSH Ensemble use case).

The paper's main motivating application (after Zhu et al., VLDB 2016) is
*domain search* over Open Data: given the set of values in a query column,
find published table columns that contain most of those values, i.e. have
high containment C(Q, X) = |Q ∩ X| / |Q|.

This example fabricates a corpus of "columns" (country lists, product
codes, mixed noise) shaped like the COD dataset — few very large domains,
many small ones, heavily reused values — then compares the ``"gbkmv"``
and ``"lsh-ensemble"`` backends of :mod:`repro.api` on the same queries.

Run with::

    python examples/domain_search.py
"""

from __future__ import annotations

import time

from repro.api import (
    GBKMVConfig,
    LSHEnsembleConfig,
    create_index,
    evaluate_search_method,
    exact_result_sets,
    load_proxy,
    sample_queries,
)


def main() -> None:
    print("=== Domain search (Canadian Open Data proxy) ===")
    # A scaled-down proxy of the COD dataset: power-law column sizes with a
    # heavy tail of very large domains (see repro.datasets.proxies).
    columns = load_proxy("COD", scale=0.25, seed=11)
    print(f"  columns: {len(columns)}, "
          f"avg size: {sum(len(set(c)) for c in columns) / len(columns):.0f} values")

    threshold = 0.5
    queries, _source_ids = sample_queries(columns, num_queries=25, seed=3)
    ground_truth = exact_result_sets(columns, queries, threshold)

    print("  building GB-KMV index (10% space budget)...")
    start = time.perf_counter()
    gbkmv = create_index("gbkmv", columns, GBKMVConfig(space_fraction=0.10))
    gbkmv_build = time.perf_counter() - start

    print("  building LSH Ensemble index (256 hash functions, 32 partitions)...")
    start = time.perf_counter()
    lshe = create_index(
        "lsh-ensemble", columns, LSHEnsembleConfig(num_perm=256, num_partitions=32)
    )
    lshe_build = time.perf_counter() - start

    gbkmv_eval = evaluate_search_method("GB-KMV", gbkmv, queries, ground_truth, threshold)
    lshe_eval = evaluate_search_method("LSH-E", lshe, queries, ground_truth, threshold)

    print(f"\n  {'method':8s} {'F1':>6s} {'prec':>6s} {'recall':>6s} "
          f"{'query(ms)':>10s} {'space':>7s} {'build(s)':>9s}")
    for evaluation, build_seconds in ((gbkmv_eval, gbkmv_build), (lshe_eval, lshe_build)):
        print(
            f"  {evaluation.method:8s} {evaluation.accuracy.f1:6.3f} "
            f"{evaluation.accuracy.precision:6.3f} {evaluation.accuracy.recall:6.3f} "
            f"{evaluation.avg_query_seconds * 1e3:10.2f} "
            f"{evaluation.space_fraction:7.1%} {build_seconds:9.2f}"
        )

    print("\n  Example: the 3 best-matching domains for the first query column")
    for hit in gbkmv.top_k(queries[0], k=3):
        print(f"    column {hit.record_id:5d}  estimated containment {hit.score:.2f}")


if __name__ == "__main__":
    main()
