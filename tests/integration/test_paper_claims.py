"""Integration tests for the paper's headline comparative claims.

Each test checks the *direction* of a comparison the paper makes (who is
more accurate, who is faster, how the cost model behaves) on synthetic
data shaped like the paper's assumptions.  Exact magnitudes are not
asserted — they depend on scale and hardware — but the orderings are what
the evaluation section is about.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.baselines import LSHEnsembleIndex
from repro.core import GBKMVIndex, choose_buffer_size
from repro.datasets import generate_zipf_dataset, sample_queries
from repro.datasets.powerlaw import element_frequencies, record_sizes
from repro.evaluation import evaluate_search_method, exact_result_sets
from repro.exact import FrequentSetSearcher, PPJoinSearcher


@pytest.fixture(scope="module")
def skewed_records():
    return generate_zipf_dataset(
        num_records=400,
        universe_size=8_000,
        element_exponent=1.15,
        size_exponent=3.0,
        min_record_size=30,
        max_record_size=400,
        seed=21,
    )


@pytest.fixture(scope="module")
def skewed_workload(skewed_records):
    queries, _ = sample_queries(skewed_records, num_queries=20, seed=9)
    truth = exact_result_sets(skewed_records, queries, threshold=0.5)
    return queries, truth


class TestAccuracyClaims:
    def test_gbkmv_f1_beats_lshe_at_matched_space(self, skewed_records, skewed_workload):
        """Figures 7–13: GB-KMV wins the space–accuracy trade-off against LSH-E."""
        queries, truth = skewed_workload
        gbkmv = GBKMVIndex.build(skewed_records, space_fraction=0.1)
        lshe = LSHEnsembleIndex.build(skewed_records, num_perm=64, num_partitions=16)
        gbkmv_eval = evaluate_search_method("GB-KMV", gbkmv, queries, truth, 0.5)
        lshe_eval = evaluate_search_method("LSH-E", lshe, queries, truth, 0.5)
        # LSH-E here is given more space than GB-KMV and still loses on F1.
        assert gbkmv.space_in_values() < lshe.space_in_values()
        assert gbkmv_eval.accuracy.f1 > lshe_eval.accuracy.f1

    def test_lshe_favours_recall_over_precision(self, skewed_records, skewed_workload):
        """Section III-B: the size upper bound makes LSH-E recall-heavy."""
        queries, truth = skewed_workload
        lshe = LSHEnsembleIndex.build(skewed_records, num_perm=64, num_partitions=16)
        evaluation = evaluate_search_method("LSH-E", lshe, queries, truth, 0.5)
        assert evaluation.accuracy.recall > evaluation.accuracy.precision

    def test_gbkmv_precision_beats_lshe(self, skewed_records, skewed_workload):
        queries, truth = skewed_workload
        gbkmv = GBKMVIndex.build(skewed_records, space_fraction=0.1)
        lshe = LSHEnsembleIndex.build(skewed_records, num_perm=64, num_partitions=16)
        gbkmv_eval = evaluate_search_method("GB-KMV", gbkmv, queries, truth, 0.5)
        lshe_eval = evaluate_search_method("LSH-E", lshe, queries, truth, 0.5)
        assert gbkmv_eval.accuracy.precision > lshe_eval.accuracy.precision


class TestCostClaims:
    def test_construction_faster_than_lshe(self, skewed_records):
        """Figure 18: one hash function beats 256 (here 64) in construction time."""
        start = time.perf_counter()
        GBKMVIndex.build(skewed_records, space_fraction=0.1, buffer_size=32)
        gbkmv_seconds = time.perf_counter() - start
        start = time.perf_counter()
        LSHEnsembleIndex.build(skewed_records, num_perm=64, num_partitions=16)
        lshe_seconds = time.perf_counter() - start
        assert gbkmv_seconds < lshe_seconds

    def test_query_time_insensitive_to_record_size(self):
        """Figure 19(b): GB-KMV query time stays flat as records grow, exact methods grow."""
        small_records = generate_zipf_dataset(
            150, 20_000, element_exponent=1.1, size_exponent=0.5,
            min_record_size=50, max_record_size=100, seed=3,
        )
        large_records = generate_zipf_dataset(
            150, 20_000, element_exponent=1.1, size_exponent=0.5,
            min_record_size=1_500, max_record_size=2_000, seed=4,
        )

        def average_query_seconds(index, queries):
            start = time.perf_counter()
            for query in queries:
                index.search(query, 0.5)
            return (time.perf_counter() - start) / len(queries)

        gbkmv_small = GBKMVIndex.build(small_records, space_fraction=0.05, buffer_size=0)
        gbkmv_large = GBKMVIndex.build(large_records, space_fraction=0.05, buffer_size=0)
        exact_small = FrequentSetSearcher(small_records)
        exact_large = FrequentSetSearcher(large_records)

        gbkmv_growth = average_query_seconds(gbkmv_large, large_records[:10]) / max(
            average_query_seconds(gbkmv_small, small_records[:10]), 1e-9
        )
        exact_growth = average_query_seconds(exact_large, large_records[:10]) / max(
            average_query_seconds(exact_small, small_records[:10]), 1e-9
        )
        # Exact methods slow down with record size much faster than GB-KMV.
        assert gbkmv_growth < exact_growth

    def test_ppjoin_prefix_filter_probes_less_than_scancount(self, skewed_records):
        """PPjoin*'s prefix filtering touches fewer posting lists than ScanCount."""
        ppjoin = PPJoinSearcher(skewed_records)
        frequent = FrequentSetSearcher(skewed_records)
        query = skewed_records[0]
        start = time.perf_counter()
        for _ in range(5):
            ppjoin.search(query, 0.9)
        ppjoin_seconds = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(5):
            frequent.search(query, 0.9)
        scancount_seconds = time.perf_counter() - start
        # At high thresholds the prefix is short, so PPjoin should not be
        # dramatically slower; usually it is faster.  Allow generous slack —
        # the point of Fig. 19(b) is GB-KMV vs exact, not PPjoin vs ScanCount.
        assert ppjoin_seconds < scancount_seconds * 3


class TestCostModelClaims:
    def test_cost_model_prefers_buffer_on_skewed_data(self, skewed_records):
        """Figure 5: on skewed data the optimal buffer size is non-zero."""
        sizes = record_sizes(skewed_records)
        freqs = np.array(list(element_frequencies(skewed_records).values()), dtype=float)
        budget = 0.1 * sizes.sum()
        sizing = choose_buffer_size(sizes, freqs, budget)
        assert sizing.buffer_size > 0

    def test_cost_model_choice_is_robust_across_thresholds(self, skewed_records):
        """Figure 5's point, made threshold-robust.

        The model's chosen buffer (with the half-budget guard-rail) should
        (a) beat having no buffer at all at the default threshold, and
        (b) beat an oversized buffer — one eating ~85% of the budget, which
        starves the residual sketch — when accuracy is averaged over a low
        and a high search threshold.
        """
        queries, _ = sample_queries(skewed_records, num_queries=10, seed=2)

        sizes = record_sizes(skewed_records)
        budget = 0.05 * sizes.sum()
        oversized_r = int(budget * 0.85 * 32 / len(skewed_records))
        indexes = {
            "auto": GBKMVIndex.build(skewed_records, space_fraction=0.05),
            "no-buffer": GBKMVIndex.build(skewed_records, space_fraction=0.05, buffer_size=0),
            "oversized": GBKMVIndex.build(
                skewed_records, space_fraction=0.05, buffer_size=oversized_r
            ),
        }
        f1: dict[str, dict[float, float]] = {name: {} for name in indexes}
        for threshold in (0.5, 0.8):
            truth = exact_result_sets(skewed_records, queries, threshold=threshold)
            for name, index in indexes.items():
                evaluation = evaluate_search_method(name, index, queries, truth, threshold)
                f1[name][threshold] = evaluation.accuracy.f1

        assert f1["auto"][0.5] >= f1["no-buffer"][0.5] - 0.10
        # At a starved 5% budget all three configurations sit in a narrow
        # band; the model's (guard-railed) choice must stay competitive with
        # the best of the extremes rather than collapse.
        auto_mean = np.mean(list(f1["auto"].values()))
        best_mean = max(
            np.mean(list(f1[name].values())) for name in ("no-buffer", "oversized")
        )
        assert auto_mean >= best_mean - 0.15
        assert auto_mean >= 0.5 * best_mean
