"""End-to-end integration tests: dataset → indexes → workload → metrics.

These exercise the same pipeline the benchmark harness uses, on a small
skewed dataset, and check that the numbers coming out are sensible and
internally consistent (rather than pinning exact values, which depend on
sketch randomness).
"""

from __future__ import annotations

import pytest

from repro.baselines import GKMVSearchIndex, KMVSearchIndex, LSHEnsembleIndex
from repro.core import GBKMVIndex
from repro.datasets import sample_queries
from repro.evaluation import evaluate_search_method, exact_result_sets
from repro.evaluation.harness import run_experiment


@pytest.fixture(scope="module")
def workload(zipf_records):
    queries, _ids = sample_queries(zipf_records, num_queries=25, seed=3)
    truth = exact_result_sets(zipf_records, queries, threshold=0.5)
    return queries, truth


class TestFullPipeline:
    def test_gbkmv_pipeline_produces_reasonable_accuracy(self, zipf_records, workload):
        queries, truth = workload
        index = GBKMVIndex.build(zipf_records, space_fraction=0.1)
        evaluation = evaluate_search_method("GB-KMV", index, queries, truth, threshold=0.5)
        assert evaluation.accuracy.recall > 0.5
        assert evaluation.accuracy.f1 > 0.3
        assert evaluation.avg_query_seconds < 1.0
        assert evaluation.space_fraction <= 0.12

    def test_lshe_pipeline_recall_oriented(self, zipf_records, workload):
        queries, truth = workload
        index = LSHEnsembleIndex.build(zipf_records, num_perm=64, num_partitions=8)
        evaluation = evaluate_search_method("LSH-E", index, queries, truth, threshold=0.5)
        assert evaluation.accuracy.recall > 0.6
        # LSH-E returns unverified candidates: precision trails recall.
        assert evaluation.accuracy.precision <= evaluation.accuracy.recall + 0.05

    def test_run_experiment_compares_methods(self, zipf_records, workload):
        queries, _truth = workload
        results = run_experiment(
            zipf_records,
            queries[:10],
            threshold=0.5,
            methods={
                "GB-KMV": lambda: GBKMVIndex.build(zipf_records, space_fraction=0.1),
                "KMV": lambda: KMVSearchIndex.build(zipf_records, space_fraction=0.1),
            },
        )
        assert set(results) == {"GB-KMV", "KMV"}
        for evaluation in results.values():
            assert 0.0 <= evaluation.accuracy.f1 <= 1.0
            assert evaluation.construction_seconds > 0.0

    def test_gbkmv_beats_plain_kmv_at_equal_space(self, zipf_records, workload):
        """The Figure 6 ordering: GB-KMV ≥ KMV in F1 at the same space budget."""
        queries, truth = workload
        gbkmv = GBKMVIndex.build(zipf_records, space_fraction=0.05)
        kmv = KMVSearchIndex.build(zipf_records, space_fraction=0.05)
        gbkmv_eval = evaluate_search_method("GB-KMV", gbkmv, queries, truth, 0.5)
        kmv_eval = evaluate_search_method("KMV", kmv, queries, truth, 0.5)
        assert gbkmv_eval.accuracy.f1 >= kmv_eval.accuracy.f1 - 0.02

    def test_more_space_does_not_hurt_gbkmv(self, zipf_records, workload):
        queries, truth = workload
        small = GBKMVIndex.build(zipf_records, space_fraction=0.05)
        large = GBKMVIndex.build(zipf_records, space_fraction=0.3)
        small_eval = evaluate_search_method("small", small, queries, truth, 0.5)
        large_eval = evaluate_search_method("large", large, queries, truth, 0.5)
        assert large_eval.accuracy.f1 >= small_eval.accuracy.f1 - 0.05

    def test_gkmv_at_least_as_good_as_kmv(self, zipf_records, workload):
        queries, truth = workload
        gkmv = GKMVSearchIndex.build(zipf_records, space_fraction=0.05)
        kmv = KMVSearchIndex.build(zipf_records, space_fraction=0.05)
        gkmv_eval = evaluate_search_method("G-KMV", gkmv, queries, truth, 0.5)
        kmv_eval = evaluate_search_method("KMV", kmv, queries, truth, 0.5)
        assert gkmv_eval.accuracy.f1 >= kmv_eval.accuracy.f1 - 0.02
