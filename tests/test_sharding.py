"""Sharded backend: routing, bitwise identity, persistence, validation."""

import numpy as np
import pytest

from repro._errors import (
    ConfigurationError,
    EmptyDatasetError,
    SnapshotFormatError,
)
from repro.api import (
    Capabilities,
    GBKMVConfig,
    GKMVConfig,
    KMVConfig,
    SearchResult,
    ShardedConfig,
    SimilarityIndex,
    create_index,
    open_index,
    register_backend,
)
from repro.api.config import IndexConfig
from repro.core.index import GBKMVIndex
from repro.hashing import mix64
from repro.sharding.backend import ShardedIndex
from repro.sharding.executor import ShardExecutor
from repro.sharding.partitioner import routing_tables, shard_of, shards_of

_INNER_CONFIGS = {
    "gbkmv": GBKMVConfig(space_fraction=0.15),
    "gkmv": GKMVConfig(space_fraction=0.15),
    "kmv": KMVConfig(space_fraction=0.15),
}


def _dataset(num_records=400, seed=3):
    rng = np.random.default_rng(seed)
    return [
        list(set(rng.zipf(1.4, size=int(rng.integers(3, 40))).tolist()))
        for _ in range(num_records)
    ]


def _queries(num_queries=12, seed=17):
    rng = np.random.default_rng(seed)
    return [
        list(set(rng.zipf(1.4, size=int(rng.integers(5, 20))).tolist()))
        for _ in range(num_queries)
    ]


def _pairs(results):
    return [(hit.record_id, hit.score) for hit in results]


def assert_identical_workload(expected, actual):
    """Bitwise identity: ids, scores and ordering all equal."""
    assert len(expected) == len(actual)
    for expected_hits, actual_hits in zip(expected, actual):
        assert _pairs(expected_hits) == _pairs(actual_hits)


# ---------------------------------------------------------------- routing
def test_shards_of_matches_scalar_routing():
    ids = np.arange(500, dtype=np.uint64)
    vectorised = shards_of(ids, 7)
    assert vectorised.tolist() == [shard_of(i, 7) for i in range(500)]
    assert vectorised.tolist() == [mix64(i) % 7 for i in range(500)]


def test_routing_tables_are_consistent_and_monotone():
    local_ids, shard_globals = routing_tables(1000, 5)
    seen = set()
    for shard, globals_ in enumerate(shard_globals):
        # Local order is global order within a shard (the merge relies
        # on this for tie-breaking) and local ids are arrival ranks.
        assert np.all(np.diff(globals_) > 0) or globals_.size <= 1
        for local, global_id in enumerate(globals_.tolist()):
            assert shard_of(global_id, 5) == shard
            assert local_ids[global_id] == local
            seen.add(global_id)
    assert seen == set(range(1000))


def test_routing_tables_empty():
    local_ids, shard_globals = routing_tables(0, 3)
    assert local_ids.size == 0
    assert all(globals_.size == 0 for globals_ in shard_globals)


def test_shards_are_reasonably_balanced():
    counts = np.bincount(shards_of(np.arange(100_000, dtype=np.uint64), 8))
    assert counts.min() > 0.8 * counts.max()


# ------------------------------------------------------- bitwise identity
@pytest.mark.parametrize("inner_backend", sorted(_INNER_CONFIGS))
@pytest.mark.parametrize("num_shards", [1, 4])
def test_search_identical_to_unsharded(inner_backend, num_shards):
    records, queries = _dataset(), _queries()
    unsharded = create_index(inner_backend, records, _INNER_CONFIGS[inner_backend])
    sharded = create_index(
        "sharded",
        records,
        ShardedConfig(
            num_shards=num_shards,
            inner_backend=inner_backend,
            inner_config=_INNER_CONFIGS[inner_backend],
        ),
    )
    assert sharded.num_records == unsharded.num_records
    for threshold in (0.0, 0.25, 0.6):
        assert_identical_workload(
            unsharded.search_many(queries, threshold),
            sharded.search_many(queries, threshold),
        )
    assert_identical_workload(
        [unsharded.search(query, 0.3) for query in queries],
        [sharded.search(query, 0.3) for query in queries],
    )
    assert_identical_workload(
        unsharded.top_k_many(queries, 7), sharded.top_k_many(queries, 7)
    )
    assert_identical_workload(
        [unsharded.top_k(query, 7) for query in queries],
        [sharded.top_k(query, 7) for query in queries],
    )


@pytest.mark.parametrize("inner_backend", sorted(_INNER_CONFIGS))
def test_identity_survives_insert_delete_update_compaction(inner_backend):
    records, queries = _dataset(300), _queries()
    config = _INNER_CONFIGS[inner_backend]
    unsharded = create_index(inner_backend, records, config)
    sharded = create_index(
        "sharded",
        records,
        ShardedConfig(num_shards=4, inner_backend=inner_backend, inner_config=config),
    )
    batch = _dataset(80, seed=29)
    assert unsharded.insert(batch[0]) == sharded.insert(batch[0]) == 300
    assert unsharded.insert_many(batch[1:]) == sharded.insert_many(batch[1:])
    # Delete enough records to push the inner stores through compaction.
    for record_id in range(0, 300, 2):
        unsharded.delete(record_id)
        sharded.delete(record_id)
    replacement = _dataset(1, seed=31)[0]
    assert unsharded.update(301, replacement) == sharded.update(301, replacement)
    assert sharded.num_records == unsharded.num_records
    for threshold in (0.0, 0.3):
        assert_identical_workload(
            unsharded.search_many(queries, threshold),
            sharded.search_many(queries, threshold),
        )
    assert_identical_workload(
        unsharded.top_k_many(queries, 9), sharded.top_k_many(queries, 9)
    )


def test_global_ids_are_sequential_and_deterministic():
    records = _dataset(100)
    sharded = create_index("sharded", records, ShardedConfig(num_shards=3))
    assert sharded.insert_many(_dataset(10, seed=5)) == list(range(100, 110))
    assert sharded.insert(_dataset(1, seed=7)[0]) == 110
    again = create_index("sharded", records, ShardedConfig(num_shards=3))
    queries = _queries()
    assert_identical_workload(
        sharded_static := again.search_many(queries, 0.3),
        create_index("sharded", records, ShardedConfig(num_shards=3)).search_many(
            queries, 0.3
        ),
    )
    assert sharded_static is not None


def test_unknown_ids_raise_under_the_global_id():
    sharded = create_index("sharded", _dataset(50), ShardedConfig(num_shards=4))
    for bad in (-1, 50, 10_000):
        with pytest.raises(ConfigurationError, match="unknown or deleted"):
            sharded.delete(bad)
    sharded.delete(7)
    with pytest.raises(ConfigurationError, match="unknown or deleted record id 7"):
        sharded.delete(7)


def test_insert_many_validates_before_mutating_any_shard():
    sharded = create_index("sharded", _dataset(40), ShardedConfig(num_shards=4))
    with pytest.raises(ConfigurationError, match="empty record"):
        sharded.insert_many([[1, 2], []])
    assert sharded.num_records == 40
    # The global id sequence is untouched by the failed batch.
    assert sharded.insert([9, 9, 7]) == 40


def test_empty_and_single_record_shards():
    records, queries = _dataset(1), _queries()
    unsharded = create_index("gbkmv", records)
    sharded = create_index("sharded", records, ShardedConfig(num_shards=8))
    assert sharded.num_records == 1
    assert_identical_workload(
        unsharded.search_many(queries, 0.0), sharded.search_many(queries, 0.0)
    )
    assert_identical_workload(
        unsharded.top_k_many(queries, 3), sharded.top_k_many(queries, 3)
    )
    # Inserts land in (previously empty) shards and stay searchable.
    new_id = sharded.insert(records[0])
    assert new_id == 1
    hits = sharded.search(records[0], 0.99)
    assert {hit.record_id for hit in hits} == {0, 1}


def test_empty_dataset_rejected():
    with pytest.raises(EmptyDatasetError):
        create_index("sharded", [], ShardedConfig(num_shards=2))


def test_search_accepts_generator_queries():
    records = _dataset(60)
    sharded = create_index("sharded", records, ShardedConfig(num_shards=4))
    unsharded = create_index("gbkmv", records)
    query = records[3]
    assert _pairs(sharded.search(iter(query), 0.5)) == _pairs(
        unsharded.search(query, 0.5)
    )


# ------------------------------------------------------------- persistence
def test_sharded_snapshot_round_trip(tmp_path):
    records, queries = _dataset(200), _queries()
    sharded = create_index("sharded", records, ShardedConfig(num_shards=4))
    sharded.insert_many(_dataset(20, seed=23))
    sharded.delete(5)
    path = tmp_path / "sharded.npz"  # a directory despite the name
    sharded.save(path)
    assert path.is_dir()
    assert (path / "manifest.json").exists()
    restored = open_index(path)
    assert isinstance(restored, ShardedIndex)
    assert restored.num_shards == 4
    assert restored.inner_backend == "gbkmv"
    assert restored.num_records == sharded.num_records
    assert_identical_workload(
        sharded.search_many(queries, 0.3), restored.search_many(queries, 0.3)
    )
    assert_identical_workload(
        sharded.top_k_many(queries, 5), restored.top_k_many(queries, 5)
    )


def test_sharded_snapshot_mmap_round_trip_supports_mutation(tmp_path):
    records, queries = _dataset(150), _queries()
    sharded = create_index("sharded", records, ShardedConfig(num_shards=3))
    path = tmp_path / "snapshot"
    sharded.save(path)
    mapped = open_index(path, mmap=True)
    assert isinstance(mapped, ShardedIndex)
    assert_identical_workload(
        sharded.search_many(queries, 0.3), mapped.search_many(queries, 0.3)
    )
    # Mutations must work on a memory-mapped index: tombstones are
    # loaded eagerly and value/signature mutations materialise copies.
    new_id = mapped.insert([1, 2, 3, 4])
    assert new_id == 150
    mapped.delete(new_id)
    mapped.delete(0)
    sharded.delete(0)
    assert_identical_workload(
        sharded.search_many(queries, 0.3), mapped.search_many(queries, 0.3)
    )


def test_sharded_load_rejects_foreign_directories(tmp_path):
    with pytest.raises(SnapshotFormatError):
        open_index(tmp_path)  # no manifest at all
    (tmp_path / "manifest.json").write_text("{not json", encoding="utf-8")
    with pytest.raises(SnapshotFormatError):
        open_index(tmp_path)
    (tmp_path / "manifest.json").write_text('{"format": "other"}', encoding="utf-8")
    with pytest.raises(SnapshotFormatError):
        open_index(tmp_path)


def test_gbkmv_directory_snapshot_and_mmap(tmp_path):
    records, queries = _dataset(120), _queries()
    index = create_index("gbkmv", records, GBKMVConfig(space_fraction=0.2))
    path = tmp_path / "gbkmv-dir"
    index.save(path, layout="dir")
    assert (path / "manifest.json").exists()
    for mmap in (False, True):
        restored = open_index(path, mmap=mmap)
        assert isinstance(restored, GBKMVIndex)
        assert_identical_workload(
            index.search_many(queries, 0.3), restored.search_many(queries, 0.3)
        )
        restored.delete(0)  # tombstones stay writable under mmap
        assert restored.num_records == index.num_records - 1


def test_gbkmv_npz_snapshot_cannot_mmap(tmp_path):
    index = create_index("gbkmv", _dataset(30))
    path = tmp_path / "flat.npz"
    index.save(path)
    with pytest.raises(ConfigurationError, match="directory snapshot"):
        GBKMVIndex.load(path, mmap=True)
    with pytest.raises(ConfigurationError, match="directory snapshot"):
        open_index(path, mmap=True)


def test_gbkmv_unknown_layout_rejected(tmp_path):
    index = create_index("gbkmv", _dataset(10))
    with pytest.raises(ConfigurationError, match="layout"):
        index.save(tmp_path / "x", layout="tar")


def test_mmap_rejected_for_backends_without_support(tmp_path):
    index = create_index("kmv", _dataset(30), KMVConfig())
    path = tmp_path / "kmv.npz"
    index.save(path)
    with pytest.raises(ConfigurationError, match="memory-mapped"):
        open_index(path, mmap=True)


def test_gkmv_directory_snapshot_dispatches_to_wrapper(tmp_path):
    records, queries = _dataset(100), _queries()
    index = create_index("gkmv", records, GKMVConfig(space_fraction=0.2))
    path = tmp_path / "gkmv-dir"
    index.save(path, layout="dir")
    restored = open_index(path, mmap=True)
    assert type(restored).__name__ == "GKMVSearchIndex"
    assert_identical_workload(
        index.search_many(queries, 0.3), restored.search_many(queries, 0.3)
    )


# -------------------------------------------------------------- validation
def test_config_validation():
    records = _dataset(20)
    with pytest.raises(ConfigurationError, match="num_shards"):
        create_index("sharded", records, ShardedConfig(num_shards=0))
    with pytest.raises(ConfigurationError, match="nest"):
        create_index("sharded", records, ShardedConfig(inner_backend="sharded"))
    with pytest.raises(ConfigurationError, match="not dynamic"):
        create_index("sharded", records, ShardedConfig(inner_backend="brute-force"))
    with pytest.raises(ConfigurationError, match="expects a"):
        create_index("sharded", records, GBKMVConfig())
    with pytest.raises(ConfigurationError, match="expects a"):
        create_index(
            "sharded", records, ShardedConfig(inner_config=KMVConfig())
        )  # gbkmv inner with a kmv config


def test_capabilities_mirror_inner_backend():
    sharded = create_index("sharded", _dataset(30), ShardedConfig(num_shards=2))
    assert sharded.capabilities.dynamic
    assert sharded.capabilities.batched
    assert sharded.capabilities.persistent
    assert not sharded.capabilities.exact
    assert sharded.capabilities.scored


# ------------------------------------------- generic dynamic inner backends
class _ToySetBackend(SimilarityIndex):
    """Minimal dynamic exact backend used to exercise the generic planner."""

    backend_id = "toy-dynamic"
    config_type = IndexConfig
    capabilities = Capabilities(
        dynamic=True, batched=False, persistent=False, exact=True, scored=True
    )

    def __init__(self):
        self._records = []

    @classmethod
    def from_records(cls, records, config=None):
        cls.resolve_config(config)
        materialized = [set(record) for record in records]
        if not materialized:
            raise EmptyDatasetError("cannot build an index over an empty dataset")
        if any(not record for record in materialized):
            raise ConfigurationError("records must be non-empty sets of elements")
        index = cls()
        index._records = materialized
        return index

    def insert(self, record):
        materialized = set(record)
        if not materialized:
            raise ConfigurationError("cannot insert an empty record")
        self._records.append(materialized)
        return len(self._records) - 1

    def delete(self, record_id):
        record_id = int(record_id)
        if not 0 <= record_id < len(self._records) or self._records[record_id] is None:
            raise ConfigurationError(f"unknown or deleted record id {record_id}")
        self._records[record_id] = None

    def update(self, record_id, record):
        record_id = int(record_id)
        if not 0 <= record_id < len(self._records) or self._records[record_id] is None:
            raise ConfigurationError(f"unknown or deleted record id {record_id}")
        self._records[record_id] = set(record)
        return record_id

    def search(self, query, threshold, query_size=None):
        query = set(query)
        size = len(query) if query_size is None else int(query_size)
        hits = [
            SearchResult(record_id, len(query & record) / size)
            for record_id, record in enumerate(self._records)
            if record is not None and len(query & record) / size >= threshold
        ]
        hits.sort(key=lambda hit: (-hit.score, hit.record_id))
        return hits

    @property
    def num_records(self):
        return sum(1 for record in self._records if record is not None)


def test_generic_dynamic_backend_shards_exactly():
    register_backend(_ToySetBackend)
    records, queries = _dataset(120), _queries()
    unsharded = _ToySetBackend.from_records(records)
    sharded = create_index(
        "sharded", records, ShardedConfig(num_shards=4, inner_backend="toy-dynamic")
    )
    # Exact backends have no dataset-global parameters, so even the
    # generic planner path reproduces the unsharded results verbatim.
    assert_identical_workload(
        unsharded.search_many(queries, 0.3), sharded.search_many(queries, 0.3)
    )
    assert sharded.insert(records[0]) == 120
    unsharded.insert(records[0])
    sharded.delete(3)
    unsharded.delete(3)
    assert_identical_workload(
        unsharded.search_many(queries, 0.3), sharded.search_many(queries, 0.3)
    )
    # Not persistent: the instance capabilities say so and save refuses.
    assert not sharded.capabilities.persistent
    with pytest.raises(Exception, match="not persistent"):
        sharded.save("nowhere")


def test_generic_backend_rejects_empty_shards():
    register_backend(_ToySetBackend)
    with pytest.raises(ConfigurationError, match="empty"):
        create_index(
            "sharded",
            _dataset(1),
            ShardedConfig(num_shards=8, inner_backend="toy-dynamic"),
        )


# ------------------------------------------------------- parallel build
def _shard_state(shard):
    """A shard's sketch state as comparable arrays, per inner backend."""
    if isinstance(shard, GBKMVIndex):
        return shard.store.state_arrays()
    inner = getattr(shard, "inner", None)
    if isinstance(inner, GBKMVIndex):
        return inner.store.state_arrays()
    # KMV baseline: the value rows and record sizes are the state.
    return {
        "rows": shard._value_rows,
        "record_sizes": np.asarray(shard._record_sizes),
    }


def assert_identical_shard_states(expected, actual):
    assert expected.num_shards == actual.num_shards
    for expected_shard, actual_shard in zip(expected.shards, actual.shards):
        expected_state = _shard_state(expected_shard)
        actual_state = _shard_state(actual_shard)
        assert expected_state.keys() == actual_state.keys()
        for name in expected_state:
            expected_value = expected_state[name]
            if isinstance(expected_value, list):
                assert len(expected_value) == len(actual_state[name])
                for left, right in zip(expected_value, actual_state[name]):
                    assert np.array_equal(left, right), name
            else:
                assert np.array_equal(expected_value, actual_state[name]), name


@pytest.mark.parametrize("inner_backend", ["gbkmv", "gkmv", "kmv"])
@pytest.mark.parametrize("num_shards", [1, 3, 8])
def test_parallel_build_identical_to_serial(inner_backend, num_shards):
    records = _dataset()
    queries = _queries()
    serial = create_index(
        "sharded",
        records,
        ShardedConfig(
            num_shards=num_shards,
            inner_backend=inner_backend,
            inner_config=_INNER_CONFIGS[inner_backend],
            build_workers=1,
        ),
    )
    parallel = create_index(
        "sharded",
        records,
        ShardedConfig(
            num_shards=num_shards,
            inner_backend=inner_backend,
            inner_config=_INNER_CONFIGS[inner_backend],
            build_workers=3,
        ),
    )
    try:
        assert_identical_shard_states(serial, parallel)
        assert_identical_workload(
            serial.search_many(queries, 0.5), parallel.search_many(queries, 0.5)
        )
    finally:
        serial.close()
        parallel.close()


@pytest.mark.parametrize("inner_backend", ["gbkmv", "kmv"])
def test_process_pool_build_identical_to_serial(inner_backend):
    records = _dataset(num_records=120)
    queries = _queries()
    serial = create_index(
        "sharded",
        records,
        ShardedConfig(
            num_shards=4,
            inner_backend=inner_backend,
            inner_config=_INNER_CONFIGS[inner_backend],
            build_workers=1,
        ),
    )
    process = create_index(
        "sharded",
        records,
        ShardedConfig(
            num_shards=4,
            inner_backend=inner_backend,
            inner_config=_INNER_CONFIGS[inner_backend],
            build_workers=2,
            build_executor="process",
        ),
    )
    try:
        assert_identical_shard_states(serial, process)
        assert_identical_workload(
            serial.search_many(queries, 0.5), process.search_many(queries, 0.5)
        )
    finally:
        serial.close()
        process.close()


def test_parallel_build_identical_to_unsharded_gbkmv():
    records = _dataset()
    queries = _queries()
    unsharded = GBKMVIndex.from_records(records, config=_INNER_CONFIGS["gbkmv"])
    sharded = create_index(
        "sharded",
        records,
        ShardedConfig(
            num_shards=5,
            inner_backend="gbkmv",
            inner_config=_INNER_CONFIGS["gbkmv"],
            build_workers=3,
        ),
    )
    try:
        assert_identical_workload(
            unsharded.search_many(queries, 0.5),
            sharded.search_many(queries, 0.5),
        )
    finally:
        sharded.close()


def test_build_profile_rows_sum_to_dataset_size():
    records = _dataset()
    index = create_index(
        "sharded",
        records,
        ShardedConfig(num_shards=4, inner_backend="gbkmv", build_workers=3),
    )
    try:
        profile = index.last_build_profile
        assert profile is not None
        seconds = profile.stage_seconds()
        assert {"flatten", "vocabulary", "sketch", "append"} <= set(seconds)
        assert all(value >= 0.0 for value in seconds.values())
        rows = profile.stage_rows()
        assert rows["flatten"] == len(records)
        # Per-shard sketch/append recordings sum back to the dataset.
        assert rows["sketch"] == len(records)
        assert rows["append"] == len(records)
    finally:
        index.close()


def test_invalid_build_executor_rejected():
    with pytest.raises(ConfigurationError, match="executor kind"):
        create_index(
            "sharded",
            _dataset(num_records=20),
            ShardedConfig(num_shards=2, build_executor="fiber"),
        )


# ------------------------------------------------------- executor
def test_executor_runs_inline_on_one_worker():
    executor = ShardExecutor(4, max_workers=1)
    assert executor.workers == 1
    assert executor.map(lambda item: item * 2, [1, 2, 3]) == [2, 4, 6]
    # Inline execution never materialises a pool.
    assert executor._pool is None
    executor.close()


def test_executor_honours_oversubscription_guard():
    executor = ShardExecutor(8, max_workers=3)
    try:
        assert executor.workers == 3
        assert executor.map(lambda item: item + 1, list(range(8))) == list(
            range(1, 9)
        )
    finally:
        executor.close()


def test_executor_caps_workers_at_shard_count():
    executor = ShardExecutor(2, max_workers=16)
    assert executor.workers == 2
    executor.close()


def test_executor_rejects_unknown_kind():
    with pytest.raises(ConfigurationError, match="executor kind"):
        ShardExecutor(2, kind="fiber")
