"""Unit tests for the LSH Ensemble baseline (repro.baselines.lsh_ensemble)."""

from __future__ import annotations

import pytest

from repro._errors import ConfigurationError, EmptyDatasetError
from repro.baselines import LSHEnsembleIndex
from repro.baselines.lsh_ensemble import containment_to_jaccard, jaccard_to_containment
from repro.exact import BruteForceSearcher


class TestTransformations:
    def test_equation_12_roundtrip(self):
        for containment in (0.1, 0.3, 0.5, 0.8, 1.0):
            for record_size, query_size in ((10, 5), (100, 50), (7, 21)):
                if containment > record_size / query_size:
                    continue  # infeasible: |Q ∩ X| cannot exceed |X|
                jaccard = containment_to_jaccard(containment, record_size, query_size)
                back = jaccard_to_containment(jaccard, record_size, query_size)
                assert back == pytest.approx(containment, rel=1e-9)

    def test_infeasible_containment_clamps_to_certain_jaccard(self):
        # A containment above |X| / |Q| is impossible; the transform saturates.
        assert containment_to_jaccard(0.8, record_size=7, query_size=21) == 1.0

    def test_intro_example_values(self):
        """The restaurant example of the introduction: t = 1.0 and 0.5."""
        # Q = {five, guys}, X has 9 words, overlap 2 → Jaccard 2/9, containment 1.0.
        assert jaccard_to_containment(2 / 9, record_size=9, query_size=2) == pytest.approx(1.0)
        # Y has 3 words, overlap 1 → Jaccard 1/4, containment 0.5.
        assert jaccard_to_containment(1 / 4, record_size=3, query_size=2) == pytest.approx(0.5)

    def test_upper_bound_lowers_jaccard_threshold(self):
        tight = containment_to_jaccard(0.5, record_size=20, query_size=10)
        loose = containment_to_jaccard(0.5, record_size=200, query_size=10)
        assert loose < tight

    def test_bad_query_size_rejected(self):
        with pytest.raises(ConfigurationError):
            containment_to_jaccard(0.5, 10, 0)
        with pytest.raises(ConfigurationError):
            jaccard_to_containment(0.5, 10, 0)

    def test_clamped_to_unit_interval(self):
        assert 0.0 <= containment_to_jaccard(1.0, 1, 100) <= 1.0


class TestBuild:
    def test_basic_construction(self, zipf_records):
        index = LSHEnsembleIndex.build(zipf_records[:100], num_perm=32, num_partitions=4)
        assert index.num_records == 100
        assert len(index) == 100
        assert index.num_perm == 32
        assert 1 <= index.num_partitions <= 4
        assert index.construction_seconds > 0.0

    def test_partitions_are_equal_depth_and_ordered(self, zipf_records):
        index = LSHEnsembleIndex.build(zipf_records[:120], num_perm=16, num_partitions=4)
        bounds = index.partition_bounds()
        # Partition upper bounds must not decrease (records sorted by size).
        uppers = [upper for _lower, upper in bounds]
        assert uppers == sorted(uppers)
        lowers = [lower for lower, _upper in bounds]
        assert lowers == sorted(lowers)

    def test_space_accounting(self, zipf_records):
        index = LSHEnsembleIndex.build(zipf_records[:50], num_perm=32, num_partitions=4)
        assert index.space_in_values() == 32 * 50
        assert index.space_fraction() > 0.0

    def test_empty_dataset_rejected(self):
        with pytest.raises(EmptyDatasetError):
            LSHEnsembleIndex.build([], num_perm=16)

    def test_empty_record_rejected(self):
        with pytest.raises(ConfigurationError):
            LSHEnsembleIndex.build([["a"], []], num_perm=16)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            LSHEnsembleIndex(num_perm=1)
        with pytest.raises(ConfigurationError):
            LSHEnsembleIndex(num_perm=16, num_partitions=0)

    def test_more_partitions_than_records(self, tiny_records):
        index = LSHEnsembleIndex.build(tiny_records, num_perm=16, num_partitions=32)
        assert index.num_partitions <= len(tiny_records)


class TestSearch:
    def test_high_recall_on_self_queries(self, zipf_records):
        records = zipf_records[:200]
        index = LSHEnsembleIndex.build(records, num_perm=64, num_partitions=8)
        oracle = BruteForceSearcher(records)
        recalls = []
        for query in records[:10]:
            truth = {hit.record_id for hit in oracle.search(query, 0.5)}
            candidates = {hit.record_id for hit in index.search(query, 0.5)}
            if truth:
                recalls.append(len(truth & candidates) / len(truth))
        assert sum(recalls) / len(recalls) > 0.8

    def test_verification_improves_precision(self, zipf_records):
        records = zipf_records[:200]
        index = LSHEnsembleIndex.build(records, num_perm=64, num_partitions=8)
        oracle = BruteForceSearcher(records)
        query = records[0]
        truth = {hit.record_id for hit in oracle.search(query, 0.5)}
        raw = {hit.record_id for hit in index.search(query, 0.5, verify=False)}
        verified = {hit.record_id for hit in index.search(query, 0.5, verify=True)}
        assert verified <= raw
        if raw:
            raw_precision = len(raw & truth) / len(raw)
            verified_precision = len(verified & truth) / max(len(verified), 1)
            assert verified_precision >= raw_precision

    def test_scores_are_one_without_verification(self, tiny_records, example_query):
        index = LSHEnsembleIndex.build(tiny_records, num_perm=16, num_partitions=2)
        for hit in index.search(example_query, 0.5):
            assert hit.score == 1.0

    def test_invalid_threshold_rejected(self, tiny_records, example_query):
        index = LSHEnsembleIndex.build(tiny_records, num_perm=16, num_partitions=2)
        with pytest.raises(ConfigurationError):
            index.search(example_query, threshold=-0.2)

    def test_empty_query_rejected(self, tiny_records):
        index = LSHEnsembleIndex.build(tiny_records, num_perm=16, num_partitions=2)
        with pytest.raises(ConfigurationError):
            index.search([], threshold=0.5)

    def test_query_signature_reusable(self, tiny_records, example_query):
        index = LSHEnsembleIndex.build(tiny_records, num_perm=16, num_partitions=2)
        signature = index.query_signature(example_query)
        assert signature.size == 16


class TestPersistence:
    def test_round_trip_search_identical(self, zipf_records, tmp_path):
        records = zipf_records[:120]
        index = LSHEnsembleIndex.build(records, num_perm=64, num_partitions=8)
        path = tmp_path / "lshe.npz"
        index.save(path)
        loaded = LSHEnsembleIndex.load(path)
        assert loaded.num_records == index.num_records
        assert loaded.num_perm == index.num_perm
        assert loaded.partition_bounds() == index.partition_bounds()
        for query in records[:6]:
            original = [(h.record_id, h.score) for h in index.search(query, 0.5)]
            restored = [(h.record_id, h.score) for h in loaded.search(query, 0.5)]
            assert original == restored

    def test_round_trip_with_verification(self, zipf_records, tmp_path):
        records = zipf_records[:60]
        index = LSHEnsembleIndex.build(records, num_perm=32, num_partitions=4)
        path = tmp_path / "lshe.npz"
        index.save(path)
        loaded = LSHEnsembleIndex.load(path)
        query = records[0]
        original = [(h.record_id, h.score) for h in index.search(query, 0.5, verify=True)]
        restored = [(h.record_id, h.score) for h in loaded.search(query, 0.5, verify=True)]
        assert original == restored

    def test_wrong_snapshot_rejected(self, tiny_records, tmp_path):
        from repro._errors import SnapshotFormatError
        from repro.baselines import AsymmetricMinHashIndex

        other = AsymmetricMinHashIndex.build(tiny_records, num_perm=16)
        path = tmp_path / "amh.npz"
        other.save(path)
        with pytest.raises(SnapshotFormatError):
            LSHEnsembleIndex.load(path)

    def test_verify_default_round_trips(self, zipf_records, tmp_path):
        records = zipf_records[:60]
        index = LSHEnsembleIndex.build(
            records, num_perm=32, num_partitions=4, verify=True
        )
        assert index.verify_default
        path = tmp_path / "lshe.npz"
        index.save(path)
        loaded = LSHEnsembleIndex.load(path)
        assert loaded.verify_default
        query = records[0]
        # Default-mode search must verify on both sides (scored hits).
        original = [(h.record_id, h.score) for h in index.search(query, 0.5)]
        restored = [(h.record_id, h.score) for h in loaded.search(query, 0.5)]
        assert original == restored
        assert original == [
            (h.record_id, h.score) for h in index.search(query, 0.5, verify=True)
        ]
