"""Tests for the columnar sketch store and its vectorised kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro._errors import ConfigurationError
from repro.core.store import (
    BITS_PER_WORD,
    ColumnarSketchStore,
    mask_to_words,
    words_to_mask,
)


def _store_with_rows(rows, signature_bits=8):
    store = ColumnarSketchStore(signature_bits=signature_bits)
    for values, mask, residual_size, record_size in rows:
        store.append(
            np.asarray(values, dtype=np.float64),
            mask,
            residual_size,
            record_size,
        )
    return store


class TestMaskPacking:
    def test_round_trip_single_word(self):
        mask = 0b1011_0001
        assert words_to_mask(mask_to_words(mask, 1)) == mask

    def test_round_trip_multi_word(self):
        mask = (1 << 130) | (1 << 64) | 0b101
        words = mask_to_words(mask, 3)
        assert words.shape == (3,)
        assert words_to_mask(words) == mask

    def test_mask_beyond_width_rejected(self):
        with pytest.raises(ConfigurationError):
            mask_to_words(1 << BITS_PER_WORD, 1)

    def test_negative_mask_rejected(self):
        with pytest.raises(ConfigurationError):
            mask_to_words(-1, 1)


class TestAppendAndAccess:
    def test_rows_survive_compaction(self):
        rows = [
            ([0.1, 0.2], 0b01, 3, 5),
            ([], 0b10, 0, 2),
            ([0.05, 0.3, 0.4], 0b11, 3, 7),
        ]
        store = _store_with_rows(rows)
        store.finalize()
        for record_id, (values, mask, residual_size, record_size) in enumerate(rows):
            assert store.row_values(record_id).tolist() == values
            assert store.mask_int(record_id) == mask
            assert store.residual_record_size(record_id) == residual_size
            assert store.record_size(record_id) == record_size

    def test_staged_rows_accessible_before_finalize(self):
        store = _store_with_rows([([0.1], 0b1, 1, 2)])
        store.finalize()
        store.append(np.array([0.2, 0.9]), 0b10, 2, 4)
        assert store.num_records == 2
        assert store.row_values(1).tolist() == [0.2, 0.9]
        assert store.mask_int(1) == 0b10
        assert store.record_size(1) == 4

    def test_offsets_are_csr(self):
        store = _store_with_rows(
            [([0.1, 0.2], 0, 2, 2), ([], 0, 0, 1), ([0.3], 0, 1, 1)]
        )
        assert store.offsets.tolist() == [0, 2, 2, 3]
        assert store.values.tolist() == [0.1, 0.2, 0.3]
        assert store.row_sizes.tolist() == [2, 0, 1]

    def test_row_max_and_exact(self):
        store = _store_with_rows(
            [([0.1, 0.5], 0, 2, 3), ([], 0, 4, 4), ([0.2], 0, 1, 1)]
        )
        assert store.row_max.tolist() == [0.5, 0.0, 0.2]
        assert store.row_exact.tolist() == [True, False, True]


class TestInvalidation:
    def test_append_after_finalize_invalidates_caches(self):
        store = _store_with_rows([([0.1, 0.4], 0b1, 2, 2)])
        store.finalize()
        first = store.intersection_counts(np.array([0.1]))
        assert first.tolist() == [1]
        store.append(np.array([0.1, 0.2]), 0b1, 2, 3)
        second = store.intersection_counts(np.array([0.1]))
        assert second.tolist() == [1, 1]
        assert store.signature_overlap(0b1).tolist() == [1, 1]

    def test_truncate_drops_values_above_threshold(self):
        store = _store_with_rows(
            [([0.1, 0.4, 0.8], 0, 3, 3), ([0.5, 0.9], 0, 2, 2), ([], 0, 0, 1)]
        )
        store.finalize()
        store.truncate_values(0.45)
        assert store.values.tolist() == [0.1, 0.4]
        assert store.offsets.tolist() == [0, 2, 2, 2]
        assert store.intersection_counts(np.array([0.4, 0.5])).tolist() == [1, 0, 0]


class TestKernels:
    def test_intersection_counts_matches_python_sets(self):
        rng = np.random.default_rng(3)
        rows = []
        for _ in range(40):
            values = np.unique(rng.random(rng.integers(0, 12)))
            rows.append((values, 0, values.size, values.size))
        store = _store_with_rows(rows, signature_bits=0)
        query = np.unique(
            np.concatenate([rows[4][0], rows[9][0], rng.random(5)])
        )
        counts = store.intersection_counts(query)
        joined = store.intersection_counts_join(query)
        expected = [
            len(set(values.tolist()) & set(query.tolist()))
            for values, *_rest in rows
        ]
        assert counts.tolist() == expected
        assert joined.tolist() == expected

    def test_signature_overlap_matches_bit_counting(self):
        rng = np.random.default_rng(11)
        masks = [int(rng.integers(0, 2**20)) for _ in range(30)]
        rows = [([], mask, 0, 1) for mask in masks]
        store = _store_with_rows(rows, signature_bits=20)
        query_mask = int(rng.integers(0, 2**20))
        overlap = store.signature_overlap(query_mask)
        expected = [(mask & query_mask).bit_count() for mask in masks]
        assert overlap.tolist() == expected

    def test_signature_overlap_many_matches_single(self):
        rng = np.random.default_rng(13)
        width = 70  # force two words
        masks = [int(rng.integers(0, 2**63)) | (1 << 69) for _ in range(25)]
        rows = [([], mask, 0, 1) for mask in masks]
        store = _store_with_rows(rows, signature_bits=width)
        query_masks = [int(rng.integers(0, 2**63)), (1 << 69) | 0b1, 0]
        many = store.signature_overlap_many(query_masks)
        for row, query_mask in enumerate(query_masks):
            assert many[row].tolist() == store.signature_overlap(query_mask).tolist()

    def test_intersection_counts_many_matches_single(self):
        rng = np.random.default_rng(17)
        rows = []
        for _ in range(25):
            values = np.unique(rng.random(rng.integers(0, 9)))
            rows.append((values, 0, values.size, values.size))
        store = _store_with_rows(rows, signature_bits=0)
        queries = [np.unique(rng.random(6)), rows[3][0], np.empty(0)]
        many = store.intersection_counts_many(queries)
        for row, query in enumerate(queries):
            assert many[row].tolist() == store.intersection_counts(query).tolist()

    def test_empty_store_kernels(self):
        store = ColumnarSketchStore(signature_bits=4)
        assert store.intersection_counts(np.array([0.5])).size == 0
        assert store.signature_overlap(0b1).size == 0
        assert store.signature_overlap_many([0b1]).shape == (1, 0)
