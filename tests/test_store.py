"""Tests for the columnar sketch store and its vectorised kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro._errors import ConfigurationError
from repro.core.store import (
    BITS_PER_WORD,
    ColumnarSketchStore,
    mask_to_words,
    words_to_mask,
)


def _store_with_rows(rows, signature_bits=8):
    store = ColumnarSketchStore(signature_bits=signature_bits)
    for values, mask, residual_size, record_size in rows:
        store.append(
            np.asarray(values, dtype=np.float64),
            mask,
            residual_size,
            record_size,
        )
    return store


class TestMaskPacking:
    def test_round_trip_single_word(self):
        mask = 0b1011_0001
        assert words_to_mask(mask_to_words(mask, 1)) == mask

    def test_round_trip_multi_word(self):
        mask = (1 << 130) | (1 << 64) | 0b101
        words = mask_to_words(mask, 3)
        assert words.shape == (3,)
        assert words_to_mask(words) == mask

    def test_mask_beyond_width_rejected(self):
        with pytest.raises(ConfigurationError):
            mask_to_words(1 << BITS_PER_WORD, 1)

    def test_negative_mask_rejected(self):
        with pytest.raises(ConfigurationError):
            mask_to_words(-1, 1)


class TestAppendAndAccess:
    def test_rows_survive_compaction(self):
        rows = [
            ([0.1, 0.2], 0b01, 3, 5),
            ([], 0b10, 0, 2),
            ([0.05, 0.3, 0.4], 0b11, 3, 7),
        ]
        store = _store_with_rows(rows)
        store.finalize()
        for record_id, (values, mask, residual_size, record_size) in enumerate(rows):
            assert store.row_values(record_id).tolist() == values
            assert store.mask_int(record_id) == mask
            assert store.residual_record_size(record_id) == residual_size
            assert store.record_size(record_id) == record_size

    def test_staged_rows_accessible_before_finalize(self):
        store = _store_with_rows([([0.1], 0b1, 1, 2)])
        store.finalize()
        store.append(np.array([0.2, 0.9]), 0b10, 2, 4)
        assert store.num_records == 2
        assert store.row_values(1).tolist() == [0.2, 0.9]
        assert store.mask_int(1) == 0b10
        assert store.record_size(1) == 4

    def test_offsets_are_csr(self):
        store = _store_with_rows(
            [([0.1, 0.2], 0, 2, 2), ([], 0, 0, 1), ([0.3], 0, 1, 1)]
        )
        assert store.offsets.tolist() == [0, 2, 2, 3]
        assert store.values.tolist() == [0.1, 0.2, 0.3]
        assert store.row_sizes.tolist() == [2, 0, 1]

    def test_row_max_and_exact(self):
        store = _store_with_rows(
            [([0.1, 0.5], 0, 2, 3), ([], 0, 4, 4), ([0.2], 0, 1, 1)]
        )
        assert store.row_max.tolist() == [0.5, 0.0, 0.2]
        assert store.row_exact.tolist() == [True, False, True]


class TestInvalidation:
    def test_append_after_finalize_invalidates_caches(self):
        store = _store_with_rows([([0.1, 0.4], 0b1, 2, 2)])
        store.finalize()
        first = store.intersection_counts(np.array([0.1]))
        assert first.tolist() == [1]
        store.append(np.array([0.1, 0.2]), 0b1, 2, 3)
        second = store.intersection_counts(np.array([0.1]))
        assert second.tolist() == [1, 1]
        assert store.signature_overlap(0b1).tolist() == [1, 1]

    def test_truncate_drops_values_above_threshold(self):
        store = _store_with_rows(
            [([0.1, 0.4, 0.8], 0, 3, 3), ([0.5, 0.9], 0, 2, 2), ([], 0, 0, 1)]
        )
        store.finalize()
        store.truncate_values(0.45)
        assert store.values.tolist() == [0.1, 0.4]
        assert store.offsets.tolist() == [0, 2, 2, 2]
        assert store.intersection_counts(np.array([0.4, 0.5])).tolist() == [1, 0, 0]


def _random_rows(rng, count, max_len=12):
    rows = []
    for _ in range(count):
        values = np.unique(rng.random(rng.integers(0, max_len)))
        rows.append((values, 0, values.size, values.size))
    return rows


class TestIncrementalMerge:
    def test_merge_matches_from_scratch_rebuild(self):
        rng = np.random.default_rng(23)
        rows = _random_rows(rng, 60)
        incremental = _store_with_rows(rows[:40], signature_bits=0)
        incremental.finalize()  # seal the base segment
        for values, mask, residual, size in rows[40:]:
            incremental.append(values, mask, residual, size)
        incremental.finalize()  # two-run merge of the tail

        scratch = _store_with_rows(rows, signature_bits=0)
        scratch.finalize()  # one from-scratch sort

        query = np.unique(np.concatenate([rows[5][0], rows[45][0], rng.random(4)]))
        assert (
            incremental.intersection_counts_join(query).tolist()
            == scratch.intersection_counts_join(query).tolist()
        )
        assert incremental.row_max.tolist() == scratch.row_max.tolist()
        assert incremental.row_exact.tolist() == scratch.row_exact.tolist()
        # The merged join index is exactly what the stable re-sort builds.
        assert incremental._sorted_values.tolist() == scratch._sorted_values.tolist()
        assert incremental._sorted_rows.tolist() == scratch._sorted_rows.tolist()

    def test_interleaved_append_search_stays_correct(self):
        rng = np.random.default_rng(29)
        rows = _random_rows(rng, 10)
        store = _store_with_rows(rows[:4], signature_bits=0)
        for position, (values, mask, residual, size) in enumerate(rows[4:], start=4):
            store.append(values, mask, residual, size)
            query = rows[position][0]
            expected = [
                len(set(v.tolist()) & set(query.tolist()))
                for v, *_rest in rows[: position + 1]
            ]
            assert store.intersection_counts_join(query).tolist() == expected

    def test_rebuild_mode_matches_incremental(self):
        rng = np.random.default_rng(31)
        rows = _random_rows(rng, 30)
        merged = ColumnarSketchStore(signature_bits=0, incremental_merge=True)
        resorted = ColumnarSketchStore(signature_bits=0, incremental_merge=False)
        for store in (merged, resorted):
            for values, mask, residual, size in rows[:20]:
                store.append(values, mask, residual, size)
            store.finalize()
            for values, mask, residual, size in rows[20:]:
                store.append(values, mask, residual, size)
        query = np.unique(np.concatenate([rows[25][0], rng.random(5)]))
        assert (
            merged.intersection_counts_join(query).tolist()
            == resorted.intersection_counts_join(query).tolist()
        )


class TestDeletes:
    def test_delete_tombstones_without_moving_rows(self):
        store = _store_with_rows(
            [([0.1, 0.2], 0b01, 2, 3), ([0.3], 0b10, 1, 2), ([0.5], 0b11, 1, 1)],
            signature_bits=2,
        )
        store.finalize()
        store.delete(1)
        assert store.num_rows == 3
        assert store.num_records == 2
        assert store.alive_rows.tolist() == [True, False, True]
        assert store.live_record_ids().tolist() == [0, 2]
        assert 1 not in store

    def test_delete_unknown_or_double_raises(self):
        store = _store_with_rows([([0.1], 0, 1, 1)])
        with pytest.raises(ConfigurationError):
            store.delete(7)
        store.delete(0)
        with pytest.raises(ConfigurationError):
            store.delete(0)

    def test_delete_staged_row(self):
        store = _store_with_rows([([0.1], 0, 1, 1)])
        store.finalize()
        new_id = store.append(np.array([0.2, 0.4]), 0, 2, 2)
        store.delete(new_id)  # still in the tail segment
        assert store.num_records == 1
        assert store.total_values == 1

    def test_deleted_values_leave_space_accounting(self):
        store = _store_with_rows([([0.1, 0.2], 0, 2, 2), ([0.3, 0.4, 0.5], 0, 3, 3)])
        assert store.total_values == 5
        store.delete(1)
        assert store.total_values == 2

    def test_replace_keeps_id_and_changes_values(self):
        store = _store_with_rows([([0.1, 0.2], 0b1, 2, 2), ([0.3], 0b0, 1, 1)])
        store.finalize()
        returned = store.replace(0, np.array([0.7]), 0b0, 1, 1)
        assert returned == 0
        assert store.row_values(0).tolist() == [0.7]
        assert store.num_records == 2
        counts = store.intersection_counts_join(np.array([0.7]))
        row_ids, alive = store.result_view()
        if alive is None:  # the replace may have triggered auto-compaction
            alive = np.ones(counts.size, dtype=bool)
        live_counts = {
            int(row_ids[row]): int(counts[row])
            for row in np.nonzero(alive)[0]
        }
        assert live_counts == {0: 1, 1: 0}

    def test_compaction_drops_dead_rows_and_preserves_ids(self):
        rng = np.random.default_rng(37)
        rows = _random_rows(rng, 20)
        store = _store_with_rows(rows, signature_bits=0)
        store.finalize()
        for record_id in range(0, 20, 2):
            store.delete(record_id)
        store.finalize()  # 50% dead >= compact_ratio -> physical compaction
        assert store.num_dead == 0
        assert store.num_rows == 10
        assert store.live_record_ids().tolist() == list(range(1, 20, 2))
        # Searches keep answering under the surviving ids.
        query = rows[3][0]
        counts = store.intersection_counts_join(query)
        row_ids, _alive = store.result_view()
        by_id = dict(zip(row_ids.tolist(), counts.tolist()))
        expected = {
            record_id: len(set(rows[record_id][0].tolist()) & set(query.tolist()))
            for record_id in range(1, 20, 2)
        }
        assert by_id == expected

    def test_append_after_compaction_continues_ids(self):
        store = _store_with_rows(
            [([0.1], 0, 1, 1), ([0.2], 0, 1, 1), ([0.3], 0, 1, 1), ([0.4], 0, 1, 1)]
        )
        store.delete(0)
        store.delete(2)
        store.compact_tombstones()
        new_id = store.append(np.array([0.9]), 0, 1, 1)
        assert new_id == 4
        assert store.live_record_ids().tolist() == [1, 3, 4]


class TestTruncateInsertRegression:
    def test_truncate_then_insert_then_search_matches_fresh_store(self):
        """Regression for the incremental-merge invalidation logic: a
        truncate (which prefix-filters the join index) followed by an
        insert (which two-run-merges into it) must leave the store
        answering exactly like one built from the final rows directly."""
        rng = np.random.default_rng(41)
        rows = _random_rows(rng, 25)
        store = _store_with_rows(rows, signature_bits=0)
        store.finalize()
        cutoff = 0.55
        store.truncate_values(cutoff)
        extra = np.unique(rng.random(6))
        store.append(extra, 0, extra.size, extra.size)

        fresh_rows = [
            (values[values <= cutoff], mask, residual, size)
            for values, mask, residual, size in rows
        ] + [(extra, 0, extra.size, extra.size)]
        fresh = _store_with_rows(fresh_rows, signature_bits=0)

        for query in (extra, rows[7][0], np.unique(rng.random(8))):
            assert (
                store.intersection_counts_join(query).tolist()
                == fresh.intersection_counts_join(query).tolist()
            )
        assert store.row_max.tolist() == fresh.row_max.tolist()
        assert store.row_exact.tolist() == fresh.row_exact.tolist()


class TestSaveLoad:
    def test_round_trip_preserves_columns_and_kernels(self, tmp_path):
        rng = np.random.default_rng(43)
        rows = []
        for _ in range(15):
            values = np.unique(rng.random(rng.integers(0, 10)))
            rows.append((values, int(rng.integers(0, 2**10)), values.size + 1, values.size + 2))
        store = _store_with_rows(rows, signature_bits=10)
        store.delete(4)
        path = tmp_path / "store.npz"
        store.save(path)
        loaded = ColumnarSketchStore.load(path)

        assert loaded.signature_bits == store.signature_bits
        assert loaded.num_rows == store.num_rows
        assert loaded.num_records == store.num_records
        assert loaded.values.tolist() == store.values.tolist()
        assert loaded.offsets.tolist() == store.offsets.tolist()
        assert loaded.alive_rows.tolist() == store.alive_rows.tolist()
        query = np.unique(np.concatenate([rows[2][0], rng.random(3)]))
        assert (
            loaded.intersection_counts_join(query).tolist()
            == store.intersection_counts_join(query).tolist()
        )
        assert loaded.signature_overlap(0b1011).tolist() == store.signature_overlap(0b1011).tolist()

    def test_loaded_store_stays_dynamic(self, tmp_path):
        store = _store_with_rows([([0.1, 0.4], 0, 2, 2), ([0.2], 0, 1, 1)])
        path = tmp_path / "store.npz"
        store.save(path)
        loaded = ColumnarSketchStore.load(path)
        new_id = loaded.append(np.array([0.3]), 0, 1, 1)
        assert new_id == 2
        loaded.delete(0)
        assert loaded.live_record_ids().tolist() == [1, 2]

    def test_version_mismatch_rejected(self, tmp_path):
        store = _store_with_rows([([0.1], 0, 1, 1)])
        arrays = store.state_arrays()
        arrays["store_meta"] = arrays["store_meta"].copy()
        arrays["store_meta"][0] = 999
        with pytest.raises(ConfigurationError):
            ColumnarSketchStore.from_state(arrays)


class TestKernels:
    def test_intersection_counts_matches_python_sets(self):
        rng = np.random.default_rng(3)
        rows = []
        for _ in range(40):
            values = np.unique(rng.random(rng.integers(0, 12)))
            rows.append((values, 0, values.size, values.size))
        store = _store_with_rows(rows, signature_bits=0)
        query = np.unique(
            np.concatenate([rows[4][0], rows[9][0], rng.random(5)])
        )
        counts = store.intersection_counts(query)
        joined = store.intersection_counts_join(query)
        expected = [
            len(set(values.tolist()) & set(query.tolist()))
            for values, *_rest in rows
        ]
        assert counts.tolist() == expected
        assert joined.tolist() == expected

    def test_signature_overlap_matches_bit_counting(self):
        rng = np.random.default_rng(11)
        masks = [int(rng.integers(0, 2**20)) for _ in range(30)]
        rows = [([], mask, 0, 1) for mask in masks]
        store = _store_with_rows(rows, signature_bits=20)
        query_mask = int(rng.integers(0, 2**20))
        overlap = store.signature_overlap(query_mask)
        expected = [(mask & query_mask).bit_count() for mask in masks]
        assert overlap.tolist() == expected

    def test_signature_overlap_many_matches_single(self):
        rng = np.random.default_rng(13)
        width = 70  # force two words
        masks = [int(rng.integers(0, 2**63)) | (1 << 69) for _ in range(25)]
        rows = [([], mask, 0, 1) for mask in masks]
        store = _store_with_rows(rows, signature_bits=width)
        query_masks = [int(rng.integers(0, 2**63)), (1 << 69) | 0b1, 0]
        many = store.signature_overlap_many(query_masks)
        for row, query_mask in enumerate(query_masks):
            assert many[row].tolist() == store.signature_overlap(query_mask).tolist()

    def test_intersection_counts_many_matches_single(self):
        rng = np.random.default_rng(17)
        rows = []
        for _ in range(25):
            values = np.unique(rng.random(rng.integers(0, 9)))
            rows.append((values, 0, values.size, values.size))
        store = _store_with_rows(rows, signature_bits=0)
        queries = [np.unique(rng.random(6)), rows[3][0], np.empty(0)]
        many = store.intersection_counts_many(queries)
        for row, query in enumerate(queries):
            assert many[row].tolist() == store.intersection_counts(query).tolist()

    def test_empty_store_kernels(self):
        store = ColumnarSketchStore(signature_bits=4)
        assert store.intersection_counts(np.array([0.5])).size == 0
        assert store.signature_overlap(0b1).size == 0
        assert store.signature_overlap_many([0b1]).shape == (1, 0)


class TestThresholdForValueBudget:
    """The incremental-refit primitive against a brute-force recomputation."""

    @staticmethod
    def _brute_force(live_values, budget):
        tiny = float(np.finfo(np.float64).tiny)
        values = np.sort(np.asarray(live_values, dtype=np.float64))
        allowed = int(budget)
        if values.size == 0 or allowed == 0:
            return tiny
        if allowed >= values.size:
            return float(values[-1])
        candidates = [
            float(value)
            for value in np.unique(values)
            if int(np.count_nonzero(values <= value)) <= allowed
        ]
        return candidates[-1] if candidates else tiny

    def _rows(self, rng, num_rows, grid=None):
        rows = []
        for _ in range(num_rows):
            size = int(rng.integers(1, 10))
            if grid is None:
                values = np.unique(rng.random(size))
            else:
                # Discrete grid forces cross-row duplicate values, the
                # tie-heavy case the boundary search must get right.
                values = np.unique(rng.integers(1, grid, size) / grid)
            rows.append((values, 0, values.size, values.size + 1))
        return rows

    @pytest.mark.parametrize("grid", [None, 12])
    @pytest.mark.parametrize("num_deleted", [0, 11])
    def test_matches_brute_force(self, grid, num_deleted):
        rng = np.random.default_rng(41 + (grid or 0))
        rows = self._rows(rng, 30, grid=grid)
        store = _store_with_rows(rows, signature_bits=0)
        deleted = set(
            rng.choice(len(rows), size=num_deleted, replace=False).tolist()
        )
        for record_id in deleted:
            store.delete(record_id)
        live_values = np.concatenate(
            [
                rows[record_id][0]
                for record_id in range(len(rows))
                if record_id not in deleted
            ]
        )
        total = live_values.size
        for budget in (0.0, 0.5, 1.0, 3.7, total / 2, total - 1, total, total + 5):
            expected = self._brute_force(live_values, budget)
            assert store.threshold_for_value_budget(budget) == expected, budget

    def test_truncate_at_returned_threshold_fits_budget(self):
        rng = np.random.default_rng(7)
        store = _store_with_rows(self._rows(rng, 40, grid=9), signature_bits=0)
        budget = store.total_values // 3
        threshold = store.threshold_for_value_budget(budget)
        store.truncate_values(threshold)
        assert store.total_values <= budget

    def test_empty_store(self):
        store = ColumnarSketchStore(signature_bits=0)
        tiny = float(np.finfo(np.float64).tiny)
        assert store.threshold_for_value_budget(10.0) == tiny
