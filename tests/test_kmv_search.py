"""Unit tests for the KMV / G-KMV search baselines (repro.baselines.kmv_search)."""

from __future__ import annotations

import pytest

from repro._errors import ConfigurationError, EmptyDatasetError
from repro.baselines import GKMVSearchIndex, KMVSearchIndex
from repro.exact import BruteForceSearcher


class TestKMVSearchIndex:
    def test_equal_allocation(self, zipf_records):
        records = zipf_records[:100]
        index = KMVSearchIndex.build(records, space_fraction=0.1)
        total = sum(len(set(r)) for r in records)
        assert index.k_per_record == max(int(0.1 * total) // 100, 1)
        assert index.num_records == 100
        assert len(index) == 100

    def test_space_does_not_exceed_budget(self, zipf_records):
        records = zipf_records[:100]
        index = KMVSearchIndex.build(records, space_fraction=0.1)
        total = sum(len(set(r)) for r in records)
        assert index.space_in_values() <= 0.1 * total + index.num_records
        assert 0.0 < index.space_fraction() <= 0.12

    def test_exact_when_budget_is_full(self, tiny_records, example_query):
        index = KMVSearchIndex.build(tiny_records, space_budget=1_000)
        hits = {hit.record_id for hit in index.search(example_query, 0.5)}
        assert hits == {0, 1}

    def test_scores_normalised_by_query_size(self, tiny_records, example_query):
        index = KMVSearchIndex.build(tiny_records, space_budget=1_000)
        scores = {hit.record_id: hit.score for hit in index.search(example_query, 0.0)}
        assert scores[0] == pytest.approx(4 / 6)

    def test_zero_threshold_returns_all_records(self, tiny_records, example_query):
        index = KMVSearchIndex.build(tiny_records, space_budget=1_000)
        assert len(index.search(example_query, 0.0)) == len(tiny_records)

    def test_recall_against_oracle(self, zipf_records):
        records = zipf_records[:150]
        index = KMVSearchIndex.build(records, space_fraction=0.3)
        oracle = BruteForceSearcher(records)
        hits = 0
        total = 0
        for query in records[:10]:
            truth = {h.record_id for h in oracle.search(query, 0.5)}
            found = {h.record_id for h in index.search(query, 0.5)}
            hits += len(truth & found)
            total += len(truth)
        assert hits / total > 0.5

    def test_validation(self, tiny_records):
        with pytest.raises(EmptyDatasetError):
            KMVSearchIndex.build([])
        with pytest.raises(ConfigurationError):
            KMVSearchIndex.build([["a"], []])
        with pytest.raises(ConfigurationError):
            KMVSearchIndex.build(tiny_records, space_fraction=0.0)
        with pytest.raises(ConfigurationError):
            KMVSearchIndex.build(tiny_records, space_budget=-1)
        index = KMVSearchIndex.build(tiny_records, space_budget=100)
        with pytest.raises(ConfigurationError):
            index.search([], 0.5)
        with pytest.raises(ConfigurationError):
            index.search(["e1"], 1.5)


class TestGKMVSearchIndex:
    def test_wraps_zero_buffer_gbkmv(self, zipf_records):
        records = zipf_records[:100]
        index = GKMVSearchIndex.build(records, space_fraction=0.1)
        assert index.inner.buffer_size == 0
        assert index.num_records == 100
        assert len(index) == 100
        assert 0.0 < index.threshold <= 1.0
        assert index.space_fraction() <= 0.11
        assert index.space_in_values() > 0

    def test_exact_when_budget_is_full(self, tiny_records, example_query):
        index = GKMVSearchIndex.build(tiny_records, space_fraction=1.0)
        hits = {hit.record_id for hit in index.search(example_query, 0.5)}
        assert hits == {0, 1}

    def test_gkmv_recall_not_worse_than_kmv(self, zipf_records):
        """The Figure 6 ordering: G-KMV ≥ KMV in answer quality at equal space."""
        records = zipf_records[:200]
        oracle = BruteForceSearcher(records)
        kmv = KMVSearchIndex.build(records, space_fraction=0.05)
        gkmv = GKMVSearchIndex.build(records, space_fraction=0.05)

        def average_f1(index) -> float:
            scores = []
            for query in records[:15]:
                truth = {h.record_id for h in oracle.search(query, 0.5)}
                found = {h.record_id for h in index.search(query, 0.5)}
                tp = len(truth & found)
                precision = tp / len(found) if found else 1.0
                recall = tp / len(truth) if truth else 1.0
                scores.append(
                    0.0
                    if precision + recall == 0
                    else 2 * precision * recall / (precision + recall)
                )
            return sum(scores) / len(scores)

        assert average_f1(gkmv) >= average_f1(kmv) - 0.05


class TestDynamicAPI:
    """Both baselines expose the same insert/delete/update surface as GBKMVIndex."""

    @pytest.fixture(params=[KMVSearchIndex, GKMVSearchIndex], ids=["kmv", "gkmv"])
    def index(self, request, zipf_records):
        return request.param.build(zipf_records[:60], space_fraction=0.5)

    def test_insert_assigns_sequential_ids(self, index):
        assert index.insert(["n1", "n2", "n3"]) == 60
        assert index.insert(["n4", "n5"]) == 61
        assert index.num_records == 62

    def test_inserted_record_is_searchable(self, index):
        new_id = index.insert(["q1", "q2", "q3", "q4"])
        hits = {hit.record_id for hit in index.search(["q1", "q2", "q3", "q4"], 0.0)}
        assert new_id in hits

    def test_delete_removes_record_everywhere(self, index, zipf_records):
        index.delete(7)
        query = zipf_records[7]
        assert 7 not in {hit.record_id for hit in index.search(query, 0.0)}
        assert 7 not in {
            hit.record_id for hit in index.search_many([query], 0.0)[0]
        }
        assert index.num_records == 59

    def test_delete_unknown_or_double_raises(self, index):
        with pytest.raises(ConfigurationError):
            index.delete(1000)
        index.delete(3)
        with pytest.raises(ConfigurationError):
            index.delete(3)

    def test_update_keeps_id(self, index):
        assert index.update(10, ["u1", "u2", "u3"]) == 10
        assert index.num_records == 60
        assert 10 in {hit.record_id for hit in index.search(["u1", "u2", "u3"], 0.0)}

    def test_empty_mutations_rejected(self, index):
        with pytest.raises(ConfigurationError):
            index.insert([])
        with pytest.raises(ConfigurationError):
            index.update(0, [])

    def test_surviving_scores_unchanged_by_delete(self, index, zipf_records):
        query = zipf_records[20]
        before = {hit.record_id: hit.score for hit in index.search(query, 0.0)}
        index.delete(41)
        after = {hit.record_id: hit.score for hit in index.search(query, 0.0)}
        del before[41]
        assert after == before
