"""Unit tests for the G-KMV sketch (repro.core.gkmv)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._errors import ConfigurationError, EstimationError, SketchCompatibilityError
from repro.core import GKMVSketch, KMVSketch
from repro.hashing import UnitHash


class TestConstruction:
    def test_keeps_only_values_below_threshold(self, hasher):
        record = list(range(200))
        sketch = GKMVSketch.from_record(record, threshold=0.2, hasher=hasher)
        all_hashes = hasher.hash_many(record)
        expected = np.sort(all_hashes[all_hashes <= 0.2])
        np.testing.assert_allclose(sketch.values, expected)
        assert sketch.record_size == 200

    def test_expected_size_is_threshold_fraction(self, hasher):
        record = list(range(20_000))
        sketch = GKMVSketch.from_record(record, threshold=0.1, hasher=hasher)
        assert abs(sketch.size - 2_000) / 2_000 < 0.1

    def test_threshold_one_keeps_everything(self, hasher):
        sketch = GKMVSketch.from_record(range(50), threshold=1.0, hasher=hasher)
        assert sketch.size == 50
        assert sketch.is_exact

    def test_invalid_threshold_rejected(self, hasher):
        with pytest.raises(ConfigurationError):
            GKMVSketch.from_record([1], threshold=0.0, hasher=hasher)
        with pytest.raises(ConfigurationError):
            GKMVSketch.from_record([1], threshold=1.5, hasher=hasher)

    def test_values_above_threshold_rejected(self, hasher):
        with pytest.raises(ConfigurationError):
            GKMVSketch(threshold=0.2, values=np.array([0.1, 0.3]), record_size=2, hasher=hasher)

    def test_from_hash_values_filters(self, hasher):
        sketch = GKMVSketch.from_hash_values(
            np.array([0.05, 0.15, 0.45]), threshold=0.2, record_size=3, hasher=hasher
        )
        np.testing.assert_allclose(sketch.values, [0.05, 0.15])

    def test_empty_record_allowed(self, hasher):
        sketch = GKMVSketch.from_record([], threshold=0.5, hasher=hasher)
        assert sketch.size == 0
        assert sketch.record_size == 0
        assert sketch.is_exact

    def test_repr_and_len(self, hasher):
        sketch = GKMVSketch.from_record(range(10), threshold=0.9, hasher=hasher)
        assert len(sketch) == sketch.size
        assert "GKMVSketch" in repr(sketch)


class TestValidityAsKMV:
    def test_as_kmv_preserves_values(self, hasher):
        sketch = GKMVSketch.from_record(range(100), threshold=0.3, hasher=hasher)
        kmv = sketch.as_kmv()
        assert isinstance(kmv, KMVSketch)
        np.testing.assert_allclose(kmv.values, sketch.values)
        assert kmv.record_size == sketch.record_size

    def test_theorem2_union_is_valid_kmv_sketch(self, hasher):
        """Theorem 2: L_X ∪ L_Y holds the |L_X ∪ L_Y| smallest hashes of X ∪ Y."""
        x = list(range(0, 300))
        y = list(range(150, 450))
        threshold = 0.25
        lx = GKMVSketch.from_record(x, threshold=threshold, hasher=hasher)
        ly = GKMVSketch.from_record(y, threshold=threshold, hasher=hasher)
        union_sketch_values = np.union1d(lx.values, ly.values)
        all_union_hashes = np.sort(hasher.hash_many(sorted(set(x) | set(y))))
        k = union_sketch_values.size
        np.testing.assert_allclose(union_sketch_values, all_union_hashes[:k])


class TestEstimators:
    def test_distinct_value_estimate_exact_when_complete(self, hasher):
        sketch = GKMVSketch.from_record(range(30), threshold=1.0, hasher=hasher)
        assert sketch.distinct_value_estimate() == 30.0

    def test_distinct_value_estimate_close(self, hasher):
        sketch = GKMVSketch.from_record(range(30_000), threshold=0.03, hasher=hasher)
        estimate = sketch.distinct_value_estimate()
        assert abs(estimate - 30_000) / 30_000 < 0.15

    def test_distinct_value_estimate_needs_values(self, hasher):
        sketch = GKMVSketch(
            threshold=0.5, values=np.array([]), record_size=100, hasher=hasher
        )
        with pytest.raises(EstimationError):
            sketch.distinct_value_estimate()

    def test_paper_example_4(self):
        """Example 4: G-KMV estimate of |Q ∩ X1| with τ = 0.5 is ≈ 3.19."""
        hasher = UnitHash(0)
        query = GKMVSketch.from_hash_values(
            np.array([0.10, 0.24, 0.33]), threshold=0.5, record_size=6, hasher=hasher
        )
        record = GKMVSketch.from_hash_values(
            np.array([0.24, 0.33, 0.47]), threshold=0.5, record_size=5, hasher=hasher
        )
        estimate = query.intersection_size_estimate(record)
        assert estimate == pytest.approx((2 / 4) * (3 / 0.47), rel=1e-9)
        assert query.containment_estimate(record, query_size=6) == pytest.approx(
            estimate / 6
        )

    def test_intersection_exact_when_both_complete(self, hasher):
        a = GKMVSketch.from_record([1, 2, 3, 4], threshold=1.0, hasher=hasher)
        b = GKMVSketch.from_record([3, 4, 5], threshold=1.0, hasher=hasher)
        assert a.intersection_size_estimate(b) == 2.0
        assert a.union_size_estimate(b) == 5.0

    def test_intersection_estimate_close_for_large_overlap(self, hasher):
        a = GKMVSketch.from_record(range(0, 10_000), threshold=0.05, hasher=hasher)
        b = GKMVSketch.from_record(range(2_000, 12_000), threshold=0.05, hasher=hasher)
        estimate = a.intersection_size_estimate(b)
        assert abs(estimate - 8_000) / 8_000 < 0.25

    def test_disjoint_records_estimate_zero(self, hasher):
        a = GKMVSketch.from_record(range(0, 2_000), threshold=0.05, hasher=hasher)
        b = GKMVSketch.from_record(range(2_000, 4_000), threshold=0.05, hasher=hasher)
        assert a.intersection_size_estimate(b) == 0.0

    def test_no_information_gives_zero_not_error(self, hasher):
        a = GKMVSketch(threshold=0.01, values=np.array([]), record_size=100, hasher=hasher)
        b = GKMVSketch(threshold=0.01, values=np.array([]), record_size=200, hasher=hasher)
        assert a.intersection_size_estimate(b) == 0.0

    def test_different_thresholds_rejected(self, hasher):
        a = GKMVSketch.from_record(range(10), threshold=0.5, hasher=hasher)
        b = GKMVSketch.from_record(range(10), threshold=0.6, hasher=hasher)
        with pytest.raises(SketchCompatibilityError):
            a.intersection_size_estimate(b)

    def test_different_hashers_rejected(self):
        a = GKMVSketch.from_record(range(10), threshold=0.5, hasher=UnitHash(1))
        b = GKMVSketch.from_record(range(10), threshold=0.5, hasher=UnitHash(2))
        with pytest.raises(SketchCompatibilityError):
            a.union_size_estimate(b)

    def test_containment_requires_positive_query_size(self, hasher):
        a = GKMVSketch.from_record(range(10), threshold=0.9, hasher=hasher)
        with pytest.raises(ConfigurationError):
            a.containment_estimate(a, query_size=0)

    def test_gkmv_k_is_at_least_plain_kmv_k(self, hasher):
        """Lemma 2 / Theorem 3 mechanism: the global threshold yields a larger k."""
        x = list(range(0, 500))
        y = list(range(250, 750))
        budget_per_record = 50
        kmv_x = KMVSketch.from_record(x, k=budget_per_record, hasher=hasher)
        kmv_y = KMVSketch.from_record(y, k=budget_per_record, hasher=hasher)
        plain_k = min(kmv_x.size, kmv_y.size)
        threshold = budget_per_record / 500  # same expected per-record budget
        g_x = GKMVSketch.from_record(x, threshold=threshold, hasher=hasher)
        g_y = GKMVSketch.from_record(y, threshold=threshold, hasher=hasher)
        gkmv_k = np.union1d(g_x.values, g_y.values).size
        assert gkmv_k >= plain_k
