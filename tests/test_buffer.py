"""Unit tests for the frequent-element buffer (repro.core.buffer)."""

from __future__ import annotations

from collections import Counter

import pytest

from repro._errors import ConfigurationError, SketchCompatibilityError
from repro.core import FrequentElementBuffer, FrequentElementVocabulary
from repro.core.buffer import BITS_PER_SIGNATURE_UNIT


class TestVocabulary:
    def test_from_frequencies_picks_top_r(self):
        frequencies = {"a": 10, "b": 5, "c": 20, "d": 1}
        vocabulary = FrequentElementVocabulary.from_frequencies(frequencies, size=2)
        assert vocabulary.elements == ("c", "a")
        assert vocabulary.size == 2

    def test_from_frequencies_tie_break_is_deterministic(self):
        frequencies = {"b": 5, "a": 5, "c": 5}
        first = FrequentElementVocabulary.from_frequencies(frequencies, size=2)
        second = FrequentElementVocabulary.from_frequencies(dict(reversed(list(frequencies.items()))), size=2)
        assert first.elements == second.elements

    def test_from_records_counts_distinct_presence(self):
        records = [["a", "a", "b"], ["b"], ["b", "c"]]
        vocabulary = FrequentElementVocabulary.from_records(records, size=1)
        assert vocabulary.elements == ("b",)

    def test_size_zero_gives_empty_vocabulary(self):
        vocabulary = FrequentElementVocabulary.from_frequencies(Counter(a=3), size=0)
        assert vocabulary.size == 0
        assert "a" not in vocabulary

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            FrequentElementVocabulary.from_frequencies({}, size=-1)

    def test_duplicate_elements_rejected(self):
        with pytest.raises(ConfigurationError):
            FrequentElementVocabulary(["a", "a"])

    def test_position_and_contains(self):
        vocabulary = FrequentElementVocabulary(["x", "y", "z"])
        assert vocabulary.position("y") == 1
        assert "z" in vocabulary
        assert "w" not in vocabulary
        with pytest.raises(KeyError):
            vocabulary.position("w")

    def test_iteration_and_len(self):
        vocabulary = FrequentElementVocabulary(["x", "y"])
        assert list(vocabulary) == ["x", "y"]
        assert len(vocabulary) == 2

    def test_equality_and_hash(self):
        a = FrequentElementVocabulary(["x", "y"])
        b = FrequentElementVocabulary(["x", "y"])
        c = FrequentElementVocabulary(["y", "x"])
        assert a == b
        assert a != c
        assert len({a, b, c}) == 2

    def test_buffer_cost_is_r_over_32(self):
        vocabulary = FrequentElementVocabulary(list("abcdefgh"))
        assert vocabulary.buffer_cost_in_values() == 8 / BITS_PER_SIGNATURE_UNIT


class TestBuffer:
    def test_buffer_for_sets_bits_of_present_elements(self):
        vocabulary = FrequentElementVocabulary(["a", "b", "c"])
        buffer = vocabulary.buffer_for(["a", "c", "zzz"])
        assert buffer.count == 2
        assert "a" in buffer
        assert "b" not in buffer
        assert "zzz" not in buffer
        assert sorted(buffer.elements()) == ["a", "c"]

    def test_split_record_returns_residual(self):
        vocabulary = FrequentElementVocabulary(["a", "b"])
        buffer, residual = vocabulary.split_record(["a", "x", "y", "b"])
        assert buffer.count == 2
        assert sorted(residual) == ["x", "y"]

    def test_split_record_with_empty_vocabulary(self):
        vocabulary = FrequentElementVocabulary([])
        buffer, residual = vocabulary.split_record(["a", "b"])
        assert buffer.count == 0
        assert sorted(residual) == ["a", "b"]

    def test_intersection_union_difference_counts(self):
        vocabulary = FrequentElementVocabulary(["a", "b", "c", "d"])
        left = vocabulary.buffer_for(["a", "b", "c"])
        right = vocabulary.buffer_for(["b", "c", "d"])
        assert left.intersection_count(right) == 2
        assert left.union_count(right) == 4
        assert left.difference_count(right) == 1
        assert right.difference_count(left) == 1

    def test_intersection_with_itself_is_count(self):
        vocabulary = FrequentElementVocabulary(["a", "b", "c"])
        buffer = vocabulary.buffer_for(["a", "b"])
        assert buffer.intersection_count(buffer) == 2

    def test_incompatible_vocabularies_rejected(self):
        left = FrequentElementVocabulary(["a", "b"]).buffer_for(["a"])
        right = FrequentElementVocabulary(["b", "a"]).buffer_for(["a"])
        with pytest.raises(SketchCompatibilityError):
            left.intersection_count(right)

    def test_mask_validation(self):
        vocabulary = FrequentElementVocabulary(["a", "b"])
        with pytest.raises(ConfigurationError):
            FrequentElementBuffer(vocabulary, mask=-1)
        with pytest.raises(ConfigurationError):
            FrequentElementBuffer(vocabulary, mask=0b100)  # third bit, width 2

    def test_equality(self):
        vocabulary = FrequentElementVocabulary(["a", "b"])
        assert vocabulary.buffer_for(["a"]) == vocabulary.buffer_for(["a", "zzz"])
        assert vocabulary.buffer_for(["a"]) != vocabulary.buffer_for(["b"])

    def test_len_and_repr(self):
        vocabulary = FrequentElementVocabulary(["a", "b"])
        buffer = vocabulary.buffer_for(["a", "b"])
        assert len(buffer) == 2
        assert "FrequentElementBuffer" in repr(buffer)
