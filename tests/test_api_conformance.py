"""Shared conformance suite: every registered backend, one contract.

Each test parametrises over ``available_backends()`` and exercises the
uniform :class:`repro.api.SimilarityIndex` surface — build through the
registry, search/search_many identity, capability-gated mutation,
top-k, and save/load round-trips (including dispatch through
``open_index``).  Unsupported operations must fail with
:class:`~repro.api.CapabilityError`, never ``AttributeError``.

A new backend added to the registry is covered automatically: the suite
reads the backend list and each backend's declared capabilities at
collection time.
"""

from __future__ import annotations

import pytest

from repro.api import (
    CapabilityError,
    Capabilities,
    ConfigurationError,
    GBKMVConfig,
    KMVConfig,
    SimilarityIndex,
    available_backends,
    create_index,
    get_backend,
    open_index,
)
from repro.datasets import generate_zipf_dataset, sample_queries

THRESHOLD = 0.5


@pytest.fixture(scope="module")
def records() -> list[list[int]]:
    """A small skewed dataset every backend builds over."""
    return generate_zipf_dataset(
        num_records=80,
        universe_size=800,
        element_exponent=1.1,
        size_exponent=3.0,
        min_record_size=10,
        max_record_size=60,
        seed=29,
    )


@pytest.fixture(scope="module")
def queries(records) -> list[list[int]]:
    sampled, _ids = sample_queries(records, num_queries=6, seed=7)
    return sampled


@pytest.fixture(scope="module", params=available_backends())
def backend_id(request) -> str:
    return request.param


@pytest.fixture(scope="module")
def index(backend_id, records) -> SimilarityIndex:
    """One built index per backend, shared by the module's tests.

    Mutating tests must not use this fixture — they build their own.
    """
    return create_index(backend_id, records)


def _flatten(results):
    return [[(hit.record_id, hit.score) for hit in hits] for hits in results]


class TestBuildAndIntrospection:
    def test_registry_serves_a_similarity_index(self, backend_id, index):
        assert isinstance(index, SimilarityIndex)
        assert index.backend_id == backend_id
        assert isinstance(index.capabilities, Capabilities)

    def test_num_records_and_len(self, index, records):
        assert index.num_records == len(records)
        assert len(index) == len(records)

    def test_statistics_report_record_count(self, index, records):
        assert index.statistics().num_records == len(records)

    def test_space_accounting_is_non_negative(self, index):
        assert index.space_in_values() >= 0.0
        assert index.space_fraction() >= 0.0

    def test_wrong_config_type_is_rejected(self, backend_id, records):
        # No backend accepts another backend's config.
        wrong = GBKMVConfig() if backend_id != "gbkmv" else KMVConfig()
        with pytest.raises(ConfigurationError):
            create_index(backend_id, records, wrong)


class TestSearchContract:
    def test_search_returns_valid_hits(self, index, queries, records):
        for query in queries:
            hits = index.search(query, THRESHOLD)
            ids = [hit.record_id for hit in hits]
            assert len(ids) == len(set(ids))
            assert all(0 <= record_id < len(records) for record_id in ids)

    def test_search_many_matches_looped_search(self, index, queries):
        batched = index.search_many(queries, THRESHOLD)
        looped = [index.search(query, THRESHOLD) for query in queries]
        assert _flatten(batched) == _flatten(looped)

    def test_exact_backends_agree_with_brute_force(self, index, records, queries):
        if not index.capabilities.exact:
            pytest.skip("approximate backend")
        reference = create_index("brute-force", records)
        # Exact backends must produce identical result sets and scores.
        for query in queries:
            expected = {
                (h.record_id, round(h.score, 12))
                for h in reference.search(query, THRESHOLD)
            }
            got = {
                (h.record_id, round(h.score, 12))
                for h in index.search(query, THRESHOLD)
            }
            assert got == expected


class TestTopK:
    def test_top_k_matches_capability(self, index, queries):
        if not index.capabilities.scored:
            with pytest.raises(CapabilityError):
                index.top_k(queries[0], k=3)
            return
        hits = index.top_k(queries[0], k=3)
        assert len(hits) <= 3
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)

    def test_top_k_many_matches_looped_top_k(self, index, queries):
        if not index.capabilities.scored:
            with pytest.raises(CapabilityError):
                index.top_k_many(queries, k=3)
            return
        assert _flatten(index.top_k_many(queries, k=3)) == _flatten(
            [index.top_k(query, k=3) for query in queries]
        )


class TestDynamicOperations:
    def test_insert_many_then_search_sees_the_batch(
        self, backend_id, records, queries
    ):
        fresh = create_index(backend_id, records)
        batch = [list(records[1]), list(records[2])]
        if not fresh.capabilities.dynamic:
            with pytest.raises(CapabilityError):
                fresh.insert_many(batch)
            with pytest.raises(CapabilityError):
                fresh.insert(batch[0])
            with pytest.raises(CapabilityError):
                fresh.delete(0)
            with pytest.raises(CapabilityError):
                fresh.update(0, batch[0])
            return
        assigned = fresh.insert_many(batch)
        assert assigned == [len(records), len(records) + 1]
        assert fresh.num_records == len(records) + 2
        # Threshold 0 keeps every live record, so visibility of the new
        # rows (and invisibility after delete) is estimate-independent.
        hits = {hit.record_id for hit in fresh.search(records[1], 0.0)}
        assert set(assigned) <= hits
        fresh.delete(assigned[0])
        hits = {hit.record_id for hit in fresh.search(records[1], 0.0)}
        assert assigned[0] not in hits
        assert assigned[1] in hits


class TestLifecycle:
    def test_context_manager_closes_on_exit(self, backend_id, records):
        with create_index(backend_id, records) as index:
            assert isinstance(index, SimilarityIndex)
            assert index.num_records == len(records)
        index.close()  # close is idempotent

    def test_next_record_id_matches_dynamic_capability(self, index, records):
        # Every dynamic backend declares the sequential-id invariant the
        # serving write buffer builds on; static backends return None.
        if index.capabilities.dynamic:
            assert index.next_record_id == len(records)
        else:
            assert index.next_record_id is None

    def test_insert_advances_next_record_id(self, backend_id, records):
        fresh = create_index(backend_id, records)
        if not fresh.capabilities.dynamic:
            return
        assigned = fresh.insert(list(records[0]))
        assert assigned == len(records)
        assert fresh.next_record_id == len(records) + 1
        fresh.close()


class TestPersistence:
    def test_save_load_round_trip(self, backend_id, records, queries, tmp_path):
        index = create_index(backend_id, records)
        path = tmp_path / f"{backend_id}.npz"
        if not index.capabilities.persistent:
            with pytest.raises(CapabilityError):
                index.save(path)
            with pytest.raises(CapabilityError):
                get_backend(backend_id).load(path)
            return
        index.save(path)
        before = _flatten(index.search_many(queries, THRESHOLD))

        loaded = get_backend(backend_id).load(path)
        assert _flatten(loaded.search_many(queries, THRESHOLD)) == before

        opened = open_index(path)
        assert isinstance(opened, get_backend(backend_id))
        assert _flatten(opened.search_many(queries, THRESHOLD)) == before


class TestVerifiedLSHEnsemble:
    """The verify flag is index state: it scores hits and survives save/load."""

    def test_verified_instances_score_and_round_trip(
        self, records, queries, tmp_path
    ):
        from repro.api import LSHEnsembleConfig

        index = create_index(
            "lsh-ensemble",
            records,
            LSHEnsembleConfig(num_perm=32, num_partitions=4, verify=True),
        )
        assert index.capabilities.scored
        top = index.top_k(queries[0], k=3)
        assert [hit.score for hit in top] == sorted(
            (hit.score for hit in top), reverse=True
        )

        path = tmp_path / "lshe-verified.npz"
        index.save(path)
        restored = open_index(path)
        assert restored.capabilities.scored
        assert _flatten(restored.search_many(queries, THRESHOLD)) == _flatten(
            index.search_many(queries, THRESHOLD)
        )

    def test_raw_instances_stay_unscored(self, records, queries):
        raw = create_index("lsh-ensemble", records)
        assert not raw.capabilities.scored
        with pytest.raises(CapabilityError):
            raw.top_k(queries[0], k=3)
