"""Unit tests for query workloads and dataset file loaders."""

from __future__ import annotations

import pytest

from repro._errors import ConfigurationError, DatasetFormatError, EmptyDatasetError
from repro.datasets import load_records, sample_queries, save_records
from repro.datasets.workload import build_dynamic_workload, build_workload
from repro.exact import BruteForceSearcher


class TestSampleQueries:
    def test_queries_come_from_dataset(self, tiny_records):
        queries, ids = sample_queries(tiny_records, num_queries=10, seed=1)
        assert len(queries) == 10
        assert len(ids) == 10
        for query, record_id in zip(queries, ids):
            assert sorted(query) == sorted(tiny_records[record_id])

    def test_deterministic(self, tiny_records):
        assert sample_queries(tiny_records, 5, seed=2) == sample_queries(tiny_records, 5, seed=2)

    def test_without_replacement_when_possible(self, zipf_records):
        _queries, ids = sample_queries(zipf_records, num_queries=50, seed=3)
        assert len(set(ids)) == 50

    def test_validation(self, tiny_records):
        with pytest.raises(EmptyDatasetError):
            sample_queries([], 5)
        with pytest.raises(ConfigurationError):
            sample_queries(tiny_records, 0)


class TestBuildWorkload:
    def test_ground_truth_matches_brute_force(self, zipf_records):
        records = zipf_records[:80]
        workload = build_workload(records, threshold=0.5, num_queries=10, seed=4)
        assert workload.num_queries == 10
        assert workload.threshold == 0.5
        oracle = BruteForceSearcher(records)
        for query, truth in zip(workload.queries, workload.ground_truth):
            expected = {hit.record_id for hit in oracle.search(list(query), 0.5)}
            assert truth == expected

    def test_self_record_is_always_in_truth(self, zipf_records):
        records = zipf_records[:50]
        workload = build_workload(records, threshold=0.9, num_queries=10, seed=5)
        for record_id, truth in zip(workload.query_record_ids, workload.ground_truth):
            assert record_id in truth

    def test_invalid_threshold_rejected(self, tiny_records):
        with pytest.raises(ConfigurationError):
            build_workload(tiny_records, threshold=2.0)


class TestLoaders:
    def test_roundtrip_integers(self, tmp_path):
        records = [[1, 2, 3], [4, 5], [6]]
        path = tmp_path / "data.txt"
        save_records(records, path)
        assert load_records(path) == records

    def test_roundtrip_strings(self, tmp_path):
        records = [["apple", "pear"], ["kiwi"]]
        path = tmp_path / "data.txt"
        save_records(records, path)
        assert load_records(path) == records

    def test_min_record_size_filter(self, tmp_path):
        records = [[1, 2, 3], [4], [5, 6]]
        path = tmp_path / "data.txt"
        save_records(records, path)
        assert load_records(path, min_record_size=2) == [[1, 2, 3], [5, 6]]

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("1 2\n\n3 4\n")
        assert load_records(path) == [[1, 2], [3, 4]]

    def test_blank_lines_error_when_not_skipped(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("1 2\n\n3 4\n")
        with pytest.raises(DatasetFormatError):
            load_records(path, skip_empty=False)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetFormatError):
            load_records(tmp_path / "missing.txt")

    def test_whitespace_elements_rejected_on_save(self, tmp_path):
        with pytest.raises(DatasetFormatError):
            save_records([["a b"]], tmp_path / "data.txt")

    def test_mixed_tokens_parse_types(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("12 word -3\n")
        assert load_records(path) == [[12, "word", -3]]


class TestBuildDynamicWorkload:
    def test_operation_mix_and_determinism(self, zipf_records):
        workload = build_dynamic_workload(
            zipf_records, threshold=0.5, num_operations=120, seed=3
        )
        again = build_dynamic_workload(
            zipf_records, threshold=0.5, num_operations=120, seed=3
        )
        assert workload == again
        counts = workload.operation_counts()
        assert sum(counts.values()) == 120
        assert counts["insert"] > 0 and counts["delete"] > 0 and counts["query"] > 0

    def test_insert_ids_are_sequential_from_initial_size(self, zipf_records):
        workload = build_dynamic_workload(
            zipf_records, threshold=0.5, num_initial=50, num_operations=80, seed=5
        )
        assert len(workload.initial_records) == 50
        insert_ids = [
            operation.record_id
            for operation in workload.operations
            if operation.op == "insert"
        ]
        assert insert_ids == list(range(50, 50 + len(insert_ids)))

    def test_deletes_target_live_records_only(self, zipf_records):
        workload = build_dynamic_workload(
            zipf_records, threshold=0.5, num_operations=150, delete_fraction=0.4, seed=7
        )
        live = set(range(len(workload.initial_records)))
        for operation in workload.operations:
            if operation.op == "insert":
                live.add(operation.record_id)
            elif operation.op == "delete":
                assert operation.record_id in live
                live.remove(operation.record_id)

    def test_ground_truth_is_exact_over_live_set(self, zipf_records):
        threshold = 0.5
        workload = build_dynamic_workload(
            zipf_records, threshold=threshold, num_operations=100, seed=11
        )
        live = {
            record_id: frozenset(record)
            for record_id, record in enumerate(workload.initial_records)
        }
        for operation in workload.operations:
            if operation.op == "insert":
                live[operation.record_id] = frozenset(operation.record)
            elif operation.op == "delete":
                del live[operation.record_id]
            else:
                query = frozenset(operation.query)
                theta = threshold * len(query)
                expected = {
                    record_id
                    for record_id, elements in live.items()
                    if len(query & elements) >= theta * (1.0 - 1e-12)
                }
                assert set(operation.ground_truth) == expected
                assert expected  # the query's own record is always a hit

    def test_queries_carry_threshold_hits_of_self(self, zipf_records):
        workload = build_dynamic_workload(zipf_records, threshold=1.0, num_operations=60, seed=2)
        for operation in workload.operations:
            if operation.op == "query":
                assert operation.ground_truth  # self-containment is 1.0

    def test_validation(self, zipf_records):
        with pytest.raises(EmptyDatasetError):
            build_dynamic_workload([], threshold=0.5)
        with pytest.raises(ConfigurationError):
            build_dynamic_workload(zipf_records, threshold=1.5)
        with pytest.raises(ConfigurationError):
            build_dynamic_workload(zipf_records, threshold=0.5, num_operations=0)
        with pytest.raises(ConfigurationError):
            build_dynamic_workload(
                zipf_records, threshold=0.5, insert_fraction=0.8, delete_fraction=0.3
            )
        with pytest.raises(ConfigurationError):
            build_dynamic_workload(zipf_records, threshold=0.5, num_initial=0)
