"""Unit tests for GBKMVIndex construction and search (repro.core.index)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._errors import ConfigurationError, EmptyDatasetError
from repro.core import GBKMVIndex, GBKMVSketch
from repro.exact import BruteForceSearcher


class TestBuild:
    def test_basic_construction(self, tiny_records):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0, buffer_size=2)
        assert index.num_records == 4
        assert len(index) == 4
        assert index.buffer_size == 2
        assert 0.0 < index.threshold <= 1.0

    def test_empty_dataset_rejected(self):
        with pytest.raises(EmptyDatasetError):
            GBKMVIndex.build([], space_fraction=0.5)

    def test_empty_record_rejected(self):
        with pytest.raises(ConfigurationError):
            GBKMVIndex.build([["a"], []], space_fraction=0.5)

    def test_invalid_space_fraction_rejected(self, tiny_records):
        with pytest.raises(ConfigurationError):
            GBKMVIndex.build(tiny_records, space_fraction=0.0)
        with pytest.raises(ConfigurationError):
            GBKMVIndex.build(tiny_records, space_fraction=1.5)

    def test_invalid_space_budget_rejected(self, tiny_records):
        with pytest.raises(ConfigurationError):
            GBKMVIndex.build(tiny_records, space_budget=-5)

    def test_negative_buffer_size_rejected(self, tiny_records):
        with pytest.raises(ConfigurationError):
            GBKMVIndex.build(tiny_records, buffer_size=-1)

    def test_auto_buffer_size_is_used_by_default(self, zipf_records):
        index = GBKMVIndex.build(zipf_records, space_fraction=0.1)
        assert index.buffer_size >= 0  # chosen by the cost model
        assert index.vocabulary.size == index.buffer_size

    def test_space_budget_respected(self, zipf_records):
        index = GBKMVIndex.build(zipf_records, space_fraction=0.1, buffer_size=0)
        assert index.space_in_values() <= index.budget * 1.01
        assert index.space_fraction() <= 0.11

    def test_space_budget_mostly_used(self, zipf_records):
        index = GBKMVIndex.build(zipf_records, space_fraction=0.1, buffer_size=0)
        assert index.space_in_values() >= index.budget * 0.85

    def test_explicit_budget_overrides_fraction(self, tiny_records):
        index = GBKMVIndex.build(tiny_records, space_fraction=0.01, space_budget=100)
        assert index.budget == 100

    def test_statistics_snapshot(self, tiny_records):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0, buffer_size=1)
        stats = index.statistics()
        assert stats.num_records == 4
        assert stats.total_elements == sum(len(set(r)) for r in tiny_records)
        assert stats.buffer_size == 1
        assert stats.space_in_values == index.space_in_values()

    def test_record_sizes_accessible(self, tiny_records):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0)
        np.testing.assert_array_equal(index.record_sizes(), [5, 3, 3, 4])
        assert index.record_size(0) == 5

    def test_sketch_materialisation(self, tiny_records):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0, buffer_size=2)
        sketch = index.sketch(0)
        assert isinstance(sketch, GBKMVSketch)
        assert sketch.record_size == 5
        assert len(list(index.sketches())) == 4


class TestSearch:
    def test_paper_example_1_with_full_budget(self, tiny_records, example_query):
        """With a 100% budget the sketches are exact, so the search is exact."""
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0, buffer_size=2)
        hits = index.search(example_query, threshold=0.5)
        assert {hit.record_id for hit in hits} == {0, 1}
        scores = {hit.record_id: hit.score for hit in hits}
        assert scores[0] == pytest.approx(4 / 6)
        assert scores[1] == pytest.approx(3 / 6)

    def test_results_sorted_by_score(self, tiny_records, example_query):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0)
        hits = index.search(example_query, threshold=0.0)
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)

    def test_zero_threshold_returns_everything(self, tiny_records, example_query):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0)
        hits = index.search(example_query, threshold=0.0)
        assert len(hits) == 4

    def test_threshold_one_returns_only_supersets(self, tiny_records):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0, buffer_size=2)
        hits = index.search(["e2", "e3"], threshold=1.0)
        assert {hit.record_id for hit in hits} == {0, 1}

    def test_invalid_threshold_rejected(self, tiny_records, example_query):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0)
        with pytest.raises(ConfigurationError):
            index.search(example_query, threshold=1.5)

    def test_empty_query_rejected(self, tiny_records):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0)
        with pytest.raises(ConfigurationError):
            index.search([], threshold=0.5)

    def test_query_with_unknown_elements_only(self, tiny_records):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0)
        hits = index.search(["zzz", "yyy"], threshold=0.5)
        assert hits == []

    def test_explicit_query_size_changes_normalisation(self, tiny_records):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0, buffer_size=2)
        # Pretend the query is larger than its distinct elements: scores halve.
        small = index.search(["e2", "e3"], threshold=0.0)
        large = index.search(["e2", "e3"], threshold=0.0, query_size=4)
        small_scores = {hit.record_id: hit.score for hit in small}
        large_scores = {hit.record_id: hit.score for hit in large}
        for record_id, score in large_scores.items():
            assert score == pytest.approx(small_scores[record_id] / 2)

    def test_estimate_containment_single_record(self, tiny_records, example_query):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0, buffer_size=2)
        assert index.estimate_containment(example_query, 0) == pytest.approx(4 / 6)

    def test_top_k(self, tiny_records, example_query):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0, buffer_size=2)
        top = index.top_k(example_query, k=2)
        assert len(top) == 2
        assert top[0].record_id == 0
        with pytest.raises(ConfigurationError):
            index.top_k(example_query, k=0)

    def test_query_sketch_uses_index_parameters(self, tiny_records, example_query):
        index = GBKMVIndex.build(tiny_records, space_fraction=0.5, buffer_size=2)
        sketch = index.query_sketch(example_query)
        assert sketch.threshold == index.threshold
        assert sketch.vocabulary == index.vocabulary

    def test_search_matches_per_pair_sketch_estimates(self, zipf_records):
        """The vectorised search path must agree with the sketch-object path."""
        index = GBKMVIndex.build(zipf_records[:100], space_fraction=0.3, buffer_size=16)
        query = zipf_records[3]
        hits = {hit.record_id: hit.score for hit in index.search(query, threshold=0.0)}
        query_sketch = index.query_sketch(query)
        q = len(set(query))
        for record_id in range(index.num_records):
            expected = query_sketch.intersection_size_estimate(index.sketch(record_id)) / q
            assert hits[record_id] == pytest.approx(expected, abs=1e-9)

    def test_recall_is_high_on_moderate_budget(self, zipf_records):
        index = GBKMVIndex.build(zipf_records, space_fraction=0.2)
        oracle = BruteForceSearcher(zipf_records)
        recalls = []
        for query in zipf_records[:10]:
            truth = {hit.record_id for hit in oracle.search(query, 0.5)}
            found = {hit.record_id for hit in index.search(query, 0.5)}
            if truth:
                recalls.append(len(truth & found) / len(truth))
        assert np.mean(recalls) > 0.7
