"""Unit tests for asymmetric minwise hashing (repro.baselines.asymmetric_minhash)."""

from __future__ import annotations

import pytest

from repro._errors import ConfigurationError, EmptyDatasetError
from repro.baselines import AsymmetricMinHashIndex
from repro.baselines.asymmetric_minhash import padded_jaccard_threshold
from repro.exact import BruteForceSearcher


class TestPaddedThreshold:
    def test_monotone_in_containment(self):
        low = padded_jaccard_threshold(0.2, query_size=50, max_record_size=500)
        high = padded_jaccard_threshold(0.8, query_size=50, max_record_size=500)
        assert high > low

    def test_larger_max_size_lowers_threshold(self):
        small = padded_jaccard_threshold(0.5, query_size=50, max_record_size=100)
        large = padded_jaccard_threshold(0.5, query_size=50, max_record_size=10_000)
        assert large < small

    def test_bounds(self):
        assert 0.0 <= padded_jaccard_threshold(0.0, 10, 100) <= 1.0
        assert 0.0 <= padded_jaccard_threshold(1.0, 10, 100) <= 1.0

    def test_invalid_query_size(self):
        with pytest.raises(ConfigurationError):
            padded_jaccard_threshold(0.5, 0, 100)


class TestAsymmetricMinHashIndex:
    def test_build_and_properties(self, zipf_records):
        records = zipf_records[:80]
        index = AsymmetricMinHashIndex.build(records, num_perm=32)
        assert index.num_records == 80
        assert len(index) == 80
        assert index.max_record_size == max(len(set(r)) for r in records)
        assert index.space_in_values() == 32 * 80
        assert index.space_fraction() > 0

    def test_validation(self):
        with pytest.raises(EmptyDatasetError):
            AsymmetricMinHashIndex.build([])
        with pytest.raises(ConfigurationError):
            AsymmetricMinHashIndex.build([["a"], []])
        with pytest.raises(ConfigurationError):
            AsymmetricMinHashIndex(num_perm=1)

    def test_search_validation(self, tiny_records):
        index = AsymmetricMinHashIndex.build(tiny_records, num_perm=16)
        with pytest.raises(ConfigurationError):
            index.search([], 0.5)
        with pytest.raises(ConfigurationError):
            index.search(["e1"], -0.1)

    def test_finds_near_identical_records(self, zipf_records):
        records = zipf_records[:80]
        index = AsymmetricMinHashIndex.build(records, num_perm=128)
        oracle = BruteForceSearcher(records)
        recalls = []
        for query in records[:8]:
            truth = {hit.record_id for hit in oracle.search(query, 0.9)}
            found = {hit.record_id for hit in index.search(query, 0.9)}
            if truth:
                recalls.append(len(truth & found) / len(truth))
        # Padding hurts recall on skewed sizes (the known weakness), but
        # near-duplicates of the query itself should still be found often.
        assert sum(recalls) / len(recalls) > 0.4


class TestPersistence:
    def test_round_trip_search_identical(self, zipf_records, tmp_path):
        records = zipf_records[:100]
        index = AsymmetricMinHashIndex.build(records, num_perm=64)
        path = tmp_path / "amh.npz"
        index.save(path)
        loaded = AsymmetricMinHashIndex.load(path)
        assert loaded.num_records == index.num_records
        assert loaded.max_record_size == index.max_record_size
        assert loaded.space_in_values() == index.space_in_values()
        for query in records[:6]:
            original = [(h.record_id, h.score) for h in index.search(query, 0.5)]
            restored = [(h.record_id, h.score) for h in loaded.search(query, 0.5)]
            assert original == restored

    def test_wrong_snapshot_rejected(self, tiny_records, tmp_path):
        from repro._errors import SnapshotFormatError
        from repro.baselines import LSHEnsembleIndex

        other = LSHEnsembleIndex.build(tiny_records, num_perm=16, num_partitions=2)
        path = tmp_path / "lshe.npz"
        other.save(path)
        with pytest.raises(SnapshotFormatError):
            AsymmetricMinHashIndex.load(path)
