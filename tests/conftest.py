"""Shared fixtures for the test suite.

Small, deterministic datasets keep unit tests fast; the integration and
shape tests build slightly larger synthetic corpora from the generators.
"""

from __future__ import annotations

import pytest

from repro.datasets import generate_uniform_dataset, generate_zipf_dataset
from repro.hashing import HashFamily, UnitHash


@pytest.fixture
def hasher() -> UnitHash:
    """A fixed-seed unit hasher shared by sketch tests."""
    return UnitHash(seed=42)


@pytest.fixture
def family() -> HashFamily:
    """A small hash family for MinHash tests."""
    return HashFamily(size=64, seed=7)


@pytest.fixture
def tiny_records() -> list[list[str]]:
    """The four-record dataset of Example 1 in the paper."""
    return [
        ["e1", "e2", "e3", "e4", "e7"],
        ["e2", "e3", "e5"],
        ["e2", "e4", "e5"],
        ["e1", "e2", "e6", "e10"],
    ]


@pytest.fixture
def example_query() -> list[str]:
    """The query of Example 1 in the paper."""
    return ["e1", "e2", "e3", "e5", "e7", "e9"]


@pytest.fixture(scope="session")
def zipf_records() -> list[list[int]]:
    """A moderately sized skewed dataset shared across integration tests."""
    return generate_zipf_dataset(
        num_records=400,
        universe_size=5_000,
        element_exponent=1.1,
        size_exponent=3.0,
        min_record_size=20,
        max_record_size=300,
        seed=11,
    )


@pytest.fixture(scope="session")
def uniform_records() -> list[list[int]]:
    """A uniform-distribution dataset (Figure 19(a) regime)."""
    return generate_uniform_dataset(
        num_records=200,
        universe_size=3_000,
        min_record_size=20,
        max_record_size=120,
        seed=5,
    )
