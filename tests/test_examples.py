"""Smoke tests: every example script runs, and imports only ``repro.api``.

The examples are the library's front door, so they are executed end to
end (as subprocesses, exactly as a user would run them) and statically
checked to come in through the public :mod:`repro.api` surface — no
deep imports of core/baseline/exact internals.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))

#: Expected stdout fragment per example, proving it ran to its report.
EXPECTED_OUTPUT = {
    "quickstart.py": "top-5 by estimated containment",
    "domain_search.py": "best-matching domains",
    "inclusion_dependency.py": "true foreign keys recovered",
    "record_matching.py": "error-tolerant search",
    "serving_demo.py": "Closed-loop load",
}


def test_every_example_has_an_expectation():
    assert set(EXAMPLES) == set(EXPECTED_OUTPUT)


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs_to_completion(example):
    env = dict(os.environ)
    src = str(EXAMPLES_DIR.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / example)],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert EXPECTED_OUTPUT[example] in result.stdout


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_imports_only_the_public_api(example):
    source = (EXAMPLES_DIR / example).read_text()
    repro_imports = re.findall(
        r"^\s*(?:from|import)\s+(repro[\w.]*)", source, flags=re.MULTILINE
    )
    assert repro_imports, f"{example} does not use the library at all?"
    offenders = [name for name in repro_imports if name != "repro.api"]
    assert not offenders, (
        f"{example} deep-imports {offenders}; examples must come in "
        "through repro.api only"
    )
