"""Unit tests for the LSH Forest (repro.minhash.lsh_forest)."""

from __future__ import annotations

import pytest

from repro._errors import ConfigurationError
from repro.hashing import HashFamily
from repro.minhash import LSHForest, MinHashSignature


@pytest.fixture
def family() -> HashFamily:
    return HashFamily(size=64, seed=3)


class TestLSHForest:
    def test_insert_and_query_identical(self, family):
        forest = LSHForest(num_trees=8, depth=8)
        signature = MinHashSignature.from_record(range(50), family)
        forest.insert("x", signature)
        assert "x" in forest
        assert "x" in forest.query(signature, depth=8)
        assert "x" in forest.query(signature, depth=1)

    def test_deeper_queries_are_more_selective(self, family):
        forest = LSHForest(num_trees=8, depth=8)
        base = list(range(200))
        for i in range(20):
            record = base[: 150 + i] + list(range(1000 * i, 1000 * i + 40))
            forest.insert(i, MinHashSignature.from_record(record, family))
        query = MinHashSignature.from_record(base, family)
        shallow = forest.query(query, depth=1)
        deep = forest.query(query, depth=8)
        assert deep <= shallow

    def test_dissimilar_records_not_found_at_depth(self, family):
        forest = LSHForest(num_trees=8, depth=8)
        forest.insert("a", MinHashSignature.from_record(range(100), family))
        other = MinHashSignature.from_record(range(5000, 5100), family)
        assert "a" not in forest.query(other, depth=8)

    def test_depth_bounds_enforced(self, family):
        forest = LSHForest(num_trees=4, depth=4)
        signature = MinHashSignature.from_record(range(30), family)
        forest.insert("a", signature)
        with pytest.raises(ConfigurationError):
            forest.query(signature, depth=0)
        with pytest.raises(ConfigurationError):
            forest.query(signature, depth=5)

    def test_signature_too_short_rejected(self):
        forest = LSHForest(num_trees=8, depth=16)  # needs 128 values
        short_family = HashFamily(size=64, seed=3)
        signature = MinHashSignature.from_record(range(30), short_family)
        with pytest.raises(ConfigurationError):
            forest.insert("a", signature)

    def test_duplicate_key_rejected(self, family):
        forest = LSHForest(num_trees=4, depth=4)
        signature = MinHashSignature.from_record(range(30), family)
        forest.insert("a", signature)
        with pytest.raises(ConfigurationError):
            forest.insert("a", signature)

    def test_invalid_construction_rejected(self):
        with pytest.raises(ConfigurationError):
            LSHForest(num_trees=0, depth=4)
        with pytest.raises(ConfigurationError):
            LSHForest(num_trees=4, depth=0)

    def test_len_and_keys(self, family):
        forest = LSHForest(num_trees=4, depth=4)
        for key in range(3):
            forest.insert(key, MinHashSignature.from_record(range(key, key + 30), family))
        assert len(forest) == 3
        assert forest.keys() == {0, 1, 2}
        assert forest.num_perm_required == 16
