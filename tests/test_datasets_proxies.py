"""Unit tests for the proxy datasets (repro.datasets.proxies)."""

from __future__ import annotations

import pytest

from repro._errors import ConfigurationError
from repro.datasets import DATASET_PROFILES, dataset_characteristics, load_proxy
from repro.datasets.powerlaw import record_sizes


class TestProfiles:
    def test_all_seven_paper_datasets_present(self):
        assert set(DATASET_PROFILES) == {
            "NETFLIX",
            "DELIC",
            "COD",
            "ENRON",
            "REUTERS",
            "WEBSPAM",
            "WDC",
        }

    def test_exponents_match_table2(self):
        assert DATASET_PROFILES["NETFLIX"].element_exponent == pytest.approx(1.14)
        assert DATASET_PROFILES["NETFLIX"].size_exponent == pytest.approx(4.95)
        assert DATASET_PROFILES["WDC"].element_exponent == pytest.approx(1.08)
        assert DATASET_PROFILES["WDC"].size_exponent == pytest.approx(2.4)
        assert DATASET_PROFILES["WEBSPAM"].size_exponent == pytest.approx(9.34)

    def test_proxies_are_scaled_down(self):
        for profile in DATASET_PROFILES.values():
            assert profile.proxy_num_records < profile.paper_num_records
            assert profile.min_record_size >= 10
            assert profile.universe_size >= profile.max_record_size


class TestLoadProxy:
    def test_load_small_scale(self):
        records = load_proxy("WDC", scale=0.05, seed=1)
        assert len(records) == max(int(DATASET_PROFILES["WDC"].proxy_num_records * 0.05), 10)
        sizes = record_sizes(records)
        assert sizes.min() >= DATASET_PROFILES["WDC"].min_record_size

    def test_case_insensitive_name(self):
        assert load_proxy("wdc", scale=0.05, seed=1) == load_proxy("WDC", scale=0.05, seed=1)

    def test_deterministic(self):
        assert load_proxy("REUTERS", scale=0.02, seed=4) == load_proxy(
            "REUTERS", scale=0.02, seed=4
        )

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            load_proxy("UNKNOWN")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            load_proxy("WDC", scale=0.0)


class TestCharacteristics:
    def test_reports_all_table2_columns(self):
        records = load_proxy("WDC", scale=0.1, seed=2)
        stats = dataset_characteristics(records)
        assert set(stats) == {
            "num_records",
            "avg_record_size",
            "num_distinct_elements",
            "alpha_element_frequency",
            "alpha_record_size",
        }
        assert stats["num_records"] == len(records)
        assert stats["avg_record_size"] > 0
        assert stats["num_distinct_elements"] > 0

    def test_proxy_is_skewed(self):
        """Element-frequency skew of a proxy should be clearly super-uniform."""
        records = load_proxy("NETFLIX", scale=0.1, seed=2)
        stats = dataset_characteristics(records)
        assert stats["alpha_element_frequency"] > 1.0
