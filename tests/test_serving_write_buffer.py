"""WriteCoalescer semantics: ordering, visibility, and failure recovery.

The write buffer's contract is that buffering is *invisible* modulo
timing: replaying the buffered operations in order must leave the index
exactly where per-operation application would have, with runs of
consecutive inserts collapsed into ``insert_many`` calls.  These tests
pin the interesting interleavings — delete of a still-buffered insert,
an update enqueued while a flush is running, a failing operation in the
middle of a flush — and the eager-id single-writer validation.
"""

from __future__ import annotations

import pytest

from repro.api import CapabilityError, ConfigurationError, create_index
from repro.core.index import GBKMVIndex
from repro.datasets import generate_zipf_dataset
from repro.serving import WriteCoalescer


@pytest.fixture()
def records() -> list[list[int]]:
    return generate_zipf_dataset(
        num_records=40,
        universe_size=400,
        element_exponent=1.1,
        size_exponent=3.0,
        min_record_size=8,
        max_record_size=30,
        seed=17,
    )


@pytest.fixture()
def index(records) -> GBKMVIndex:
    return GBKMVIndex.build(records, space_fraction=1.0)


class RecordingSearcher:
    """Duck-typed dynamic searcher that records every index call."""

    def __init__(self, inner):
        self.inner = inner
        self.calls: list[tuple] = []

    @property
    def next_record_id(self):
        return self.inner.next_record_id

    def insert_many(self, batch):
        self.calls.append(("insert_many", len(batch)))
        return self.inner.insert_many(batch)

    def delete(self, record_id):
        self.calls.append(("delete", record_id))
        self.inner.delete(record_id)

    def update(self, record_id, record):
        self.calls.append(("update", record_id))
        return self.inner.update(record_id, record)


class TestOrderingAndCoalescing:
    def test_insert_assigns_final_ids_before_flush(self, index, records):
        buffer = WriteCoalescer(index)
        base = len(records)
        ids = [buffer.insert(records[i]) for i in range(3)]
        assert ids == [base, base + 1, base + 2]
        assert buffer.pending == 3
        assert index.num_records == len(records)  # nothing flushed yet
        assert buffer.flush() == 3
        assert buffer.pending == 0
        assert index.num_records == len(records) + 3

    def test_consecutive_inserts_collapse_into_one_bulk_call(self, index, records):
        searcher = RecordingSearcher(index)
        buffer = WriteCoalescer(searcher)
        for i in range(4):
            buffer.insert(records[i])
        buffer.delete(0)
        for i in range(2):
            buffer.insert(records[i])
        assert buffer.flush() == 7
        assert searcher.calls == [
            ("insert_many", 4),
            ("delete", 0),
            ("insert_many", 2),
        ]
        stats = buffer.stats()
        assert stats.inserts == 6
        assert stats.deletes == 1
        assert stats.insert_batches == 2
        assert stats.flushed_operations == 7
        assert stats.pending == 0

    def test_delete_of_buffered_insert_is_never_visible(self, index, records):
        buffer = WriteCoalescer(index)
        doomed = buffer.insert(records[0])
        kept = buffer.insert(records[1])
        buffer.delete(doomed)
        buffer.flush()
        # Threshold 0 keeps every live record, so visibility is
        # estimate-independent.
        hits = {hit.record_id for hit in index.search(records[0], 0.0)}
        assert doomed not in hits
        assert kept in hits

    def test_update_of_buffered_insert_applies_in_order(self, index, records):
        buffer = WriteCoalescer(index)
        record_id = buffer.insert(records[0])
        assert buffer.update(record_id, records[1]) == record_id
        buffer.flush()
        # The flushed record carries the updated contents: searching with
        # the replacement record scores it as a full containment.
        scores = {hit.record_id: hit.score for hit in index.search(records[1], 0.99)}
        assert scores.get(record_id) == pytest.approx(1.0)

    def test_ops_enqueued_during_flush_go_to_the_next_flush(self, index, records):
        buffer = WriteCoalescer(index)

        class EnqueueDuringFlush(RecordingSearcher):
            def insert_many(self, batch):
                assigned = super().insert_many(batch)
                # A writer sneaking in mid-flush (e.g. the event loop
                # enqueueing while the worker lane applies): the running
                # flush must not pick this up.
                buffer.update(assigned[0], records[5])
                return assigned

        searcher = EnqueueDuringFlush(index)
        buffer._index = searcher  # route applications through the hook
        buffer.insert(records[0])
        assert buffer.flush() == 1
        assert buffer.pending == 1  # the mid-flush update is still queued
        assert buffer.flush() == 1
        assert buffer.pending == 0
        assert searcher.calls[-1] == ("update", len(records))


class TestFailureRecovery:
    def test_failing_op_is_discarded_and_remainder_requeued(self, index, records):
        class FlakyDelete(RecordingSearcher):
            def delete(self, record_id):
                raise RuntimeError("shard offline")

        searcher = FlakyDelete(index)
        buffer = WriteCoalescer(searcher)
        buffer.insert(records[0])
        buffer.delete(0)
        buffer.insert(records[1])
        with pytest.raises(RuntimeError, match="shard offline"):
            buffer.flush()
        # The insert before the failure landed; the failing delete is
        # consumed (never retried); the insert after it is re-queued.
        assert index.num_records == len(records) + 1
        assert buffer.pending == 1
        assert buffer.flush() == 1
        assert index.num_records == len(records) + 2
        assert buffer.stats().flushed_operations == 2

    def test_concurrent_writer_is_detected_at_flush(self, index, records):
        buffer = WriteCoalescer(index)
        buffer.insert(records[0])
        # A second writer violates the eager id assignment; the flush's
        # id validation must catch the drift rather than mis-map ids.
        index.insert(list(records[1]))
        with pytest.raises(ConfigurationError, match="only writer"):
            buffer.flush()

    def test_unknown_ids_are_rejected_at_enqueue(self, index, records):
        buffer = WriteCoalescer(index)
        with pytest.raises(ConfigurationError, match="unknown record id"):
            buffer.delete(len(records) + 5)
        with pytest.raises(ConfigurationError, match="unknown record id"):
            buffer.update(-1, records[0])

    def test_empty_records_are_rejected_at_enqueue(self, index):
        buffer = WriteCoalescer(index)
        with pytest.raises(ConfigurationError, match="empty record"):
            buffer.insert([])


class TestConstruction:
    def test_static_index_is_rejected(self, records):
        static = create_index("brute-force", records)
        with pytest.raises(ConfigurationError, match="not dynamic"):
            WriteCoalescer(static)

    def test_duck_typed_searcher_without_next_record_id_needs_a_seed(
        self, index, records
    ):
        class Bare:
            def insert_many(self, batch):
                return index.insert_many(batch)

            def delete(self, record_id):
                index.delete(record_id)

        with pytest.raises(ConfigurationError, match="next_record_id"):
            WriteCoalescer(Bare())
        buffer = WriteCoalescer(Bare(), next_record_id=len(records))
        assert buffer.insert(records[0]) == len(records)
        assert buffer.flush() == 1

    def test_object_without_dynamic_surface_is_rejected(self):
        with pytest.raises(ConfigurationError, match="insert_many"):
            WriteCoalescer(object())

    def test_capability_error_is_a_configuration_error_peer(self, records):
        # The service raises CapabilityError for writes on static
        # backends; the buffer itself refuses to wrap them earlier.
        static = create_index("frequent-set", records)
        assert not static.capabilities.dynamic
        with pytest.raises((ConfigurationError, CapabilityError)):
            WriteCoalescer(static)
