"""Tests for dynamic insertion and threshold refitting of GBKMVIndex."""

from __future__ import annotations

import pytest

from repro._errors import ConfigurationError
from repro.core import GBKMVIndex


class TestInsert:
    def test_insert_returns_new_record_id(self, tiny_records):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0, buffer_size=2)
        new_id = index.insert(["e1", "e2", "e3"])
        assert new_id == 4
        assert index.num_records == 5

    def test_inserted_record_is_searchable(self, tiny_records):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0, buffer_size=2)
        index.insert(["e1", "e2", "e3", "e5", "e7", "e9"])
        hits = index.search(["e1", "e2", "e3", "e5", "e7", "e9"], threshold=0.99)
        assert 4 in {hit.record_id for hit in hits}

    def test_insert_empty_record_rejected(self, tiny_records):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0)
        with pytest.raises(ConfigurationError):
            index.insert([])

    def test_insert_updates_space_accounting(self, tiny_records):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0, buffer_size=0)
        before = index.space_in_values()
        index.insert(["x1", "x2", "x3"])
        assert index.space_in_values() >= before

    def test_insert_search_insert_search(self, tiny_records):
        """Regression: inserting after a search must invalidate the finalized
        query-time caches so the next search sees the new record."""
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0, buffer_size=2)
        first_id = index.insert(["z1", "z2", "z3", "z4"])
        first_hits = {hit.record_id for hit in index.search(["z1", "z2", "z3", "z4"], 0.9)}
        assert first_id in first_hits
        # A second insert lands after the store finalized for the first search.
        second_id = index.insert(["w1", "w2", "w3", "w4"])
        second_hits = {hit.record_id for hit in index.search(["w1", "w2", "w3", "w4"], 0.9)}
        assert second_id in second_hits
        # The earlier record is still scored correctly too.
        again = {hit.record_id for hit in index.search(["z1", "z2", "z3", "z4"], 0.9)}
        assert first_id in again
        assert index.num_records == len(tiny_records) + 2

    def test_insert_after_search_visible_to_search_many(self, tiny_records):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0, buffer_size=2)
        index.search(tiny_records[0], 0.5)
        new_id = index.insert(["y1", "y2", "y3", "y4", "y5"])
        batched = index.search_many([["y1", "y2", "y3", "y4", "y5"]], 0.9)
        assert new_id in {hit.record_id for hit in batched[0]}


class TestRefitThreshold:
    def test_refit_shrinks_when_over_budget(self, zipf_records):
        base = zipf_records[:150]
        extra = zipf_records[150:300]
        index = GBKMVIndex.build(base, space_fraction=0.1, buffer_size=0)
        original_threshold = index.threshold
        for record in extra:
            index.insert(record)
        assert index.space_in_values() > index.budget  # over budget before refit
        new_threshold = index.refit_threshold()
        assert new_threshold <= original_threshold
        assert index.space_in_values() <= index.budget * 1.05

    def test_refit_is_noop_when_under_budget(self, tiny_records):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0, buffer_size=0)
        threshold = index.threshold
        assert index.refit_threshold() == threshold

    def test_search_still_correct_after_refit(self, zipf_records):
        base = zipf_records[:150]
        extra = zipf_records[150:200]
        index = GBKMVIndex.build(base, space_fraction=0.2, buffer_size=0)
        for record in extra:
            index.insert(record)
        index.refit_threshold()
        # The vectorised search must stay consistent with per-sketch estimates.
        query = zipf_records[160]
        hits = {hit.record_id: hit.score for hit in index.search(query, threshold=0.0)}
        query_sketch = index.query_sketch(query)
        q = len(set(query))
        for record_id in (0, 50, 150, 199):
            expected = query_sketch.intersection_size_estimate(index.sketch(record_id)) / q
            assert hits[record_id] == pytest.approx(expected, abs=1e-9)
