"""Tests for dynamic insertion and threshold refitting of GBKMVIndex."""

from __future__ import annotations

import pytest

from repro._errors import ConfigurationError
from repro.core import GBKMVIndex


class TestInsert:
    def test_insert_returns_new_record_id(self, tiny_records):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0, buffer_size=2)
        new_id = index.insert(["e1", "e2", "e3"])
        assert new_id == 4
        assert index.num_records == 5

    def test_inserted_record_is_searchable(self, tiny_records):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0, buffer_size=2)
        index.insert(["e1", "e2", "e3", "e5", "e7", "e9"])
        hits = index.search(["e1", "e2", "e3", "e5", "e7", "e9"], threshold=0.99)
        assert 4 in {hit.record_id for hit in hits}

    def test_insert_empty_record_rejected(self, tiny_records):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0)
        with pytest.raises(ConfigurationError):
            index.insert([])

    def test_insert_updates_space_accounting(self, tiny_records):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0, buffer_size=0)
        before = index.space_in_values()
        index.insert(["x1", "x2", "x3"])
        assert index.space_in_values() >= before

    def test_insert_search_insert_search(self, tiny_records):
        """Regression: inserting after a search must invalidate the finalized
        query-time caches so the next search sees the new record."""
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0, buffer_size=2)
        first_id = index.insert(["z1", "z2", "z3", "z4"])
        first_hits = {hit.record_id for hit in index.search(["z1", "z2", "z3", "z4"], 0.9)}
        assert first_id in first_hits
        # A second insert lands after the store finalized for the first search.
        second_id = index.insert(["w1", "w2", "w3", "w4"])
        second_hits = {hit.record_id for hit in index.search(["w1", "w2", "w3", "w4"], 0.9)}
        assert second_id in second_hits
        # The earlier record is still scored correctly too.
        again = {hit.record_id for hit in index.search(["z1", "z2", "z3", "z4"], 0.9)}
        assert first_id in again
        assert index.num_records == len(tiny_records) + 2

    def test_insert_after_search_visible_to_search_many(self, tiny_records):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0, buffer_size=2)
        index.search(tiny_records[0], 0.5)
        new_id = index.insert(["y1", "y2", "y3", "y4", "y5"])
        batched = index.search_many([["y1", "y2", "y3", "y4", "y5"]], 0.9)
        assert new_id in {hit.record_id for hit in batched[0]}


class TestDelete:
    def test_deleted_record_vanishes_from_all_search_paths(self, tiny_records):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0, buffer_size=2)
        index.delete(1)
        query = tiny_records[1]
        assert 1 not in {hit.record_id for hit in index.search(query, 0.0)}
        assert 1 not in {
            hit.record_id for hit in index.search_many([query], 0.0)[0]
        }
        assert 1 not in {hit.record_id for hit in index.top_k(query, k=10)}
        assert index.num_records == len(tiny_records) - 1

    def test_delete_unknown_or_double_raises(self, tiny_records):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0)
        with pytest.raises(ConfigurationError):
            index.delete(99)
        index.delete(2)
        with pytest.raises(ConfigurationError):
            index.delete(2)

    def test_insert_after_delete_gets_fresh_id(self, tiny_records):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0)
        index.delete(0)
        new_id = index.insert(["n1", "n2", "n3"])
        assert new_id == len(tiny_records)  # ids are never reused
        assert index.num_records == len(tiny_records)

    def test_surviving_scores_unchanged_by_delete(self, tiny_records, example_query):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0, buffer_size=2)
        before = {
            hit.record_id: hit.score for hit in index.search(example_query, 0.0)
        }
        index.delete(3)
        after = {hit.record_id: hit.score for hit in index.search(example_query, 0.0)}
        del before[3]
        assert after == before

    def test_heavy_deletes_trigger_compaction_and_keep_ids(self, zipf_records):
        records = zipf_records[:80]
        index = GBKMVIndex.build(records, space_fraction=0.5, buffer_size=0)
        survivors = [record_id for record_id in range(80) if record_id % 3 == 0]
        for record_id in range(80):
            if record_id % 3 != 0:
                index.delete(record_id)
        hits = index.search(records[0], threshold=0.0)
        assert index.store.num_dead == 0  # the search compacted
        assert sorted(hit.record_id for hit in hits) == survivors
        # Scores under the surviving ids still match the per-sketch estimator.
        query_sketch = index.query_sketch(records[0])
        q = len(set(records[0]))
        by_id = {hit.record_id: hit.score for hit in hits}
        for record_id in survivors[:5]:
            expected = query_sketch.intersection_size_estimate(index.sketch(record_id)) / q
            assert by_id[record_id] == pytest.approx(expected, abs=1e-12)


class TestUpdate:
    def test_update_replaces_content_under_same_id(self, tiny_records):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0, buffer_size=2)
        returned = index.update(2, ["u1", "u2", "u3", "u4"])
        assert returned == 2
        assert index.num_records == len(tiny_records)
        assert 2 in {hit.record_id for hit in index.search(["u1", "u2", "u3", "u4"], 0.9)}
        # The old content no longer matches under the updated id.
        old_hits = {hit.record_id: hit.score for hit in index.search(tiny_records[2], 0.0)}
        assert old_hits[2] < 1.0

    def test_update_to_empty_rejected(self, tiny_records):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0)
        with pytest.raises(ConfigurationError):
            index.update(0, [])

    def test_update_unknown_id_rejected(self, tiny_records):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0)
        with pytest.raises(ConfigurationError):
            index.update(50, ["a", "b"])

    def test_top_k_tie_order_matches_search_after_update(self):
        """Regression: top_k must break score ties by record id (like
        search), not by physical row, which an update reorders."""
        records = [["a", "b", "c"], ["a", "b", "c"], ["x", "y", "z"]]
        index = GBKMVIndex.build(records, space_fraction=1.0, buffer_size=0)
        index.update(0, ["a", "b", "c"])  # id 0 moves to the last physical row
        top = [(hit.record_id, hit.score) for hit in index.top_k(["a", "b", "c"], 2)]
        ranked = [(hit.record_id, hit.score) for hit in index.search(["a", "b", "c"], 0.5)]
        assert top == ranked == [(0, 1.0), (1, 1.0)]


class TestMixedStreamMatchesFreshIndex:
    def test_interleaved_insert_search_equals_from_scratch(self, zipf_records):
        base = zipf_records[:120]
        extra = zipf_records[120:160]
        built = GBKMVIndex.build(base, space_fraction=0.2, buffer_size=4)
        index = GBKMVIndex.from_parameters(
            base, built.vocabulary, built.threshold, built.hasher, built.budget
        )
        index.store.finalize()
        for record in extra:
            index.insert(record)
            index.search(record, 0.5)  # force an incremental merge each step
        fresh = GBKMVIndex.from_parameters(
            list(base) + list(extra),
            built.vocabulary,
            built.threshold,
            built.hasher,
            built.budget,
        )
        queries = [zipf_records[i] for i in (0, 60, 125, 155)]
        incremental_results = index.search_many(queries, 0.3)
        fresh_results = fresh.search_many(queries, 0.3)
        assert [
            [(hit.record_id, hit.score) for hit in hits]
            for hits in incremental_results
        ] == [
            [(hit.record_id, hit.score) for hit in hits] for hits in fresh_results
        ]

    def test_refit_then_insert_then_search_matches_fresh_index(self, zipf_records):
        """Satellite regression: truncate_values (via refit_threshold)
        followed by insert and search must equal a from-scratch build at
        the refitted threshold."""
        base = zipf_records[:150]
        extra = zipf_records[150:220]
        index = GBKMVIndex.build(base, space_fraction=0.1, buffer_size=0)
        for record in extra:
            index.insert(record)
        index.refit_threshold()  # truncates the stored values
        late = zipf_records[220:240]
        for record in late:
            index.insert(record)
        fresh = GBKMVIndex.from_parameters(
            list(base) + list(extra) + list(late),
            index.vocabulary,
            index.threshold,
            index.hasher,
            index.budget,
        )
        queries = [zipf_records[i] for i in (10, 160, 225)]
        assert [
            [(hit.record_id, hit.score) for hit in hits]
            for hits in index.search_many(queries, 0.4)
        ] == [
            [(hit.record_id, hit.score) for hit in hits]
            for hits in fresh.search_many(queries, 0.4)
        ]


class TestRefitThreshold:
    def test_refit_shrinks_when_over_budget(self, zipf_records):
        base = zipf_records[:150]
        extra = zipf_records[150:300]
        index = GBKMVIndex.build(base, space_fraction=0.1, buffer_size=0)
        original_threshold = index.threshold
        for record in extra:
            index.insert(record)
        assert index.space_in_values() > index.budget  # over budget before refit
        new_threshold = index.refit_threshold()
        assert new_threshold <= original_threshold
        assert index.space_in_values() <= index.budget * 1.05

    def test_refit_is_noop_when_under_budget(self, tiny_records):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0, buffer_size=0)
        threshold = index.threshold
        assert index.refit_threshold() == threshold

    def test_search_still_correct_after_refit(self, zipf_records):
        base = zipf_records[:150]
        extra = zipf_records[150:200]
        index = GBKMVIndex.build(base, space_fraction=0.2, buffer_size=0)
        for record in extra:
            index.insert(record)
        index.refit_threshold()
        # The vectorised search must stay consistent with per-sketch estimates.
        query = zipf_records[160]
        hits = {hit.record_id: hit.score for hit in index.search(query, threshold=0.0)}
        query_sketch = index.query_sketch(query)
        q = len(set(query))
        for record_id in (0, 50, 150, 199):
            expected = query_sketch.intersection_size_estimate(index.sketch(record_id)) / q
            assert hits[record_id] == pytest.approx(expected, abs=1e-9)
