"""Unit tests for MinHash signatures (repro.minhash.signature)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._errors import ConfigurationError, SketchCompatibilityError
from repro.exact import containment_similarity, jaccard_similarity
from repro.hashing import HashFamily
from repro.minhash import MinHashSignature


class TestConstruction:
    def test_signature_length_equals_family_size(self, family):
        signature = MinHashSignature.from_record(range(20), family)
        assert signature.size == family.size
        assert len(signature) == family.size
        assert signature.record_size == 20

    def test_duplicates_ignored(self, family):
        a = MinHashSignature.from_record([1, 2, 2, 3], family)
        b = MinHashSignature.from_record([1, 2, 3], family)
        np.testing.assert_array_equal(a.values, b.values)
        assert a.record_size == b.record_size == 3

    def test_empty_record_rejected(self, family):
        with pytest.raises(ConfigurationError):
            MinHashSignature.from_record([], family)

    def test_values_read_only(self, family):
        signature = MinHashSignature.from_record(range(5), family)
        with pytest.raises(ValueError):
            signature.values[0] = 0.0

    def test_wrong_length_rejected(self, family):
        with pytest.raises(ConfigurationError):
            MinHashSignature(np.zeros(3), record_size=5, family=family)

    def test_memory_accounting(self, family):
        signature = MinHashSignature.from_record(range(5), family)
        assert signature.memory_in_values() == family.size

    def test_repr(self, family):
        assert "MinHashSignature" in repr(MinHashSignature.from_record(range(5), family))


class TestJaccardEstimate:
    def test_identical_records_estimate_one(self, family):
        a = MinHashSignature.from_record(range(50), family)
        b = MinHashSignature.from_record(range(50), family)
        assert a.jaccard_estimate(b) == 1.0

    def test_disjoint_records_estimate_near_zero(self, family):
        a = MinHashSignature.from_record(range(0, 500), family)
        b = MinHashSignature.from_record(range(500, 1000), family)
        assert a.jaccard_estimate(b) < 0.1

    def test_estimate_close_to_truth(self):
        family = HashFamily(size=512, seed=3)
        x = set(range(0, 600))
        y = set(range(300, 900))
        a = MinHashSignature.from_record(x, family)
        b = MinHashSignature.from_record(y, family)
        truth = jaccard_similarity(x, y)
        assert abs(a.jaccard_estimate(b) - truth) < 0.1

    def test_symmetry(self, family):
        a = MinHashSignature.from_record(range(0, 40), family)
        b = MinHashSignature.from_record(range(20, 60), family)
        assert a.jaccard_estimate(b) == b.jaccard_estimate(a)

    def test_different_families_rejected(self):
        a = MinHashSignature.from_record(range(10), HashFamily(16, seed=1))
        b = MinHashSignature.from_record(range(10), HashFamily(16, seed=2))
        with pytest.raises(SketchCompatibilityError):
            a.jaccard_estimate(b)


class TestContainmentEstimate:
    def test_transformation_matches_equation_14(self):
        family = HashFamily(size=256, seed=5)
        query = set(range(0, 100))
        record = set(range(50, 400))
        q_sig = MinHashSignature.from_record(query, family)
        x_sig = MinHashSignature.from_record(record, family)
        s_hat = q_sig.jaccard_estimate(x_sig)
        expected = (len(record) / len(query) + 1.0) * s_hat / (1.0 + s_hat)
        assert q_sig.containment_estimate(x_sig) == pytest.approx(min(expected, 1.0))

    def test_estimate_close_to_truth(self):
        family = HashFamily(size=512, seed=9)
        query = set(range(0, 200))
        record = set(range(100, 700))
        q_sig = MinHashSignature.from_record(query, family)
        x_sig = MinHashSignature.from_record(record, family)
        truth = containment_similarity(query, record)
        assert abs(q_sig.containment_estimate(x_sig) - truth) < 0.15

    def test_clamped_to_one(self, family):
        a = MinHashSignature.from_record(range(10), family)
        b = MinHashSignature.from_record(range(1000), family)
        assert a.containment_estimate(b) <= 1.0

    def test_explicit_query_size(self, family):
        a = MinHashSignature.from_record(range(10), family)
        b = MinHashSignature.from_record(range(5, 15), family)
        default = a.containment_estimate(b)
        doubled = a.containment_estimate(b, query_size=20)
        assert doubled <= default

    def test_invalid_query_size(self, family):
        a = MinHashSignature.from_record(range(10), family)
        with pytest.raises(ConfigurationError):
            a.containment_estimate(a, query_size=0)


class TestBandHashes:
    def test_band_count_and_determinism(self, family):
        signature = MinHashSignature.from_record(range(30), family)
        bands = signature.band_hashes(num_bands=8, rows_per_band=8)
        assert len(bands) == 8
        assert bands == signature.band_hashes(num_bands=8, rows_per_band=8)

    def test_identical_signatures_share_all_bands(self, family):
        a = MinHashSignature.from_record(range(30), family)
        b = MinHashSignature.from_record(range(30), family)
        assert a.band_hashes(8, 8) == b.band_hashes(8, 8)

    def test_too_many_rows_rejected(self, family):
        signature = MinHashSignature.from_record(range(30), family)
        with pytest.raises(ConfigurationError):
            signature.band_hashes(num_bands=9, rows_per_band=8)

    def test_invalid_band_shape_rejected(self, family):
        signature = MinHashSignature.from_record(range(30), family)
        with pytest.raises(ConfigurationError):
            signature.band_hashes(num_bands=0, rows_per_band=8)
