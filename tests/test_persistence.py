"""Snapshot persistence tests: save → load must round-trip exactly.

The contract is bitwise: a persisted-then-loaded index answers
``search_many`` with float-for-float identical scores, because the
snapshot carries the exact stored hash values, the vocabulary, the
threshold and the hasher seed — everything the estimator arithmetic
consumes.  The workload mirrors the paper's Figure-17 setup (queries
drawn uniformly from the dataset, threshold 0.5).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._errors import ConfigurationError
from repro.baselines.kmv_search import GKMVSearchIndex, KMVSearchIndex
from repro.core import GBKMVIndex
from repro.datasets import sample_queries


def _flatten(results):
    return [[(hit.record_id, hit.score) for hit in hits] for hits in results]


@pytest.fixture
def fig17_workload(zipf_records):
    """Fig-17-style queries: drawn uniformly from the dataset, t* = 0.5."""
    queries, _ids = sample_queries(zipf_records, num_queries=25, seed=13)
    return queries


class TestGBKMVIndexRoundTrip:
    def test_search_many_scores_bitwise_identical(
        self, zipf_records, fig17_workload, tmp_path
    ):
        index = GBKMVIndex.build(zipf_records, space_fraction=0.1)
        path = tmp_path / "gbkmv.npz"
        index.save(path)
        loaded = GBKMVIndex.load(path)
        original = index.search_many(fig17_workload, threshold=0.5)
        restored = loaded.search_many(fig17_workload, threshold=0.5)
        assert _flatten(original) == _flatten(restored)

    def test_parameters_survive(self, zipf_records, tmp_path):
        index = GBKMVIndex.build(zipf_records[:100], space_fraction=0.15)
        path = tmp_path / "gbkmv.npz"
        index.save(path)
        loaded = GBKMVIndex.load(path)
        assert loaded.threshold == index.threshold
        assert loaded.budget == index.budget
        assert loaded.hasher == index.hasher
        assert loaded.vocabulary == index.vocabulary
        assert loaded.num_records == index.num_records
        assert loaded.space_in_values() == index.space_in_values()

    def test_round_trip_after_mutations(self, zipf_records, fig17_workload, tmp_path):
        index = GBKMVIndex.build(zipf_records, space_fraction=0.2, buffer_size=8)
        index.insert(zipf_records[3])
        index.delete(7)
        index.update(11, zipf_records[5])
        path = tmp_path / "gbkmv.npz"
        index.save(path)
        loaded = GBKMVIndex.load(path)
        assert _flatten(index.search_many(fig17_workload, 0.5)) == _flatten(
            loaded.search_many(fig17_workload, 0.5)
        )

    def test_loaded_index_stays_dynamic(self, tiny_records, tmp_path):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0, buffer_size=2)
        path = tmp_path / "gbkmv.npz"
        index.save(path)
        loaded = GBKMVIndex.load(path)
        new_id = loaded.insert(["p1", "p2", "p3"])
        assert new_id == len(tiny_records)
        loaded.delete(0)
        hits = {hit.record_id for hit in loaded.search(["p1", "p2", "p3"], 0.9)}
        assert new_id in hits

    def test_integer_element_vocabulary_round_trips(self, zipf_records, tmp_path):
        # zipf records hold numpy integers; the snapshot must bring the
        # vocabulary back as plain ints that hash identically.
        index = GBKMVIndex.build(zipf_records[:80], space_fraction=0.3, buffer_size=16)
        path = tmp_path / "gbkmv.npz"
        index.save(path)
        loaded = GBKMVIndex.load(path)
        assert [int(e) for e in loaded.vocabulary.elements] == [
            int(e) for e in index.vocabulary.elements
        ]

    def test_version_mismatch_rejected(self, tiny_records, tmp_path):
        import json

        index = GBKMVIndex.build(tiny_records, space_fraction=1.0)
        path = tmp_path / "gbkmv.npz"
        index.save(path)
        with np.load(path) as data:
            arrays = {name: data[name] for name in data.files}
        meta = json.loads(str(arrays["index_meta"][()]))
        meta["format_version"] = 99
        arrays["index_meta"] = np.array(json.dumps(meta))
        bad_path = tmp_path / "bad.npz"
        np.savez_compressed(bad_path, **arrays)
        with pytest.raises(ConfigurationError):
            GBKMVIndex.load(bad_path)


class TestBaselineRoundTrips:
    def test_kmv_search_bitwise_identical(self, zipf_records, fig17_workload, tmp_path):
        index = KMVSearchIndex.build(zipf_records, space_fraction=0.1)
        index.insert(zipf_records[2])
        index.delete(5)
        path = tmp_path / "kmv.npz"
        index.save(path)
        loaded = KMVSearchIndex.load(path)
        assert loaded.k_per_record == index.k_per_record
        assert loaded.num_records == index.num_records
        assert _flatten(index.search_many(fig17_workload, 0.5)) == _flatten(
            loaded.search_many(fig17_workload, 0.5)
        )

    def test_gkmv_search_bitwise_identical(self, zipf_records, fig17_workload, tmp_path):
        index = GKMVSearchIndex.build(zipf_records, space_fraction=0.1)
        path = tmp_path / "gkmv.npz"
        index.save(path)
        loaded = GKMVSearchIndex.load(path)
        assert loaded.threshold == index.threshold
        assert _flatten(index.search_many(fig17_workload, 0.5)) == _flatten(
            loaded.search_many(fig17_workload, 0.5)
        )


class TestSnapshotFormat:
    """Self-describing snapshots: tags, legacy payloads, clear failures."""

    def test_version_mismatch_raises_snapshot_format_error(
        self, tiny_records, tmp_path
    ):
        import json

        from repro._errors import SnapshotFormatError

        index = GBKMVIndex.build(tiny_records, space_fraction=1.0)
        path = tmp_path / "gbkmv.npz"
        index.save(path)
        with np.load(path) as data:
            arrays = {name: data[name] for name in data.files}
        meta = json.loads(str(arrays["index_meta"][()]))
        meta["format_version"] = 99
        arrays["index_meta"] = np.array(json.dumps(meta))
        bad_path = tmp_path / "bad.npz"
        np.savez_compressed(bad_path, **arrays)
        with pytest.raises(SnapshotFormatError):
            GBKMVIndex.load(bad_path)

    def test_foreign_payload_raises_snapshot_format_error(self, tmp_path):
        from repro._errors import SnapshotFormatError

        path = tmp_path / "not_an_index.npz"
        np.savez_compressed(path, some_array=np.arange(5))
        with pytest.raises(SnapshotFormatError):
            GBKMVIndex.load(path)
        with pytest.raises(SnapshotFormatError):
            KMVSearchIndex.load(path)

    def test_truncated_payload_raises_snapshot_format_error(
        self, tiny_records, tmp_path
    ):
        from repro._errors import SnapshotFormatError

        index = GBKMVIndex.build(tiny_records, space_fraction=1.0)
        path = tmp_path / "gbkmv.npz"
        index.save(path)
        with np.load(path) as data:
            arrays = {name: data[name] for name in data.files}
        arrays.pop("values", None)  # drop a store column
        truncated = tmp_path / "truncated.npz"
        np.savez_compressed(truncated, **arrays)
        with pytest.raises(SnapshotFormatError):
            GBKMVIndex.load(truncated)


class TestOpenIndex:
    """`repro.api.open_index` dispatches on the embedded backend id."""

    def test_gbkmv_snapshot_restores_bitwise(
        self, zipf_records, fig17_workload, tmp_path
    ):
        from repro.api import open_index

        index = GBKMVIndex.build(zipf_records, space_fraction=0.1)
        path = tmp_path / "gbkmv.npz"
        index.save(path)
        restored = open_index(path)
        assert isinstance(restored, GBKMVIndex)
        assert _flatten(index.search_many(fig17_workload, 0.5)) == _flatten(
            restored.search_many(fig17_workload, 0.5)
        )

    def test_gkmv_snapshot_restores_the_wrapper(self, zipf_records, tmp_path):
        from repro.api import open_index

        index = GKMVSearchIndex.build(zipf_records[:80], space_fraction=0.1)
        path = tmp_path / "gkmv.npz"
        index.save(path)
        restored = open_index(path)
        assert isinstance(restored, GKMVSearchIndex)
        assert restored.threshold == index.threshold

    def test_legacy_untagged_snapshot_still_opens(self, zipf_records, tmp_path):
        # Snapshots written before the api_meta tag existed are recognised
        # by their payload keys.
        from repro.api import open_index

        index = GBKMVIndex.build(zipf_records[:60], space_fraction=0.2)
        path = tmp_path / "tagged.npz"
        index.save(path)
        with np.load(path) as data:
            arrays = {
                name: data[name] for name in data.files if name != "api_meta"
            }
        legacy = tmp_path / "legacy.npz"
        np.savez_compressed(legacy, **arrays)
        restored = open_index(legacy)
        assert isinstance(restored, GBKMVIndex)
        assert restored.num_records == index.num_records

    def test_unrecognisable_file_raises_snapshot_format_error(self, tmp_path):
        from repro._errors import SnapshotFormatError
        from repro.api import open_index

        path = tmp_path / "garbage.npz"
        np.savez_compressed(path, stuff=np.arange(3))
        with pytest.raises(SnapshotFormatError):
            open_index(path)
        text = tmp_path / "not_even_npz.txt"
        text.write_text("hello")
        with pytest.raises(SnapshotFormatError):
            open_index(text)
