"""SimilarityService end-to-end: identity, visibility policies, lifecycle.

The serving front's contract is *transparency*: every answer it returns
must be bitwise identical to calling the wrapped index directly, no
matter how requests were fused or writes coalesced.  These tests pin
that identity, the two visibility policies, the flush triggers
(buffer-full and lag deadline), and the drain/close lifecycle.  The
closed-loop load generator is exercised here too — tiny runs, shape
assertions only; ``benchmarks/test_serving.py`` owns the real numbers.

No pytest-asyncio in the toolchain: each test drives its coroutine with
``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.api import (
    CapabilityError,
    ConfigurationError,
    ServingConfig,
    create_index,
)
from repro.core.index import GBKMVIndex
from repro.datasets import generate_zipf_dataset, sample_queries
from repro.serving import SimilarityService, run_closed_loop, run_load

THRESHOLD = 0.5


@pytest.fixture(scope="module")
def records() -> list[list[int]]:
    return generate_zipf_dataset(
        num_records=120,
        universe_size=900,
        element_exponent=1.1,
        size_exponent=3.0,
        min_record_size=10,
        max_record_size=50,
        seed=23,
    )


@pytest.fixture(scope="module")
def queries(records) -> list[list[int]]:
    sampled, _ids = sample_queries(records, num_queries=8, seed=5)
    return sampled


def fresh_index(records) -> GBKMVIndex:
    return GBKMVIndex.build(records, space_fraction=0.5)


class TestQueryIdentity:
    def test_search_matches_direct_index_calls(self, records, queries):
        index = fresh_index(records)
        expected = [index.search(query, THRESHOLD) for query in queries]

        async def scenario():
            async with SimilarityService(index, close_index=False) as service:
                return [
                    await service.search(query, THRESHOLD) for query in queries
                ]

        assert asyncio.run(scenario()) == expected

    def test_concurrent_searches_fuse_and_match_search_many(
        self, records, queries
    ):
        index = fresh_index(records)
        expected = index.search_many(queries, THRESHOLD)

        async def scenario():
            async with SimilarityService(index, close_index=False) as service:
                results = await asyncio.gather(
                    *(service.search(query, THRESHOLD) for query in queries)
                )
                return results, service.stats()

        results, stats = asyncio.run(scenario())
        assert results == expected
        # The burst landed in one loop iteration: it must have fused.
        assert stats.batcher.requests == len(queries)
        assert stats.batcher.batches < len(queries)
        assert stats.batcher.largest_batch > 1

    def test_top_k_matches_direct_index_calls(self, records, queries):
        index = fresh_index(records)
        expected = index.top_k_many(queries, 5)

        async def scenario():
            async with SimilarityService(index, close_index=False) as service:
                return await asyncio.gather(
                    *(service.top_k(query, 5) for query in queries)
                )

        assert asyncio.run(scenario()) == expected

    def test_different_thresholds_do_not_fuse(self, records, queries):
        index = fresh_index(records)

        async def scenario():
            async with SimilarityService(index, close_index=False) as service:
                low, high = await asyncio.gather(
                    service.search(queries[0], 0.1),
                    service.search(queries[0], 0.9),
                )
                return low, high, service.stats()

        low, high, stats = asyncio.run(scenario())
        assert low == index.search(queries[0], 0.1)
        assert high == index.search(queries[0], 0.9)
        assert stats.batcher.batches == 2

    def test_query_size_override_matches_direct_call(self, records, queries):
        index = fresh_index(records)
        expected = index.search(queries[0], THRESHOLD, query_size=500)

        async def scenario():
            async with SimilarityService(index, close_index=False) as service:
                return await service.search(queries[0], THRESHOLD, query_size=500)

        assert asyncio.run(scenario()) == expected


class TestVisibilityPolicies:
    def test_read_your_writes_sees_the_insert_immediately(self, records):
        index = fresh_index(records)
        new_id = len(records)

        async def scenario():
            config = ServingConfig(visibility="read-your-writes")
            async with SimilarityService(index, config) as service:
                assert await service.insert(records[0]) == new_id
                hits = await service.search(records[0], 0.0)
                return {hit.record_id for hit in hits}, service.pending_writes

        hit_ids, pending = asyncio.run(scenario())
        assert new_id in hit_ids
        assert pending == 0  # the query flushed the buffer

    def test_buffered_delete_is_never_visible(self, records):
        index = fresh_index(records)

        async def scenario():
            async with SimilarityService(index, close_index=False) as service:
                doomed = await service.insert(records[0])
                await service.delete(doomed)
                hits = await service.search(records[0], 0.0)
                return doomed, {hit.record_id for hit in hits}

        doomed, hit_ids = asyncio.run(scenario())
        assert doomed not in hit_ids
        # Exactly-once: the buffered insert+delete flushed once, so the
        # live count is back to the original corpus.
        assert index.num_records == len(records)

    def test_bounded_staleness_defers_the_flush(self, records):
        index = fresh_index(records)
        new_id = len(records)

        async def scenario():
            config = ServingConfig(
                visibility="bounded-staleness", max_write_lag_ms=30.0
            )
            async with SimilarityService(index, config) as service:
                await service.insert(records[0])
                hits = await service.search(records[0], 0.0)
                stale_ids = {hit.record_id for hit in hits}
                stale_pending = service.pending_writes
                # Wait out the lag deadline; the timer flush runs in the
                # background lane.
                deadline = 100
                while service.pending_writes and deadline:
                    await asyncio.sleep(0.01)
                    deadline -= 1
                hits = await service.search(records[0], 0.0)
                return stale_ids, stale_pending, {hit.record_id for hit in hits}

        stale_ids, stale_pending, fresh_ids = asyncio.run(scenario())
        assert new_id not in stale_ids  # the query did not flush
        assert stale_pending == 1
        assert new_id in fresh_ids  # but the lag deadline did

    def test_full_buffer_flushes_without_waiting_for_the_lag(self, records):
        index = fresh_index(records)

        async def scenario():
            config = ServingConfig(
                visibility="bounded-staleness",
                max_write_lag_ms=60_000.0,  # the lag never fires in-test
                max_buffered_writes=4,
            )
            async with SimilarityService(index, config) as service:
                for i in range(4):
                    await service.insert(records[i])
                deadline = 100
                while service.pending_writes and deadline:
                    await asyncio.sleep(0.01)
                    deadline -= 1
                return service.pending_writes, service.stats()

        pending, stats = asyncio.run(scenario())
        assert pending == 0
        assert stats.writes.flushes >= 1
        assert stats.writes.flushed_operations == 4

    def test_unknown_visibility_policy_is_rejected(self, records):
        index = fresh_index(records)
        with pytest.raises(ConfigurationError, match="visibility"):
            SimilarityService(index, ServingConfig(visibility="psychic"))
        index.close()


class TestLifecycle:
    def test_close_drains_buffered_writes_exactly_once(self, records):
        index = fresh_index(records)

        async def scenario():
            config = ServingConfig(
                visibility="bounded-staleness", max_write_lag_ms=60_000.0
            )
            service = SimilarityService(index, config, close_index=False)
            for i in range(5):
                await service.insert(records[i])
            await service.close()
            return service.stats()

        stats = asyncio.run(scenario())
        # Every buffered write applied exactly once: a double apply would
        # either raise (id drift) or inflate the record count.
        assert index.num_records == len(records) + 5
        assert stats.writes.flushed_operations == 5
        assert stats.writes.pending == 0

    def test_close_is_idempotent_and_rejects_further_requests(self, records):
        index = fresh_index(records)

        async def scenario():
            service = SimilarityService(index)
            await service.close()
            await service.close()
            assert service.closed
            with pytest.raises(ConfigurationError, match="closed"):
                await service.search(records[0], THRESHOLD)
            with pytest.raises(ConfigurationError, match="closed"):
                await service.insert(records[0])

        asyncio.run(scenario())

    def test_drain_keeps_the_service_open(self, records, queries):
        index = fresh_index(records)

        async def scenario():
            async with SimilarityService(index, close_index=False) as service:
                await service.insert(records[0])
                await service.drain()
                assert service.pending_writes == 0
                # Still serving after the drain.
                return await service.search(queries[0], THRESHOLD)

        assert asyncio.run(scenario()) == index.search(queries[0], THRESHOLD)

    def test_static_backend_serves_reads_and_refuses_writes(self, records, queries):
        static = create_index("brute-force", records)
        expected = static.search(queries[0], THRESHOLD)

        async def scenario():
            async with SimilarityService(static) as service:
                hits = await service.search(queries[0], THRESHOLD)
                assert service.stats().writes is None
                with pytest.raises(CapabilityError, match="not dynamic"):
                    await service.insert(records[0])
                with pytest.raises(CapabilityError):
                    await service.delete(0)
                return hits

        assert asyncio.run(scenario()) == expected

    def test_invalid_configs_are_rejected(self, records):
        index = fresh_index(records)
        for bad in (
            ServingConfig(max_batch_size=0),
            ServingConfig(max_batch_delay_us=-1.0),
            ServingConfig(max_write_lag_ms=-5.0),
            ServingConfig(max_buffered_writes=0),
        ):
            with pytest.raises(ConfigurationError):
                SimilarityService(index, bad)
        index.close()


class TestLoadGenerator:
    def test_closed_loop_report_shape(self, records, queries):
        index = fresh_index(records)

        async def scenario():
            async with SimilarityService(index, close_index=False) as service:
                return await run_closed_loop(
                    service,
                    queries,
                    THRESHOLD,
                    num_clients=4,
                    requests_per_client=6,
                    insert_pool=records[:10],
                    write_fraction=0.4,
                    top_k_fraction=0.25,
                    seed=3,
                )

        report = asyncio.run(scenario())
        assert report.total_requests == 24
        assert report.throughput_rps > 0.0
        assert sum(report.operation_counts.values()) == 24
        assert set(report.operation_counts) <= {"search", "top_k", "insert", "delete"}
        assert report.latency.count == 24
        assert report.latency.p99_ms >= report.latency.p50_ms
        payload = json.dumps(report.as_dict())  # JSON-ready for BENCH_*
        assert "throughput_rps" in payload
        # The drain at the end of the loop leaves nothing buffered.
        assert index.num_records >= len(records)
        index.close()

    def test_closed_loop_is_deterministic_in_request_mix(self, records, queries):
        def run_once():
            index = fresh_index(records)
            service = SimilarityService(index)
            return run_load(
                service,
                queries,
                THRESHOLD,
                num_clients=3,
                requests_per_client=5,
                insert_pool=records[:6],
                write_fraction=0.5,
                seed=11,
            )

        first, second = run_once(), run_once()
        assert first.operation_counts == second.operation_counts
        assert first.total_requests == second.total_requests == 15

    def test_load_generator_validates_inputs(self, records, queries):
        index = fresh_index(records)

        async def scenario():
            async with SimilarityService(index) as service:
                with pytest.raises(ConfigurationError):
                    await run_closed_loop(service, [], THRESHOLD)
                with pytest.raises(ConfigurationError):
                    await run_closed_loop(service, queries, THRESHOLD, num_clients=0)
                with pytest.raises(ConfigurationError):
                    await run_closed_loop(
                        service, queries, THRESHOLD, write_fraction=0.5
                    )  # no insert_pool

        asyncio.run(scenario())
