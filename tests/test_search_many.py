"""The batched query engine must be indistinguishable from looped search."""

from __future__ import annotations

import pytest

from repro._errors import ConfigurationError
from repro.baselines import GKMVSearchIndex, KMVSearchIndex
from repro.core import GBKMVIndex
from repro.datasets import sample_queries
from repro.evaluation import BatchSearcher, evaluate_search_method, exact_result_sets


def _as_pairs(results):
    return [[(hit.record_id, hit.score) for hit in hits] for hits in results]


@pytest.fixture(scope="module")
def workload(zipf_records):
    queries, _ids = sample_queries(zipf_records, num_queries=12, seed=2)
    return queries


@pytest.mark.parametrize("threshold", [0.0, 0.3, 0.7, 1.0])
class TestIdentityWithLoopedSearch:
    def test_gbkmv(self, zipf_records, workload, threshold):
        index = GBKMVIndex.build(zipf_records, space_fraction=0.1)
        looped = [index.search(query, threshold) for query in workload]
        batched = index.search_many(workload, threshold)
        assert _as_pairs(batched) == _as_pairs(looped)

    def test_kmv_baseline(self, zipf_records, workload, threshold):
        index = KMVSearchIndex.build(zipf_records, space_fraction=0.1)
        looped = [index.search(query, threshold) for query in workload]
        batched = index.search_many(workload, threshold)
        assert _as_pairs(batched) == _as_pairs(looped)

    def test_gkmv_baseline(self, zipf_records, workload, threshold):
        index = GKMVSearchIndex.build(zipf_records, space_fraction=0.1)
        looped = [index.search(query, threshold) for query in workload]
        batched = index.search_many(workload, threshold)
        assert _as_pairs(batched) == _as_pairs(looped)


class TestSearchManyValidation:
    def test_empty_workload(self, zipf_records):
        index = GBKMVIndex.build(zipf_records[:50], space_fraction=0.2)
        assert index.search_many([], 0.5) == []

    def test_invalid_threshold_rejected(self, zipf_records):
        index = GBKMVIndex.build(zipf_records[:50], space_fraction=0.2)
        with pytest.raises(ConfigurationError):
            index.search_many([zipf_records[0]], 1.5)

    def test_mismatched_query_sizes_rejected(self, zipf_records):
        index = GBKMVIndex.build(zipf_records[:50], space_fraction=0.2)
        with pytest.raises(ConfigurationError):
            index.search_many([zipf_records[0]], 0.5, query_sizes=[10, 20])

    def test_explicit_query_sizes_match_looped(self, zipf_records):
        index = GBKMVIndex.build(zipf_records[:100], space_fraction=0.2)
        queries = [zipf_records[0], zipf_records[3]]
        sizes = [len(set(query)) * 2 for query in queries]
        looped = [
            index.search(query, 0.25, query_size=size)
            for query, size in zip(queries, sizes)
        ]
        batched = index.search_many(queries, 0.25, query_sizes=sizes)
        assert _as_pairs(batched) == _as_pairs(looped)

    def test_empty_query_rejected(self, zipf_records):
        index = GBKMVIndex.build(zipf_records[:50], space_fraction=0.2)
        with pytest.raises(ConfigurationError):
            index.search_many([[]], 0.5)


class TestHarnessBatchedPath:
    def test_protocol_detection(self, zipf_records):
        index = GBKMVIndex.build(zipf_records[:50], space_fraction=0.2)
        assert isinstance(index, BatchSearcher)
        assert isinstance(KMVSearchIndex.build(zipf_records[:50]), BatchSearcher)

    def test_batched_and_looped_agree_on_accuracy(self, zipf_records, workload):
        records = zipf_records[:150]
        queries = workload[:6]
        truth = exact_result_sets(records, queries, 0.5)
        index = GBKMVIndex.build(records, space_fraction=0.1)
        batched = evaluate_search_method(
            "gbkmv", index, queries, truth, 0.5, use_batched=True
        )
        looped = evaluate_search_method(
            "gbkmv", index, queries, truth, 0.5, use_batched=False
        )
        assert batched.accuracy == looped.accuracy
