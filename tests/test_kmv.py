"""Unit tests for the KMV sketch (repro.core.kmv)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._errors import ConfigurationError, EstimationError, SketchCompatibilityError
from repro.core import KMVSketch
from repro.hashing import UnitHash


class TestConstruction:
    def test_from_record_keeps_k_smallest(self, hasher):
        record = list(range(100))
        sketch = KMVSketch.from_record(record, k=10, hasher=hasher)
        all_hashes = np.sort(hasher.hash_many(record))
        np.testing.assert_allclose(sketch.values, all_hashes[:10])
        assert sketch.k == 10
        assert sketch.size == 10
        assert sketch.record_size == 100

    def test_duplicates_collapsed(self, hasher):
        sketch = KMVSketch.from_record([1, 1, 2, 2, 3], k=10, hasher=hasher)
        assert sketch.record_size == 3
        assert sketch.size == 3

    def test_small_record_is_exact(self, hasher):
        sketch = KMVSketch.from_record([1, 2, 3], k=10, hasher=hasher)
        assert sketch.is_exact
        assert sketch.size == 3

    def test_large_record_is_not_exact(self, hasher):
        sketch = KMVSketch.from_record(range(50), k=5, hasher=hasher)
        assert not sketch.is_exact

    def test_values_sorted(self, hasher):
        sketch = KMVSketch.from_record(range(30), k=8, hasher=hasher)
        assert np.all(np.diff(sketch.values) > 0)

    def test_values_are_read_only(self, hasher):
        sketch = KMVSketch.from_record(range(30), k=8, hasher=hasher)
        with pytest.raises(ValueError):
            sketch.values[0] = 0.5

    def test_from_hash_values(self, hasher):
        sketch = KMVSketch.from_hash_values([0.5, 0.1, 0.3], k=2, hasher=hasher)
        np.testing.assert_allclose(sketch.values, [0.1, 0.3])

    def test_default_hasher_used_when_omitted(self):
        sketch = KMVSketch.from_record([1, 2, 3], k=2)
        assert sketch.hasher == UnitHash()

    def test_invalid_k_rejected(self, hasher):
        with pytest.raises(ConfigurationError):
            KMVSketch.from_record([1, 2], k=0, hasher=hasher)

    def test_too_many_values_rejected(self, hasher):
        with pytest.raises(ConfigurationError):
            KMVSketch(k=2, values=np.array([0.1, 0.2, 0.3]), record_size=3, hasher=hasher)

    def test_unsorted_values_rejected(self, hasher):
        with pytest.raises(ConfigurationError):
            KMVSketch(k=3, values=np.array([0.3, 0.1]), record_size=3, hasher=hasher)

    def test_out_of_range_values_rejected(self, hasher):
        with pytest.raises(ConfigurationError):
            KMVSketch(k=3, values=np.array([0.1, 1.5]), record_size=3, hasher=hasher)

    def test_negative_record_size_rejected(self, hasher):
        with pytest.raises(ConfigurationError):
            KMVSketch(k=3, values=np.array([0.1]), record_size=-1, hasher=hasher)

    def test_repr_and_len(self, hasher):
        sketch = KMVSketch.from_record(range(5), k=3, hasher=hasher)
        assert len(sketch) == 3
        assert "KMVSketch" in repr(sketch)

    def test_equality(self, hasher):
        a = KMVSketch.from_record(range(10), k=4, hasher=hasher)
        b = KMVSketch.from_record(range(10), k=4, hasher=hasher)
        c = KMVSketch.from_record(range(11), k=4, hasher=hasher)
        assert a == b
        assert a != c


class TestDistinctValueEstimate:
    def test_exact_when_sketch_holds_everything(self, hasher):
        sketch = KMVSketch.from_record(range(7), k=100, hasher=hasher)
        assert sketch.distinct_value_estimate() == 7.0

    def test_estimate_close_for_large_sets(self, hasher):
        n = 20_000
        sketch = KMVSketch.from_record(range(n), k=512, hasher=hasher)
        estimate = sketch.distinct_value_estimate()
        assert abs(estimate - n) / n < 0.15

    def test_estimate_requires_two_values(self, hasher):
        sketch = KMVSketch(k=5, values=np.array([0.4]), record_size=50, hasher=hasher)
        with pytest.raises(EstimationError):
            sketch.distinct_value_estimate()

    def test_kth_value_of_empty_sketch_raises(self, hasher):
        sketch = KMVSketch(k=5, values=np.array([]), record_size=0, hasher=hasher)
        with pytest.raises(EstimationError):
            _ = sketch.kth_value


class TestMergeAndUnion:
    def test_merge_uses_min_k(self, hasher):
        a = KMVSketch.from_record(range(100), k=10, hasher=hasher)
        b = KMVSketch.from_record(range(50, 150), k=20, hasher=hasher)
        merged = a.merge(b)
        assert merged.size == 10

    def test_merge_of_exact_sketches_is_exact_union(self, hasher):
        a = KMVSketch.from_record([1, 2, 3], k=10, hasher=hasher)
        b = KMVSketch.from_record([3, 4], k=10, hasher=hasher)
        merged = a.merge(b)
        assert merged.is_exact
        assert merged.record_size == 4

    def test_merge_requires_same_hasher(self):
        a = KMVSketch.from_record(range(10), k=5, hasher=UnitHash(1))
        b = KMVSketch.from_record(range(10), k=5, hasher=UnitHash(2))
        with pytest.raises(SketchCompatibilityError):
            a.merge(b)

    def test_union_estimate_exact_for_small_sets(self, hasher):
        a = KMVSketch.from_record([1, 2, 3], k=10, hasher=hasher)
        b = KMVSketch.from_record([3, 4, 5], k=10, hasher=hasher)
        assert a.union_size_estimate(b) == 5.0

    def test_union_estimate_close_for_large_sets(self, hasher):
        a = KMVSketch.from_record(range(0, 10_000), k=512, hasher=hasher)
        b = KMVSketch.from_record(range(5_000, 15_000), k=512, hasher=hasher)
        estimate = a.union_size_estimate(b)
        assert abs(estimate - 15_000) / 15_000 < 0.2

    def test_union_estimate_needs_two_slots(self, hasher):
        a = KMVSketch.from_record(range(100), k=1, hasher=hasher)
        b = KMVSketch.from_record(range(100), k=1, hasher=hasher)
        with pytest.raises(EstimationError):
            a.union_size_estimate(b)


class TestIntersectionAndContainment:
    def test_exact_for_small_sets(self, hasher):
        a = KMVSketch.from_record([1, 2, 3, 4], k=10, hasher=hasher)
        b = KMVSketch.from_record([3, 4, 5], k=10, hasher=hasher)
        assert a.intersection_size_estimate(b) == 2.0

    def test_disjoint_sets_estimate_zero(self, hasher):
        a = KMVSketch.from_record(range(0, 1000), k=64, hasher=hasher)
        b = KMVSketch.from_record(range(1000, 2000), k=64, hasher=hasher)
        assert a.intersection_size_estimate(b) == 0.0

    def test_estimate_close_for_large_overlap(self, hasher):
        a = KMVSketch.from_record(range(0, 10_000), k=512, hasher=hasher)
        b = KMVSketch.from_record(range(2_000, 12_000), k=512, hasher=hasher)
        estimate = a.intersection_size_estimate(b)
        assert abs(estimate - 8_000) / 8_000 < 0.35

    def test_paper_example_2(self):
        """Example 2: KMV estimate of |Q ∩ X1| on the toy dataset is ≈ 4.04."""
        hasher = UnitHash(0)
        query = KMVSketch.from_hash_values(
            [0.10, 0.24, 0.33, 0.56], k=4, record_size=6, hasher=hasher
        )
        record = KMVSketch.from_hash_values(
            [0.24, 0.33, 0.47], k=3, record_size=5, hasher=hasher
        )
        estimate = query.intersection_size_estimate(record)
        assert estimate == pytest.approx((2 / 3) * (2 / 0.33), rel=1e-9)
        containment = query.containment_estimate(record, query_size=6)
        assert containment == pytest.approx(estimate / 6)

    def test_containment_requires_positive_query_size(self, hasher):
        a = KMVSketch.from_record([1, 2, 3], k=10, hasher=hasher)
        with pytest.raises(ConfigurationError):
            a.containment_estimate(a, query_size=0)

    def test_containment_of_identical_exact_sets_is_one(self, hasher):
        a = KMVSketch.from_record([1, 2, 3, 4], k=10, hasher=hasher)
        assert a.containment_estimate(a, query_size=4) == 1.0

    def test_incompatible_hashers_rejected(self):
        a = KMVSketch.from_record(range(10), k=5, hasher=UnitHash(1))
        b = KMVSketch.from_record(range(10), k=5, hasher=UnitHash(2))
        with pytest.raises(SketchCompatibilityError):
            a.intersection_size_estimate(b)
