"""Unit tests for the GB-KMV sketch (repro.core.gbkmv)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._errors import ConfigurationError, SketchCompatibilityError
from repro.core import FrequentElementVocabulary, GBKMVSketch, GKMVSketch
from repro.hashing import UnitHash


@pytest.fixture
def vocabulary() -> FrequentElementVocabulary:
    return FrequentElementVocabulary(["e1", "e2"])


class TestConstruction:
    def test_from_record_splits_buffer_and_residual(self, vocabulary, hasher):
        sketch = GBKMVSketch.from_record(
            ["e1", "e2", "x", "y", "z"], vocabulary, threshold=1.0, hasher=hasher
        )
        assert sketch.buffer.count == 2
        assert sketch.residual.record_size == 3
        assert sketch.record_size == 5
        assert sketch.threshold == 1.0
        assert sketch.vocabulary is vocabulary

    def test_residual_respects_threshold(self, vocabulary, hasher):
        elements = ["e1"] + [f"tok{i}" for i in range(500)]
        sketch = GBKMVSketch.from_record(elements, vocabulary, threshold=0.1, hasher=hasher)
        assert sketch.residual.size < 500
        assert np.all(sketch.residual.values <= 0.1)

    def test_is_exact_when_threshold_is_one(self, vocabulary, hasher):
        sketch = GBKMVSketch.from_record(["e1", "a", "b"], vocabulary, threshold=1.0, hasher=hasher)
        assert sketch.is_exact

    def test_memory_accounting_includes_buffer_cost(self, vocabulary, hasher):
        sketch = GBKMVSketch.from_record(["e1", "a", "b"], vocabulary, threshold=1.0, hasher=hasher)
        assert sketch.memory_in_values() == pytest.approx(2 + 2 / 32)

    def test_inconsistent_record_size_rejected(self, vocabulary, hasher):
        buffer = vocabulary.buffer_for(["e1", "e2"])
        residual = GKMVSketch.from_record(["a", "b"], threshold=1.0, hasher=hasher)
        with pytest.raises(ConfigurationError):
            GBKMVSketch(buffer=buffer, residual=residual, record_size=3)

    def test_repr(self, vocabulary, hasher):
        sketch = GBKMVSketch.from_record(["e1", "a"], vocabulary, threshold=1.0, hasher=hasher)
        assert "GBKMVSketch" in repr(sketch)


class TestEstimators:
    def test_paper_example_5(self):
        """Example 5: GB-KMV estimate of |Q ∩ X1| is 2 (buffer) + 1.4 (G-KMV) ≈ 3.4."""
        vocabulary = FrequentElementVocabulary(["e1", "e2"])
        hasher = UnitHash(0)
        query_buffer = vocabulary.buffer_for(["e1", "e2"])
        query_residual = GKMVSketch.from_hash_values(
            np.array([0.10, 0.33]), threshold=0.5, record_size=4, hasher=hasher
        )
        query = GBKMVSketch(buffer=query_buffer, residual=query_residual, record_size=6)

        record_buffer = vocabulary.buffer_for(["e1", "e2"])
        record_residual = GKMVSketch.from_hash_values(
            np.array([0.33, 0.47]), threshold=0.5, record_size=3, hasher=hasher
        )
        record = GBKMVSketch(buffer=record_buffer, residual=record_residual, record_size=5)

        residual_estimate = (1 / 3) * (2 / 0.47)
        assert query.intersection_size_estimate(record) == pytest.approx(
            2 + residual_estimate, rel=1e-9
        )
        assert query.containment_estimate(record, query_size=6) == pytest.approx(
            (2 + residual_estimate) / 6, rel=1e-9
        )

    def test_exact_when_threshold_one(self, vocabulary, hasher):
        query = GBKMVSketch.from_record(
            ["e1", "e2", "a", "b", "c"], vocabulary, threshold=1.0, hasher=hasher
        )
        record = GBKMVSketch.from_record(
            ["e2", "b", "c", "d"], vocabulary, threshold=1.0, hasher=hasher
        )
        assert query.intersection_size_estimate(record) == 3.0
        assert query.union_size_estimate(record) == 6.0
        assert query.containment_estimate(record) == pytest.approx(3 / 5)
        assert query.jaccard_estimate(record) == pytest.approx(3 / 6)

    def test_containment_defaults_to_sketch_record_size(self, vocabulary, hasher):
        query = GBKMVSketch.from_record(["e1", "a"], vocabulary, threshold=1.0, hasher=hasher)
        record = GBKMVSketch.from_record(["e1", "b"], vocabulary, threshold=1.0, hasher=hasher)
        assert query.containment_estimate(record) == pytest.approx(0.5)

    def test_containment_rejects_non_positive_query_size(self, vocabulary, hasher):
        query = GBKMVSketch.from_record(["e1"], vocabulary, threshold=1.0, hasher=hasher)
        with pytest.raises(ConfigurationError):
            query.containment_estimate(query, query_size=0)

    def test_union_estimate_without_residual_information(self, vocabulary, hasher):
        query = GBKMVSketch(
            buffer=vocabulary.buffer_for(["e1"]),
            residual=GKMVSketch(threshold=0.01, values=np.array([]), record_size=10, hasher=hasher),
            record_size=11,
        )
        record = GBKMVSketch(
            buffer=vocabulary.buffer_for(["e2"]),
            residual=GKMVSketch(threshold=0.01, values=np.array([]), record_size=5, hasher=hasher),
            record_size=6,
        )
        # Buffer union (2) plus the known residual record sizes (10 + 5).
        assert query.union_size_estimate(record) == 17.0

    def test_incompatible_vocabularies_rejected(self, hasher):
        a_vocab = FrequentElementVocabulary(["a"])
        b_vocab = FrequentElementVocabulary(["b"])
        a = GBKMVSketch.from_record(["a", "x"], a_vocab, threshold=1.0, hasher=hasher)
        b = GBKMVSketch.from_record(["b", "x"], b_vocab, threshold=1.0, hasher=hasher)
        with pytest.raises(SketchCompatibilityError):
            a.intersection_size_estimate(b)

    def test_estimate_accuracy_on_larger_records(self, hasher):
        """Buffer + residual estimate should land near the true overlap."""
        frequent = [f"hot{i}" for i in range(32)]
        vocabulary = FrequentElementVocabulary(frequent)
        query_elements = frequent[:20] + [f"q{i}" for i in range(2_000)]
        record_elements = frequent[:25] + [f"q{i}" for i in range(1_000, 3_000)]
        query = GBKMVSketch.from_record(query_elements, vocabulary, threshold=0.2, hasher=hasher)
        record = GBKMVSketch.from_record(record_elements, vocabulary, threshold=0.2, hasher=hasher)
        true_overlap = len(set(query_elements) & set(record_elements))
        estimate = query.intersection_size_estimate(record)
        assert abs(estimate - true_overlap) / true_overlap < 0.3
