"""Unit tests for the exact similarity functions (repro.exact.similarity)."""

from __future__ import annotations

import pytest

from repro._errors import ConfigurationError
from repro.exact import containment_similarity, jaccard_similarity, overlap_size


class TestOverlapSize:
    def test_basic(self):
        assert overlap_size([1, 2, 3], [2, 3, 4]) == 2

    def test_disjoint(self):
        assert overlap_size([1, 2], [3, 4]) == 0

    def test_duplicates_ignored(self):
        assert overlap_size([1, 1, 2], [1, 2, 2]) == 2

    def test_accepts_sets_and_lists(self):
        assert overlap_size({1, 2, 3}, [3, 4]) == 1

    def test_empty_inputs(self):
        assert overlap_size([], [1, 2]) == 0
        assert overlap_size([], []) == 0


class TestJaccard:
    def test_identical(self):
        assert jaccard_similarity([1, 2, 3], [3, 2, 1]) == 1.0

    def test_disjoint(self):
        assert jaccard_similarity([1], [2]) == 0.0

    def test_partial(self):
        assert jaccard_similarity([1, 2, 3], [2, 3, 4]) == pytest.approx(2 / 4)

    def test_both_empty(self):
        assert jaccard_similarity([], []) == 0.0

    def test_symmetric(self):
        assert jaccard_similarity([1, 2, 3], [3, 4]) == jaccard_similarity([3, 4], [1, 2, 3])

    def test_intro_example(self):
        """The restaurant example from the introduction."""
        x = "five guys burgers and fries downtown brooklyn new york".split()
        y = "five kitchen berkeley".split()
        q = ["five", "guys"]
        assert jaccard_similarity(q, x) == pytest.approx(2 / 9)
        assert jaccard_similarity(q, y) == pytest.approx(1 / 4)


class TestContainment:
    def test_full_containment(self):
        assert containment_similarity([1, 2], [1, 2, 3, 4]) == 1.0

    def test_no_containment(self):
        assert containment_similarity([1, 2], [3, 4]) == 0.0

    def test_partial(self):
        assert containment_similarity([1, 2, 3, 4], [3, 4, 5]) == pytest.approx(0.5)

    def test_asymmetric(self):
        a = [1, 2, 3, 4]
        b = [3, 4]
        assert containment_similarity(a, b) != containment_similarity(b, a)

    def test_empty_query_rejected(self):
        with pytest.raises(ConfigurationError):
            containment_similarity([], [1, 2])

    def test_intro_example(self):
        """Containment fixes the ordering the introduction motivates."""
        x = "five guys burgers and fries downtown brooklyn new york".split()
        y = "five kitchen berkeley".split()
        q = ["five", "guys"]
        assert containment_similarity(q, x) == 1.0
        assert containment_similarity(q, y) == 0.5
        assert containment_similarity(q, x) > containment_similarity(q, y)

    def test_paper_example_1_scores(self, tiny_records, example_query):
        expected = [4 / 6, 3 / 6, 2 / 6, 2 / 6]
        for record, score in zip(tiny_records, expected):
            assert containment_similarity(example_query, record) == pytest.approx(score)
