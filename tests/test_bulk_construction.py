"""Bulk construction pipeline: bitwise identity with the per-record path.

The contract of the bulk builder is absolute: for any dataset the
vectorised pipeline must produce *exactly* the index the record-at-a-time
path produces — same vocabulary, same threshold, same store state arrays,
same ``search_many`` output — and ``insert_many`` must be
indistinguishable from looping ``insert``.  These tests pin that contract
on the dataset shapes that exercise every branch: power-law data,
duplicate elements within a record, singleton records, all-buffer and
all-residual records, string elements, and batched ingest on stores that
have already seen deletes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._errors import ConfigurationError, EmptyDatasetError
from repro.baselines import GKMVSearchIndex, KMVSearchIndex
from repro.core import (
    BuildProfile,
    FingerprintCollisionError,
    FrequentElementVocabulary,
    GBKMVIndex,
    bulk_kmv_value_rows,
    flatten_records,
    slice_flat_records,
    vocabulary_lookup,
)
from repro.datasets import generate_zipf_dataset, sample_queries
from repro.hashing import UnitHash

THRESHOLD = 0.5


def powerlaw_records(num_records: int = 400, seed: int = 3) -> list[list[int]]:
    return generate_zipf_dataset(
        num_records=num_records,
        universe_size=3_000,
        element_exponent=1.15,
        size_exponent=3.0,
        min_record_size=4,
        max_record_size=50,
        seed=seed,
    )


def assert_same_index(bulk: GBKMVIndex, reference: GBKMVIndex, queries) -> None:
    """Vocabulary, threshold, store state and search output all match."""
    assert bulk.vocabulary == reference.vocabulary
    assert bulk.threshold == reference.threshold
    bulk_state = bulk.store.state_arrays()
    reference_state = reference.store.state_arrays()
    assert bulk_state.keys() == reference_state.keys()
    for name in bulk_state:
        assert np.array_equal(bulk_state[name], reference_state[name]), name
    assert bulk.search_many(queries, THRESHOLD) == reference.search_many(
        queries, THRESHOLD
    )


class TestFlattenRecords:
    def test_csr_shape_and_per_record_dedup(self):
        flat = flatten_records([[1, 2, 2, 3], [3, 3], [7]])
        assert flat.num_records == 3
        assert flat.record_sizes.tolist() == [3, 1, 1]
        assert sorted(flat.record_elements(0)) == [1, 2, 3]
        assert flat.record_elements(2) == [7]
        # 3 appears in two records: its count is the containing-record count.
        position = flat.unique_fingerprints.tolist().index(3)
        assert flat.counts[position] == 2

    def test_empty_dataset_raises(self):
        with pytest.raises(EmptyDatasetError):
            flatten_records([])

    def test_empty_record_raises(self):
        with pytest.raises(ConfigurationError):
            flatten_records([[1], []])


class TestBuildIdentity:
    @pytest.mark.parametrize("space_fraction", [0.05, 0.10, 0.30])
    def test_powerlaw_dataset(self, space_fraction):
        records = powerlaw_records()
        queries, _ = sample_queries(records, num_queries=12, seed=9)
        bulk = GBKMVIndex.build(records, space_fraction=space_fraction)
        reference = GBKMVIndex.build(
            records, space_fraction=space_fraction, method="per-record"
        )
        assert_same_index(bulk, reference, queries)

    def test_duplicate_elements_within_records(self):
        records = [[1, 1, 1, 2], [2, 2, 3, 3, 3], [4, 4, 4, 4]]
        bulk = GBKMVIndex.build(records, space_fraction=0.5)
        reference = GBKMVIndex.build(records, space_fraction=0.5, method="per-record")
        assert_same_index(bulk, reference, records)

    def test_singleton_records(self):
        records = [[5], [6], [5], [7]]
        bulk = GBKMVIndex.build(records, space_fraction=0.5)
        reference = GBKMVIndex.build(records, space_fraction=0.5, method="per-record")
        assert_same_index(bulk, reference, records)

    def test_all_buffer_records(self):
        # Buffer wide enough for the whole universe: residuals are empty.
        records = [[1, 2], [2, 3], [1, 3], [1, 2, 3]]
        bulk = GBKMVIndex.build(records, space_fraction=1.0, buffer_size=3)
        reference = GBKMVIndex.build(
            records, space_fraction=1.0, buffer_size=3, method="per-record"
        )
        assert bulk.buffer_size == 3
        assert bulk.store.total_values == 0
        assert_same_index(bulk, reference, records)

    def test_all_residual_records(self):
        records = powerlaw_records(num_records=120)
        bulk = GBKMVIndex.build(records, space_fraction=0.2, buffer_size=0)
        reference = GBKMVIndex.build(
            records, space_fraction=0.2, buffer_size=0, method="per-record"
        )
        assert bulk.buffer_size == 0
        assert_same_index(bulk, reference, records[:10])

    def test_string_elements(self):
        records = [[f"tok{e}" for e in record] for record in powerlaw_records(150)]
        queries, _ = sample_queries(records, num_queries=8, seed=5)
        bulk = GBKMVIndex.build(records, space_fraction=0.15)
        reference = GBKMVIndex.build(
            records, space_fraction=0.15, method="per-record"
        )
        assert_same_index(bulk, reference, queries)

    def test_negative_and_large_int_elements(self):
        records = [[-5, -4, 3], [3, 2**63 + 7, -4], [-5, 2**63 + 7, 11]]
        bulk = GBKMVIndex.build(records, space_fraction=1.0)
        reference = GBKMVIndex.build(records, space_fraction=1.0, method="per-record")
        assert_same_index(bulk, reference, records)

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            GBKMVIndex.build([[1, 2]], method="turbo")

    def test_ndarray_records_match_list_records(self):
        # Integer ndarray records take the no-Python concatenate fast
        # path of flatten_records; the index must be bitwise identical.
        lists = powerlaw_records(num_records=150)
        arrays = [np.asarray(record, dtype=np.int64) for record in lists]
        from_arrays = GBKMVIndex.build(arrays, space_fraction=0.2)
        from_lists = GBKMVIndex.build(lists, space_fraction=0.2)
        assert_same_index(from_arrays, from_lists, lists[:10])

    def test_mixed_width_ndarray_records_fall_back_losslessly(self):
        # int64 + uint64 arrays concatenate to float64; the fast path
        # must detect the lossy promotion and take the exact route.
        records = [
            np.array([-5, -4, 3], dtype=np.int64),
            np.array([3, 2**63 + 7], dtype=np.uint64),
            np.array([11, 2**63 + 7], dtype=np.uint64),
        ]
        reference = [[-5, -4, 3], [3, 2**63 + 7], [11, 2**63 + 7]]
        bulk = GBKMVIndex.build(records, space_fraction=1.0)
        expected = GBKMVIndex.build(
            reference, space_fraction=1.0, method="per-record"
        )
        assert_same_index(bulk, expected, reference)

    def test_generator_records_match_lists(self):
        lists = powerlaw_records(num_records=80)
        generators = [iter(record) for record in lists]
        built = GBKMVIndex.build(generators, space_fraction=0.3)
        expected = GBKMVIndex.build(lists, space_fraction=0.3)
        assert_same_index(built, expected, lists[:10])


class TestFromParametersIdentity:
    def test_pinned_rebuild_matches(self):
        records = powerlaw_records()
        queries, _ = sample_queries(records, num_queries=10, seed=11)
        built = GBKMVIndex.build(records, space_fraction=0.1)
        bulk = GBKMVIndex.from_parameters(
            records,
            vocabulary=built.vocabulary,
            threshold=built.threshold,
            hasher=built.hasher,
            budget=built.budget,
        )
        reference = GBKMVIndex.from_parameters(
            records,
            vocabulary=built.vocabulary,
            threshold=built.threshold,
            hasher=built.hasher,
            budget=built.budget,
            method="per-record",
        )
        assert_same_index(bulk, reference, queries)

    def test_vocabulary_fingerprint_collision_falls_back(self):
        # "a" and b"a" are distinct Python objects with equal FNV
        # fingerprints: the bulk membership lookup cannot tell them
        # apart, so ingest must fall back to the exact per-record split.
        vocabulary = FrequentElementVocabulary(["a", b"a"])
        with pytest.raises(FingerprintCollisionError):
            vocabulary_lookup(vocabulary)
        records = [["a", "x", "y"], [b"a", "x"], ["a", b"a", "z"]]
        hasher = UnitHash(seed=0)
        bulk = GBKMVIndex.from_parameters(
            records, vocabulary=vocabulary, threshold=0.9, hasher=hasher, budget=10.0
        )
        reference = GBKMVIndex.from_parameters(
            records,
            vocabulary=vocabulary,
            threshold=0.9,
            hasher=hasher,
            budget=10.0,
            method="per-record",
        )
        assert_same_index(bulk, reference, [["a", "x"]])


class TestInsertMany:
    def test_matches_looped_insert(self):
        records = powerlaw_records()
        extra = powerlaw_records(num_records=80, seed=8)
        queries, _ = sample_queries(records, num_queries=10, seed=13)
        looped = GBKMVIndex.build(records, space_fraction=0.1)
        batched = GBKMVIndex.build(records, space_fraction=0.1)
        looped_ids = [looped.insert(record) for record in extra]
        batched_ids = batched.insert_many(extra)
        assert looped_ids == batched_ids
        assert_same_index(batched, looped, queries)

    def test_after_deletes_ids_continue(self):
        records = powerlaw_records(num_records=60)
        extra = powerlaw_records(num_records=20, seed=21)
        looped = GBKMVIndex.build(records, space_fraction=0.2)
        batched = GBKMVIndex.build(records, space_fraction=0.2)
        for record_id in (0, 7, 31):
            looped.delete(record_id)
            batched.delete(record_id)
        looped_ids = [looped.insert(record) for record in extra]
        batched_ids = batched.insert_many(extra)
        assert looped_ids == batched_ids
        assert_same_index(batched, looped, records[:8])

    def test_interleaved_with_single_inserts_and_search(self):
        records = powerlaw_records(num_records=60)
        extra = powerlaw_records(num_records=30, seed=23)
        looped = GBKMVIndex.build(records, space_fraction=0.2)
        batched = GBKMVIndex.build(records, space_fraction=0.2)
        looped.insert(extra[0])
        batched.insert(extra[0])
        looped.search(extra[0], THRESHOLD)  # force a tail absorb in between
        batched.search(extra[0], THRESHOLD)
        for record in extra[1:]:
            looped.insert(record)
        batched.insert_many(extra[1:])
        assert_same_index(batched, looped, records[:8])

    def test_empty_batch_is_noop(self):
        index = GBKMVIndex.build([[1, 2], [2, 3]], space_fraction=1.0)
        before = index.num_records
        assert index.insert_many([]) == []
        assert index.num_records == before

    def test_empty_record_in_batch_rejected(self):
        index = GBKMVIndex.build([[1, 2], [2, 3]], space_fraction=1.0)
        with pytest.raises(ConfigurationError):
            index.insert_many([[4], []])


class TestKMVBaselineBulk:
    def test_build_identity(self):
        records = powerlaw_records(num_records=200)
        queries, _ = sample_queries(records, num_queries=10, seed=7)
        bulk = KMVSearchIndex.build(records, space_fraction=0.1)
        reference = KMVSearchIndex.build(
            records, space_fraction=0.1, method="per-record"
        )
        assert bulk.k_per_record == reference.k_per_record
        assert len(bulk._value_rows) == len(reference._value_rows)
        for bulk_row, reference_row in zip(bulk._value_rows, reference._value_rows):
            assert np.array_equal(bulk_row, reference_row)
        assert bulk.search_many(queries, THRESHOLD) == reference.search_many(
            queries, THRESHOLD
        )

    def test_insert_many_matches_looped_insert(self):
        records = powerlaw_records(num_records=150)
        extra = powerlaw_records(num_records=40, seed=17)
        queries, _ = sample_queries(records, num_queries=8, seed=19)
        looped = KMVSearchIndex.build(records, space_fraction=0.1)
        batched = KMVSearchIndex.build(records, space_fraction=0.1)
        looped_ids = [looped.insert(record) for record in extra]
        batched_ids = batched.insert_many(extra)
        assert looped_ids == batched_ids
        assert batched.insert_many([]) == []
        assert looped.search_many(queries, THRESHOLD) == batched.search_many(
            queries, THRESHOLD
        )

    def test_bulk_value_rows_truncate_to_k(self):
        flat = flatten_records([[1, 2, 3, 4, 5], [6]])
        rows = bulk_kmv_value_rows(flat, UnitHash(seed=0), 2)
        assert [row.size for row in rows] == [2, 1]
        hasher = UnitHash(seed=0)
        reference = np.unique(hasher.hash_many([1, 2, 3, 4, 5]))[:2]
        assert np.array_equal(rows[0], reference)

    def test_gkmv_baseline_bulk_matches(self):
        records = powerlaw_records(num_records=120)
        queries, _ = sample_queries(records, num_queries=6, seed=29)
        bulk = GKMVSearchIndex.build(records, space_fraction=0.1)
        reference = GKMVSearchIndex.build(
            records, space_fraction=0.1, method="per-record"
        )
        bulk.insert_many(records[:5])
        for record in records[:5]:
            reference.insert(record)
        assert bulk.search_many(queries, THRESHOLD) == reference.search_many(
            queries, THRESHOLD
        )


class TestStoreBulkAppend:
    def test_shape_validation(self):
        index = GBKMVIndex.build([[1, 2], [2, 3]], space_fraction=1.0)
        store = index.store
        with pytest.raises(ConfigurationError):
            store.append_bulk(
                values=np.array([0.5]),
                value_lengths=np.array([1, 1]),
                signatures=np.zeros((2, store.num_words), dtype=np.uint64),
                residual_record_sizes=np.array([1, 1]),
                record_sizes=np.array([1, 1]),
            )
        with pytest.raises(ConfigurationError):
            store.append_bulk(
                values=np.array([0.5]),
                value_lengths=np.array([1]),
                signatures=np.zeros((2, store.num_words), dtype=np.uint64),
                residual_record_sizes=np.array([1]),
                record_sizes=np.array([1]),
            )

    def test_empty_batch_returns_no_ids(self):
        index = GBKMVIndex.build([[1, 2], [2, 3]], space_fraction=1.0)
        store = index.store
        ids = store.append_bulk(
            values=np.empty(0, dtype=np.float64),
            value_lengths=np.empty(0, dtype=np.int64),
            signatures=np.zeros((0, store.num_words), dtype=np.uint64),
            residual_record_sizes=np.empty(0, dtype=np.int64),
            record_sizes=np.empty(0, dtype=np.int64),
        )
        assert ids.size == 0


class TestFlattenSortOnce:
    """The integer fast path's single value-major lexsort must reproduce
    the ``np.unique`` pipeline bit for bit — including for negative
    elements, whose uint64 fingerprints sort differently from their
    signed values."""

    def _assert_unique_view_consistent(self, flat, records):
        # The universe must be exactly np.unique over the per-record
        # distinct fingerprint column, in ascending uint64 order.
        unique, inverse, counts = np.unique(
            flat.fingerprints, return_inverse=True, return_counts=True
        )
        assert np.array_equal(flat.unique_fingerprints, unique)
        assert np.array_equal(flat.inverse, inverse)
        assert np.array_equal(flat.counts, counts)
        assert np.array_equal(
            flat.unique_fingerprints[flat.inverse], flat.fingerprints
        )
        # first_occurrence points at the earliest flat position.
        for position, fingerprint in enumerate(
            flat.unique_fingerprints.tolist()
        ):
            first = int(flat.first_occurrence[position])
            assert int(flat.fingerprints[first]) == fingerprint
            assert not np.any(flat.fingerprints[:first] == fingerprint)
        # Per-record content is exactly set(record).
        for position, record in enumerate(records):
            assert sorted(flat.record_elements(position)) == sorted(
                set(int(value) for value in record)
            )

    def test_negative_int64_records_take_fast_path_and_match(self):
        rng = np.random.default_rng(11)
        records = [
            rng.integers(-1000, 1000, size=int(rng.integers(1, 30))).astype(
                np.int64
            )
            for _ in range(200)
        ]
        flat = flatten_records(records)
        assert isinstance(flat.elements, np.ndarray)
        # Negative values map to large uint64 fingerprints.
        assert np.array_equal(
            flat.fingerprints, flat.elements.astype(np.uint64)
        )
        self._assert_unique_view_consistent(flat, records)

    def test_powerlaw_fast_path_matches_unique_pipeline(self):
        records = powerlaw_records()
        flat = flatten_records(records)
        assert isinstance(flat.elements, np.ndarray)
        self._assert_unique_view_consistent(flat, records)

    def test_fast_path_rejects_empty_record(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            flatten_records([np.array([1, 2]), np.array([], dtype=np.int64)])


class TestSliceFlatRecords:
    def test_slice_gathers_per_record_columns(self):
        records = powerlaw_records()
        flat = flatten_records(records)
        positions = np.array([7, 0, 399, 123, 123], dtype=np.int64)
        piece = slice_flat_records(flat, positions)
        assert piece.num_records == positions.size
        for local, global_position in enumerate(positions.tolist()):
            assert list(piece.record_elements(local)) == list(
                flat.record_elements(global_position)
            )
        # The unique universe is shared with the parent, and the sliced
        # inverse still indexes it.
        assert piece.unique_fingerprints is flat.unique_fingerprints
        assert piece.counts is flat.counts
        assert np.array_equal(
            piece.unique_fingerprints[piece.inverse], piece.fingerprints
        )

    def test_slice_of_list_elements(self):
        flat = flatten_records([["a", "b"], ["c"], ["a", "d"]])
        piece = slice_flat_records(flat, np.array([2, 0]))
        assert sorted(piece.record_elements(0)) == ["a", "d"]
        assert sorted(piece.record_elements(1)) == ["a", "b"]

    def test_empty_slice_yields_empty_kmv_rows(self):
        flat = flatten_records(powerlaw_records(num_records=20))
        piece = slice_flat_records(flat, np.empty(0, dtype=np.int64))
        assert piece.num_records == 0
        assert bulk_kmv_value_rows(piece, UnitHash(seed=0), 3) == []

    def test_sliced_sketches_match_full_dataset_rows(self):
        # Sketching a slice under globally pinned parameters must equal
        # the corresponding rows of the full-dataset build.
        records = powerlaw_records()
        queries, _ = sample_queries(records, num_queries=10, seed=5)
        flat = flatten_records(records)
        params = GBKMVIndex.plan_parameters(flat, space_fraction=0.15)
        positions = np.arange(0, len(records), 3, dtype=np.int64)
        piece = slice_flat_records(flat, positions)
        partial = GBKMVIndex.from_flat(
            piece,
            vocabulary=params.vocabulary,
            threshold=params.threshold,
            hasher=params.hasher,
            budget=params.budget,
            lookup=params.lookup,
            unique_hashes=params.unique_hashes,
        )
        reference = GBKMVIndex.from_parameters(
            [records[position] for position in positions.tolist()],
            vocabulary=params.vocabulary,
            threshold=params.threshold,
            hasher=params.hasher,
            budget=params.budget,
        )
        assert_same_index(partial, reference, queries)


class TestBuildProfile:
    def test_bulk_build_exposes_stage_breakdown(self):
        records = powerlaw_records()
        index = GBKMVIndex.build(records, space_fraction=0.15)
        profile = index.last_build_profile
        assert profile is not None
        seconds = profile.stage_seconds()
        assert {
            "flatten",
            "cost_model",
            "vocabulary",
            "sketch",
            "append",
        } <= set(seconds)
        assert all(value >= 0.0 for value in seconds.values())
        rows = profile.stage_rows()
        assert rows["flatten"] == len(records)
        assert rows["cost_model"] == len(records)
        assert rows["sketch"] == len(records)
        assert rows["append"] == len(records)
        assert index.statistics().build_profile is profile
        payload = profile.as_dict()
        assert set(payload) == {"stage_seconds", "stage_rows", "stages"}
        assert all(stage["seconds"] >= 0.0 for stage in payload["stages"])

    def test_fixed_buffer_size_skips_cost_model_stage(self):
        # The cost-model stage is the pair-sampled buffer sizing; pinning
        # buffer_size bypasses it, so it must not appear in the profile.
        records = powerlaw_records(num_records=60)
        index = GBKMVIndex.build(records, space_fraction=0.15, buffer_size=4)
        profile = index.last_build_profile
        assert profile is not None
        assert "cost_model" not in profile.stage_seconds()

    def test_per_record_build_has_no_profile(self):
        records = powerlaw_records(num_records=50)
        index = GBKMVIndex.build(
            records, space_fraction=0.15, method="per-record"
        )
        assert index.last_build_profile is None
        assert index.statistics().build_profile is None

    def test_profile_is_thread_safe_and_orders_recordings(self):
        profile = BuildProfile()
        with profile.stage("flatten", rows=10):
            pass
        profile.record("sketch", 0.25, rows=4)
        profile.record("sketch", 0.5, rows=6)
        assert [stage.name for stage in profile.stages] == [
            "flatten",
            "sketch",
            "sketch",
        ]
        assert profile.stage_rows() == {"flatten": 10, "sketch": 10}
        assert profile.stage_seconds()["sketch"] == pytest.approx(0.75)
        assert profile.total_seconds() >= 0.75
