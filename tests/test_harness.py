"""Unit tests for the evaluation harness and reporting helpers."""

from __future__ import annotations

import pytest

from repro._errors import ConfigurationError
from repro.core import GBKMVIndex
from repro.evaluation import (
    evaluate_search_method,
    exact_result_sets,
    format_table,
    series_to_rows,
    time_construction,
)
from repro.baselines import GKMVSearchIndex
from repro.datasets import build_dynamic_workload
from repro.evaluation.harness import (
    evaluate_dynamic_stream,
    measure_accuracy,
    run_dynamic_experiment,
    run_experiment,
)


class TestGroundTruth:
    def test_exact_result_sets(self, tiny_records, example_query):
        truth = exact_result_sets(tiny_records, [example_query], threshold=0.5)
        assert truth == [frozenset({0, 1})]

    def test_one_set_per_query(self, tiny_records):
        truth = exact_result_sets(tiny_records, [["e2"], ["e5"]], threshold=1.0)
        assert truth == [frozenset({0, 1, 2, 3}), frozenset({1, 2})]


class TestMeasureAccuracy:
    def test_perfect_answers(self):
        report = measure_accuracy([{1, 2}], [{1, 2}])
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.f1 == 1.0
        assert report.f05 == 1.0
        assert report.f1_min == 1.0
        assert report.f1_max == 1.0

    def test_mixed_answers_average(self):
        report = measure_accuracy([{1}, set()], [{1}, {2}])
        assert report.precision == pytest.approx(0.5)
        assert report.recall == pytest.approx(0.5)
        assert report.per_query_f1 == (1.0, 0.0)
        assert report.f1_min == 0.0
        assert report.f1_max == 1.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            measure_accuracy([{1}], [{1}, {2}])


class TestEvaluateSearchMethod:
    def test_gbkmv_full_budget_is_perfect(self, tiny_records, example_query):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0, buffer_size=2)
        truth = exact_result_sets(tiny_records, [example_query], threshold=0.5)
        evaluation = evaluate_search_method(
            "GB-KMV", index, [example_query], truth, threshold=0.5
        )
        assert evaluation.method == "GB-KMV"
        assert evaluation.accuracy.f1 == 1.0
        assert evaluation.avg_query_seconds > 0.0
        assert evaluation.space_in_values > 0.0

    def test_run_experiment_builds_and_times(self, tiny_records, example_query):
        results = run_experiment(
            tiny_records,
            [example_query],
            threshold=0.5,
            methods={
                "GB-KMV": lambda: GBKMVIndex.build(
                    tiny_records, space_fraction=1.0, buffer_size=2
                )
            },
        )
        assert set(results) == {"GB-KMV"}
        assert results["GB-KMV"].construction_seconds > 0.0

    def test_time_construction(self, tiny_records):
        index, seconds = time_construction(
            lambda: GBKMVIndex.build(tiny_records, space_fraction=1.0)
        )
        assert isinstance(index, GBKMVIndex)
        assert seconds > 0.0


class TestReporting:
    def test_format_table_alignment_and_floats(self):
        table = format_table(
            ["name", "f1"], [["GB-KMV", 0.91234], ["LSH-E", 0.5]], float_format="{:.2f}"
        )
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "0.91" in table
        assert "0.50" in table
        assert len(lines) == 4  # header, rule, two rows

    def test_format_table_validation(self):
        with pytest.raises(ConfigurationError):
            format_table([], [])
        with pytest.raises(ConfigurationError):
            format_table(["a"], [["x", "y"]])

    def test_series_to_rows(self):
        headers, rows = series_to_rows(
            {"5%": {"f1": 0.8, "recall": 0.9}, "10%": {"f1": 0.85}}, x_label="space"
        )
        assert headers == ["space", "f1", "recall"]
        assert rows[0][0] == "5%"
        assert rows[1][2] != rows[1][2]  # NaN for the missing metric


class TestEvaluateDynamicStream:
    def test_full_budget_gbkmv_is_perfect_on_mixed_stream(self, zipf_records):
        workload = build_dynamic_workload(
            zipf_records[:200], threshold=0.5, num_operations=150, seed=9
        )
        index = GBKMVIndex.build(list(workload.initial_records), space_fraction=1.0)
        evaluation = evaluate_dynamic_stream("GB-KMV", index, workload)
        assert evaluation.accuracy.f1 == 1.0
        assert evaluation.accuracy.precision == 1.0
        assert evaluation.accuracy.recall == 1.0
        counts = workload.operation_counts()
        assert evaluation.num_inserts == counts["insert"]
        assert evaluation.num_deletes == counts["delete"]
        assert evaluation.num_queries == counts["query"]
        assert evaluation.num_operations == workload.num_operations
        assert evaluation.total_seconds > 0.0
        assert evaluation.space_in_values > 0.0

    def test_mismatched_initial_corpus_rejected(self, zipf_records):
        workload = build_dynamic_workload(
            zipf_records[:100], threshold=0.5, num_operations=60, seed=4
        )
        # One record short: the first insert id the searcher assigns is off
        # by one, which the harness must flag instead of mis-scoring.
        short = list(workload.initial_records)[:-1]
        index = GBKMVIndex.build(short, space_fraction=1.0)
        if workload.operation_counts()["insert"]:
            with pytest.raises(ConfigurationError):
                evaluate_dynamic_stream("GB-KMV", index, workload)

    def test_run_dynamic_experiment_builds_every_method(self, zipf_records):
        workload = build_dynamic_workload(
            zipf_records[:120], threshold=0.5, num_operations=60, seed=6
        )
        evaluations = run_dynamic_experiment(
            workload,
            {
                "GB-KMV": lambda records: GBKMVIndex.build(records, space_fraction=1.0),
                "G-KMV": lambda records: GKMVSearchIndex.build(records, space_fraction=1.0),
            },
        )
        assert set(evaluations) == {"GB-KMV", "G-KMV"}
        for evaluation in evaluations.values():
            assert evaluation.num_operations == 60
            assert 0.0 <= evaluation.accuracy.f1 <= 1.0

    def test_dynamic_searcher_protocol(self):
        from repro.evaluation import DynamicSearcher

        assert isinstance(GBKMVIndex.build([["a", "b"]], space_fraction=1.0), DynamicSearcher)

    def test_coalesced_replay_is_equivalent(self, zipf_records):
        # The write-buffer replay must score the stream identically to
        # the per-operation replay (writes coalesce through the serving
        # layer's WriteCoalescer; queries flush first, so every query
        # still sees the exact stream-instant state).
        workload = build_dynamic_workload(
            zipf_records[:150], threshold=0.5, num_operations=120, seed=11
        )
        per_op_index = GBKMVIndex.build(
            list(workload.initial_records), space_fraction=0.5
        )
        batched_index = GBKMVIndex.build(
            list(workload.initial_records), space_fraction=0.5
        )
        per_op = evaluate_dynamic_stream("GB-KMV", per_op_index, workload)
        batched = evaluate_dynamic_stream(
            "GB-KMV", batched_index, workload, coalesce_writes=True
        )
        assert batched.accuracy == per_op.accuracy
        assert batched.num_inserts == per_op.num_inserts
        assert batched.num_deletes == per_op.num_deletes
        assert batched.num_queries == per_op.num_queries

    def test_batch_inserts_is_a_deprecated_alias(self, zipf_records):
        workload = build_dynamic_workload(
            zipf_records[:100], threshold=0.5, num_operations=60, seed=11
        )
        aliased_index = GBKMVIndex.build(
            list(workload.initial_records), space_fraction=0.5
        )
        direct_index = GBKMVIndex.build(
            list(workload.initial_records), space_fraction=0.5
        )
        with pytest.warns(DeprecationWarning, match="coalesce_writes"):
            aliased = evaluate_dynamic_stream(
                "GB-KMV", aliased_index, workload, batch_inserts=True
            )
        direct = evaluate_dynamic_stream(
            "GB-KMV", direct_index, workload, coalesce_writes=True
        )
        assert aliased.accuracy == direct.accuracy
        assert aliased.num_inserts == direct.num_inserts

    def test_coalesce_writes_without_insert_many_falls_back(self, zipf_records):
        workload = build_dynamic_workload(
            zipf_records[:80], threshold=0.5, num_operations=40, seed=13
        )

        class LoopOnly:
            """A searcher with no insert_many: batching must degrade gracefully."""

            def __init__(self, inner):
                self.inner = inner

            def search(self, query, threshold, query_size=None):
                return self.inner.search(query, threshold, query_size=query_size)

            def insert(self, record):
                return self.inner.insert(record)

            def delete(self, record_id):
                self.inner.delete(record_id)

        searcher = LoopOnly(
            GBKMVIndex.build(list(workload.initial_records), space_fraction=1.0)
        )
        evaluation = evaluate_dynamic_stream(
            "GB-KMV", searcher, workload, coalesce_writes=True
        )
        assert evaluation.num_operations == workload.num_operations
        assert evaluation.accuracy.f1 == 1.0
