"""Unit tests for the exact searchers (brute force, FrequentSet, PPjoin*)."""

from __future__ import annotations

import pytest

from repro._errors import ConfigurationError, EmptyDatasetError
from repro.exact import BruteForceSearcher, FrequentSetSearcher, PPJoinSearcher

SEARCHERS = [BruteForceSearcher, FrequentSetSearcher, PPJoinSearcher]


@pytest.mark.parametrize("searcher_cls", SEARCHERS)
class TestCommonBehaviour:
    def test_paper_example_1(self, searcher_cls, tiny_records, example_query):
        searcher = searcher_cls(tiny_records)
        hits = searcher.search(example_query, threshold=0.5)
        assert {hit.record_id for hit in hits} == {0, 1}

    def test_scores_are_exact_containment(self, searcher_cls, tiny_records, example_query):
        searcher = searcher_cls(tiny_records)
        scores = {hit.record_id: hit.score for hit in searcher.search(example_query, 0.3)}
        assert scores[0] == pytest.approx(4 / 6)
        assert scores[1] == pytest.approx(3 / 6)
        assert scores[2] == pytest.approx(2 / 6)

    def test_results_sorted_descending(self, searcher_cls, tiny_records, example_query):
        searcher = searcher_cls(tiny_records)
        scores = [hit.score for hit in searcher.search(example_query, 0.0)]
        assert scores == sorted(scores, reverse=True)

    def test_threshold_one(self, searcher_cls, tiny_records):
        searcher = searcher_cls(tiny_records)
        hits = searcher.search(["e2", "e3"], threshold=1.0)
        assert {hit.record_id for hit in hits} == {0, 1}

    def test_unknown_elements_do_not_match(self, searcher_cls, tiny_records):
        searcher = searcher_cls(tiny_records)
        assert searcher.search(["zz", "yy"], threshold=0.5) == []

    def test_validation(self, searcher_cls, tiny_records):
        with pytest.raises(EmptyDatasetError):
            searcher_cls([])
        with pytest.raises(ConfigurationError):
            searcher_cls([["a"], []])
        searcher = searcher_cls(tiny_records)
        with pytest.raises(ConfigurationError):
            searcher.search([], 0.5)
        with pytest.raises(ConfigurationError):
            searcher.search(["e1"], 1.5)

    def test_num_records(self, searcher_cls, tiny_records):
        assert searcher_cls(tiny_records).num_records == 4
        assert len(searcher_cls(tiny_records)) == 4


class TestAgreementOnLargerData:
    @pytest.mark.parametrize("threshold", [0.3, 0.5, 0.7, 0.9])
    def test_all_exact_methods_agree(self, zipf_records, threshold):
        records = zipf_records[:150]
        brute = BruteForceSearcher(records)
        frequent = FrequentSetSearcher(records)
        ppjoin = PPJoinSearcher(records)
        for query in records[:8]:
            expected = {hit.record_id for hit in brute.search(query, threshold)}
            assert {hit.record_id for hit in frequent.search(query, threshold)} == expected
            assert {hit.record_id for hit in ppjoin.search(query, threshold)} == expected

    def test_agreement_on_external_queries(self, zipf_records):
        records = zipf_records[:100]
        brute = BruteForceSearcher(records)
        ppjoin = PPJoinSearcher(records)
        frequent = FrequentSetSearcher(records)
        # Queries assembled from two records plus unseen elements.
        query = list(set(records[0]) | set(records[1]))[:40] + [999_999, 888_888]
        for threshold in (0.2, 0.5, 0.8):
            expected = {hit.record_id for hit in brute.search(query, threshold)}
            assert {hit.record_id for hit in ppjoin.search(query, threshold)} == expected
            assert {hit.record_id for hit in frequent.search(query, threshold)} == expected


class TestSearcherSpecifics:
    def test_brute_force_record_access(self, tiny_records):
        searcher = BruteForceSearcher(tiny_records)
        assert searcher.record(1) == frozenset(tiny_records[1])

    def test_frequent_set_overlap_counts(self, tiny_records, example_query):
        searcher = FrequentSetSearcher(tiny_records)
        counts = searcher.overlap_counts(example_query)
        assert list(counts) == [4, 3, 2, 2]
        assert searcher.num_distinct_elements == len(
            {element for record in tiny_records for element in record}
        )

    def test_ppjoin_zero_threshold_returns_everything(self, tiny_records, example_query):
        searcher = PPJoinSearcher(tiny_records)
        assert len(searcher.search(example_query, 0.0)) == len(tiny_records)

    def test_ppjoin_threshold_unreachable_for_unknown_query(self, tiny_records):
        searcher = PPJoinSearcher(tiny_records)
        # Only one of four query tokens exists in the dataset, so 0.5 * 4 = 2
        # overlapping tokens can never be reached.
        assert searcher.search(["e1", "zz", "yy", "xx"], threshold=0.6) == []
