"""The fused whole-workload kernels must be indistinguishable from loops.

Covers the hard bitwise-identity requirement of the fused query engine
across the edge cases: empty workload, empty-value queries, all-tombstone
store, duplicate values across queries, single-query workloads, and
``row_block_size`` smaller than / equal to / larger than ``num_rows``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._errors import ConfigurationError
from repro.baselines import KMVSearchIndex
from repro.core import DEFAULT_ROW_BLOCK_SIZE, GBKMVIndex
from repro.core.store import ColumnarSketchStore
from repro.datasets import sample_queries


def _as_pairs(results):
    return [[(hit.record_id, hit.score) for hit in hits] for hits in results]


def _store_with_rows(rows, signature_bits=8):
    store = ColumnarSketchStore(signature_bits=signature_bits)
    for values, mask in rows:
        values = np.asarray(values, dtype=np.float64)
        store.append(
            values=values,
            mask=mask,
            residual_record_size=values.size + 1,
            record_size=values.size + 3,
        )
    store.finalize()
    return store


@pytest.fixture
def small_store():
    return _store_with_rows(
        [
            ([0.1, 0.2, 0.5], 0b101),
            ([0.2, 0.3], 0b011),
            ([], 0b110),
            ([0.05, 0.2, 0.5, 0.9], 0b000),
            ([0.5], 0b111),
        ]
    )


class TestStoreFusedKernels:
    """Store-level: fused counts/overlaps equal the per-query kernels."""

    WORKLOADS = {
        "plain": [[0.2, 0.5], [0.1, 0.3, 0.9]],
        "duplicates_across_queries": [[0.2, 0.5], [0.2, 0.5], [0.5]],
        "empty_value_query": [[], [0.2], []],
        "single_query": [[0.05, 0.2]],
        "no_matches": [[0.15, 0.45]],
        "empty_workload": [],
    }

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_fused_counts_match_per_query_kernels(self, small_store, name):
        queries = [np.asarray(q, dtype=np.float64) for q in self.WORKLOADS[name]]
        fused = small_store.intersection_counts_fused(queries)
        looped = small_store.intersection_counts_many(queries)
        assert np.array_equal(fused, looped)

    @pytest.mark.parametrize("block", [1, 2, 5, 7])
    def test_blocked_counts_match_whole_pass(self, small_store, block):
        queries = [np.asarray(q, dtype=np.float64) for q in self.WORKLOADS["plain"]]
        matches = small_store.match_workload(queries)
        whole = small_store.intersection_counts_fused(queries)
        num_rows = small_store.num_rows
        assembled = np.concatenate(
            [
                small_store.intersection_counts_block(
                    matches, lo, min(lo + block, num_rows)
                )
                for lo in range(0, num_rows, block)
            ],
            axis=1,
        )
        assert np.array_equal(assembled, whole)

    def test_sparse_counts_match_dense_block(self, small_store):
        queries = [np.asarray(q, dtype=np.float64) for q in self.WORKLOADS["plain"]]
        matches = small_store.match_workload(queries)
        dense = small_store.intersection_counts_block(matches, 1, 4)
        query_ids, columns, counts = small_store.match_counts_block(matches, 1, 4)
        rebuilt = np.zeros_like(dense)
        rebuilt[query_ids, columns] = counts
        assert np.array_equal(rebuilt, dense)
        assert np.all(counts > 0)

    def test_packed_masks_overlap_matches_per_query(self, small_store):
        masks = [0b101, 0b0, 0b111, 0b010]
        words = small_store.pack_signature_masks(masks)
        fused = small_store.signature_overlap_block(words)
        looped = small_store.signature_overlap_many(masks)
        assert np.array_equal(fused, looped)
        # float accumulation must be exact for popcount-sized integers
        as_float = small_store.signature_overlap_block(words, dtype=np.float64)
        assert np.array_equal(as_float, looped.astype(np.float64))

    def test_overlap_blocking_matches_whole_pass(self, small_store):
        masks = [0b101, 0b110]
        words = small_store.pack_signature_masks(masks)
        whole = small_store.signature_overlap_block(words)
        assembled = np.concatenate(
            [
                small_store.signature_overlap_block(words, lo, min(lo + 2, 5))
                for lo in range(0, 5, 2)
            ],
            axis=1,
        )
        assert np.array_equal(assembled, whole)

    def test_multiword_signatures(self):
        # 70 bits -> two uint64 words; overlap must sum across words.
        wide = 1 << 69 | 0b1011
        store = _store_with_rows(
            [([0.1], wide), ([0.2], 0b1), ([], (1 << 69))], signature_bits=70
        )
        masks = [wide, 0b1, 1 << 69]
        words = store.pack_signature_masks(masks)
        assert words.shape == (3, 2)
        assert np.array_equal(
            store.signature_overlap_block(words), store.signature_overlap_many(masks)
        )

    def test_zero_signature_bits(self):
        store = _store_with_rows([([0.1], 0), ([0.4], 0)], signature_bits=0)
        words = store.pack_signature_masks([0, 0])
        assert words.shape == (2, 0)
        assert np.array_equal(
            store.signature_overlap_block(words), np.zeros((2, 2), dtype=np.int64)
        )
        with pytest.raises(ConfigurationError):
            store.pack_signature_masks([0b1])

    def test_match_workload_on_empty_store(self):
        store = _store_with_rows([], signature_bits=4)
        matches = store.match_workload([np.array([0.25])])
        assert matches.num_matches == 0
        assert store.intersection_counts_block(matches).shape == (1, 0)


@pytest.fixture(scope="module")
def engine_setup(zipf_records):
    index = GBKMVIndex.build(zipf_records, space_fraction=0.1)
    queries, _ids = sample_queries(zipf_records, num_queries=10, seed=3)
    return index, list(queries)


class TestFusedEngineIdentity:
    """Index-level: fused search_many == per-query kernels == looped search."""

    @pytest.mark.parametrize("block", [1, 17, 400, 10_000, None])
    @pytest.mark.parametrize("threshold", [0.0, 0.4, 1.0])
    def test_block_size_sweep(self, engine_setup, threshold, block):
        # 400 records: blocks smaller than, equal to and larger than num_rows.
        index, queries = engine_setup
        looped = [index.search(query, threshold) for query in queries]
        fused = index.search_many(queries, threshold, row_block_size=block)
        per_query = index.search_many(queries, threshold, kernels="per-query")
        assert _as_pairs(fused) == _as_pairs(looped)
        assert _as_pairs(per_query) == _as_pairs(looped)

    def test_single_query_workload(self, engine_setup):
        index, queries = engine_setup
        fused = index.search_many(queries[:1], 0.3, row_block_size=7)
        assert _as_pairs(fused) == _as_pairs([index.search(queries[0], 0.3)])

    def test_empty_workload(self, engine_setup):
        index, _queries = engine_setup
        assert index.search_many([], 0.5) == []
        assert index.top_k_many([], 3) == []

    def test_duplicate_queries_in_workload(self, engine_setup):
        index, queries = engine_setup
        workload = [queries[0], queries[1], queries[0]]
        fused = index.search_many(workload, 0.25, row_block_size=64)
        assert _as_pairs(fused) == _as_pairs(
            [index.search(query, 0.25) for query in workload]
        )

    def test_empty_value_queries(self, zipf_records):
        # A query made purely of frequent (vocabulary) elements keeps no
        # residual hash values; scoring must come entirely from the
        # signature overlap, fused and looped alike.
        index = GBKMVIndex.build(zipf_records[:100], space_fraction=0.1, buffer_size=8)
        buffer_query = list(index.vocabulary.elements)[:4]
        assert buffer_query
        assert index._prepare_query(buffer_query, None).values.size == 0
        workload = [buffer_query, list(zipf_records[0]), buffer_query]
        for threshold in (0.0, 0.2):
            fused = index.search_many(workload, threshold, row_block_size=16)
            looped = [index.search(query, threshold) for query in workload]
            assert _as_pairs(fused) == _as_pairs(looped)

    def test_all_tombstone_store(self, zipf_records):
        index = GBKMVIndex.build(zipf_records[:40], space_fraction=0.2)
        queries = [zipf_records[0], zipf_records[5]]
        for record_id in list(range(40)):
            index.delete(record_id)
        for threshold in (0.0, 0.5):
            fused = index.search_many(queries, threshold, row_block_size=8)
            assert fused == [[], []]
            assert _as_pairs(fused) == _as_pairs(
                [index.search(query, threshold) for query in queries]
            )
        assert index.top_k_many(queries, 3, row_block_size=8) == [[], []]

    def test_deletes_and_blocking(self, zipf_records):
        index = GBKMVIndex.build(zipf_records[:200], space_fraction=0.1)
        for record_id in range(0, 60, 2):
            index.delete(record_id)
        queries, _ids = sample_queries(zipf_records[:200], num_queries=6, seed=9)
        looped = [index.search(query, 0.3) for query in queries]
        for block in (13, 200, 500):
            fused = index.search_many(queries, 0.3, row_block_size=block)
            assert _as_pairs(fused) == _as_pairs(looped)

    def test_invalid_kernels_mode_rejected(self, engine_setup):
        index, queries = engine_setup
        with pytest.raises(ConfigurationError):
            index.search_many(queries[:1], 0.5, kernels="warp")

    def test_invalid_row_block_size_rejected(self, engine_setup):
        index, queries = engine_setup
        with pytest.raises(ConfigurationError):
            index.search_many(queries[:1], 0.5, row_block_size=0)
        with pytest.raises(ConfigurationError):
            index.top_k_many(queries[:1], 3, row_block_size=-4)


class TestWorkloadStats:
    def test_blocked_execution_never_materialises_dense(self, engine_setup):
        index, queries = engine_setup
        index.search_many(queries, 0.5, row_block_size=64)
        stats = index.last_workload_stats
        assert stats is not None
        assert stats.row_block_size == 64
        assert stats.peak_block_cells == len(queries) * 64
        assert stats.peak_block_cells < stats.dense_cells
        assert stats.num_blocks == -(-stats.num_rows // 64)

    def test_default_block_size(self, engine_setup):
        index, queries = engine_setup
        index.search_many(queries, 0.5)
        stats = index.last_workload_stats
        assert stats.row_block_size == DEFAULT_ROW_BLOCK_SIZE

    def test_estimator_pruning_observed(self, engine_setup):
        # The Eq-25 estimator must only ever see pairs with a nonzero
        # residual intersection — never the full (B, num_rows) grid.
        index, queries = engine_setup
        index.search_many(queries, 0.5)
        stats = index.last_workload_stats
        assert 0 < stats.estimator_pairs < stats.dense_cells


class TestTopKMany:
    @pytest.mark.parametrize("block", [9, 400, 1000, None])
    @pytest.mark.parametrize("k", [1, 4, 50])
    def test_matches_looped_top_k(self, engine_setup, k, block):
        index, queries = engine_setup
        looped = [index.top_k(query, k) for query in queries]
        many = index.top_k_many(queries, k, row_block_size=block)
        assert _as_pairs(many) == _as_pairs(looped)

    def test_k_larger_than_store(self, engine_setup):
        index, queries = engine_setup
        many = index.top_k_many(queries[:2], 10_000, row_block_size=37)
        looped = [index.top_k(query, 10_000) for query in queries[:2]]
        assert _as_pairs(many) == _as_pairs(looped)

    def test_with_deletes(self, zipf_records):
        index = GBKMVIndex.build(zipf_records[:120], space_fraction=0.15)
        for record_id in range(0, 40, 3):
            index.delete(record_id)
        queries, _ids = sample_queries(zipf_records[:120], num_queries=5, seed=21)
        many = index.top_k_many(queries, 6, row_block_size=11)
        looped = [index.top_k(query, 6) for query in queries]
        assert _as_pairs(many) == _as_pairs(looped)

    def test_invalid_k_rejected(self, engine_setup):
        index, queries = engine_setup
        with pytest.raises(ConfigurationError):
            index.top_k_many(queries[:1], 0)


class TestKMVFusedPath:
    @pytest.mark.parametrize("block", [5, 150, 4096, None])
    @pytest.mark.parametrize("threshold", [0.0, 0.35, 1.0])
    def test_matches_looped_search(self, zipf_records, threshold, block):
        index = KMVSearchIndex.build(zipf_records[:150], space_fraction=0.1)
        queries, _ids = sample_queries(zipf_records[:150], num_queries=8, seed=6)
        looped = [index.search(query, threshold) for query in queries]
        fused = index.search_many(queries, threshold, row_block_size=block)
        assert _as_pairs(fused) == _as_pairs(looped)

    def test_single_and_empty_workloads(self, zipf_records):
        index = KMVSearchIndex.build(zipf_records[:60], space_fraction=0.2)
        assert index.search_many([], 0.5) == []
        fused = index.search_many([zipf_records[0]], 0.4, row_block_size=7)
        assert _as_pairs(fused) == _as_pairs([index.search(zipf_records[0], 0.4)])

    def test_with_deletes_and_updates(self, zipf_records):
        index = KMVSearchIndex.build(zipf_records[:100], space_fraction=0.15)
        for record_id in range(0, 30, 2):
            index.delete(record_id)
        index.update(31, zipf_records[0])
        queries, _ids = sample_queries(zipf_records[:100], num_queries=6, seed=8)
        looped = [index.search(query, 0.3) for query in queries]
        fused = index.search_many(queries, 0.3, row_block_size=16)
        assert _as_pairs(fused) == _as_pairs(looped)
