"""Unit tests for the synthetic dataset generators (repro.datasets.generators)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._errors import ConfigurationError
from repro.datasets import generate_uniform_dataset, generate_zipf_dataset
from repro.datasets.powerlaw import element_frequencies, record_sizes


class TestZipfDataset:
    def test_shape_and_bounds(self):
        records = generate_zipf_dataset(
            num_records=200,
            universe_size=2_000,
            element_exponent=1.1,
            size_exponent=3.0,
            min_record_size=10,
            max_record_size=100,
            seed=1,
        )
        assert len(records) == 200
        sizes = record_sizes(records)
        assert sizes.min() >= 10
        assert sizes.max() <= 100
        flat = {element for record in records for element in record}
        assert min(flat) >= 0
        assert max(flat) < 2_000

    def test_records_have_distinct_elements(self):
        records = generate_zipf_dataset(50, 1_000, seed=2, max_record_size=200)
        for record in records:
            assert len(record) == len(set(record))

    def test_deterministic_given_seed(self):
        a = generate_zipf_dataset(30, 1_000, seed=9, max_record_size=100)
        b = generate_zipf_dataset(30, 1_000, seed=9, max_record_size=100)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_zipf_dataset(30, 1_000, seed=1, max_record_size=100)
        b = generate_zipf_dataset(30, 1_000, seed=2, max_record_size=100)
        assert a != b

    def test_element_skew_increases_with_exponent(self):
        flat_records = generate_zipf_dataset(
            300, 5_000, element_exponent=0.2, size_exponent=2.0, max_record_size=100, seed=3
        )
        skew_records = generate_zipf_dataset(
            300, 5_000, element_exponent=1.4, size_exponent=2.0, max_record_size=100, seed=3
        )
        flat_freqs = np.array(sorted(element_frequencies(flat_records).values(), reverse=True))
        skew_freqs = np.array(sorted(element_frequencies(skew_records).values(), reverse=True))
        # The skewed dataset concentrates far more mass in its hottest elements.
        flat_top_share = flat_freqs[:20].sum() / flat_freqs.sum()
        skew_top_share = skew_freqs[:20].sum() / skew_freqs.sum()
        assert skew_top_share > flat_top_share * 2

    def test_size_skew_increases_with_exponent(self):
        gentle = generate_zipf_dataset(
            500, 3_000, element_exponent=1.0, size_exponent=1.5, max_record_size=500, seed=4
        )
        steep = generate_zipf_dataset(
            500, 3_000, element_exponent=1.0, size_exponent=6.0, max_record_size=500, seed=4
        )
        assert record_sizes(steep).mean() < record_sizes(gentle).mean()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generate_zipf_dataset(0, 1_000)
        with pytest.raises(ConfigurationError):
            generate_zipf_dataset(10, universe_size=100, max_record_size=500)


class TestUniformDataset:
    def test_size_range(self):
        records = generate_uniform_dataset(
            100, 2_000, min_record_size=10, max_record_size=50, seed=5
        )
        sizes = record_sizes(records)
        assert sizes.min() >= 10
        assert sizes.max() <= 50

    def test_frequencies_are_roughly_flat(self):
        records = generate_uniform_dataset(
            400, 1_000, min_record_size=20, max_record_size=60, seed=6
        )
        freqs = np.array(list(element_frequencies(records).values()), dtype=float)
        # Uniform element selection: coefficient of variation stays small.
        assert freqs.std() / freqs.mean() < 0.6

    def test_sizes_are_roughly_uniform(self):
        records = generate_uniform_dataset(
            2_000, 3_000, min_record_size=10, max_record_size=110, seed=7
        )
        sizes = record_sizes(records)
        assert abs(sizes.mean() - 60) < 6
