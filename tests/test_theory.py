"""Unit tests for the analytical formulas (repro.theory)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._errors import ConfigurationError
from repro.theory import (
    average_k_gkmv,
    average_k_kmv,
    frequency_second_moment,
    gkmv_beats_kmv,
    lshe_containment_expectation,
    lshe_containment_variance,
    minhash_containment_expectation,
    minhash_containment_variance,
    minhash_jaccard_variance,
    optimal_equal_allocation_total_k,
    split_universe_variance_penalty,
    taylor_expectation,
    taylor_variance,
    theorem3_alpha_bound,
)


class TestTaylor:
    def test_linear_function_is_exact(self):
        # f(x) = 3x + 1: E[f(X)] = 3 E[X] + 1, Var[f(X)] = 9 Var[X].
        assert taylor_expectation(lambda x: 3 * x + 1, lambda x: 0.0, mean=2.0, variance=0.5) == 7.0
        assert taylor_variance(lambda x: 3.0, lambda x: 0.0, mean=2.0, variance=0.5) == pytest.approx(4.5)

    def test_quadratic_expectation_correction(self):
        # f(x) = x^2: E[f(X)] ≈ mean^2 + variance.
        value = taylor_expectation(lambda x: x * x, lambda x: 2.0, mean=3.0, variance=0.25)
        assert value == pytest.approx(9.0 + 0.25)

    def test_variance_never_negative(self):
        assert taylor_variance(lambda x: 0.1, lambda x: 10.0, mean=1.0, variance=2.0) >= 0.0

    def test_negative_variance_rejected(self):
        with pytest.raises(ConfigurationError):
            taylor_expectation(lambda x: x, lambda x: 0.0, mean=0.0, variance=-1.0)


class TestMinHashMoments:
    def test_jaccard_variance_formula(self):
        assert minhash_jaccard_variance(0.3, 100) == pytest.approx(0.3 * 0.7 / 100)

    def test_jaccard_variance_zero_at_extremes(self):
        assert minhash_jaccard_variance(0.0, 10) == 0.0
        assert minhash_jaccard_variance(1.0, 10) == 0.0

    def test_containment_expectation_is_negatively_biased(self):
        value = minhash_containment_expectation(containment=0.6, jaccard=0.3, num_hashes=64)
        assert value < 0.6
        assert value > 0.55

    def test_bias_vanishes_with_many_hashes(self):
        few = minhash_containment_expectation(0.6, 0.3, 16)
        many = minhash_containment_expectation(0.6, 0.3, 4096)
        assert abs(many - 0.6) < abs(few - 0.6)

    def test_containment_variance_decreases_with_hashes(self):
        few = minhash_containment_variance(50, 0.3, query_size=100, num_hashes=32)
        many = minhash_containment_variance(50, 0.3, query_size=100, num_hashes=512)
        assert many < few

    def test_containment_variance_zero_jaccard(self):
        assert minhash_containment_variance(0, 0.0, 10, 16) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            minhash_jaccard_variance(1.5, 10)
        with pytest.raises(ConfigurationError):
            minhash_containment_variance(10, 0.5, 0, 16)
        with pytest.raises(ConfigurationError):
            minhash_containment_expectation(0.5, 0.5, 0)


class TestLSHEMoments:
    def test_upper_bound_inflates_expectation(self):
        base = minhash_containment_expectation(0.5, 0.3, 64)
        inflated = lshe_containment_expectation(
            0.5, 0.3, 64, record_size=100, upper_bound=400, query_size=50
        )
        assert inflated == pytest.approx((400 + 50) / (100 + 50) * base)
        assert inflated > base

    def test_tight_upper_bound_matches_minhash(self):
        base = minhash_containment_expectation(0.5, 0.3, 64)
        tight = lshe_containment_expectation(
            0.5, 0.3, 64, record_size=100, upper_bound=100, query_size=50
        )
        assert tight == pytest.approx(base)

    def test_variance_is_inflated_by_square_factor(self):
        base = minhash_containment_variance(30, 0.3, 50, 64)
        inflated = lshe_containment_variance(
            30, 0.3, 50, 64, record_size=100, upper_bound=300
        )
        assert inflated == pytest.approx(((300 + 50) / (100 + 50)) ** 2 * base)
        assert inflated > base

    def test_upper_bound_below_record_size_rejected(self):
        with pytest.raises(ConfigurationError):
            lshe_containment_variance(30, 0.3, 50, 64, record_size=100, upper_bound=50)


class TestTheoremComparisons:
    def test_average_k_formulas(self):
        assert average_k_kmv(1000, 100) == 10.0
        fn2 = 1e-4
        assert average_k_gkmv(1000, 100, fn2) == pytest.approx(2 * 10 - 100 * fn2)

    def test_frequency_second_moment(self):
        assert frequency_second_moment([1, 1, 1, 1]) == pytest.approx(4 / 16)
        with pytest.raises(ConfigurationError):
            frequency_second_moment([])
        with pytest.raises(ConfigurationError):
            frequency_second_moment([0, 1])

    def test_theorem3_gkmv_beats_kmv_on_realistic_skew(self):
        """For Zipf-like frequencies (α1 ≈ 1.2 « 3.4) G-KMV's average k is larger."""
        frequencies = np.maximum(np.round(1000 * np.arange(1, 2000) ** -1.2), 1)
        gkmv_k, kmv_k = gkmv_beats_kmv(budget=4000, num_records=1000, frequencies=frequencies)
        assert gkmv_k > kmv_k

    def test_theorem3_alpha_bound_near_3_4(self):
        assert theorem3_alpha_bound(budget=1000, num_records=1000) == pytest.approx(
            2 + np.sqrt(2), rel=1e-9
        )
        assert theorem3_alpha_bound(budget=10_000, num_records=1000) < 3.4

    def test_theorem1_equal_allocation_not_worse(self):
        """Any unequal allocation achieves at most the equal-allocation total k."""
        budget = 120
        equal_k = budget // 12
        for allocation in (
            [1] * 6 + [19] * 6,
            [5] * 6 + [15] * 6,
            [2, 2, 2, 2, 2, 2, 18, 18, 18, 18, 18, 18],
        ):
            given, equal = optimal_equal_allocation_total_k(budget, equal_k, allocation)
            assert given <= equal

    def test_theorem4_split_universe_never_helps(self):
        variance_split, variance_joint = split_universe_variance_penalty(
            intersection_sizes=(40.0, 60.0),
            union_sizes=(200.0, 400.0),
            sketch_sizes=(32, 32),
        )
        assert variance_split >= variance_joint

    def test_theorem4_validation(self):
        with pytest.raises(ConfigurationError):
            split_universe_variance_penalty((1.0, 1.0), (2.0, 2.0), (2, 32))

    def test_theorem1_validation(self):
        with pytest.raises(ConfigurationError):
            optimal_equal_allocation_total_k(10, 2, [20])
        with pytest.raises(ConfigurationError):
            optimal_equal_allocation_total_k(10, 2, [])
