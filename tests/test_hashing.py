"""Unit tests for the hashing substrate (repro.hashing.hash_functions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._errors import ConfigurationError
from repro.hashing import (
    MAX_UINT64,
    UnitHash,
    element_fingerprint,
    fingerprint_many,
    hash_to_unit,
    mix64,
    mix64_many,
)


class TestMix64:
    def test_output_in_range(self):
        for value in (0, 1, 12345, MAX_UINT64, 2**63):
            assert 0 <= mix64(value) <= MAX_UINT64

    def test_deterministic(self):
        assert mix64(987654321) == mix64(987654321)

    def test_distinct_inputs_give_distinct_outputs(self):
        outputs = {mix64(i) for i in range(10_000)}
        assert len(outputs) == 10_000

    def test_only_low_64_bits_matter(self):
        assert mix64(5) == mix64(5 + 2**64)

    def test_avalanche_changes_many_bits(self):
        a = mix64(0)
        b = mix64(1)
        differing = bin(a ^ b).count("1")
        assert differing > 10

    def test_mix64_many_matches_scalar(self):
        values = np.concatenate(
            [
                np.arange(2_000, dtype=np.uint64),
                np.array([MAX_UINT64, 2**63, 2**40 + 7], dtype=np.uint64),
            ]
        )
        batch = mix64_many(values)
        assert batch.dtype == np.uint64
        assert batch.tolist() == [mix64(int(value)) for value in values.tolist()]

    def test_mix64_many_accepts_signed_input(self):
        # int64 ids reinterpret through the same 64-bit wrap the scalar
        # path applies.
        assert mix64_many(np.arange(100, dtype=np.int64)).tolist() == [
            mix64(i) for i in range(100)
        ]


class TestElementFingerprint:
    def test_int_maps_to_itself_mod_2_64(self):
        assert element_fingerprint(42) == 42
        assert element_fingerprint(2**64 + 3) == 3

    def test_negative_int_wraps(self):
        assert element_fingerprint(-1) == MAX_UINT64

    def test_bool_is_treated_as_int(self):
        assert element_fingerprint(True) == 1
        assert element_fingerprint(False) == 0

    def test_numpy_integer_supported(self):
        assert element_fingerprint(np.int64(7)) == 7

    def test_string_and_bytes_agree_on_utf8(self):
        assert element_fingerprint("abc") == element_fingerprint(b"abc")

    def test_different_strings_differ(self):
        assert element_fingerprint("abc") != element_fingerprint("abd")

    def test_unsupported_type_raises(self):
        with pytest.raises(ConfigurationError):
            element_fingerprint(1.5)

    def test_empty_string_is_valid(self):
        assert 0 <= element_fingerprint("") <= MAX_UINT64


class TestHashToUnit:
    def test_range(self):
        assert hash_to_unit(0) == 0.0
        assert 0.0 <= hash_to_unit(MAX_UINT64) < 1.0

    def test_monotone_in_value(self):
        assert hash_to_unit(10) < hash_to_unit(2**40)


class TestUnitHash:
    def test_deterministic_across_instances(self):
        assert UnitHash(seed=3)("token") == UnitHash(seed=3)("token")

    def test_different_seeds_differ(self):
        assert UnitHash(seed=1)("token") != UnitHash(seed=2)("token")

    def test_output_in_unit_interval(self, hasher):
        values = [hasher(i) for i in range(1000)]
        assert all(0.0 <= v < 1.0 for v in values)

    def test_roughly_uniform(self, hasher):
        values = np.array([hasher(i) for i in range(5000)])
        # Mean of U(0,1) is 0.5 with std ~0.29/sqrt(5000) ≈ 0.004.
        assert abs(values.mean() - 0.5) < 0.02
        assert abs(np.quantile(values, 0.25) - 0.25) < 0.03

    def test_hash_many_matches_scalar_for_ints(self, hasher):
        elements = [0, 5, 17, 2**40, 999999]
        vectorised = hasher.hash_many(elements)
        scalar = np.array([hasher(e) for e in elements])
        np.testing.assert_allclose(vectorised, scalar, rtol=0, atol=1e-15)

    def test_hash_many_matches_scalar_for_strings(self, hasher):
        elements = ["a", "bb", "ccc"]
        vectorised = hasher.hash_many(elements)
        scalar = np.array([hasher(e) for e in elements])
        np.testing.assert_allclose(vectorised, scalar)

    def test_hash_many_empty(self, hasher):
        assert hasher.hash_many([]).size == 0

    def test_hash_many_matches_scalar_for_mixed_batch(self, hasher):
        elements = [1, "a", b"bytes", True, -7, 2**70]
        vectorised = hasher.hash_many(elements)
        scalar = np.array([hasher(e) for e in elements])
        assert np.array_equal(vectorised, scalar)

    def test_hash_many_matches_scalar_for_negative_ints(self, hasher):
        # The old integer fast path overflowed on negatives; the
        # fingerprint-array pass must wrap exactly like the scalar path.
        elements = [-1, -12345, 0, 7]
        vectorised = hasher.hash_many(elements)
        scalar = np.array([hasher(e) for e in elements])
        assert np.array_equal(vectorised, scalar)

    def test_hash_many_rejects_unsupported_types(self, hasher):
        with pytest.raises(ConfigurationError):
            hasher.hash_many([1.5])
        with pytest.raises(ConfigurationError):
            hasher.hash_many([1, 2.5])

    def test_hash_fingerprints_matches_hash_int(self, hasher):
        fingerprints = np.array([0, 1, 2**63, MAX_UINT64], dtype=np.uint64)
        vectorised = hasher.hash_fingerprints(fingerprints)
        scalar = np.array([hasher.hash_int(int(fp)) for fp in fingerprints])
        assert np.array_equal(vectorised, scalar)
        assert hasher.hash_fingerprints(np.empty(0, dtype=np.uint64)).size == 0

    def test_string_hashing_process_independent_constant(self):
        # Pin a concrete value so accidental changes to the fingerprinting
        # scheme (which would invalidate stored sketches) are caught.
        value = UnitHash(seed=0)("element")
        assert 0.0 <= value < 1.0
        assert value == UnitHash(seed=0)("element")

    def test_pack_unpack_roundtrip(self):
        hasher = UnitHash(seed=123456789)
        assert UnitHash.unpack(hasher.pack()) == hasher

    def test_unpack_rejects_bad_length(self):
        with pytest.raises(ConfigurationError):
            UnitHash.unpack(b"abc")

    def test_seed_must_be_integer(self):
        with pytest.raises(ConfigurationError):
            UnitHash(seed="not-an-int")  # type: ignore[arg-type]


class TestFingerprintMany:
    def test_matches_scalar_for_every_supported_type(self):
        elements = [0, 5, -1, 2**63, 2**70, True, False, "token", b"raw", ""]
        batch = fingerprint_many(elements)
        scalar = np.array([element_fingerprint(e) for e in elements], dtype=np.uint64)
        assert np.array_equal(batch, scalar)

    def test_integer_fast_path_matches_scalar(self):
        elements = list(range(-500, 500))
        batch = fingerprint_many(elements)
        scalar = np.array([element_fingerprint(e) for e in elements], dtype=np.uint64)
        assert np.array_equal(batch, scalar)

    def test_empty(self):
        assert fingerprint_many([]).size == 0
        assert fingerprint_many([]).dtype == np.uint64

    def test_accepts_any_iterable(self):
        assert np.array_equal(
            fingerprint_many(iter([3, 4])), fingerprint_many([3, 4])
        )

    def test_rejects_unsupported_types(self):
        with pytest.raises(ConfigurationError):
            fingerprint_many([object()])
        with pytest.raises(ConfigurationError):
            fingerprint_many([3, 1.25])
