"""Bitwise-identity tests for the batched estimator layer.

The contract of :mod:`repro.core.batched` is that its whole-candidate-set
estimators reproduce the scalar sketch estimators *exactly* — same branch
structure, same arithmetic order, bit-identical floats.  These tests loop
the scalar API over every record and compare against one batched call.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro._errors import EstimationError
from repro.core import GKMVBatchEstimator, KMVBatchEstimator
from repro.core.gkmv import GKMVSketch
from repro.core.kmv import KMVSketch
from repro.core.store import ColumnarSketchStore


@pytest.fixture
def rng():
    return np.random.default_rng(23)


def _random_records(rng, count, max_size=40, universe=500):
    return [
        set(rng.integers(0, universe, size=rng.integers(1, max_size)).tolist())
        for _ in range(count)
    ]


class TestGKMVBatchEstimator:
    THRESHOLD = 0.35

    def _build(self, hasher, records):
        store = ColumnarSketchStore(signature_bits=0)
        sketches = []
        for record in records:
            sketch = GKMVSketch.from_record(
                record, threshold=self.THRESHOLD, hasher=hasher
            )
            store.append(sketch.values, 0, sketch.record_size, sketch.record_size)
            sketches.append(sketch)
        return GKMVBatchEstimator(store), sketches

    def test_intersection_bitwise_identical_to_sketches(self, rng, hasher):
        records = _random_records(rng, 60)
        estimator, sketches = self._build(hasher, records)
        for query in (records[0], records[7], {9991, 9992}):
            query_sketch = GKMVSketch.from_record(
                query, threshold=self.THRESHOLD, hasher=hasher
            )
            batch = estimator.intersection_many(
                query_sketch.values, query_sketch.record_size
            )
            for record_id, sketch in enumerate(sketches):
                expected = query_sketch.intersection_size_estimate(sketch)
                assert batch[record_id] == expected

    def test_union_bitwise_identical_to_sketches(self, rng, hasher):
        records = _random_records(rng, 60)
        estimator, sketches = self._build(hasher, records)
        query_sketch = GKMVSketch.from_record(
            records[3], threshold=self.THRESHOLD, hasher=hasher
        )
        batch = estimator.union_many(query_sketch.values, query_sketch.record_size)
        for record_id, sketch in enumerate(sketches):
            try:
                expected = query_sketch.union_size_estimate(sketch)
            except EstimationError:
                assert math.isnan(batch[record_id])
            else:
                assert batch[record_id] == expected

    def test_containment_divides_by_query_size(self, rng, hasher):
        records = _random_records(rng, 20)
        estimator, _sketches = self._build(hasher, records)
        query_sketch = GKMVSketch.from_record(
            records[0], threshold=self.THRESHOLD, hasher=hasher
        )
        intersections = estimator.intersection_many(
            query_sketch.values, query_sketch.record_size
        )
        containments = estimator.containment_many(
            query_sketch.values, query_sketch.record_size, query_size=17
        )
        assert np.array_equal(containments, intersections / 17.0)


class TestKMVBatchEstimator:
    K = 8

    def _build(self, hasher, records):
        rows = []
        sketches = []
        sizes = []
        for record in records:
            sketch = KMVSketch.from_record(record, k=self.K, hasher=hasher)
            rows.append(np.asarray(sketch.values))
            sizes.append(sketch.record_size)
            sketches.append(sketch)
        return KMVBatchEstimator.from_value_rows(rows, sizes, self.K), sketches

    def test_intersection_matches_scalar_estimator(self, rng, hasher):
        records = _random_records(rng, 60)
        estimator, sketches = self._build(hasher, records)
        for query in (records[0], records[11], {777, 778, 779}):
            query_sketch = KMVSketch.from_record(query, k=self.K, hasher=hasher)
            batch = estimator.intersection_many(
                query_sketch.values, query_sketch.record_size
            )
            for record_id, sketch in enumerate(sketches):
                try:
                    expected = query_sketch.intersection_size_estimate(sketch)
                except EstimationError:
                    continue  # scalar API refuses k < 2; the batch reports counts
                assert batch[record_id] == expected

    def test_intersection_one_matches_row_of_many(self, rng, hasher):
        records = _random_records(rng, 25)
        estimator, _sketches = self._build(hasher, records)
        query_sketch = KMVSketch.from_record(records[2], k=self.K, hasher=hasher)
        many = estimator.intersection_many(
            query_sketch.values, query_sketch.record_size
        )
        for record_id in range(estimator.num_records):
            one = estimator.intersection_one(
                query_sketch.values, query_sketch.is_exact, record_id
            )
            assert one == many[record_id]

    def test_exact_pairs_report_exact_overlap(self, hasher):
        # Records smaller than k: sketches are exact, so the estimate is
        # the exact hash-set overlap.
        records = [{1, 2, 3}, {2, 3, 4}, {10, 11}]
        estimator, _sketches = self._build(hasher, records)
        query_sketch = KMVSketch.from_record({2, 3, 10}, k=self.K, hasher=hasher)
        batch = estimator.intersection_many(
            query_sketch.values, query_sketch.record_size
        )
        assert batch.tolist() == [2.0, 2.0, 1.0]
