"""Public-API surface snapshot: what :mod:`repro.api` exports is pinned.

Any change to the exported names or the registered backend set is a
deliberate, reviewed API change — this test makes it impossible to
drift silently.  Adding a name means updating the snapshot here (and
the README capability matrix).
"""

from __future__ import annotations

import pytest

import repro.api as api

#: The complete exported surface of ``repro.api``.
EXPECTED_EXPORTS = {
    # protocol
    "SimilarityIndex",
    "Capabilities",
    "BackendStatistics",
    "SearchResult",
    # configs
    "IndexConfig",
    "GBKMVConfig",
    "KMVConfig",
    "GKMVConfig",
    "LSHEnsembleConfig",
    "AsymmetricMinHashConfig",
    "ExactSearchConfig",
    "ShardedConfig",
    "ServingConfig",
    # registry
    "create_index",
    "open_index",
    "available_backends",
    "get_backend",
    "register_backend",
    # errors
    "CapabilityError",
    "ConfigurationError",
    "SnapshotFormatError",
    "UnknownBackendError",
    # convenience re-exports
    "containment_similarity",
    "jaccard_similarity",
    "evaluate_search_method",
    "exact_result_sets",
    "generate_zipf_dataset",
    "load_proxy",
    "sample_queries",
    # serving layer (lazy: repro.serving)
    "SimilarityService",
    "run_closed_loop",
    "run_load",
}

#: Every backend id the registry must serve.
EXPECTED_BACKENDS = (
    "asymmetric-minhash",
    "brute-force",
    "frequent-set",
    "gbkmv",
    "gkmv",
    "kmv",
    "lsh-ensemble",
    "ppjoin",
    "sharded",
)


def test_all_matches_snapshot():
    assert set(api.__all__) == EXPECTED_EXPORTS


@pytest.mark.parametrize("name", sorted(EXPECTED_EXPORTS))
def test_every_export_resolves(name):
    assert getattr(api, name) is not None


def test_dir_covers_all_exports():
    assert EXPECTED_EXPORTS <= set(dir(api))


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        api.no_such_export


def test_registered_backends_match_snapshot():
    assert api.available_backends() == EXPECTED_BACKENDS


def test_every_backend_declares_its_contract():
    for backend_id in api.available_backends():
        backend = api.get_backend(backend_id)
        assert issubclass(backend, api.SimilarityIndex)
        assert backend.backend_id == backend_id
        assert isinstance(backend.capabilities, api.Capabilities)
        assert issubclass(backend.config_type, api.IndexConfig)
        # No backend leaves the config slot on the catch-all base class.
        assert backend.config_type is not api.IndexConfig


def test_open_index_rejects_non_archive_numpy_files(tmp_path):
    # np.load accepts a bare .npy but it is not an index snapshot: the
    # promised error type is SnapshotFormatError, not a TypeError leak.
    import numpy as np

    path = tmp_path / "weights.npy"
    np.save(path, np.arange(4))
    with pytest.raises(api.SnapshotFormatError):
        api.open_index(path)


def test_loaders_wrap_malformed_metadata(tmp_path):
    import numpy as np

    from repro.baselines import AsymmetricMinHashIndex, KMVSearchIndex

    for key, loader in (
        ("kmv_meta", KMVSearchIndex.load),
        ("amh_meta", AsymmetricMinHashIndex.load),
    ):
        path = tmp_path / f"bad_{key}.npz"
        np.savez_compressed(path, **{key: np.array("{not json")})
        with pytest.raises(api.SnapshotFormatError):
            loader(path)
