"""Property-based tests (hypothesis) for the KMV / G-KMV / GB-KMV sketches.

These exercise structural invariants that must hold for *every* input:
sketch contents are always the smallest hash values, estimators respect
obvious bounds, exactness short-circuits are consistent with the true set
sizes, and compatibility rules are symmetric.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FrequentElementVocabulary, GBKMVSketch, GKMVSketch, KMVSketch
from repro.hashing import UnitHash

HASHER = UnitHash(seed=99)

records = st.sets(st.integers(min_value=0, max_value=5_000), min_size=1, max_size=300)
ks = st.integers(min_value=1, max_value=64)
thresholds = st.floats(min_value=0.01, max_value=1.0, allow_nan=False)


class TestKMVProperties:
    @given(record=records, k=ks)
    @settings(max_examples=60, deadline=None)
    def test_sketch_holds_k_smallest_values(self, record, k):
        sketch = KMVSketch.from_record(record, k=k, hasher=HASHER)
        all_hashes = np.sort(HASHER.hash_many(sorted(record)))
        expected = all_hashes[: min(k, len(record))]
        np.testing.assert_allclose(sketch.values, expected)

    @given(record=records, k=ks)
    @settings(max_examples=60, deadline=None)
    def test_exactness_flag_matches_record_size(self, record, k):
        sketch = KMVSketch.from_record(record, k=k, hasher=HASHER)
        assert sketch.is_exact == (len(record) <= k)

    @given(left=records, right=records, k=ks)
    @settings(max_examples=60, deadline=None)
    def test_merge_is_commutative(self, left, right, k):
        a = KMVSketch.from_record(left, k=k, hasher=HASHER)
        b = KMVSketch.from_record(right, k=k, hasher=HASHER)
        np.testing.assert_allclose(a.merge(b).values, b.merge(a).values)

    @given(left=records, right=records)
    @settings(max_examples=60, deadline=None)
    def test_intersection_estimate_non_negative_and_symmetric(self, left, right):
        a = KMVSketch.from_record(left, k=32, hasher=HASHER)
        b = KMVSketch.from_record(right, k=32, hasher=HASHER)
        estimate = a.intersection_size_estimate(b)
        assert estimate >= 0.0
        assert estimate == b.intersection_size_estimate(a)

    @given(record=records)
    @settings(max_examples=60, deadline=None)
    def test_self_intersection_of_exact_sketch_is_cardinality(self, record):
        sketch = KMVSketch.from_record(record, k=1_000, hasher=HASHER)
        assert sketch.intersection_size_estimate(sketch) == len(record)
        assert sketch.union_size_estimate(sketch) == len(record)


class TestGKMVProperties:
    @given(record=records, threshold=thresholds)
    @settings(max_examples=60, deadline=None)
    def test_all_values_below_threshold(self, record, threshold):
        sketch = GKMVSketch.from_record(record, threshold=threshold, hasher=HASHER)
        assert np.all(sketch.values <= threshold)

    @given(record=records, threshold=thresholds)
    @settings(max_examples=60, deadline=None)
    def test_sketch_is_prefix_of_sorted_hashes(self, record, threshold):
        """Theorem 2's premise: the retained values are the smallest hashes."""
        sketch = GKMVSketch.from_record(record, threshold=threshold, hasher=HASHER)
        all_hashes = np.sort(HASHER.hash_many(sorted(record)))
        np.testing.assert_allclose(sketch.values, all_hashes[: sketch.size])

    @given(record=records, low=thresholds, high=thresholds)
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_threshold(self, record, low, high):
        if low > high:
            low, high = high, low
        small = GKMVSketch.from_record(record, threshold=low, hasher=HASHER)
        large = GKMVSketch.from_record(record, threshold=high, hasher=HASHER)
        assert small.size <= large.size

    @given(left=records, right=records, threshold=thresholds)
    @settings(max_examples=60, deadline=None)
    def test_union_k_at_least_each_sketch(self, left, right, threshold):
        a = GKMVSketch.from_record(left, threshold=threshold, hasher=HASHER)
        b = GKMVSketch.from_record(right, threshold=threshold, hasher=HASHER)
        union_k = np.union1d(a.values, b.values).size
        assert union_k >= max(a.size, b.size)

    @given(left=records, right=records)
    @settings(max_examples=60, deadline=None)
    def test_full_threshold_estimates_are_exact(self, left, right):
        a = GKMVSketch.from_record(left, threshold=1.0, hasher=HASHER)
        b = GKMVSketch.from_record(right, threshold=1.0, hasher=HASHER)
        assert a.intersection_size_estimate(b) == len(left & right)
        assert a.union_size_estimate(b) == len(left | right)


class TestGBKMVProperties:
    @given(
        left=records,
        right=records,
        threshold=thresholds,
        vocab_size=st.integers(min_value=0, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_estimate_non_negative_and_symmetric(self, left, right, threshold, vocab_size):
        vocabulary = FrequentElementVocabulary(list(range(vocab_size)))
        a = GBKMVSketch.from_record(left, vocabulary, threshold=threshold, hasher=HASHER)
        b = GBKMVSketch.from_record(right, vocabulary, threshold=threshold, hasher=HASHER)
        estimate = a.intersection_size_estimate(b)
        assert estimate >= 0.0
        assert estimate == b.intersection_size_estimate(a)

    @given(left=records, right=records, vocab_size=st.integers(min_value=0, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_buffer_part_never_overcounts(self, left, right, vocab_size):
        """The exact buffer overlap is a lower bound on the true overlap."""
        vocabulary = FrequentElementVocabulary(list(range(vocab_size)))
        a = GBKMVSketch.from_record(left, vocabulary, threshold=0.5, hasher=HASHER)
        b = GBKMVSketch.from_record(right, vocabulary, threshold=0.5, hasher=HASHER)
        assert a.buffer.intersection_count(b.buffer) <= len(left & right)

    @given(left=records, right=records, vocab_size=st.integers(min_value=0, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_full_threshold_is_exact_regardless_of_buffer(self, left, right, vocab_size):
        vocabulary = FrequentElementVocabulary(list(range(vocab_size)))
        a = GBKMVSketch.from_record(left, vocabulary, threshold=1.0, hasher=HASHER)
        b = GBKMVSketch.from_record(right, vocabulary, threshold=1.0, hasher=HASHER)
        assert a.intersection_size_estimate(b) == len(left & right)
        assert a.containment_estimate(b) == len(left & right) / len(left)

    @given(record=records, vocab_size=st.integers(min_value=0, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_split_preserves_record_size(self, record, vocab_size):
        vocabulary = FrequentElementVocabulary(list(range(vocab_size)))
        sketch = GBKMVSketch.from_record(record, vocabulary, threshold=0.3, hasher=HASHER)
        assert sketch.buffer.count + sketch.residual.record_size == len(record)
