"""Property-based tests for metrics, similarity functions and transformations."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.lsh_ensemble import containment_to_jaccard, jaccard_to_containment
from repro.evaluation import ConfusionCounts, f_score
from repro.exact import containment_similarity, jaccard_similarity, overlap_size

sets_of_ints = st.sets(st.integers(min_value=0, max_value=200), max_size=60)
nonempty_sets = st.sets(st.integers(min_value=0, max_value=200), min_size=1, max_size=60)
unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestSimilarityProperties:
    @given(left=sets_of_ints, right=sets_of_ints)
    @settings(max_examples=100, deadline=None)
    def test_overlap_bounded_by_smaller_set(self, left, right):
        assert overlap_size(left, right) <= min(len(left), len(right))

    @given(left=sets_of_ints, right=sets_of_ints)
    @settings(max_examples=100, deadline=None)
    def test_jaccard_symmetric_and_bounded(self, left, right):
        value = jaccard_similarity(left, right)
        assert 0.0 <= value <= 1.0
        assert value == jaccard_similarity(right, left)

    @given(query=nonempty_sets, record=sets_of_ints)
    @settings(max_examples=100, deadline=None)
    def test_containment_bounded(self, query, record):
        value = containment_similarity(query, record)
        assert 0.0 <= value <= 1.0

    @given(query=nonempty_sets, record=nonempty_sets)
    @settings(max_examples=100, deadline=None)
    def test_containment_vs_jaccard_relation(self, query, record):
        """C(Q, X) ≥ J(Q, X) always, with equality iff X ⊆ Q."""
        containment = containment_similarity(query, record)
        jaccard = jaccard_similarity(query, record)
        assert containment >= jaccard - 1e-12
        if record <= query:
            assert containment == jaccard_similarity(query, record) * len(query | record) / len(query)

    @given(query=nonempty_sets)
    @settings(max_examples=50, deadline=None)
    def test_self_containment_is_one(self, query):
        assert containment_similarity(query, query) == 1.0


class TestTransformationProperties:
    @given(
        containment=unit,
        record_size=st.integers(min_value=1, max_value=1_000),
        query_size=st.integers(min_value=1, max_value=1_000),
    )
    @settings(max_examples=150, deadline=None)
    def test_transform_stays_in_unit_interval(self, containment, record_size, query_size):
        jaccard = containment_to_jaccard(containment, record_size, query_size)
        assert 0.0 <= jaccard <= 1.0
        back = jaccard_to_containment(jaccard, record_size, query_size)
        assert 0.0 <= back <= 1.0

    @given(
        record_size=st.integers(min_value=1, max_value=1_000),
        query_size=st.integers(min_value=1, max_value=1_000),
        low=unit,
        high=unit,
    )
    @settings(max_examples=150, deadline=None)
    def test_transform_is_monotone(self, record_size, query_size, low, high):
        if low > high:
            low, high = high, low
        assert containment_to_jaccard(low, record_size, query_size) <= containment_to_jaccard(
            high, record_size, query_size
        )


class TestMetricProperties:
    @given(truth=sets_of_ints, answer=sets_of_ints)
    @settings(max_examples=150, deadline=None)
    def test_precision_recall_bounded(self, truth, answer):
        counts = ConfusionCounts.from_sets(truth, answer)
        assert 0.0 <= counts.precision <= 1.0
        assert 0.0 <= counts.recall <= 1.0
        assert 0.0 <= counts.f_score(1.0) <= 1.0
        assert 0.0 <= counts.f_score(0.5) <= 1.0

    @given(truth=nonempty_sets)
    @settings(max_examples=50, deadline=None)
    def test_perfect_answer_scores_one(self, truth):
        counts = ConfusionCounts.from_sets(truth, truth)
        assert counts.precision == 1.0
        assert counts.recall == 1.0
        assert counts.f_score() == 1.0

    @given(truth=nonempty_sets, answer=sets_of_ints, extra=sets_of_ints)
    @settings(max_examples=100, deadline=None)
    def test_adding_false_positives_never_raises_precision(self, truth, answer, extra):
        base = ConfusionCounts.from_sets(truth, answer & truth)
        widened = ConfusionCounts.from_sets(truth, (answer & truth) | (extra - truth))
        assert widened.precision <= base.precision + 1e-12

    @given(
        precision=unit,
        recall=unit,
        alpha=st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
    )
    @settings(max_examples=150, deadline=None)
    def test_f_score_between_min_and_max(self, precision, recall, alpha):
        score = f_score(precision, recall, alpha)
        assert min(precision, recall) - 1e-12 <= score <= max(precision, recall) + 1e-12
