"""Property-based tests for GBKMVIndex search invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GBKMVIndex
from repro.exact import BruteForceSearcher, containment_similarity

record_strategy = st.sets(st.integers(min_value=0, max_value=400), min_size=1, max_size=60)
dataset_strategy = st.lists(record_strategy, min_size=2, max_size=15)


class TestIndexProperties:
    @given(dataset=dataset_strategy, query=record_strategy, threshold=st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_full_budget_search_is_exact(self, dataset, query, threshold):
        """With a 100% space budget every sketch is exact, so search is exact."""
        index = GBKMVIndex.build(dataset, space_fraction=1.0, buffer_size=0)
        oracle = BruteForceSearcher(dataset)
        expected = {hit.record_id for hit in oracle.search(query, threshold)}
        actual = {hit.record_id for hit in index.search(query, threshold)}
        assert actual == expected

    @given(dataset=dataset_strategy, query=record_strategy)
    @settings(max_examples=40, deadline=None)
    def test_scores_match_exact_containment_at_full_budget(self, dataset, query):
        index = GBKMVIndex.build(dataset, space_fraction=1.0, buffer_size=4)
        hits = index.search(query, threshold=0.0)
        for hit in hits:
            truth = containment_similarity(query, dataset[hit.record_id])
            assert abs(hit.score - truth) < 1e-9

    @given(dataset=dataset_strategy, query=record_strategy, threshold=st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_results_sorted_and_above_threshold(self, dataset, query, threshold):
        index = GBKMVIndex.build(dataset, space_fraction=0.5, buffer_size=8)
        hits = index.search(query, threshold)
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)
        if threshold > 0:
            for hit in hits:
                assert hit.score >= threshold - 1e-9

    @given(dataset=dataset_strategy, low=st.floats(0.0, 1.0), high=st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_higher_threshold_returns_subset(self, dataset, low, high):
        if low > high:
            low, high = high, low
        index = GBKMVIndex.build(dataset, space_fraction=0.5, buffer_size=0)
        query = dataset[0]
        low_hits = {hit.record_id for hit in index.search(query, low)}
        high_hits = {hit.record_id for hit in index.search(query, high)}
        assert high_hits <= low_hits

    @given(dataset=dataset_strategy)
    @settings(max_examples=40, deadline=None)
    def test_space_never_exceeds_budget(self, dataset):
        index = GBKMVIndex.build(dataset, space_fraction=0.25, buffer_size=0)
        assert index.space_in_values() <= index.budget + 1e-9

    @given(dataset=dataset_strategy)
    @settings(max_examples=30, deadline=None)
    def test_self_query_at_full_budget_finds_itself(self, dataset):
        index = GBKMVIndex.build(dataset, space_fraction=1.0)
        for record_id, record in enumerate(dataset):
            hits = {hit.record_id for hit in index.search(record, threshold=1.0)}
            assert record_id in hits
