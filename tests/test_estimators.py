"""Unit tests for the shared estimator helpers (repro.core.estimators)."""

from __future__ import annotations

import pytest

from repro._errors import ConfigurationError, EstimationError
from repro.core import (
    KMVSketch,
    estimate_containment,
    estimate_intersection,
    intersection_variance,
)
from repro.core.estimators import containment_variance


class TestEstimateHelpers:
    def test_estimate_intersection_delegates_to_sketch(self, hasher):
        a = KMVSketch.from_record([1, 2, 3, 4], k=10, hasher=hasher)
        b = KMVSketch.from_record([3, 4, 5], k=10, hasher=hasher)
        assert estimate_intersection(a, b) == 2.0

    def test_estimate_containment_fields(self, hasher):
        a = KMVSketch.from_record([1, 2, 3, 4], k=10, hasher=hasher)
        b = KMVSketch.from_record([3, 4, 5], k=10, hasher=hasher)
        estimate = estimate_containment(a, b, query_size=4)
        assert estimate.intersection == 2.0
        assert estimate.containment == pytest.approx(0.5)
        assert estimate.query_size == 4

    def test_estimate_containment_rejects_bad_query_size(self, hasher):
        a = KMVSketch.from_record([1, 2], k=10, hasher=hasher)
        with pytest.raises(ConfigurationError):
            estimate_containment(a, a, query_size=0)


class TestIntersectionVariance:
    def test_zero_intersection_gives_zero_variance(self):
        assert intersection_variance(0.0, 100.0, k=64) == 0.0

    def test_matches_equation_11_by_hand(self):
        # D∩ = 10, D∪ = 100, k = 20:
        # Var = 10 (20·100 − 400 − 100 + 20 + 10) / (20 · 18)
        expected = 10 * (2000 - 400 - 100 + 20 + 10) / (20 * 18)
        assert intersection_variance(10, 100, 20) == pytest.approx(expected)

    def test_variance_decreases_with_k(self):
        small_k = intersection_variance(50, 500, 16)
        large_k = intersection_variance(50, 500, 256)
        assert large_k < small_k

    def test_requires_k_at_least_three(self):
        with pytest.raises(EstimationError):
            intersection_variance(1, 10, 2)

    def test_rejects_negative_sizes(self):
        with pytest.raises(ConfigurationError):
            intersection_variance(-1, 10, 5)
        with pytest.raises(ConfigurationError):
            intersection_variance(1, -10, 5)

    def test_rejects_intersection_larger_than_union(self):
        with pytest.raises(ConfigurationError):
            intersection_variance(20, 10, 5)

    def test_never_negative(self):
        # Configurations that would go slightly negative are clamped to 0.
        assert intersection_variance(1, 1, 3) >= 0.0


class TestContainmentVariance:
    def test_scales_by_query_size_squared(self):
        base = intersection_variance(10, 100, 20)
        assert containment_variance(10, 100, 20, query_size=10) == pytest.approx(base / 100)

    def test_rejects_bad_query_size(self):
        with pytest.raises(ConfigurationError):
            containment_variance(10, 100, 20, query_size=0)

    def test_monotone_in_intersection_for_fixed_union(self):
        low = containment_variance(5, 1000, 64, query_size=50)
        high = containment_variance(50, 1000, 64, query_size=50)
        assert high > low
