"""Unit tests for repro.hashing.families.HashFamily."""

from __future__ import annotations

import numpy as np
import pytest

from repro._errors import ConfigurationError
from repro.hashing import HashFamily


class TestHashFamilyConstruction:
    def test_size_and_seed_exposed(self):
        family = HashFamily(size=16, seed=5)
        assert family.size == 16
        assert family.seed == 5
        assert len(family) == 16

    def test_invalid_size_rejected(self):
        with pytest.raises(ConfigurationError):
            HashFamily(size=0)

    def test_equality_by_size_and_seed(self):
        assert HashFamily(8, 1) == HashFamily(8, 1)
        assert HashFamily(8, 1) != HashFamily(8, 2)
        assert HashFamily(8, 1) != HashFamily(16, 1)

    def test_hashable(self):
        assert len({HashFamily(8, 1), HashFamily(8, 1), HashFamily(8, 2)}) == 2

    def test_iteration_yields_distinct_hashers(self):
        family = HashFamily(size=10, seed=0)
        seeds = {hasher.seed for hasher in family}
        assert len(seeds) == 10

    def test_indexing(self):
        family = HashFamily(size=4, seed=3)
        assert family[0] is not family[1]
        assert family[0].seed != family[1].seed

    def test_repr_mentions_size(self):
        assert "size=4" in repr(HashFamily(size=4))


class TestHashMatrix:
    def test_shape(self):
        family = HashFamily(size=8, seed=2)
        matrix = family.hash_matrix([1, 2, 3])
        assert matrix.shape == (3, 8)

    def test_empty_input(self):
        family = HashFamily(size=8, seed=2)
        assert family.hash_matrix([]).shape == (0, 8)

    def test_values_in_unit_interval(self):
        family = HashFamily(size=8, seed=2)
        matrix = family.hash_matrix(range(100))
        assert matrix.min() >= 0.0
        assert matrix.max() < 1.0

    def test_columns_match_individual_hashers(self):
        family = HashFamily(size=5, seed=9)
        elements = [3, "x", 17]
        matrix = family.hash_matrix(elements)
        for column, hasher in enumerate(family):
            expected = np.array([hasher(e) for e in elements])
            np.testing.assert_allclose(matrix[:, column], expected)

    def test_deterministic(self):
        family = HashFamily(size=6, seed=11)
        first = family.hash_matrix(["a", "b"])
        second = family.hash_matrix(["a", "b"])
        np.testing.assert_array_equal(first, second)


class TestMinHashes:
    def test_min_hashes_are_columnwise_minima(self):
        family = HashFamily(size=7, seed=4)
        elements = list(range(20))
        matrix = family.hash_matrix(elements)
        np.testing.assert_allclose(family.min_hashes(elements), matrix.min(axis=0))

    def test_empty_record_rejected(self):
        family = HashFamily(size=7, seed=4)
        with pytest.raises(ConfigurationError):
            family.min_hashes([])

    def test_min_hashes_invariant_to_duplicates_and_order(self):
        family = HashFamily(size=7, seed=4)
        a = family.min_hashes([1, 2, 3, 2, 1])
        b = family.min_hashes([3, 1, 2])
        np.testing.assert_array_equal(a, b)

    def test_superset_has_pointwise_smaller_or_equal_minima(self):
        family = HashFamily(size=32, seed=4)
        small = family.min_hashes([1, 2, 3])
        large = family.min_hashes([1, 2, 3, 4, 5, 6])
        assert np.all(large <= small)
