"""Unit tests for the buffer-size cost model (repro.core.cost_model)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._errors import ConfigurationError, EmptyDatasetError
from repro.core import average_variance, choose_buffer_size, residual_threshold
from repro.core.cost_model import INFEASIBLE_VARIANCE
from repro.hashing import UnitHash


def _skewed_frequencies(n: int, alpha: float = 1.2) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    raw = 1000.0 * ranks**-alpha
    return np.maximum(np.round(raw), 1.0)


class TestAverageVariance:
    def test_finite_for_feasible_configuration(self):
        sizes = np.full(100, 50)
        freqs = _skewed_frequencies(500)
        variance = average_variance(sizes, freqs, budget=500.0, buffer_size=8)
        assert np.isfinite(variance)
        assert variance >= 0.0

    def test_infeasible_when_buffer_exceeds_budget(self):
        sizes = np.full(100, 50)
        freqs = _skewed_frequencies(500)
        # 100 records * 10_000 bits / 32 = 31_250 values > budget of 500.
        assert average_variance(sizes, freqs, budget=500.0, buffer_size=10_000) == INFEASIBLE_VARIANCE

    def test_zero_variance_when_buffer_covers_everything(self):
        sizes = np.full(10, 5)
        freqs = np.array([3, 2, 2, 1, 1], dtype=float)
        variance = average_variance(sizes, freqs, budget=100.0, buffer_size=5)
        assert variance == 0.0

    def test_deterministic_given_seed(self):
        sizes = np.full(50, 30)
        freqs = _skewed_frequencies(300)
        a = average_variance(sizes, freqs, budget=300.0, buffer_size=16, seed=3)
        b = average_variance(sizes, freqs, budget=300.0, buffer_size=16, seed=3)
        assert a == b

    def test_larger_budget_reduces_variance(self):
        sizes = np.full(50, 200)
        freqs = _skewed_frequencies(3_000)
        small = average_variance(sizes, freqs, budget=500.0, buffer_size=0)
        large = average_variance(sizes, freqs, budget=5_000.0, buffer_size=0)
        assert large < small

    def test_input_validation(self):
        freqs = _skewed_frequencies(10)
        with pytest.raises(EmptyDatasetError):
            average_variance([], freqs, budget=10.0, buffer_size=0)
        with pytest.raises(EmptyDatasetError):
            average_variance([5], [], budget=10.0, buffer_size=0)
        with pytest.raises(ConfigurationError):
            average_variance([0], freqs, budget=10.0, buffer_size=0)
        with pytest.raises(ConfigurationError):
            average_variance([5], freqs, budget=-1.0, buffer_size=0)
        with pytest.raises(ConfigurationError):
            average_variance([5], freqs, budget=10.0, buffer_size=-1)


class TestChooseBufferSize:
    def test_returns_feasible_choice_with_curve(self):
        sizes = np.full(80, 100)
        freqs = _skewed_frequencies(2_000)
        sizing = choose_buffer_size(sizes, freqs, budget=800.0)
        assert sizing.buffer_size >= 0
        assert np.isfinite(sizing.estimated_variance)
        assert len(sizing.curve) >= 2
        observed = dict(sizing.curve)
        assert sizing.estimated_variance == observed[sizing.buffer_size]

    def test_zero_buffer_is_always_a_candidate(self):
        sizes = np.full(80, 100)
        freqs = _skewed_frequencies(2_000)
        sizing = choose_buffer_size(sizes, freqs, budget=800.0)
        assert any(r == 0 for r, _ in sizing.curve)

    def test_never_worse_than_zero_buffer(self):
        """The paper's feasibility constraint V_Δ < 0: GB-KMV ⪯ G-KMV never holds."""
        sizes = np.full(80, 100)
        freqs = _skewed_frequencies(2_000)
        sizing = choose_buffer_size(sizes, freqs, budget=800.0)
        zero_variance = dict(sizing.curve)[0]
        assert sizing.estimated_variance <= zero_variance

    def test_skewed_frequencies_prefer_nonzero_buffer(self):
        """With very hot elements and enough budget, a buffer should pay off."""
        sizes = np.full(60, 200)
        freqs = np.concatenate([np.full(16, 60.0), np.full(5_000, 1.0)])
        sizing = choose_buffer_size(sizes, freqs, budget=2_000.0, step=8)
        assert sizing.buffer_size > 0

    def test_step_validation(self):
        with pytest.raises(ConfigurationError):
            choose_buffer_size([10], [1.0], budget=5.0, step=0)

    def test_max_buffer_size_respected(self):
        sizes = np.full(40, 100)
        freqs = _skewed_frequencies(1_000)
        sizing = choose_buffer_size(sizes, freqs, budget=800.0, max_buffer_size=10)
        assert sizing.buffer_size <= 10
        assert all(r <= 10 for r, _ in sizing.curve)

    def test_buffer_cost_fraction_guard_rail(self):
        """The buffer may consume at most half the budget by default."""
        sizes = np.full(40, 100)
        freqs = _skewed_frequencies(5_000)
        budget = 400.0
        sizing = choose_buffer_size(sizes, freqs, budget)
        assert sizing.buffer_size * 40 / 32 <= budget * 0.5 + 1e-9
        # Raising the fraction widens the feasible grid.
        relaxed = choose_buffer_size(sizes, freqs, budget, max_buffer_cost_fraction=1.0)
        assert max(r for r, _ in relaxed.curve) >= max(r for r, _ in sizing.curve)

    def test_buffer_cost_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            choose_buffer_size([10], [1.0], budget=5.0, max_buffer_cost_fraction=0.0)
        with pytest.raises(ConfigurationError):
            choose_buffer_size([10], [1.0], budget=5.0, max_buffer_cost_fraction=1.5)

    def test_flat_frequencies_prefer_small_buffer(self):
        """With near-uniform element frequencies the buffer buys little."""
        sizes = np.full(60, 100)
        freqs = np.full(5_000, 2.0)
        sizing = choose_buffer_size(sizes, freqs, budget=2_000.0)
        assert sizing.buffer_size <= 64


class TestResidualThreshold:
    def test_full_budget_returns_one(self):
        hasher = UnitHash(0)
        frequencies = {f"t{i}": 2 for i in range(10)}
        assert residual_threshold(frequencies, residual_budget=1_000, hasher=hasher) == 1.0

    def test_zero_budget_stores_nothing(self):
        hasher = UnitHash(0)
        frequencies = {f"t{i}": 2 for i in range(10)}
        tau = residual_threshold(frequencies, residual_budget=0, hasher=hasher)
        hashes = hasher.hash_many(list(frequencies))
        assert tau > 0.0
        assert np.all(hashes > tau)

    def test_budget_controls_stored_mass(self):
        hasher = UnitHash(3)
        frequencies = {i: 1 for i in range(10_000)}
        budget = 2_500
        tau = residual_threshold(frequencies, residual_budget=budget, hasher=hasher)
        hashes = hasher.hash_many(list(frequencies))
        stored = int(np.sum(hashes <= tau))
        assert stored <= budget
        # The threshold should not leave large amounts of budget unused.
        assert stored >= budget * 0.95

    def test_weighted_by_frequency(self):
        hasher = UnitHash(5)
        # One extremely frequent element: storing it alone would use the
        # whole budget many times over, so τ must exclude it if it hashes
        # above the cheap elements.
        frequencies = {"heavy": 1_000}
        frequencies.update({f"light{i}": 1 for i in range(100)})
        tau = residual_threshold(frequencies, residual_budget=50, hasher=hasher)
        hashes = hasher.hash_many(list(frequencies))
        counts = np.array([frequencies[e] for e in frequencies], dtype=float)
        stored = float(np.sum(counts[hashes <= tau]))
        assert stored <= 50

    def test_empty_residual_returns_one(self):
        assert residual_threshold({}, residual_budget=10, hasher=UnitHash(0)) == 1.0

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            residual_threshold({"a": 1}, residual_budget=-1, hasher=UnitHash(0))

    def test_non_positive_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            residual_threshold({"a": 0}, residual_budget=5, hasher=UnitHash(0))
