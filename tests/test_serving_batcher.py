"""MicroBatcher mechanics: fusion windows, key separation, fan-out.

The batcher is index-agnostic, so these tests drive it with plain echo
executors and assert on the *shape* of the executions: which requests
fused, when a full bucket fired, how errors fan out.  There is no
pytest-asyncio in the toolchain — every test runs its coroutine through
``asyncio.run`` directly.
"""

from __future__ import annotations

import asyncio

import pytest

from repro._errors import ConfigurationError
from repro.serving import MicroBatcher


class EchoExecutor:
    """Returns each item unchanged and records every batch it ran."""

    def __init__(self) -> None:
        self.batches: list[tuple[object, list]] = []

    async def __call__(self, key, items):
        self.batches.append((key, list(items)))
        return list(items)


class TestFusion:
    def test_same_iteration_burst_fuses_into_one_batch(self):
        async def scenario():
            executor = EchoExecutor()
            batcher = MicroBatcher(executor, max_batch_size=64, max_delay=0.0)
            futures = [batcher.submit("k", i) for i in range(5)]
            results = await asyncio.gather(*futures)
            return executor, batcher, results

        executor, batcher, results = asyncio.run(scenario())
        assert results == [0, 1, 2, 3, 4]
        assert len(executor.batches) == 1
        assert executor.batches[0] == ("k", [0, 1, 2, 3, 4])
        stats = batcher.stats()
        assert stats.requests == 5
        assert stats.batches == 1
        assert stats.largest_batch == 5
        assert stats.mean_batch_size == pytest.approx(5.0)

    def test_full_bucket_fires_immediately(self):
        async def scenario():
            executor = EchoExecutor()
            batcher = MicroBatcher(executor, max_batch_size=2, max_delay=10.0)
            futures = [batcher.submit("k", i) for i in range(5)]
            # Two full buckets fired at size 2; the fifth request would
            # wait out the 10 s window — flush it instead.
            batcher.flush()
            return executor, await asyncio.gather(*futures)

        executor, results = asyncio.run(scenario())
        assert results == [0, 1, 2, 3, 4]
        assert [len(items) for _key, items in executor.batches] == [2, 2, 1]

    def test_distinct_keys_never_fuse(self):
        async def scenario():
            executor = EchoExecutor()
            batcher = MicroBatcher(executor, max_batch_size=64, max_delay=0.0)
            futures = [batcher.submit(i % 2, i) for i in range(6)]
            return executor, await asyncio.gather(*futures)

        executor, results = asyncio.run(scenario())
        assert results == [0, 1, 2, 3, 4, 5]
        assert sorted(key for key, _items in executor.batches) == [0, 1]
        by_key = dict(executor.batches)
        assert by_key[0] == [0, 2, 4]
        assert by_key[1] == [1, 3, 5]

    def test_delayed_window_still_collects_stragglers(self):
        async def scenario():
            executor = EchoExecutor()
            batcher = MicroBatcher(executor, max_batch_size=64, max_delay=0.05)
            first = batcher.submit("k", "a")
            await asyncio.sleep(0)  # a different loop iteration
            second = batcher.submit("k", "b")
            return executor, await asyncio.gather(first, second)

        executor, results = asyncio.run(scenario())
        assert results == ["a", "b"]
        assert len(executor.batches) == 1


class TestErrors:
    def test_execution_error_fans_out_to_every_request(self):
        async def scenario():
            async def explode(key, items):
                raise RuntimeError("engine failure")

            batcher = MicroBatcher(explode, max_batch_size=64, max_delay=0.0)
            futures = [batcher.submit("k", i) for i in range(3)]
            return await asyncio.gather(*futures, return_exceptions=True)

        outcomes = asyncio.run(scenario())
        assert len(outcomes) == 3
        assert all(isinstance(outcome, RuntimeError) for outcome in outcomes)

    def test_result_length_mismatch_is_an_error(self):
        async def scenario():
            async def short(key, items):
                return list(items)[:-1]

            batcher = MicroBatcher(short, max_batch_size=64, max_delay=0.0)
            futures = [batcher.submit("k", i) for i in range(3)]
            return await asyncio.gather(*futures, return_exceptions=True)

        outcomes = asyncio.run(scenario())
        assert all(isinstance(outcome, ConfigurationError) for outcome in outcomes)

    def test_invalid_parameters_are_rejected(self):
        async def noop(key, items):
            return list(items)

        with pytest.raises(ConfigurationError):
            MicroBatcher(noop, max_batch_size=0)
        with pytest.raises(ConfigurationError):
            MicroBatcher(noop, max_delay=-1.0)


class TestLifecycle:
    def test_close_delivers_pending_then_rejects(self):
        async def scenario():
            executor = EchoExecutor()
            batcher = MicroBatcher(executor, max_batch_size=64, max_delay=10.0)
            pending = batcher.submit("k", "late")
            await batcher.close()
            delivered = await pending
            with pytest.raises(ConfigurationError, match="closed"):
                batcher.submit("k", "too late")
            return delivered

        assert asyncio.run(scenario()) == "late"

    def test_drain_waits_for_in_flight_batches(self):
        async def scenario():
            started = asyncio.Event()

            async def slow(key, items):
                started.set()
                await asyncio.sleep(0.01)
                return list(items)

            batcher = MicroBatcher(slow, max_batch_size=1, max_delay=0.0)
            future = batcher.submit("k", 1)
            await started.wait()
            await batcher.drain()
            assert future.done()
            return await future

        assert asyncio.run(scenario()) == 1

    def test_pending_counts_unfired_requests(self):
        async def scenario():
            executor = EchoExecutor()
            batcher = MicroBatcher(executor, max_batch_size=64, max_delay=10.0)
            future = batcher.submit("k", 1)
            depth = batcher.pending
            await batcher.close()
            await future
            return depth, batcher.pending

        assert asyncio.run(scenario()) == (1, 0)
