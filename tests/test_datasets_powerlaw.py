"""Unit tests for the power-law utilities (repro.datasets.powerlaw)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._errors import ConfigurationError, EmptyDatasetError
from repro.datasets import fit_power_law_exponent, zipf_probabilities, zipf_sizes
from repro.datasets.powerlaw import element_frequencies, record_sizes


class TestZipfProbabilities:
    def test_sums_to_one(self):
        probabilities = zipf_probabilities(1_000, 1.2)
        assert probabilities.sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        probabilities = zipf_probabilities(100, 1.5)
        assert np.all(np.diff(probabilities) <= 0)

    def test_zero_exponent_is_uniform(self):
        probabilities = zipf_probabilities(10, 0.0)
        np.testing.assert_allclose(probabilities, np.full(10, 0.1))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            zipf_probabilities(0, 1.0)
        with pytest.raises(ConfigurationError):
            zipf_probabilities(10, -1.0)


class TestZipfSizes:
    def test_within_bounds(self):
        rng = np.random.default_rng(0)
        sizes = zipf_sizes(500, 5, 50, 2.0, rng)
        assert sizes.min() >= 5
        assert sizes.max() <= 50
        assert sizes.shape == (500,)

    def test_higher_exponent_concentrates_at_minimum(self):
        rng = np.random.default_rng(1)
        gentle = zipf_sizes(2_000, 10, 100, 1.0, np.random.default_rng(1))
        steep = zipf_sizes(2_000, 10, 100, 5.0, rng)
        assert steep.mean() < gentle.mean()

    def test_zero_exponent_is_roughly_uniform(self):
        sizes = zipf_sizes(5_000, 10, 110, 0.0, np.random.default_rng(2))
        assert abs(sizes.mean() - 60) < 3

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            zipf_sizes(0, 5, 10, 1.0, rng)
        with pytest.raises(ConfigurationError):
            zipf_sizes(10, 0, 10, 1.0, rng)
        with pytest.raises(ConfigurationError):
            zipf_sizes(10, 20, 10, 1.0, rng)


class TestStatistics:
    def test_element_frequencies_count_records_not_occurrences(self):
        records = [["a", "a", "b"], ["a"], ["c"]]
        frequencies = element_frequencies(records)
        assert frequencies["a"] == 2
        assert frequencies["b"] == 1
        assert frequencies["c"] == 1

    def test_record_sizes_count_distinct(self):
        assert list(record_sizes([["a", "a", "b"], ["c"]])) == [2, 1]


class TestFitPowerLaw:
    def test_recovers_exponent_of_synthetic_sample(self):
        rng = np.random.default_rng(3)
        # Discrete power-law sample with exponent alpha = 2.5 and x_min = 10
        # (the regime the discrete MLE with the −1/2 shift is designed for).
        alpha = 2.5
        x_min = 10
        sample = np.floor(x_min * (1.0 - rng.random(50_000)) ** (-1.0 / (alpha - 1.0)))
        fitted = fit_power_law_exponent(sample, x_min=x_min)
        assert abs(fitted - alpha) < 0.2

    def test_larger_exponent_for_steeper_sample(self):
        rng = np.random.default_rng(4)
        steep = np.floor(10 * (1.0 - rng.random(20_000)) ** (-1.0 / 4.0))  # alpha = 5
        gentle = np.floor(10 * (1.0 - rng.random(20_000)) ** (-1.0 / 1.0))  # alpha = 2
        assert fit_power_law_exponent(steep, x_min=10) > fit_power_law_exponent(gentle, x_min=10)

    def test_peaked_sample_has_large_exponent(self):
        # Observations all equal to the minimum indicate an extremely peaked
        # distribution; the fitted exponent must be large (here > 5).
        assert fit_power_law_exponent([3, 3, 3, 3]) > 5.0

    def test_x_min_filters_observations(self):
        values = [1] * 100 + [50, 60, 70]
        unrestricted = fit_power_law_exponent(values)
        tail_only = fit_power_law_exponent(values, x_min=50)
        assert unrestricted != tail_only

    def test_validation(self):
        with pytest.raises(EmptyDatasetError):
            fit_power_law_exponent([])
        with pytest.raises(EmptyDatasetError):
            fit_power_law_exponent([0, -1])
        with pytest.raises(ConfigurationError):
            fit_power_law_exponent([1, 2], x_min=0)
        with pytest.raises(EmptyDatasetError):
            fit_power_law_exponent([1, 2], x_min=100)
