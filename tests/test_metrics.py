"""Unit tests for the accuracy metrics (repro.evaluation.metrics)."""

from __future__ import annotations

import pytest

from repro._errors import ConfigurationError
from repro.evaluation import ConfusionCounts, f_score, precision_recall


class TestConfusionCounts:
    def test_from_sets(self):
        counts = ConfusionCounts.from_sets(truth={1, 2, 3}, answer={2, 3, 4, 5})
        assert counts.true_positives == 2
        assert counts.false_positives == 2
        assert counts.false_negatives == 1

    def test_precision_recall_basic(self):
        counts = ConfusionCounts.from_sets({1, 2, 3, 4}, {3, 4, 5})
        assert counts.precision == pytest.approx(2 / 3)
        assert counts.recall == pytest.approx(2 / 4)

    def test_perfect_answer(self):
        counts = ConfusionCounts.from_sets({1, 2}, {1, 2})
        assert counts.precision == 1.0
        assert counts.recall == 1.0
        assert counts.f_score(1.0) == 1.0

    def test_empty_answer_non_empty_truth(self):
        counts = ConfusionCounts.from_sets({1, 2}, set())
        assert counts.precision == 0.0
        assert counts.recall == 0.0
        assert counts.f_score() == 0.0

    def test_empty_truth_empty_answer_is_perfect(self):
        counts = ConfusionCounts.from_sets(set(), set())
        assert counts.precision == 1.0
        assert counts.recall == 1.0

    def test_empty_truth_non_empty_answer(self):
        counts = ConfusionCounts.from_sets(set(), {1})
        assert counts.precision == 0.0
        assert counts.recall == 1.0

    def test_accepts_iterables(self):
        counts = ConfusionCounts.from_sets([1, 2, 2], (2, 3))
        assert counts.true_positives == 1


class TestPrecisionRecall:
    def test_wrapper(self):
        precision, recall = precision_recall({1, 2, 3}, {2, 3, 4})
        assert precision == pytest.approx(2 / 3)
        assert recall == pytest.approx(2 / 3)


class TestFScore:
    def test_f1_is_harmonic_mean(self):
        assert f_score(0.5, 1.0, alpha=1.0) == pytest.approx(2 * 0.5 * 1.0 / 1.5)

    def test_equation_35_general_alpha(self):
        precision, recall, alpha = 0.6, 0.9, 0.5
        expected = (1 + alpha**2) * precision * recall / (alpha**2 * precision + recall)
        assert f_score(precision, recall, alpha) == pytest.approx(expected)

    def test_f05_weighs_precision_more(self):
        high_precision = f_score(0.9, 0.5, alpha=0.5)
        high_recall = f_score(0.5, 0.9, alpha=0.5)
        assert high_precision > high_recall

    def test_f1_is_symmetric(self):
        assert f_score(0.3, 0.8) == pytest.approx(f_score(0.8, 0.3))

    def test_zero_denominator(self):
        assert f_score(0.0, 0.0) == 0.0

    def test_bounds(self):
        assert 0.0 <= f_score(0.37, 0.81) <= 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            f_score(0.5, 0.5, alpha=0.0)
        with pytest.raises(ConfigurationError):
            f_score(1.5, 0.5)
        with pytest.raises(ConfigurationError):
            f_score(0.5, -0.1)
