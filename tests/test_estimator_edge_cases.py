"""Estimator edge cases: exact sketches, empty records, mismatched hashers.

These cases sit on the boundaries of the estimators' branch structure —
the exact short-circuits, the degenerate ``k < 2`` paths, and the
compatibility checks — and are easy to regress when the estimator layer
changes, so they get their own focused suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._errors import SketchCompatibilityError
from repro.core import GBKMVIndex, GKMVBatchEstimator, KMVBatchEstimator
from repro.core.buffer import FrequentElementVocabulary
from repro.core.gbkmv import GBKMVSketch
from repro.core.gkmv import GKMVSketch
from repro.core.kmv import KMVSketch
from repro.core.store import ColumnarSketchStore
from repro.hashing import UnitHash


class TestExactSketches:
    """Records smaller than the sketch capacity are represented exactly."""

    def test_kmv_small_record_is_exact(self, hasher):
        sketch = KMVSketch.from_record(["a", "b", "c"], k=16, hasher=hasher)
        assert sketch.is_exact
        assert sketch.distinct_value_estimate() == 3.0

    def test_kmv_exact_pair_intersection_is_exact_count(self, hasher):
        a = KMVSketch.from_record(["a", "b", "c"], k=16, hasher=hasher)
        b = KMVSketch.from_record(["b", "c", "d"], k=16, hasher=hasher)
        assert a.intersection_size_estimate(b) == 2.0
        assert a.union_size_estimate(b) == 4.0

    def test_gkmv_full_threshold_is_exact(self, hasher):
        a = GKMVSketch.from_record(["a", "b", "c"], threshold=1.0, hasher=hasher)
        b = GKMVSketch.from_record(["c", "d"], threshold=1.0, hasher=hasher)
        assert a.is_exact and b.is_exact
        assert a.intersection_size_estimate(b) == 1.0
        assert a.union_size_estimate(b) == 4.0

    def test_batched_exact_pairs_match_scalar(self, hasher):
        records = [{"a", "b"}, {"b", "c", "d"}, {"e"}]
        store = ColumnarSketchStore(signature_bits=0)
        for record in records:
            sketch = GKMVSketch.from_record(record, threshold=1.0, hasher=hasher)
            store.append(sketch.values, 0, sketch.record_size, sketch.record_size)
        estimator = GKMVBatchEstimator(store)
        query = GKMVSketch.from_record({"b", "d", "e"}, threshold=1.0, hasher=hasher)
        batch = estimator.intersection_many(query.values, query.record_size)
        assert batch.tolist() == [1.0, 2.0, 1.0]


class TestEmptyRecords:
    """Empty records and empty residuals must not crash the estimators."""

    def test_kmv_empty_record_sketch(self, hasher):
        sketch = KMVSketch.from_record([], k=4, hasher=hasher)
        assert sketch.size == 0
        assert sketch.is_exact
        assert sketch.distinct_value_estimate() == 0.0

    def test_gkmv_empty_record_sketch(self, hasher):
        sketch = GKMVSketch.from_record([], threshold=0.5, hasher=hasher)
        other = GKMVSketch.from_record(["a", "b"], threshold=0.5, hasher=hasher)
        assert sketch.is_exact
        assert sketch.distinct_value_estimate() == 0.0
        assert sketch.intersection_size_estimate(other) >= 0.0

    def test_gbkmv_record_fully_inside_buffer(self, hasher):
        # Every element is frequent: the residual sketch is empty but exact.
        vocabulary = FrequentElementVocabulary(["a", "b", "c"])
        sketch = GBKMVSketch.from_record(
            ["a", "b"], vocabulary=vocabulary, threshold=0.5, hasher=hasher
        )
        other = GBKMVSketch.from_record(
            ["b", "c"], vocabulary=vocabulary, threshold=0.5, hasher=hasher
        )
        assert sketch.residual.size == 0
        assert sketch.intersection_size_estimate(other) == 1.0
        assert sketch.union_size_estimate(other) == 3.0

    def test_batched_empty_query_values(self, hasher):
        store = ColumnarSketchStore(signature_bits=0)
        sketch = GKMVSketch.from_record(["a", "b"], threshold=1.0, hasher=hasher)
        store.append(sketch.values, 0, sketch.record_size, sketch.record_size)
        estimator = GKMVBatchEstimator(store)
        batch = estimator.intersection_many(np.empty(0, dtype=np.float64), 0)
        # Empty-but-exact query against an exact record: exact overlap of 0.
        assert batch.tolist() == [0.0]

    def test_kmv_batch_empty_rows(self, hasher):
        estimator = KMVBatchEstimator.from_value_rows(
            [np.empty(0, dtype=np.float64)], [0], k=4
        )
        query = KMVSketch.from_record(["x", "y"], k=4, hasher=hasher)
        assert estimator.intersection_many(query.values, query.record_size).tolist() == [0.0]


class TestMismatchedHashers:
    """Sketches built under different hash functions must refuse to combine."""

    def test_kmv_mismatch(self):
        a = KMVSketch.from_record(["a", "b"], k=4, hasher=UnitHash(seed=1))
        b = KMVSketch.from_record(["a", "b"], k=4, hasher=UnitHash(seed=2))
        with pytest.raises(SketchCompatibilityError):
            a.intersection_size_estimate(b)
        with pytest.raises(SketchCompatibilityError):
            a.union_size_estimate(b)
        with pytest.raises(SketchCompatibilityError):
            a.merge(b)

    def test_gkmv_mismatched_hasher(self):
        a = GKMVSketch.from_record(["a"], threshold=0.9, hasher=UnitHash(seed=1))
        b = GKMVSketch.from_record(["a"], threshold=0.9, hasher=UnitHash(seed=2))
        with pytest.raises(SketchCompatibilityError):
            a.intersection_size_estimate(b)

    def test_gkmv_mismatched_threshold(self, hasher):
        a = GKMVSketch.from_record(["a"], threshold=0.9, hasher=hasher)
        b = GKMVSketch.from_record(["a"], threshold=0.4, hasher=hasher)
        with pytest.raises(SketchCompatibilityError):
            a.intersection_size_estimate(b)

    def test_gbkmv_mismatched_vocabulary(self, hasher):
        vocab_a = FrequentElementVocabulary(["a", "b"])
        vocab_b = FrequentElementVocabulary(["b", "a"])
        a = GBKMVSketch.from_record(["a", "x"], vocabulary=vocab_a, threshold=0.9, hasher=hasher)
        b = GBKMVSketch.from_record(["a", "x"], vocabulary=vocab_b, threshold=0.9, hasher=hasher)
        with pytest.raises(SketchCompatibilityError):
            a.intersection_size_estimate(b)

    def test_index_sketches_share_one_hasher(self, tiny_records):
        index = GBKMVIndex.build(tiny_records, space_fraction=1.0, buffer_size=1)
        foreign = GBKMVSketch.from_record(
            tiny_records[0],
            vocabulary=index.vocabulary,
            threshold=index.threshold,
            hasher=UnitHash(seed=12345),
        )
        with pytest.raises(SketchCompatibilityError):
            foreign.intersection_size_estimate(index.sketch(0))
