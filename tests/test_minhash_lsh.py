"""Unit tests for banded MinHash LSH and parameter optimisation (repro.minhash.lsh)."""

from __future__ import annotations

import pytest

from repro._errors import ConfigurationError
from repro.hashing import HashFamily
from repro.minhash import MinHashLSH, MinHashSignature, candidate_probability, optimal_lsh_params
from repro.minhash.lsh import false_negative_area, false_positive_area


class TestCandidateProbability:
    def test_boundary_values(self):
        assert candidate_probability(0.0, 4, 8) == 0.0
        assert candidate_probability(1.0, 4, 8) == 1.0

    def test_monotone_in_similarity(self):
        probabilities = [candidate_probability(s, 8, 4) for s in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert probabilities == sorted(probabilities)

    def test_more_bands_increase_probability(self):
        assert candidate_probability(0.5, 16, 4) > candidate_probability(0.5, 4, 4)

    def test_more_rows_decrease_probability(self):
        assert candidate_probability(0.5, 8, 8) < candidate_probability(0.5, 8, 2)

    def test_invalid_similarity_rejected(self):
        with pytest.raises(ConfigurationError):
            candidate_probability(1.5, 4, 4)


class TestAreas:
    def test_false_positive_area_increases_with_bands(self):
        assert false_positive_area(0.5, 32, 2) > false_positive_area(0.5, 2, 2)

    def test_false_negative_area_decreases_with_bands(self):
        assert false_negative_area(0.5, 32, 2) < false_negative_area(0.5, 2, 2)

    def test_areas_bounded_by_interval_length(self):
        assert 0.0 <= false_positive_area(0.4, 8, 4) <= 0.4 + 1e-9
        assert 0.0 <= false_negative_area(0.4, 8, 4) <= 0.6 + 1e-9


class TestOptimalParams:
    def test_respects_num_perm(self):
        bands, rows = optimal_lsh_params(0.5, num_perm=64)
        assert bands * rows <= 64
        assert bands >= 1 and rows >= 1

    def test_higher_threshold_prefers_more_rows(self):
        _, rows_low = optimal_lsh_params(0.1, num_perm=128)
        _, rows_high = optimal_lsh_params(0.9, num_perm=128)
        assert rows_high >= rows_low

    def test_rows_candidates_restriction(self):
        bands, rows = optimal_lsh_params(0.5, num_perm=64, rows_candidates=[4, 8])
        assert rows in (4, 8)
        assert bands * rows <= 64

    def test_empty_rows_candidates_rejected(self):
        with pytest.raises(ConfigurationError):
            optimal_lsh_params(0.5, num_perm=8, rows_candidates=[100])

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            optimal_lsh_params(-0.1, num_perm=16)

    def test_invalid_num_perm_rejected(self):
        with pytest.raises(ConfigurationError):
            optimal_lsh_params(0.5, num_perm=0)

    def test_recall_weighting_increases_bands(self):
        recall_first = optimal_lsh_params(
            0.5, num_perm=128, false_positive_weight=0.1, false_negative_weight=0.9
        )
        precision_first = optimal_lsh_params(
            0.5, num_perm=128, false_positive_weight=0.9, false_negative_weight=0.1
        )
        # More bands (or fewer rows) → more candidates → recall-leaning.
        recall_aggressiveness = recall_first[0] / recall_first[1]
        precision_aggressiveness = precision_first[0] / precision_first[1]
        assert recall_aggressiveness >= precision_aggressiveness


class TestMinHashLSH:
    @pytest.fixture
    def family(self) -> HashFamily:
        return HashFamily(size=64, seed=21)

    def test_insert_and_query_identical(self, family):
        lsh = MinHashLSH(num_bands=16, rows_per_band=4)
        signature = MinHashSignature.from_record(range(40), family)
        lsh.insert("a", signature)
        assert "a" in lsh
        assert "a" in lsh.query(signature)

    def test_similar_records_are_candidates(self, family):
        lsh = MinHashLSH(num_bands=16, rows_per_band=4)
        base = list(range(100))
        lsh.insert("base", MinHashSignature.from_record(base, family))
        similar = MinHashSignature.from_record(base[:95] + [1000, 1001, 1002, 1003, 1004], family)
        assert "base" in lsh.query(similar)

    def test_dissimilar_records_usually_not_candidates(self, family):
        lsh = MinHashLSH(num_bands=8, rows_per_band=8)
        lsh.insert("base", MinHashSignature.from_record(range(100), family))
        other = MinHashSignature.from_record(range(10_000, 10_100), family)
        assert "base" not in lsh.query(other)

    def test_duplicate_key_rejected(self, family):
        lsh = MinHashLSH(num_bands=4, rows_per_band=4)
        signature = MinHashSignature.from_record(range(10), family)
        lsh.insert("a", signature)
        with pytest.raises(ConfigurationError):
            lsh.insert("a", signature)

    def test_remove(self, family):
        lsh = MinHashLSH(num_bands=4, rows_per_band=4)
        signature = MinHashSignature.from_record(range(10), family)
        lsh.insert("a", signature)
        lsh.remove("a", signature)
        assert "a" not in lsh
        assert lsh.query(signature) == set()
        with pytest.raises(ConfigurationError):
            lsh.remove("a", signature)

    def test_len_and_keys(self, family):
        lsh = MinHashLSH(num_bands=4, rows_per_band=4)
        for key in range(5):
            lsh.insert(key, MinHashSignature.from_record(range(key, key + 20), family))
        assert len(lsh) == 5
        assert set(lsh.keys()) == set(range(5))

    def test_max_bands_limits_probing(self, family):
        lsh = MinHashLSH(num_bands=16, rows_per_band=4)
        signature = MinHashSignature.from_record(range(40), family)
        lsh.insert("a", signature)
        # Probing a single band of an identical signature still matches.
        assert "a" in lsh.query(signature, max_bands=1)
        with pytest.raises(ConfigurationError):
            lsh.query(signature, max_bands=0)
        with pytest.raises(ConfigurationError):
            lsh.query(signature, max_bands=17)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            MinHashLSH(num_bands=0, rows_per_band=4)
        with pytest.raises(ConfigurationError):
            MinHashLSH(num_bands=4, rows_per_band=0)

    def test_num_perm_required(self):
        assert MinHashLSH(num_bands=8, rows_per_band=4).num_perm_required == 32
