"""GB-KMV: an augmented KMV sketch for approximate containment similarity search.

A from-scratch reproduction of Yang, Zhang, Zhang & Huang (ICDE 2019).
The package is organised as:

``repro.api``
    The public entry point: the :class:`~repro.api.SimilarityIndex`
    protocol with per-backend :class:`~repro.api.Capabilities`, typed
    build configs, the string-keyed backend registry
    (:func:`~repro.api.create_index`) and self-describing snapshot
    opening (:func:`~repro.api.open_index`).
``repro.core``
    The paper's contribution: KMV, G-KMV and GB-KMV sketches, the buffer
    cost model and the :class:`~repro.core.GBKMVIndex` search index.
``repro.minhash``
    MinHash signatures, banded LSH and LSH Forest — the substrate the
    baselines are built on.
``repro.baselines``
    LSH Ensemble (the state-of-the-art baseline), plain KMV / G-KMV
    search and asymmetric minwise hashing.
``repro.exact``
    Exact containment search (brute force, inverted index, PPjoin*-style)
    used for ground truth and the exact-method comparison.
``repro.datasets``
    Synthetic power-law dataset generators, proxies for the paper's seven
    corpora and query workload generation.
``repro.evaluation``
    Precision / recall / F_α metrics, the experiment harness, reporting.
``repro.theory``
    The paper's analytical formulas (estimator variances, theorem
    comparisons) as executable functions.

Quickstart
----------
>>> from repro.api import create_index
>>> records = [["a", "b", "c", "d"], ["a", "b"], ["c", "d", "e"]]
>>> index = create_index("gbkmv", records)
>>> [hit.record_id for hit in index.search(["a", "b", "c"], threshold=0.6)]
[0]

The historical entry points (``repro.GBKMVIndex`` and friends) remain
available and are the same objects the registry serves.
"""

from repro._errors import (
    ConfigurationError,
    DatasetFormatError,
    EmptyDatasetError,
    EstimationError,
    ReproError,
    SketchCompatibilityError,
)
from repro.core import (
    GBKMVIndex,
    GBKMVSketch,
    GKMVSketch,
    KMVSketch,
    SearchResult,
)
from repro.baselines import (
    AsymmetricMinHashIndex,
    GKMVSearchIndex,
    KMVSearchIndex,
    LSHEnsembleIndex,
)
from repro.exact import (
    BruteForceSearcher,
    FrequentSetSearcher,
    PPJoinSearcher,
    containment_similarity,
    jaccard_similarity,
)
from repro import api

__version__ = "1.0.0"

__all__ = [
    "api",
    "ReproError",
    "ConfigurationError",
    "EmptyDatasetError",
    "EstimationError",
    "SketchCompatibilityError",
    "DatasetFormatError",
    "KMVSketch",
    "GKMVSketch",
    "GBKMVSketch",
    "GBKMVIndex",
    "SearchResult",
    "LSHEnsembleIndex",
    "KMVSearchIndex",
    "GKMVSearchIndex",
    "AsymmetricMinHashIndex",
    "BruteForceSearcher",
    "FrequentSetSearcher",
    "PPJoinSearcher",
    "containment_similarity",
    "jaccard_similarity",
    "__version__",
]
