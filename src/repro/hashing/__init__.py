"""Hashing substrate used by every sketch in the library.

The KMV family of sketches needs a single hash function ``h`` that maps
elements to the unit interval ``[0, 1)`` and behaves like a uniform random
draw per element.  MinHash-based methods additionally need a *family* of
independent such functions.  This subpackage provides both, built on a
splittable 64-bit mixer so that results are deterministic across runs and
platforms (no reliance on Python's randomized ``hash``).

Public API
----------
``UnitHash``
    One hash function ``element -> float in [0, 1)``.
``HashFamily``
    ``k`` independent :class:`UnitHash` functions, with a vectorised
    ``hash_all`` path for whole records.
``mix64`` / ``hash_to_unit``
    Low-level building blocks (stable 64-bit mixing and the 64-bit to
    unit-interval conversion).
"""

from repro.hashing.hash_functions import (
    MAX_UINT64,
    UnitHash,
    element_fingerprint,
    fingerprint_many,
    hash_to_unit,
    mix64,
    mix64_many,
)
from repro.hashing.families import HashFamily

__all__ = [
    "MAX_UINT64",
    "UnitHash",
    "HashFamily",
    "element_fingerprint",
    "fingerprint_many",
    "hash_to_unit",
    "mix64",
    "mix64_many",
]
