"""Families of independent unit-interval hash functions.

MinHash signatures need ``k`` independent hash functions (one minimum per
function).  KMV-style sketches need only one.  :class:`HashFamily` wraps a
seeded collection of :class:`~repro.hashing.hash_functions.UnitHash`
objects and provides a vectorised "hash every element under every
function" operation used by the MinHash substrate.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro._errors import ConfigurationError
from repro.hashing.hash_functions import MAX_UINT64, UnitHash, element_fingerprint, mix64


class HashFamily:
    """A deterministic family of ``size`` independent hash functions.

    Parameters
    ----------
    size:
        Number of hash functions in the family (``>= 1``).
    seed:
        Master seed.  Function ``i`` uses seed ``mix64(master_seed + i)``,
        so two families with the same ``(size, seed)`` are identical and
        families with different master seeds are effectively independent.
    """

    def __init__(self, size: int, seed: int = 0) -> None:
        if size < 1:
            raise ConfigurationError(f"hash family size must be >= 1, got {size}")
        self._size = int(size)
        self._seed = int(seed) & MAX_UINT64
        self._hashers: tuple[UnitHash, ...] = tuple(
            UnitHash(seed=mix64(self._seed + i + 1)) for i in range(self._size)
        )
        # Pre-computed per-function seed mixes for the vectorised path.
        self._seed_mixes = np.array(
            [mix64(h.seed) for h in self._hashers], dtype=np.uint64
        )

    # -- introspection -----------------------------------------------------
    @property
    def size(self) -> int:
        """Number of functions in the family."""
        return self._size

    @property
    def seed(self) -> int:
        """Master seed the family was derived from."""
        return self._seed

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[UnitHash]:
        return iter(self._hashers)

    def __getitem__(self, index: int) -> UnitHash:
        return self._hashers[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HashFamily):
            return NotImplemented
        return self._size == other._size and self._seed == other._seed

    def __hash__(self) -> int:
        return hash((self._size, self._seed))

    def __repr__(self) -> str:
        return f"HashFamily(size={self._size}, seed={self._seed})"

    # -- hashing -----------------------------------------------------------
    def hash_matrix(self, elements: Iterable[object]) -> np.ndarray:
        """Hash every element under every function.

        Returns
        -------
        numpy.ndarray
            A ``(len(elements), size)`` float64 matrix with entry ``[i, j]``
            equal to ``h_j(elements[i])``.  Empty input yields a
            ``(0, size)`` matrix.
        """
        fingerprints = [element_fingerprint(e) for e in elements]
        if not fingerprints:
            return np.empty((0, self._size), dtype=np.float64)
        fp = np.asarray(fingerprints, dtype=np.uint64)
        return self._hash_fingerprints(fp)

    def _hash_fingerprints(self, fingerprints: np.ndarray) -> np.ndarray:
        """Vectorised SplitMix64 over a fingerprint column vs seed row."""
        golden = np.uint64(0x9E37_79B9_7F4A_7C15)
        mix1 = np.uint64(0xBF58_476D_1CE4_E5B9)
        mix2 = np.uint64(0x94D0_49BB_1331_11EB)
        with np.errstate(over="ignore"):
            z = fingerprints[:, None] ^ self._seed_mixes[None, :]
            z = z + golden
            z = (z ^ (z >> np.uint64(30))) * mix1
            z = (z ^ (z >> np.uint64(27))) * mix2
            z = z ^ (z >> np.uint64(31))
        return (z >> np.uint64(11)).astype(np.float64) * float(2.0**-53)

    def min_hashes(self, elements: Sequence[object]) -> np.ndarray:
        """Return the per-function minimum hash values of a record.

        This is the MinHash signature of ``elements`` under the family:
        an array of length ``size`` whose ``j``-th entry is
        ``min_{e in elements} h_j(e)``.

        Raises
        ------
        ConfigurationError
            If the record is empty (a MinHash signature of the empty set
            is undefined).
        """
        matrix = self.hash_matrix(elements)
        if matrix.shape[0] == 0:
            raise ConfigurationError("cannot MinHash an empty record")
        return matrix.min(axis=0)
