"""Deterministic 64-bit hashing of set elements onto the unit interval.

The paper's sketches (KMV, G-KMV, GB-KMV) all assume a collision-free hash
function ``h : E -> [0, 1]`` whose outputs look like i.i.d. uniform draws.
We implement this with a SplitMix64-style finalizer over a 64-bit
fingerprint of the element, seeded so that independent functions can be
derived for MinHash families.

The implementation is deliberately dependency-light: elements may be
``int``, ``str`` or ``bytes``.  Integers are the common case for the
synthetic datasets used in the benchmarks, and get a fast path.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro._errors import ConfigurationError

#: Largest value representable in an unsigned 64-bit integer.
MAX_UINT64 = 0xFFFF_FFFF_FFFF_FFFF

_GOLDEN_GAMMA = 0x9E37_79B9_7F4A_7C15
_MIX_1 = 0xBF58_476D_1CE4_E5B9
_MIX_2 = 0x94D0_49BB_1331_11EB

# A 64-bit value is converted to the unit interval by keeping its top 53
# bits (the double mantissa width) and scaling by 2**-53; every result is
# exactly representable and strictly below 1.0.
_INV_2_53 = float(2.0**-53)


def mix64(value: int) -> int:
    """Finalize a 64-bit integer with the SplitMix64 mixing function.

    The mixer is a bijection on 64-bit integers with excellent avalanche
    behaviour, which is what the uniformity of KMV estimators relies on.

    Parameters
    ----------
    value:
        Any Python integer; only its low 64 bits are used.

    Returns
    -------
    int
        A pseudo-random looking value in ``[0, 2**64)``.
    """
    z = (value + _GOLDEN_GAMMA) & MAX_UINT64
    z = ((z ^ (z >> 30)) * _MIX_1) & MAX_UINT64
    z = ((z ^ (z >> 27)) * _MIX_2) & MAX_UINT64
    return (z ^ (z >> 31)) & MAX_UINT64


def mix64_many(values: np.ndarray) -> np.ndarray:
    """Vectorised :func:`mix64` over an integer array (uint64 result).

    Element-wise identical to the scalar mixer — the same finalizer, no
    seed fold — so anything that routes on ``mix64(value)`` (e.g. the
    sharded backend's record-id partitioner) can route whole id columns
    in one pass and land every id on the same shard the scalar path
    would.
    """
    z = np.ascontiguousarray(values, dtype=np.uint64)
    with np.errstate(over="ignore"):
        z = z + np.uint64(_GOLDEN_GAMMA)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX_1)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX_2)
        z = z ^ (z >> np.uint64(31))
    return z


def element_fingerprint(element: object) -> int:
    """Map an element to a stable 64-bit fingerprint.

    Integers map to themselves (mod 2**64); strings and bytes are folded
    with an FNV-1a pass.  The fingerprint is independent of the process
    (unlike built-in ``hash`` for strings) so sketches are reproducible.

    Raises
    ------
    ConfigurationError
        If the element type is not supported.
    """
    if isinstance(element, bool):
        # bool is a subclass of int but treating True/False as 1/0 is fine.
        return int(element)
    if isinstance(element, (int, np.integer)):
        return int(element) & MAX_UINT64
    if isinstance(element, str):
        data = element.encode("utf-8")
    elif isinstance(element, bytes):
        data = element
    else:
        raise ConfigurationError(
            f"unsupported element type {type(element).__name__!r}; "
            "elements must be int, str or bytes"
        )
    # FNV-1a over the byte string, 64-bit.
    acc = 0xCBF2_9CE4_8422_2325
    for byte in data:
        acc ^= byte
        acc = (acc * 0x1000_0000_01B3) & MAX_UINT64
    return acc


def hash_to_unit(value: int) -> float:
    """Convert a 64-bit hash value to a float in ``[0, 1)``."""
    return ((value & MAX_UINT64) >> 11) * _INV_2_53


def fingerprint_many(elements: Iterable[object]) -> np.ndarray:
    """Fingerprint a whole batch of elements in one pass (uint64 array).

    Element-wise identical to :func:`element_fingerprint`.  Integer (and
    boolean) batches are converted with a single C-level ``asarray`` pass
    — no Python-level type scan; the 64-bit wrap of negative values
    matches the scalar ``int(element) & MAX_UINT64``.  Anything numpy
    cannot represent losslessly as an integer array (strings, bytes,
    mixed types, integers beyond 64 bits) falls back to one ``fromiter``
    pass over the scalar fingerprint.
    """
    if not isinstance(elements, list):
        elements = list(elements)
    if not elements:
        return np.empty(0, dtype=np.uint64)
    if isinstance(elements[0], (int, np.integer)):
        try:
            arr = np.asarray(elements)
        except (OverflowError, ValueError, TypeError):
            arr = None
        # Only integer-kind inferences are lossless: a mixed or oversized
        # batch infers float64/object/str and must take the exact path.
        if arr is not None and arr.ndim == 1 and arr.dtype.kind in "bui":
            return arr.astype(np.uint64)
    return np.fromiter(
        (element_fingerprint(element) for element in elements),
        dtype=np.uint64,
        count=len(elements),
    )


@dataclass(frozen=True)
class UnitHash:
    """A single deterministic hash function ``element -> [0, 1)``.

    Two :class:`UnitHash` objects with the same ``seed`` compute the same
    function, which is what makes sketches comparable: all sketches that
    should be merged or intersected must be built with equal hashers.

    Parameters
    ----------
    seed:
        Seed deriving this member of the implicit hash family.
    """

    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.seed, (int, np.integer)):
            raise ConfigurationError("seed must be an integer")
        object.__setattr__(self, "seed", int(self.seed) & MAX_UINT64)

    # -- scalar paths ------------------------------------------------------
    def hash_int(self, fingerprint: int) -> float:
        """Hash a pre-computed 64-bit fingerprint to ``[0, 1)``."""
        return hash_to_unit(mix64(fingerprint ^ mix64(self.seed)))

    def __call__(self, element: object) -> float:
        """Hash an arbitrary supported element to ``[0, 1)``."""
        return self.hash_int(element_fingerprint(element))

    # -- vectorised paths --------------------------------------------------
    def hash_many(self, elements: Iterable[object]) -> np.ndarray:
        """Hash an iterable of elements, returning a float64 array.

        Element-wise identical to the scalar ``__call__``: the batch is
        fingerprinted in one :func:`fingerprint_many` pass and mixed with
        one vectorised SplitMix64 pass — no per-element Python hashing
        even for string/bytes/mixed batches.
        """
        return self.hash_fingerprints(fingerprint_many(elements))

    def hash_fingerprints(self, fingerprints: np.ndarray) -> np.ndarray:
        """Hash an array of pre-computed 64-bit fingerprints to ``[0, 1)``.

        The vectorised counterpart of :meth:`hash_int`; bulk pipelines
        that already hold a fingerprint column use this to skip
        re-fingerprinting.
        """
        fingerprints = np.ascontiguousarray(fingerprints, dtype=np.uint64)
        if fingerprints.size == 0:
            return np.empty(0, dtype=np.float64)
        return self._hash_uint64_array(fingerprints)

    def _hash_uint64_array(self, arr: np.ndarray) -> np.ndarray:
        """Vectorised SplitMix64 over a uint64 array."""
        seed_mix = np.uint64(mix64(self.seed))
        with np.errstate(over="ignore"):
            z = arr ^ seed_mix
            z = z + np.uint64(_GOLDEN_GAMMA)
            z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX_1)
            z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX_2)
            z = z ^ (z >> np.uint64(31))
        return (z >> np.uint64(11)).astype(np.float64) * _INV_2_53

    def pack(self) -> bytes:
        """Serialize the hasher (its seed) to 8 bytes."""
        return struct.pack("<Q", self.seed)

    @classmethod
    def unpack(cls, data: bytes) -> "UnitHash":
        """Inverse of :meth:`pack`."""
        if len(data) != 8:
            raise ConfigurationError("packed UnitHash must be exactly 8 bytes")
        (seed,) = struct.unpack("<Q", data)
        return cls(seed=seed)
