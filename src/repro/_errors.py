"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library-level failures with a
single ``except`` clause while still letting programming errors
(``TypeError`` and friends raised by Python itself) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters.

    Raised, for instance, when a sketch is requested with a non-positive
    space budget, or when a similarity threshold falls outside ``[0, 1]``.
    """


class EmptyDatasetError(ReproError):
    """An operation required a non-empty dataset but received an empty one."""


class EstimationError(ReproError):
    """An estimator could not produce a value.

    Typically raised when a sketch is empty or degenerate (e.g. a KMV
    synopsis with ``k < 2`` asked for a variance estimate).
    """


class SnapshotFormatError(ConfigurationError):
    """A persisted index snapshot cannot be read.

    Raised when a file is not a repro index snapshot at all, when its
    self-describing metadata is missing or malformed, or when it was
    written by an unsupported format version.  Subclasses
    :class:`ConfigurationError` so callers that predate the dedicated
    type keep catching persistence failures.
    """


class CapabilityError(ReproError):
    """An operation was invoked on a backend that does not support it.

    The unified :class:`repro.api.SimilarityIndex` surface exposes every
    operation on every backend; operations a backend genuinely cannot
    perform (e.g. ``insert`` on a static LSH Ensemble, ``save`` on a
    brute-force scan) raise this instead of an ``AttributeError``.  Check
    :attr:`repro.api.SimilarityIndex.capabilities` before calling to
    avoid it.
    """


class UnknownBackendError(ConfigurationError):
    """A backend id is not present in the :mod:`repro.api` registry."""


class SketchCompatibilityError(ReproError):
    """Two sketches cannot be combined.

    Raised when sketches built with different hash functions, different
    global thresholds, or different buffer layouts are merged or compared.
    """


class DatasetFormatError(ReproError):
    """A dataset file or record stream is malformed."""
