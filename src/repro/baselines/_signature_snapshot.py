"""Shared npz snapshot plumbing for the signature-matrix baselines.

LSH Ensemble and asymmetric MinHash persist the same way: a JSON meta
payload, the stacked ``(num_records, num_perm)`` signature matrix and
the record sizes — everything else (partitions, banded tables) is a
deterministic function of those and is rebuilt on load.  The two
backends share this writer/reader so format handling (version checks,
missing-payload and missing-column errors, the self-describing
``api_meta`` tag) cannot drift between them.
"""

from __future__ import annotations

import json
from typing import Sequence

import numpy as np

from repro._errors import SnapshotFormatError
from repro.api.registry import snapshot_tag
from repro.minhash.signature import MinHashSignature


def save_signature_snapshot(
    path,
    *,
    backend_id: str,
    meta_key: str,
    version: int,
    meta: dict,
    signatures: Sequence[MinHashSignature],
    num_perm: int,
    record_sizes: Sequence[int],
) -> None:
    """Write a self-describing signature-matrix snapshot."""
    payload = {"format_version": version, **meta}
    matrix = (
        np.stack([signature.values for signature in signatures])
        if signatures
        else np.empty((0, num_perm), dtype=np.float64)
    )
    np.savez_compressed(
        path,
        api_meta=snapshot_tag(backend_id, version),
        **{meta_key: np.array(json.dumps(payload))},
        signatures=matrix,
        record_sizes=np.asarray(record_sizes, dtype=np.int64),
    )


def load_signature_snapshot(
    path, *, meta_key: str, version: int, kind: str
) -> tuple[dict, np.ndarray, np.ndarray]:
    """Read and validate a snapshot written by :func:`save_signature_snapshot`.

    Returns ``(meta, signatures, record_sizes)``.

    Raises
    ------
    SnapshotFormatError
        If the file lacks the backend's meta payload, is missing a
        column, or was written by an unsupported format version.
    """
    with np.load(path) as data:
        if meta_key not in data.files:
            raise SnapshotFormatError(
                f"{path!r} is not {kind} snapshot (no {meta_key} payload); "
                "use repro.api.open_index for other backends"
            )
        try:
            meta = json.loads(str(data[meta_key][()]))
        except json.JSONDecodeError as error:
            raise SnapshotFormatError(
                f"malformed {kind} snapshot metadata: {error}"
            ) from error
        try:
            signatures = np.asarray(data["signatures"], dtype=np.float64)
            record_sizes = np.asarray(data["record_sizes"], dtype=np.int64)
        except KeyError as error:
            raise SnapshotFormatError(
                f"{kind} snapshot is missing column {error}; the payload is "
                "truncated or from an unsupported layout"
            ) from error
    got = meta.get("format_version")
    if got != version:
        raise SnapshotFormatError(
            f"unsupported {kind} snapshot version {got!r} "
            f"(this build reads version {version})"
        )
    return meta, signatures, record_sizes
