"""Asymmetric minwise hashing (Shrivastava & Li, WWW 2015).

The earlier padding-based approach to containment search the paper
discusses in Related Work: every record is padded with record-specific
dummy elements up to the size of the largest record, after which the
Jaccard similarity between the (unpadded) query and a padded record is a
monotone function of the true intersection size:

    J(Q, X_pad) = |Q ∩ X| / (x_max + |Q| − |Q ∩ X|)

so a containment threshold ``t*`` on ``|Q ∩ X| / |Q|`` translates into a
Jaccard threshold on the transformed sets and standard MinHash LSH
applies.  The known weakness — recall collapses when record sizes are
very skewed because padding drowns the signal — is what both LSH Ensemble
and GB-KMV improve on, and the ablation benchmark exercises exactly that.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro._errors import ConfigurationError, EmptyDatasetError
from repro.baselines._signature_snapshot import (
    load_signature_snapshot,
    save_signature_snapshot,
)
from repro.core.index import SearchResult
from repro.hashing import HashFamily
from repro.minhash.lsh import MinHashLSH, optimal_lsh_params
from repro.minhash.signature import MinHashSignature

#: Registry id the :mod:`repro.api` adapter exposes this index under.
AMH_BACKEND_ID = "asymmetric-minhash"

#: Version tag written into asymmetric-MinHash snapshots.
AMH_SNAPSHOT_VERSION = 1


def padded_jaccard_threshold(
    containment_threshold: float, query_size: int, max_record_size: int
) -> float:
    """Jaccard threshold on padded sets equivalent to a containment threshold."""
    if query_size <= 0:
        raise ConfigurationError("query_size must be positive")
    overlap = containment_threshold * query_size
    denominator = max_record_size + query_size - overlap
    if denominator <= 0:
        return 1.0
    return float(min(max(overlap / denominator, 0.0), 1.0))


class AsymmetricMinHashIndex:
    """Asymmetric minwise hashing index for containment similarity search."""

    def __init__(
        self,
        num_perm: int = 256,
        seed: int = 0,
        false_positive_weight: float = 0.5,
        false_negative_weight: float = 0.5,
    ) -> None:
        if num_perm < 2:
            raise ConfigurationError("num_perm must be >= 2")
        self._num_perm = int(num_perm)
        self._family = HashFamily(size=self._num_perm, seed=seed)
        self._fp_weight = float(false_positive_weight)
        self._fn_weight = float(false_negative_weight)
        self._signatures: list[MinHashSignature] = []
        self._record_sizes: list[int] = []
        self._max_record_size = 0
        self._allowed_rows = [
            rows for rows in (1, 2, 4, 8, 16, 32, 64, 128) if rows <= self._num_perm
        ]
        self._tables: dict[int, MinHashLSH] = {}
        self._param_cache: dict[int, tuple[int, int]] = {}

    @classmethod
    def build(
        cls,
        records: Sequence[Iterable[object]],
        num_perm: int = 256,
        seed: int = 0,
    ) -> "AsymmetricMinHashIndex":
        """Pad records to the maximum size and index their MinHash signatures."""
        index = cls(num_perm=num_perm, seed=seed)
        index._index_records(records)
        return index

    def _pad(self, record: set, record_id: int) -> set:
        """Pad a record with record-specific dummy elements up to the max size."""
        padded = set(record)
        needed = self._max_record_size - len(record)
        for i in range(needed):
            padded.add(f"__pad__{record_id}__{i}")
        return padded

    def _index_records(self, records: Sequence[Iterable[object]]) -> None:
        materialized = [set(record) for record in records]
        if not materialized:
            raise EmptyDatasetError("cannot index an empty dataset")
        if any(len(record) == 0 for record in materialized):
            raise ConfigurationError("records must be non-empty sets of elements")
        self._record_sizes = [len(record) for record in materialized]
        self._max_record_size = max(self._record_sizes)
        self._signatures = [
            MinHashSignature.from_record(self._pad(record, record_id), self._family)
            for record_id, record in enumerate(materialized)
        ]
        self._build_tables()

    def _build_tables(self) -> None:
        """(Re)build the banded tables from the padded signatures alone."""
        self._tables = {}
        for rows in self._allowed_rows:
            bands = self._num_perm // rows
            table = MinHashLSH(num_bands=bands, rows_per_band=rows)
            for record_id, signature in enumerate(self._signatures):
                table.insert(record_id, signature)
            self._tables[rows] = table

    # ------------------------------------------------------------ persistence
    def save(self, path) -> None:
        """Snapshot the index to one self-describing npz file.

        The padded-record signatures already encode the asymmetric
        padding, so the snapshot holds only the signature matrix, the
        record sizes, the padded-to maximum and the build parameters;
        :meth:`load` rebuilds the banded tables deterministically.
        """
        save_signature_snapshot(
            path,
            backend_id=AMH_BACKEND_ID,
            meta_key="amh_meta",
            version=AMH_SNAPSHOT_VERSION,
            meta={
                "num_perm": self._num_perm,
                "seed": self._family.seed,
                "false_positive_weight": self._fp_weight,
                "false_negative_weight": self._fn_weight,
                "max_record_size": self._max_record_size,
            },
            signatures=self._signatures,
            num_perm=self._num_perm,
            record_sizes=self._record_sizes,
        )

    @classmethod
    def load(cls, path) -> "AsymmetricMinHashIndex":
        """Restore an index saved with :meth:`save` (identical candidates).

        Raises
        ------
        SnapshotFormatError
            If the file is not an asymmetric-MinHash snapshot or was
            written by an unsupported format version.
        """
        meta, signatures, record_sizes = load_signature_snapshot(
            path,
            meta_key="amh_meta",
            version=AMH_SNAPSHOT_VERSION,
            kind="an asymmetric-MinHash",
        )
        index = cls(
            num_perm=int(meta["num_perm"]),
            seed=int(meta["seed"]),
            false_positive_weight=float(meta["false_positive_weight"]),
            false_negative_weight=float(meta["false_negative_weight"]),
        )
        index._record_sizes = [int(size) for size in record_sizes]
        index._max_record_size = int(meta["max_record_size"])
        index._signatures = [
            MinHashSignature(
                values=signatures[row],
                record_size=max(index._max_record_size, 1),
                family=index._family,
            )
            for row in range(signatures.shape[0])
        ]
        index._build_tables()
        return index

    # ------------------------------------------------------------ introspection
    @property
    def num_records(self) -> int:
        """Number of indexed records."""
        return len(self._signatures)

    @property
    def max_record_size(self) -> int:
        """Size every record was padded up to."""
        return self._max_record_size

    def __len__(self) -> int:
        return self.num_records

    def space_in_values(self) -> float:
        """Space used by the signatures, in signature-value units."""
        return float(self._num_perm * self.num_records)

    def space_fraction(self) -> float:
        """Signature space as a fraction of the dataset size."""
        total = sum(self._record_sizes)
        return self.space_in_values() / total if total else 0.0

    # ----------------------------------------------------------------- search
    def search(
        self,
        query: Iterable[object],
        threshold: float,
        query_size: int | None = None,
    ) -> list[SearchResult]:
        """Containment similarity search via padded-Jaccard MinHash LSH."""
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError("threshold must be in [0, 1]")
        query_elements = set(query)
        if not query_elements:
            raise ConfigurationError("query must contain at least one element")
        q = len(query_elements) if query_size is None else int(query_size)
        signature = MinHashSignature.from_record(query_elements, self._family)

        jaccard_threshold = round(
            padded_jaccard_threshold(threshold, q, self._max_record_size), 2
        )
        key = int(round(jaccard_threshold * 100))
        params = self._param_cache.get(key)
        if params is None:
            bands, rows = optimal_lsh_params(
                jaccard_threshold,
                self._num_perm,
                false_positive_weight=self._fp_weight,
                false_negative_weight=self._fn_weight,
                rows_candidates=self._allowed_rows,
            )
            params = (min(max(bands, 1), self._num_perm // rows), rows)
            self._param_cache[key] = params
        bands, rows = params
        candidates = self._tables[rows].query(signature, max_bands=bands)
        results = [
            SearchResult(record_id=int(record_id), score=1.0)
            for record_id in candidates
        ]
        results.sort(key=lambda result: result.record_id)
        return results
