"""KMV and G-KMV containment search baselines (no buffer).

``KMVSearchIndex`` keeps, for every record, its ``k = ⌊b / m⌋`` smallest
hash values — the equal allocation Theorem 1 shows to be optimal for
plain KMV under a space budget ``b`` — and answers containment search
with the Equation-10 intersection estimator.  The per-record values live
in a dense ``(num_records, k)`` float64 matrix (rows padded with
``+inf``), so one query is scored against every record with a single
call into the batched estimator layer
(:func:`repro.core.batched.kmv_intersection_estimates`), and a whole
workload with :meth:`KMVSearchIndex.search_many`.

``GKMVSearchIndex`` keeps every hash value below a single global
threshold ``τ`` chosen so the sketches fill the budget, and estimates
with the enlarged-``k`` estimator of Equations 24–26.  It is exactly a
GB-KMV index with buffer size zero, and is implemented as such —
segmented columnar store, batched engine and all.

Both expose the same dynamic surface as :class:`~repro.core.GBKMVIndex`
— ``insert`` / ``delete`` / ``update`` under stable record ids, and
``save`` / ``load`` npz snapshots — so the evaluation harness can drive
every method through an identical mixed insert/delete/query stream.

Both appear as the non-buffered points of Figure 6.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

import numpy as np

from repro._errors import ConfigurationError, EmptyDatasetError, SnapshotFormatError
from repro.api.config import GKMVConfig, KMVConfig
from repro.api.interface import Capabilities, SimilarityIndex
from repro.api.registry import snapshot_tag
from repro.core.batched import KMVBatchEstimator
from repro.core.bulk import bulk_kmv_value_rows, flatten_records, resolve_space_budget
from repro.core.index import (
    GBKMVIndex,
    SearchResult,
    _assemble_workload_results,
    _resolve_row_block_size,
    results_from_scores,
)
from repro.hashing import UnitHash

#: Version tag written into KMV snapshots.
KMV_SNAPSHOT_VERSION = 1

#: Tombstoned-row fraction above which the KMV baseline compacts its row
#: lists (mirroring the segmented store's ``compact_ratio``).
KMV_COMPACT_RATIO = 0.25


class KMVSearchIndex(SimilarityIndex):
    """Plain-KMV containment similarity search with equal allocation."""

    backend_id = "kmv"
    config_type = KMVConfig
    capabilities = Capabilities(
        dynamic=True, batched=True, persistent=True, exact=False, scored=True
    )

    def __init__(
        self,
        hasher: UnitHash,
        k_per_record: int,
        budget: float,
    ) -> None:
        self._hasher = hasher
        self._k = int(k_per_record)
        self._budget = float(budget)
        # Per-record rows with stable ids and tombstone flags; the dense
        # batched estimator over the live rows is a derived cache rebuilt
        # lazily after any mutation.
        self._value_rows: list[np.ndarray] = []
        self._record_sizes: list[int] = []
        self._row_ids: list[int] = []
        self._alive: list[bool] = []
        self._id_to_pos: dict[int, int] = {}
        self._next_id = 0
        self._num_dead = 0
        self._estimator: KMVBatchEstimator | None = None
        self._live_ids: np.ndarray | None = None
        self._live_positions: dict[int, int] = {}
        self._stored_values = 0

    # ------------------------------------------------------------------ build
    @classmethod
    def build(
        cls,
        records: Sequence[Iterable[object]],
        space_fraction: float = 0.10,
        space_budget: float | None = None,
        hasher: UnitHash | None = None,
        seed: int = 0,
        method: str = "bulk",
    ) -> "KMVSearchIndex":
        """Build the index with the Theorem-1 equal allocation ``k = ⌊b / m⌋``.

        ``method="bulk"`` (default) hashes the whole dataset in one
        vectorised pass and selects every record's ``k`` smallest values
        with a global lexsort (:func:`repro.core.bulk.bulk_kmv_value_rows`);
        ``"per-record"`` is the historical record-at-a-time loop, kept as
        the benchmark baseline.  Both produce identical sketches.
        """
        if method not in ("bulk", "per-record"):
            raise ConfigurationError(
                f"unknown construction method {method!r}; use 'bulk' or 'per-record'"
            )
        if hasher is None:
            hasher = UnitHash(seed=seed)
        if method == "bulk":
            flat = flatten_records(records)
            budget = resolve_space_budget(
                flat.total_elements, space_fraction, space_budget
            )
            k = max(int(budget // flat.num_records), 1)
            index = cls(hasher=hasher, k_per_record=k, budget=budget)
            index._extend_rows(
                bulk_kmv_value_rows(flat, hasher, k), flat.record_sizes.tolist()
            )
            return index
        materialized = [set(record) for record in records]
        if not materialized:
            raise EmptyDatasetError("cannot build an index over an empty dataset")
        if any(len(record) == 0 for record in materialized):
            raise ConfigurationError("records must be non-empty sets of elements")
        total_elements = sum(len(record) for record in materialized)
        budget = resolve_space_budget(
            total_elements, space_fraction, space_budget
        )
        k = max(int(budget // len(materialized)), 1)

        index = cls(hasher=hasher, k_per_record=k, budget=budget)
        for record in materialized:
            index._add_record(record)
        return index

    @classmethod
    def from_records(
        cls,
        records: Sequence[Iterable[object]],
        config: KMVConfig | None = None,
    ) -> "KMVSearchIndex":
        """:mod:`repro.api` entry point: :meth:`build` under a typed config."""
        config = cls.resolve_config(config)
        return cls.build(
            records,
            space_fraction=config.space_fraction,
            space_budget=config.space_budget,
            seed=config.seed,
            method=config.method,
        )

    def _extend_rows(
        self, value_rows: list[np.ndarray], record_sizes: list[int]
    ) -> list[int]:
        """Append a batch of pre-sketched rows; returns their record ids."""
        ids = list(range(self._next_id, self._next_id + len(value_rows)))
        self._value_rows.extend(value_rows)
        self._record_sizes.extend(record_sizes)
        self._row_ids.extend(ids)
        self._alive.extend([True] * len(value_rows))
        base = len(self._value_rows) - len(value_rows)
        for position, record_id in enumerate(ids):
            self._id_to_pos[record_id] = base + position
        self._next_id += len(value_rows)
        self._stored_values += int(sum(row.size for row in value_rows))
        self._estimator = None
        return ids

    def _add_record(self, record: set, record_id: int | None = None) -> int:
        if record_id is None:
            record_id = self._next_id
        else:
            record_id = int(record_id)
            if record_id in self._id_to_pos:
                raise ConfigurationError(f"record id {record_id} is already live")
        hashes = np.unique(self._hasher.hash_many(list(record)))
        kept = hashes[: self._k]
        self._id_to_pos[record_id] = len(self._value_rows)
        self._value_rows.append(kept)
        self._record_sizes.append(len(record))
        self._row_ids.append(record_id)
        self._alive.append(True)
        self._next_id = max(self._next_id, record_id + 1)
        self._stored_values += int(kept.size)
        self._estimator = None
        return record_id

    # ----------------------------------------------------------------- updates
    def insert(self, record: Iterable[object]) -> int:
        """Insert a new record; returns its stable record id."""
        materialized = set(record)
        if not materialized:
            raise ConfigurationError("cannot insert an empty record")
        return self._add_record(materialized)

    def insert_many(self, records: Sequence[Iterable[object]]) -> list[int]:
        """Batched ingest: sketch and append a whole batch in one bulk pass.

        Record ids and sketch state are identical to looping
        :meth:`insert`; the batch is hashed and truncated to ``k`` values
        per record with the vectorised pipeline instead of one
        ``hash_many`` + ``np.unique`` call per record.
        """
        if len(records) == 0:
            return []
        flat = flatten_records(records)
        return self._extend_rows(
            bulk_kmv_value_rows(flat, self._hasher, self._k),
            flat.record_sizes.tolist(),
        )

    def delete(self, record_id: int) -> None:
        """Tombstone a record; it disappears from every subsequent search.

        Raises
        ------
        ConfigurationError
            If ``record_id`` is unknown or already deleted.
        """
        position = self._id_to_pos.pop(int(record_id), None)
        if position is None:
            raise ConfigurationError(f"unknown or deleted record id {record_id}")
        self._alive[position] = False
        self._stored_values -= int(self._value_rows[position].size)
        self._num_dead += 1
        self._estimator = None
        if self._num_dead >= KMV_COMPACT_RATIO * len(self._value_rows):
            self._compact_rows()

    def _compact_rows(self) -> None:
        """Physically drop tombstoned rows so long streams stay bounded."""
        if self._num_dead == 0:
            return
        live = [position for position, alive in enumerate(self._alive) if alive]
        self._value_rows = [self._value_rows[position] for position in live]
        self._record_sizes = [self._record_sizes[position] for position in live]
        self._row_ids = [self._row_ids[position] for position in live]
        self._alive = [True] * len(live)
        self._id_to_pos = {
            record_id: position for position, record_id in enumerate(self._row_ids)
        }
        self._num_dead = 0

    def update(self, record_id: int, record: Iterable[object]) -> int:
        """Replace a record's content in place, keeping its record id."""
        materialized = set(record)
        if not materialized:
            raise ConfigurationError("cannot update a record to be empty")
        self.delete(record_id)
        return self._add_record(materialized, record_id=record_id)

    # ------------------------------------------------------------ introspection
    @property
    def k_per_record(self) -> int:
        """The per-record sketch capacity ``k = ⌊b / m⌋``."""
        return self._k

    @property
    def num_records(self) -> int:
        """Number of live indexed records."""
        return len(self._record_sizes) - self._num_dead

    @property
    def next_record_id(self) -> int:
        """The id the next :meth:`insert` will assign (sequential, never reused)."""
        return self._next_id

    def __len__(self) -> int:
        return self.num_records

    def space_in_values(self) -> float:
        """Actual space used by live sketches, in signature-value units."""
        return float(self._stored_values)

    def space_fraction(self) -> float:
        """Space used as a fraction of the (live) dataset size."""
        total = sum(
            size for size, alive in zip(self._record_sizes, self._alive) if alive
        )
        return self.space_in_values() / total if total else 0.0

    # ------------------------------------------------------------ persistence
    def save(self, path) -> None:
        """Snapshot the index (rows, ids, tombstones, parameters) to npz."""
        lengths = np.array([row.size for row in self._value_rows], dtype=np.int64)
        values = (
            np.concatenate(self._value_rows)
            if self._value_rows
            else np.empty(0, dtype=np.float64)
        )
        offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(lengths, dtype=np.int64)]
        )
        meta = {
            "format_version": KMV_SNAPSHOT_VERSION,
            "k_per_record": self._k,
            "budget": self._budget,
            "hasher_seed": self._hasher.seed,
            "next_id": self._next_id,
        }
        np.savez_compressed(
            path,
            api_meta=snapshot_tag(self.backend_id, KMV_SNAPSHOT_VERSION),
            kmv_meta=np.array(json.dumps(meta)),
            values=values,
            offsets=offsets,
            record_sizes=np.asarray(self._record_sizes, dtype=np.int64),
            row_ids=np.asarray(self._row_ids, dtype=np.int64),
            alive=np.asarray(self._alive, dtype=bool),
        )

    @classmethod
    def load(cls, path) -> "KMVSearchIndex":
        """Restore an index saved with :meth:`save` (bitwise-identical search).

        Raises
        ------
        SnapshotFormatError
            If the file is not a KMV snapshot or was written by an
            unsupported format version.
        """
        with np.load(path) as data:
            if "kmv_meta" not in data.files:
                raise SnapshotFormatError(
                    f"{path!r} is not a KMV index snapshot (no kmv_meta "
                    "payload); use repro.api.open_index for other backends"
                )
            try:
                meta = json.loads(str(data["kmv_meta"][()]))
            except json.JSONDecodeError as error:
                raise SnapshotFormatError(
                    f"malformed KMV snapshot metadata: {error}"
                ) from error
            try:
                values = np.asarray(data["values"], dtype=np.float64)
                offsets = np.asarray(data["offsets"], dtype=np.int64)
                record_sizes = np.asarray(data["record_sizes"], dtype=np.int64)
                row_ids = np.asarray(data["row_ids"], dtype=np.int64)
                alive = np.asarray(data["alive"], dtype=bool)
            except KeyError as error:
                raise SnapshotFormatError(
                    f"KMV snapshot is missing column {error}; the payload is "
                    "truncated or from an unsupported layout"
                ) from error
        version = meta.get("format_version")
        if version != KMV_SNAPSHOT_VERSION:
            raise SnapshotFormatError(
                f"unsupported KMV snapshot version {version!r} "
                f"(this build reads version {KMV_SNAPSHOT_VERSION})"
            )
        index = cls(
            hasher=UnitHash(seed=int(meta["hasher_seed"])),
            k_per_record=int(meta["k_per_record"]),
            budget=float(meta["budget"]),
        )
        for position in range(record_sizes.size):
            row = values[offsets[position] : offsets[position + 1]].copy()
            index._value_rows.append(row)
            index._record_sizes.append(int(record_sizes[position]))
            index._row_ids.append(int(row_ids[position]))
            index._alive.append(bool(alive[position]))
            if alive[position]:
                index._id_to_pos[int(row_ids[position])] = position
                index._stored_values += int(row.size)
            else:
                index._num_dead += 1
        index._next_id = int(meta["next_id"])
        return index

    # ----------------------------------------------------------------- search
    def _finalize(self) -> KMVBatchEstimator:
        """Pack the live rows into the dense padded matrix of the estimator."""
        if self._estimator is None:
            live = [position for position, alive in enumerate(self._alive) if alive]
            self._estimator = KMVBatchEstimator.from_value_rows(
                [self._value_rows[position] for position in live],
                [self._record_sizes[position] for position in live],
                self._k,
            )
            ids = np.array(
                [self._row_ids[position] for position in live], dtype=np.int64
            )
            identity = bool(np.array_equal(ids, np.arange(ids.size, dtype=np.int64)))
            self._live_ids = None if identity else ids
            self._live_positions = {
                int(record_id): row for row, record_id in enumerate(ids.tolist())
            }
        return self._estimator

    def _query_values(self, query_elements: set) -> tuple[np.ndarray, int]:
        """Kept query sketch values plus the query's distinct hash count."""
        query_hashes = np.unique(self._hasher.hash_many(list(query_elements)))
        return query_hashes[: self._k], int(query_hashes.size)

    def estimate_intersection(
        self, query_values: np.ndarray, query_exact: bool, record_id: int
    ) -> float:
        """Equation-10 intersection estimate between a query sketch and a record.

        ``query_exact`` says whether ``query_values`` is the query's complete
        hash set (the query had at most ``k`` distinct elements); when both
        sides are exact the overlap is counted exactly instead of estimated.
        """
        estimator = self._finalize()
        row = self._live_positions.get(int(record_id))
        if row is None:
            raise ConfigurationError(f"unknown or deleted record id {record_id}")
        return estimator.intersection_one(query_values, query_exact, row)

    def search(
        self,
        query: Iterable[object],
        threshold: float,
        query_size: int | None = None,
    ) -> list[SearchResult]:
        """Containment similarity search with the plain-KMV estimator."""
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError("threshold must be in [0, 1]")
        query_elements = set(query)
        if not query_elements:
            raise ConfigurationError("query must contain at least one element")
        q = len(query_elements) if query_size is None else int(query_size)
        if q <= 0:
            raise ConfigurationError("query_size must be positive")
        estimator = self._finalize()
        query_values, query_hash_count = self._query_values(query_elements)
        estimates = estimator.intersection_many(query_values, query_hash_count)
        return results_from_scores(estimates, threshold, q, row_ids=self._live_ids)

    def search_many(
        self,
        queries: Sequence[Iterable[object]],
        threshold: float,
        query_sizes: Sequence[int] | None = None,
        row_block_size: int | None = None,
    ) -> list[list[SearchResult]]:
        """Batched containment search: same results as looping :meth:`search`.

        Runs the fused multi-query Equation-10 path: every query's sketch
        values are resolved against all records' values in one join-index
        pass, and the records are swept in blocks of ``row_block_size``
        (peak memory ``O(B × block)``).  Estimates — and therefore hits,
        scores and ordering — are bit-identical to the per-query path.
        """
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError("threshold must be in [0, 1]")
        if query_sizes is not None and len(query_sizes) != len(queries):
            raise ConfigurationError("query_sizes must be parallel to queries")
        if not queries:
            return []
        estimator = self._finalize()
        block = _resolve_row_block_size(row_block_size)

        num_queries = len(queries)
        value_rows: list[np.ndarray] = []
        hash_counts = np.zeros(num_queries, dtype=np.int64)
        sizes = np.zeros(num_queries, dtype=np.float64)
        for position, query in enumerate(queries):
            query_elements = set(query)
            if not query_elements:
                raise ConfigurationError("query must contain at least one element")
            q = (
                len(query_elements)
                if query_sizes is None
                else int(query_sizes[position])
            )
            if q <= 0:
                raise ConfigurationError("query_size must be positive")
            values, hash_count = self._query_values(query_elements)
            value_rows.append(values)
            hash_counts[position] = hash_count
            sizes[position] = q
        value_counts = np.fromiter(
            (values.size for values in value_rows), dtype=np.int64, count=num_queries
        )
        query_exact = value_counts >= hash_counts
        query_matrix = np.full(
            (num_queries, max(int(value_counts.max()), 1)), np.inf, dtype=np.float64
        )
        for position, values in enumerate(value_rows):
            query_matrix[position, : values.size] = values

        matches = estimator.match_workload(value_rows)
        theta = threshold * sizes
        num_records = estimator.num_records
        hit_query_chunks: list[np.ndarray] = []
        hit_id_chunks: list[np.ndarray] = []
        hit_score_chunks: list[np.ndarray] = []
        for row_lo in range(0, num_records, block):
            row_hi = min(row_lo + block, num_records)
            estimates = estimator.intersection_workload_block(
                query_matrix, value_counts, query_exact, matches, row_lo, row_hi
            )
            if threshold > 0.0:
                hits = estimates >= theta[:, np.newaxis] * (1.0 - 1e-12)
            else:
                hits = np.ones(estimates.shape, dtype=bool)
            hit_queries, hit_cols = np.nonzero(hits)
            if not hit_queries.size:
                continue
            rows = hit_cols + row_lo
            hit_query_chunks.append(hit_queries)
            hit_id_chunks.append(
                rows if self._live_ids is None else self._live_ids[rows]
            )
            hit_score_chunks.append(
                estimates[hit_queries, hit_cols] / sizes[hit_queries]
            )
        return _assemble_workload_results(
            num_queries, hit_query_chunks, hit_id_chunks, hit_score_chunks
        )


class GKMVSearchIndex(SimilarityIndex):
    """G-KMV containment search: a GB-KMV index constrained to buffer size 0."""

    backend_id = "gkmv"
    config_type = GKMVConfig
    capabilities = Capabilities(
        dynamic=True, batched=True, persistent=True, exact=False, scored=True
    )

    def __init__(self, inner: GBKMVIndex) -> None:
        self._inner = inner

    @classmethod
    def build(
        cls,
        records: Sequence[Iterable[object]],
        space_fraction: float = 0.10,
        space_budget: float | None = None,
        hasher: UnitHash | None = None,
        seed: int = 0,
        method: str = "bulk",
    ) -> "GKMVSearchIndex":
        """Build G-KMV sketches under the given budget (no frequent-element buffer)."""
        inner = GBKMVIndex.build(
            records,
            space_fraction=space_fraction,
            space_budget=space_budget,
            buffer_size=0,
            hasher=hasher,
            seed=seed,
            method=method,
        )
        return cls(inner)

    @classmethod
    def from_records(
        cls,
        records: Sequence[Iterable[object]],
        config: GKMVConfig | None = None,
    ) -> "GKMVSearchIndex":
        """:mod:`repro.api` entry point: :meth:`build` under a typed config."""
        config = cls.resolve_config(config)
        return cls.build(
            records,
            space_fraction=config.space_fraction,
            space_budget=config.space_budget,
            seed=config.seed,
            method=config.method,
        )

    @property
    def inner(self) -> GBKMVIndex:
        """The underlying zero-buffer GB-KMV index."""
        return self._inner

    def statistics(self):
        """Summary statistics of the inner zero-buffer GB-KMV index."""
        return self._inner.statistics()

    @property
    def threshold(self) -> float:
        """The global hash-value threshold ``τ``."""
        return self._inner.threshold

    @property
    def num_records(self) -> int:
        """Number of live indexed records."""
        return self._inner.num_records

    @property
    def next_record_id(self) -> int:
        """The id the next :meth:`insert` will assign (sequential, never reused)."""
        return self._inner.next_record_id

    def __len__(self) -> int:
        return self.num_records

    def space_in_values(self) -> float:
        """Actual space used, in signature-value units."""
        return self._inner.space_in_values()

    def space_fraction(self) -> float:
        """Space used as a fraction of the dataset size."""
        return self._inner.space_fraction()

    # ----------------------------------------------------- dynamic maintenance
    def insert(self, record: Iterable[object]) -> int:
        """Insert a new record under the current global threshold ``τ``."""
        return self._inner.insert(record)

    def insert_many(self, records: Sequence[Iterable[object]]) -> list[int]:
        """Batched ingest through the inner index's bulk pipeline."""
        return self._inner.insert_many(records)

    def delete(self, record_id: int) -> None:
        """Tombstone a record; it disappears from every subsequent search."""
        self._inner.delete(record_id)

    def update(self, record_id: int, record: Iterable[object]) -> int:
        """Replace a record's content in place, keeping its record id."""
        return self._inner.update(record_id, record)

    def save(self, path, layout: str = "npz") -> None:
        """Snapshot the inner zero-buffer GB-KMV index (npz or directory).

        The snapshot's format tag names *this* backend, so
        :func:`repro.api.open_index` restores it as a
        :class:`GKMVSearchIndex` rather than a bare GB-KMV index.
        ``layout`` is forwarded to :meth:`GBKMVIndex.save`.
        """
        self._inner.save(path, backend_id=self.backend_id, layout=layout)

    @classmethod
    def load(cls, path, mmap: bool = False) -> "GKMVSearchIndex":
        """Restore an index saved with :meth:`save`.

        ``mmap`` is forwarded to :meth:`GBKMVIndex.load` and maps the
        large columns of a directory snapshot instead of reading them.

        Raises
        ------
        ConfigurationError
            If the snapshot holds a *buffered* GB-KMV index: wrapping it
            would silently report GB-KMV numbers under the G-KMV label.
        """
        inner = GBKMVIndex.load(path, mmap=mmap)
        if inner.buffer_size != 0:
            raise ConfigurationError(
                "snapshot holds a GB-KMV index with buffer size "
                f"{inner.buffer_size}; G-KMV requires buffer size 0"
            )
        return cls(inner)

    # ----------------------------------------------------------------- search
    def search(
        self,
        query: Iterable[object],
        threshold: float,
        query_size: int | None = None,
    ) -> list[SearchResult]:
        """Containment similarity search with the G-KMV estimator (Eq. 24–26)."""
        return self._inner.search(query, threshold, query_size=query_size)

    def search_many(
        self,
        queries: Sequence[Iterable[object]],
        threshold: float,
        query_sizes: Sequence[int] | None = None,
        row_block_size: int | None = None,
        kernels: str = "fused",
    ) -> list[list[SearchResult]]:
        """Batched containment search through the inner fused GB-KMV engine."""
        return self._inner.search_many(
            queries,
            threshold,
            query_sizes=query_sizes,
            row_block_size=row_block_size,
            kernels=kernels,
        )

    def top_k(
        self, query: Iterable[object], k: int, query_size: int | None = None
    ) -> list[SearchResult]:
        """The ``k`` best-scoring records under the G-KMV estimator."""
        return self._inner.top_k(query, k, query_size=query_size)

    def top_k_many(
        self,
        queries: Sequence[Iterable[object]],
        k: int,
        query_sizes: Sequence[int] | None = None,
        row_block_size: int | None = None,
    ) -> list[list[SearchResult]]:
        """Workload variant of :meth:`top_k` on the inner fused engine."""
        return self._inner.top_k_many(
            queries, k, query_sizes=query_sizes, row_block_size=row_block_size
        )
