"""KMV and G-KMV containment search baselines (no buffer).

``KMVSearchIndex`` keeps, for every record, its ``k = ⌊b / m⌋`` smallest
hash values — the equal allocation Theorem 1 shows to be optimal for
plain KMV under a space budget ``b`` — and answers containment search
with the Equation-10 intersection estimator.  The per-record values live
in a dense ``(num_records, k)`` float64 matrix (rows padded with
``+inf``), so one query is scored against every record with a single
call into the batched estimator layer
(:func:`repro.core.batched.kmv_intersection_estimates`), and a whole
workload with :meth:`KMVSearchIndex.search_many`.

``GKMVSearchIndex`` keeps every hash value below a single global
threshold ``τ`` chosen so the sketches fill the budget, and estimates
with the enlarged-``k`` estimator of Equations 24–26.  It is exactly a
GB-KMV index with buffer size zero, and is implemented as such —
columnar store, batched engine and all.

Both appear as the non-buffered points of Figure 6.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro._errors import ConfigurationError, EmptyDatasetError
from repro.core.batched import KMVBatchEstimator
from repro.core.index import GBKMVIndex, SearchResult, results_from_scores
from repro.hashing import UnitHash


class KMVSearchIndex:
    """Plain-KMV containment similarity search with equal allocation."""

    def __init__(
        self,
        hasher: UnitHash,
        k_per_record: int,
        budget: float,
    ) -> None:
        self._hasher = hasher
        self._k = int(k_per_record)
        self._budget = float(budget)
        # Per-record rows; the dense batched estimator is a derived cache
        # rebuilt lazily after any insertion.
        self._value_rows: list[np.ndarray] = []
        self._record_sizes: list[int] = []
        self._estimator: KMVBatchEstimator | None = None
        self._stored_values = 0

    # ------------------------------------------------------------------ build
    @classmethod
    def build(
        cls,
        records: Sequence[Iterable[object]],
        space_fraction: float = 0.10,
        space_budget: float | None = None,
        hasher: UnitHash | None = None,
        seed: int = 0,
    ) -> "KMVSearchIndex":
        """Build the index with the Theorem-1 equal allocation ``k = ⌊b / m⌋``."""
        materialized = [set(record) for record in records]
        if not materialized:
            raise EmptyDatasetError("cannot build an index over an empty dataset")
        if any(len(record) == 0 for record in materialized):
            raise ConfigurationError("records must be non-empty sets of elements")
        if hasher is None:
            hasher = UnitHash(seed=seed)
        total_elements = sum(len(record) for record in materialized)
        if space_budget is None:
            if not 0.0 < space_fraction <= 1.0:
                raise ConfigurationError("space_fraction must be in (0, 1]")
            budget = space_fraction * total_elements
        else:
            if space_budget <= 0:
                raise ConfigurationError("space_budget must be positive")
            budget = float(space_budget)
        k = max(int(budget // len(materialized)), 1)

        index = cls(hasher=hasher, k_per_record=k, budget=budget)
        for record in materialized:
            index._add_record(record)
        return index

    def _add_record(self, record: set) -> int:
        record_id = len(self._record_sizes)
        hashes = np.unique(self._hasher.hash_many(list(record)))
        kept = hashes[: self._k]
        self._value_rows.append(kept)
        self._record_sizes.append(len(record))
        self._stored_values += int(kept.size)
        self._estimator = None
        return record_id

    # ------------------------------------------------------------ introspection
    @property
    def k_per_record(self) -> int:
        """The per-record sketch capacity ``k = ⌊b / m⌋``."""
        return self._k

    @property
    def num_records(self) -> int:
        """Number of indexed records."""
        return len(self._record_sizes)

    def __len__(self) -> int:
        return self.num_records

    def space_in_values(self) -> float:
        """Actual space used, in signature-value units."""
        return float(self._stored_values)

    def space_fraction(self) -> float:
        """Space used as a fraction of the dataset size."""
        total = sum(self._record_sizes)
        return self.space_in_values() / total if total else 0.0

    # ----------------------------------------------------------------- search
    def _finalize(self) -> KMVBatchEstimator:
        """Pack the value rows into the dense padded matrix of the estimator."""
        if self._estimator is None:
            self._estimator = KMVBatchEstimator.from_value_rows(
                self._value_rows,
                self._record_sizes,
                self._k,
            )
        return self._estimator

    def _query_values(self, query_elements: set) -> tuple[np.ndarray, int]:
        """Kept query sketch values plus the query's distinct hash count."""
        query_hashes = np.unique(self._hasher.hash_many(list(query_elements)))
        return query_hashes[: self._k], int(query_hashes.size)

    def estimate_intersection(
        self, query_values: np.ndarray, query_exact: bool, record_id: int
    ) -> float:
        """Equation-10 intersection estimate between a query sketch and a record.

        ``query_exact`` says whether ``query_values`` is the query's complete
        hash set (the query had at most ``k`` distinct elements); when both
        sides are exact the overlap is counted exactly instead of estimated.
        """
        return self._finalize().intersection_one(query_values, query_exact, record_id)

    def search(
        self,
        query: Iterable[object],
        threshold: float,
        query_size: int | None = None,
    ) -> list[SearchResult]:
        """Containment similarity search with the plain-KMV estimator."""
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError("threshold must be in [0, 1]")
        query_elements = set(query)
        if not query_elements:
            raise ConfigurationError("query must contain at least one element")
        q = len(query_elements) if query_size is None else int(query_size)
        if q <= 0:
            raise ConfigurationError("query_size must be positive")
        estimator = self._finalize()
        query_values, query_hash_count = self._query_values(query_elements)
        estimates = estimator.intersection_many(query_values, query_hash_count)
        return results_from_scores(estimates, threshold, q)

    def search_many(
        self,
        queries: Sequence[Iterable[object]],
        threshold: float,
        query_sizes: Sequence[int] | None = None,
    ) -> list[list[SearchResult]]:
        """Batched containment search: same results as looping :meth:`search`.

        The dense estimator matrix is already a one-off cache, so the
        batched entry point only validates the workload and reuses the
        single-query path — no behavior can drift between the two.
        """
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError("threshold must be in [0, 1]")
        if query_sizes is not None and len(query_sizes) != len(queries):
            raise ConfigurationError("query_sizes must be parallel to queries")
        self._finalize()
        return [
            self.search(
                query,
                threshold,
                query_size=None if query_sizes is None else query_sizes[position],
            )
            for position, query in enumerate(queries)
        ]


class GKMVSearchIndex:
    """G-KMV containment search: a GB-KMV index constrained to buffer size 0."""

    def __init__(self, inner: GBKMVIndex) -> None:
        self._inner = inner

    @classmethod
    def build(
        cls,
        records: Sequence[Iterable[object]],
        space_fraction: float = 0.10,
        space_budget: float | None = None,
        hasher: UnitHash | None = None,
        seed: int = 0,
    ) -> "GKMVSearchIndex":
        """Build G-KMV sketches under the given budget (no frequent-element buffer)."""
        inner = GBKMVIndex.build(
            records,
            space_fraction=space_fraction,
            space_budget=space_budget,
            buffer_size=0,
            hasher=hasher,
            seed=seed,
        )
        return cls(inner)

    @property
    def inner(self) -> GBKMVIndex:
        """The underlying zero-buffer GB-KMV index."""
        return self._inner

    @property
    def threshold(self) -> float:
        """The global hash-value threshold ``τ``."""
        return self._inner.threshold

    @property
    def num_records(self) -> int:
        """Number of indexed records."""
        return self._inner.num_records

    def __len__(self) -> int:
        return self.num_records

    def space_in_values(self) -> float:
        """Actual space used, in signature-value units."""
        return self._inner.space_in_values()

    def space_fraction(self) -> float:
        """Space used as a fraction of the dataset size."""
        return self._inner.space_fraction()

    def search(
        self,
        query: Iterable[object],
        threshold: float,
        query_size: int | None = None,
    ) -> list[SearchResult]:
        """Containment similarity search with the G-KMV estimator (Eq. 24–26)."""
        return self._inner.search(query, threshold, query_size=query_size)

    def search_many(
        self,
        queries: Sequence[Iterable[object]],
        threshold: float,
        query_sizes: Sequence[int] | None = None,
    ) -> list[list[SearchResult]]:
        """Batched containment search through the inner GB-KMV engine."""
        return self._inner.search_many(queries, threshold, query_sizes=query_sizes)
