"""KMV and G-KMV containment search baselines (no buffer).

``KMVSearchIndex`` keeps, for every record, its ``k = ⌊b / m⌋`` smallest
hash values — the equal allocation Theorem 1 shows to be optimal for
plain KMV under a space budget ``b`` — and answers containment search
with the Equation-10 intersection estimator.

``GKMVSearchIndex`` keeps every hash value below a single global
threshold ``τ`` chosen so the sketches fill the budget, and estimates
with the enlarged-``k`` estimator of Equations 24–26.  It is exactly a
GB-KMV index with buffer size zero, and is implemented as such.

Both appear as the non-buffered points of Figure 6.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro._errors import ConfigurationError, EmptyDatasetError
from repro.core.index import GBKMVIndex, SearchResult
from repro.hashing import UnitHash


class KMVSearchIndex:
    """Plain-KMV containment similarity search with equal allocation."""

    def __init__(
        self,
        hasher: UnitHash,
        k_per_record: int,
        budget: float,
    ) -> None:
        self._hasher = hasher
        self._k = int(k_per_record)
        self._budget = float(budget)
        self._values: list[np.ndarray] = []
        self._record_sizes: list[int] = []
        self._value_postings: dict[float, list[int]] = {}
        self._value_postings_arrays: dict[float, np.ndarray] | None = None

    # ------------------------------------------------------------------ build
    @classmethod
    def build(
        cls,
        records: Sequence[Iterable[object]],
        space_fraction: float = 0.10,
        space_budget: float | None = None,
        hasher: UnitHash | None = None,
        seed: int = 0,
    ) -> "KMVSearchIndex":
        """Build the index with the Theorem-1 equal allocation ``k = ⌊b / m⌋``."""
        materialized = [set(record) for record in records]
        if not materialized:
            raise EmptyDatasetError("cannot build an index over an empty dataset")
        if any(len(record) == 0 for record in materialized):
            raise ConfigurationError("records must be non-empty sets of elements")
        if hasher is None:
            hasher = UnitHash(seed=seed)
        total_elements = sum(len(record) for record in materialized)
        if space_budget is None:
            if not 0.0 < space_fraction <= 1.0:
                raise ConfigurationError("space_fraction must be in (0, 1]")
            budget = space_fraction * total_elements
        else:
            if space_budget <= 0:
                raise ConfigurationError("space_budget must be positive")
            budget = float(space_budget)
        k = max(int(budget // len(materialized)), 1)

        index = cls(hasher=hasher, k_per_record=k, budget=budget)
        for record in materialized:
            index._add_record(record)
        return index

    def _add_record(self, record: set) -> int:
        record_id = len(self._record_sizes)
        hashes = np.unique(self._hasher.hash_many(list(record)))
        kept = hashes[: self._k]
        self._values.append(kept)
        self._record_sizes.append(len(record))
        for value in kept:
            self._value_postings.setdefault(float(value), []).append(record_id)
        self._value_postings_arrays = None
        return record_id

    # ------------------------------------------------------------ introspection
    @property
    def k_per_record(self) -> int:
        """The per-record sketch capacity ``k = ⌊b / m⌋``."""
        return self._k

    @property
    def num_records(self) -> int:
        """Number of indexed records."""
        return len(self._record_sizes)

    def __len__(self) -> int:
        return self.num_records

    def space_in_values(self) -> float:
        """Actual space used, in signature-value units."""
        return float(sum(arr.size for arr in self._values))

    def space_fraction(self) -> float:
        """Space used as a fraction of the dataset size."""
        total = sum(self._record_sizes)
        return self.space_in_values() / total if total else 0.0

    # ----------------------------------------------------------------- search
    def _finalize(self) -> None:
        if self._value_postings_arrays is None:
            self._value_postings_arrays = {
                value: np.asarray(ids, dtype=np.int64)
                for value, ids in self._value_postings.items()
            }

    def estimate_intersection(
        self, query_values: np.ndarray, query_exact: bool, record_id: int
    ) -> float:
        """Equation-10 intersection estimate between a query sketch and a record.

        ``query_exact`` says whether ``query_values`` is the query's complete
        hash set (the query had at most ``k`` distinct elements); when both
        sides are exact the overlap is counted exactly instead of estimated.
        """
        record_values = self._values[record_id]
        record_exact = record_values.size >= self._record_sizes[record_id]
        k = min(query_values.size, record_values.size)
        if k == 0:
            return 0.0
        common = np.intersect1d(query_values, record_values, assume_unique=True)
        if query_exact and record_exact:
            return float(common.size)
        if k < 2:
            return float(common.size)
        union_values = np.union1d(query_values, record_values)[:k]
        u_k = float(union_values[-1])
        k_cap = int(np.searchsorted(common, u_k, side="right"))
        return (k_cap / k) * ((k - 1) / u_k)

    def search(
        self,
        query: Iterable[object],
        threshold: float,
        query_size: int | None = None,
    ) -> list[SearchResult]:
        """Containment similarity search with the plain-KMV estimator."""
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError("threshold must be in [0, 1]")
        query_elements = set(query)
        if not query_elements:
            raise ConfigurationError("query must contain at least one element")
        q = len(query_elements) if query_size is None else int(query_size)
        self._finalize()

        query_hashes = np.unique(self._hasher.hash_many(list(query_elements)))
        query_values = query_hashes[: self._k]
        query_exact = query_hashes.size <= self._k

        candidate_ids: set[int] = set()
        assert self._value_postings_arrays is not None
        for value in query_values:
            postings = self._value_postings_arrays.get(float(value))
            if postings is not None:
                candidate_ids.update(int(record_id) for record_id in postings)

        theta = threshold * q
        results: list[SearchResult] = []
        for record_id in sorted(candidate_ids):
            estimate = self.estimate_intersection(query_values, query_exact, record_id)
            if estimate >= theta * (1.0 - 1e-12):
                results.append(
                    SearchResult(record_id=record_id, score=float(estimate / q))
                )
        if theta <= 0.0:
            present = {result.record_id for result in results}
            for record_id in range(self.num_records):
                if record_id not in present:
                    results.append(SearchResult(record_id=record_id, score=0.0))
        results.sort(key=lambda result: (-result.score, result.record_id))
        return results


class GKMVSearchIndex:
    """G-KMV containment search: a GB-KMV index constrained to buffer size 0."""

    def __init__(self, inner: GBKMVIndex) -> None:
        self._inner = inner

    @classmethod
    def build(
        cls,
        records: Sequence[Iterable[object]],
        space_fraction: float = 0.10,
        space_budget: float | None = None,
        hasher: UnitHash | None = None,
        seed: int = 0,
    ) -> "GKMVSearchIndex":
        """Build G-KMV sketches under the given budget (no frequent-element buffer)."""
        inner = GBKMVIndex.build(
            records,
            space_fraction=space_fraction,
            space_budget=space_budget,
            buffer_size=0,
            hasher=hasher,
            seed=seed,
        )
        return cls(inner)

    @property
    def inner(self) -> GBKMVIndex:
        """The underlying zero-buffer GB-KMV index."""
        return self._inner

    @property
    def threshold(self) -> float:
        """The global hash-value threshold ``τ``."""
        return self._inner.threshold

    @property
    def num_records(self) -> int:
        """Number of indexed records."""
        return self._inner.num_records

    def __len__(self) -> int:
        return self.num_records

    def space_in_values(self) -> float:
        """Actual space used, in signature-value units."""
        return self._inner.space_in_values()

    def space_fraction(self) -> float:
        """Space used as a fraction of the dataset size."""
        return self._inner.space_fraction()

    def search(
        self,
        query: Iterable[object],
        threshold: float,
        query_size: int | None = None,
    ) -> list[SearchResult]:
        """Containment similarity search with the G-KMV estimator (Eq. 24–26)."""
        return self._inner.search(query, threshold, query_size=query_size)
