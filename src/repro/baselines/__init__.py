"""Baseline containment-similarity-search methods the paper compares against.

``LSHEnsembleIndex``
    The state-of-the-art baseline LSH-E (Zhu et al., VLDB 2016):
    containment → Jaccard transformation, equal-depth size partitioning
    and per-partition MinHash LSH with query-time parameter tuning
    (Section III-A).
``KMVSearchIndex``
    Plain KMV sketches with the optimal equal allocation of Theorem 1.
``GKMVSearchIndex``
    G-KMV sketches (global threshold, no buffer) — the intermediate point
    between KMV and GB-KMV in Figure 6.
``AsymmetricMinHashIndex``
    Asymmetric minwise hashing (Shrivastava & Li, WWW 2015), the earlier
    padding-based baseline discussed in Related Work.
"""

from repro.baselines.lsh_ensemble import LSHEnsembleIndex
from repro.baselines.kmv_search import GKMVSearchIndex, KMVSearchIndex
from repro.baselines.asymmetric_minhash import AsymmetricMinHashIndex

__all__ = [
    "LSHEnsembleIndex",
    "KMVSearchIndex",
    "GKMVSearchIndex",
    "AsymmetricMinHashIndex",
]
