"""LSH Ensemble (LSH-E) — the state-of-the-art baseline of the paper.

LSH Ensemble (Zhu, Nargesian, Pu, Miller; VLDB 2016) answers containment
similarity search by

1. converting the containment threshold ``t*`` into a Jaccard threshold
   via Equation 13, using the *upper bound* ``u`` of record sizes in each
   partition as a stand-in for the unknown record size ``x``;
2. partitioning the dataset by record size into equal-depth partitions
   (the optimal partitioning under a power-law size distribution); and
3. indexing each partition's MinHash signatures in LSH structures whose
   ``(b, r)`` parameters are tuned per query to minimise expected false
   positives and false negatives at the transformed threshold.

The candidates retrieved from every partition are unioned and returned —
LSH-E does not verify candidates, which is why it favours recall at the
expense of precision (Section III-B).  An optional verification mode that
filters candidates with the signature-based containment estimator of
Equation 15 is provided for the ablation benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro._errors import ConfigurationError, EmptyDatasetError
from repro.baselines._signature_snapshot import (
    load_signature_snapshot,
    save_signature_snapshot,
)
from repro.core.index import SearchResult
from repro.hashing import HashFamily
from repro.minhash.lsh import MinHashLSH, optimal_lsh_params
from repro.minhash.signature import MinHashSignature

#: Registry id the :mod:`repro.api` adapter exposes this index under.
LSHE_BACKEND_ID = "lsh-ensemble"

#: Version tag written into LSH Ensemble snapshots.
LSHE_SNAPSHOT_VERSION = 1


def containment_to_jaccard(containment: float, record_size: float, query_size: float) -> float:
    """Equation 12/13: the Jaccard threshold equivalent to a containment threshold."""
    if query_size <= 0:
        raise ConfigurationError("query_size must be positive")
    denominator = record_size / query_size + 1.0 - containment
    if denominator <= 0:
        return 1.0
    return float(min(max(containment / denominator, 0.0), 1.0))


def jaccard_to_containment(jaccard: float, record_size: float, query_size: float) -> float:
    """Equation 12 inverted: containment from Jaccard (Equation 14 without the hat)."""
    if query_size <= 0:
        raise ConfigurationError("query_size must be positive")
    return float(
        min((record_size / query_size + 1.0) * jaccard / (1.0 + jaccard), 1.0)
    )


@dataclass(frozen=True)
class _Partition:
    """One equal-depth size partition with its LSH tables."""

    record_ids: tuple[int, ...]
    upper_bound: int
    lower_bound: int
    tables: dict[int, MinHashLSH]  # rows_per_band -> table over the partition


class LSHEnsembleIndex:
    """LSH Ensemble index for approximate containment similarity search.

    Parameters are the defaults used in the paper's evaluation: 256 hash
    functions per signature and 32 equal-depth partitions.
    """

    def __init__(
        self,
        num_perm: int = 256,
        num_partitions: int = 32,
        seed: int = 0,
        false_positive_weight: float = 0.5,
        false_negative_weight: float = 0.5,
        verify: bool = False,
    ) -> None:
        if num_perm < 2:
            raise ConfigurationError("num_perm must be >= 2")
        if num_partitions < 1:
            raise ConfigurationError("num_partitions must be >= 1")
        self._num_perm = int(num_perm)
        self._num_partitions = int(num_partitions)
        self._family = HashFamily(size=self._num_perm, seed=seed)
        self._fp_weight = float(false_positive_weight)
        self._fn_weight = float(false_negative_weight)
        #: Default verification mode of :meth:`search` (persisted by save).
        self._verify_default = bool(verify)
        self._signatures: list[MinHashSignature] = []
        self._record_sizes: list[int] = []
        self._partitions: list[_Partition] = []
        self._construction_seconds = 0.0
        # Rows-per-band values for which banded tables are materialised;
        # powers of two give a dense enough grid of (b, r) trade-offs.
        self._allowed_rows = [
            rows for rows in (1, 2, 4, 8, 16, 32, 64, 128) if rows <= self._num_perm
        ]
        # (threshold rounded) -> (bands, rows) memo to avoid re-optimising.
        self._param_cache: dict[tuple[int, int], tuple[int, int]] = {}

    # ------------------------------------------------------------------ build
    @classmethod
    def build(
        cls,
        records: Sequence[Iterable[object]],
        num_perm: int = 256,
        num_partitions: int = 32,
        seed: int = 0,
        false_positive_weight: float = 0.5,
        false_negative_weight: float = 0.5,
        verify: bool = False,
    ) -> "LSHEnsembleIndex":
        """Build the ensemble over a dataset of records."""
        index = cls(
            num_perm=num_perm,
            num_partitions=num_partitions,
            seed=seed,
            false_positive_weight=false_positive_weight,
            false_negative_weight=false_negative_weight,
            verify=verify,
        )
        index._index_records(records)
        return index

    def _index_records(self, records: Sequence[Iterable[object]]) -> None:
        start = time.perf_counter()
        materialized = [set(record) for record in records]
        if not materialized:
            raise EmptyDatasetError("cannot build an LSH Ensemble over an empty dataset")
        if any(len(record) == 0 for record in materialized):
            raise ConfigurationError("records must be non-empty sets of elements")

        self._signatures = [
            MinHashSignature.from_record(record, self._family) for record in materialized
        ]
        self._record_sizes = [len(record) for record in materialized]
        self._build_partitions()
        self._construction_seconds = time.perf_counter() - start

    def _build_partitions(self) -> None:
        """(Re)build the equal-depth partitions and their banded tables.

        Deterministic in the signatures and record sizes alone, which is
        what lets :meth:`load` restore an index from its persisted
        signature matrix without the original records.
        """
        order = np.argsort(np.asarray(self._record_sizes), kind="stable")
        partitions_of_ids = np.array_split(order, self._num_partitions)
        partitions: list[_Partition] = []
        for chunk in partitions_of_ids:
            if chunk.size == 0:
                continue
            record_ids = tuple(int(record_id) for record_id in chunk)
            sizes = [self._record_sizes[record_id] for record_id in record_ids]
            tables: dict[int, MinHashLSH] = {}
            for rows in self._allowed_rows:
                bands = self._num_perm // rows
                table = MinHashLSH(num_bands=bands, rows_per_band=rows)
                for record_id in record_ids:
                    table.insert(record_id, self._signatures[record_id])
                tables[rows] = table
            partitions.append(
                _Partition(
                    record_ids=record_ids,
                    upper_bound=max(sizes),
                    lower_bound=min(sizes),
                    tables=tables,
                )
            )
        self._partitions = partitions

    # ------------------------------------------------------------ persistence
    def save(self, path) -> None:
        """Snapshot the ensemble to one self-describing npz file.

        The signature matrix, record sizes and build parameters
        (including the default verification mode) are everything
        :meth:`load` needs: the partitions and banded tables are a
        deterministic function of the signatures and sizes, so they are
        rebuilt rather than serialised.
        """
        save_signature_snapshot(
            path,
            backend_id=LSHE_BACKEND_ID,
            meta_key="lshe_meta",
            version=LSHE_SNAPSHOT_VERSION,
            meta={
                "num_perm": self._num_perm,
                "num_partitions": self._num_partitions,
                "seed": self._family.seed,
                "false_positive_weight": self._fp_weight,
                "false_negative_weight": self._fn_weight,
                "verify": self._verify_default,
                "construction_seconds": self._construction_seconds,
            },
            signatures=self._signatures,
            num_perm=self._num_perm,
            record_sizes=self._record_sizes,
        )

    @classmethod
    def load(cls, path) -> "LSHEnsembleIndex":
        """Restore an ensemble saved with :meth:`save`.

        The restored index answers :meth:`search` identically: the hash
        family is rebuilt from its seed, the persisted signatures are
        re-partitioned and re-inserted, the default verification mode is
        restored, and the per-query parameter optimisation is untouched.

        Raises
        ------
        SnapshotFormatError
            If the file is not an LSH Ensemble snapshot or was written
            by an unsupported format version.
        """
        meta, signatures, record_sizes = load_signature_snapshot(
            path,
            meta_key="lshe_meta",
            version=LSHE_SNAPSHOT_VERSION,
            kind="an LSH Ensemble",
        )
        index = cls(
            num_perm=int(meta["num_perm"]),
            num_partitions=int(meta["num_partitions"]),
            seed=int(meta["seed"]),
            false_positive_weight=float(meta["false_positive_weight"]),
            false_negative_weight=float(meta["false_negative_weight"]),
            verify=bool(meta.get("verify", False)),
        )
        index._record_sizes = [int(size) for size in record_sizes]
        index._signatures = [
            MinHashSignature(
                values=signatures[row],
                record_size=index._record_sizes[row],
                family=index._family,
            )
            for row in range(signatures.shape[0])
        ]
        index._build_partitions()
        index._construction_seconds = float(meta["construction_seconds"])
        return index

    # ------------------------------------------------------------ introspection
    @property
    def num_perm(self) -> int:
        """Signature length (number of hash functions)."""
        return self._num_perm

    @property
    def num_partitions(self) -> int:
        """Number of equal-depth partitions actually created."""
        return len(self._partitions)

    @property
    def num_records(self) -> int:
        """Number of indexed records."""
        return len(self._signatures)

    @property
    def construction_seconds(self) -> float:
        """Wall-clock time spent building signatures and tables."""
        return self._construction_seconds

    @property
    def verify_default(self) -> bool:
        """Whether :meth:`search` verifies candidates by default."""
        return self._verify_default

    def __len__(self) -> int:
        return self.num_records

    def space_in_values(self) -> float:
        """Space used by the signatures, in signature-value units."""
        return float(self._num_perm * self.num_records)

    def space_fraction(self) -> float:
        """Signature space as a fraction of the dataset size."""
        total_elements = sum(self._record_sizes)
        if total_elements == 0:
            return 0.0
        return self.space_in_values() / total_elements

    def partition_bounds(self) -> list[tuple[int, int]]:
        """(lower, upper) record-size bounds of each partition."""
        return [(p.lower_bound, p.upper_bound) for p in self._partitions]

    # ----------------------------------------------------------------- search
    def _params_for(self, jaccard_threshold: float) -> tuple[int, int]:
        """Optimal (bands, rows) for a Jaccard threshold, memoised.

        The threshold is rounded to two decimals before optimisation: the
        S-curve areas vary slowly, and the coarse key keeps the memo cache
        small and hot across the hundreds of (query, partition) pairs of a
        benchmark run.
        """
        snapped_threshold = round(min(max(jaccard_threshold, 0.0), 1.0), 2)
        key = (int(round(snapped_threshold * 100)), 0)
        cached = self._param_cache.get(key)
        if cached is not None:
            return cached
        bands, rows = optimal_lsh_params(
            snapped_threshold,
            self._num_perm,
            false_positive_weight=self._fp_weight,
            false_negative_weight=self._fn_weight,
            rows_candidates=self._allowed_rows,
        )
        params = (min(max(bands, 1), self._num_perm // rows), rows)
        self._param_cache[key] = params
        return params

    def query_signature(self, query: Iterable[object]) -> MinHashSignature:
        """MinHash signature of a query under the index's hash family."""
        return MinHashSignature.from_record(query, self._family)

    def search(
        self,
        query: Iterable[object],
        threshold: float,
        query_size: int | None = None,
        verify: bool | None = None,
    ) -> list[SearchResult]:
        """Containment similarity search (Section III-A).

        Parameters
        ----------
        query:
            The query record ``Q``.
        threshold:
            Containment similarity threshold ``t*``.
        query_size:
            Exact query size; defaults to the number of distinct elements.
        verify:
            When True, candidates are additionally filtered by the
            signature-based containment estimator (Equation 15).  The
            original LSH-E returns raw candidates (``verify=False``).
            ``None`` (default) uses the index's build-time
            :attr:`verify_default`.

        Returns
        -------
        list[SearchResult]
            Candidate records.  Scores are the Equation-15 estimates when
            ``verify`` is on and 1.0 placeholders otherwise (LSH-E does
            not score raw candidates).
        """
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError("threshold must be in [0, 1]")
        if verify is None:
            verify = self._verify_default
        query_elements = set(query)
        if not query_elements:
            raise ConfigurationError("query must contain at least one element")
        q = len(query_elements) if query_size is None else int(query_size)
        signature = self.query_signature(query_elements)

        candidates: set[int] = set()
        for partition in self._partitions:
            jaccard_threshold = containment_to_jaccard(
                threshold, record_size=partition.upper_bound, query_size=q
            )
            bands, rows = self._params_for(jaccard_threshold)
            table = partition.tables[rows]
            candidates.update(table.query(signature, max_bands=bands))

        results: list[SearchResult] = []
        for record_id in candidates:
            if verify:
                estimate = signature.containment_estimate(
                    self._signatures[record_id], query_size=q
                )
                if estimate < threshold:
                    continue
                score = estimate
            else:
                score = 1.0
            results.append(SearchResult(record_id=record_id, score=score))
        results.sort(key=lambda result: (-result.score, result.record_id))
        return results
