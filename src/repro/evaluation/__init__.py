"""Evaluation harness: accuracy metrics, ground truth, sweeps and reporting.

Everything the benchmark suite needs to turn a searcher (GB-KMV, a
baseline, or an exact method) plus a dataset into the numbers the paper's
tables and figures report: precision, recall, F_α scores (Equation 35),
per-query timings, space usage and construction time.
"""

from repro.evaluation.metrics import (
    ConfusionCounts,
    f_score,
    precision_recall,
)
from repro.evaluation.ground_truth import exact_result_sets
from repro.evaluation.harness import (
    AccuracyReport,
    BatchSearcher,
    DynamicEvaluation,
    DynamicSearcher,
    MethodEvaluation,
    Searcher,
    evaluate_dynamic_stream,
    evaluate_search_method,
    run_dynamic_experiment,
    run_experiment,
    supports_operation,
    time_construction,
)
from repro.evaluation.reporting import format_table, series_to_rows

__all__ = [
    "ConfusionCounts",
    "precision_recall",
    "f_score",
    "exact_result_sets",
    "AccuracyReport",
    "BatchSearcher",
    "DynamicEvaluation",
    "DynamicSearcher",
    "Searcher",
    "MethodEvaluation",
    "evaluate_dynamic_stream",
    "evaluate_search_method",
    "run_dynamic_experiment",
    "run_experiment",
    "supports_operation",
    "time_construction",
    "format_table",
    "series_to_rows",
]
