"""Experiment harness: run a searcher over a workload and measure everything.

The benchmark modules in ``benchmarks/`` all follow the same recipe:

1. build (or load) a dataset,
2. sample a query workload and compute its exact ground truth,
3. build one index per method under the experiment's space setting,
4. run every query through every method, and
5. aggregate precision / recall / F_1 / F_0.5, per-query time, space used
   and construction time.

Steps 2–5 live here so the benchmark files stay declarative: they state
what the paper's figure varies and print the resulting rows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Protocol, Sequence, runtime_checkable

import numpy as np

from repro._errors import ConfigurationError
from repro.evaluation.ground_truth import exact_result_sets
from repro.evaluation.metrics import ConfusionCounts, f_score


@runtime_checkable
class Searcher(Protocol):
    """Anything with a ``search(query, threshold)`` method returning scored hits."""

    def search(self, query, threshold, query_size=None):  # pragma: no cover - protocol
        """Return hits with ``record_id`` attributes (or plain record ids)."""
        ...


@runtime_checkable
class BatchSearcher(Protocol):
    """Searchers that also answer a whole workload in one batched call."""

    def search(self, query, threshold, query_size=None):  # pragma: no cover - protocol
        """Return hits with ``record_id`` attributes (or plain record ids)."""
        ...

    def search_many(self, queries, threshold, query_sizes=None):  # pragma: no cover - protocol
        """Return one hit list per query, identical to looping ``search``."""
        ...


@dataclass(frozen=True)
class AccuracyReport:
    """Averaged accuracy of one method over one workload."""

    precision: float
    recall: float
    f1: float
    f05: float
    per_query_precision: tuple[float, ...]
    per_query_recall: tuple[float, ...]
    per_query_f1: tuple[float, ...]

    @property
    def f1_min(self) -> float:
        """Worst per-query F1 (Figure 14 reports min / avg / max)."""
        return min(self.per_query_f1) if self.per_query_f1 else 0.0

    @property
    def f1_max(self) -> float:
        """Best per-query F1."""
        return max(self.per_query_f1) if self.per_query_f1 else 0.0


@dataclass(frozen=True)
class MethodEvaluation:
    """Accuracy plus cost measurements of one method on one experiment point."""

    method: str
    accuracy: AccuracyReport
    avg_query_seconds: float
    space_in_values: float
    space_fraction: float
    construction_seconds: float


def _result_ids(hits: Iterable) -> set[int]:
    """Normalise a searcher's output to a set of record ids."""
    ids: set[int] = set()
    for hit in hits:
        record_id = getattr(hit, "record_id", hit)
        ids.add(int(record_id))
    return ids


def measure_accuracy(
    answers: Sequence[Iterable[int]],
    ground_truth: Sequence[Iterable[int]],
) -> AccuracyReport:
    """Average per-query precision / recall / F-scores over a workload."""
    if len(answers) != len(ground_truth):
        raise ConfigurationError("answers and ground_truth must have the same length")
    precisions: list[float] = []
    recalls: list[float] = []
    f1s: list[float] = []
    f05s: list[float] = []
    for answer, truth in zip(answers, ground_truth):
        counts = ConfusionCounts.from_sets(truth, answer)
        precisions.append(counts.precision)
        recalls.append(counts.recall)
        f1s.append(counts.f_score(1.0))
        f05s.append(counts.f_score(0.5))
    return AccuracyReport(
        precision=float(np.mean(precisions)) if precisions else 0.0,
        recall=float(np.mean(recalls)) if recalls else 0.0,
        f1=float(np.mean(f1s)) if f1s else 0.0,
        f05=float(np.mean(f05s)) if f05s else 0.0,
        per_query_precision=tuple(precisions),
        per_query_recall=tuple(recalls),
        per_query_f1=tuple(f1s),
    )


def evaluate_search_method(
    method_name: str,
    searcher: Searcher,
    queries: Sequence[Sequence[object]],
    ground_truth: Sequence[Iterable[int]],
    threshold: float,
    construction_seconds: float = 0.0,
    use_batched: bool = True,
) -> MethodEvaluation:
    """Run every query through a searcher and aggregate accuracy and timing.

    Searchers exposing the :class:`BatchSearcher` protocol are driven
    through ``search_many`` (one engine call for the whole workload)
    unless ``use_batched`` is false; everything else falls back to the
    per-query loop.  The two paths return identical hits, so accuracy
    numbers are unaffected — only the measured query time changes.
    """
    if len(queries) != len(ground_truth):
        raise ConfigurationError("queries and ground_truth must have the same length")
    batched = use_batched and isinstance(searcher, BatchSearcher)
    start = time.perf_counter()
    if batched:
        all_hits = searcher.search_many(queries, threshold)
    else:
        all_hits = [searcher.search(query, threshold) for query in queries]
    elapsed = time.perf_counter() - start
    answers = [_result_ids(hits) for hits in all_hits]
    accuracy = measure_accuracy(answers, ground_truth)

    space_in_values = float(getattr(searcher, "space_in_values", lambda: 0.0)())
    space_fraction = float(getattr(searcher, "space_fraction", lambda: 0.0)())
    return MethodEvaluation(
        method=method_name,
        accuracy=accuracy,
        avg_query_seconds=elapsed / max(len(queries), 1),
        space_in_values=space_in_values,
        space_fraction=space_fraction,
        construction_seconds=construction_seconds,
    )


def run_experiment(
    records: Sequence[Sequence[object]],
    queries: Sequence[Sequence[object]],
    threshold: float,
    methods: dict[str, Callable[[], Searcher]],
) -> dict[str, MethodEvaluation]:
    """Build every method, evaluate it, and return the results keyed by name.

    ``methods`` maps a display name to a zero-argument builder so that the
    harness can time construction itself.
    """
    ground_truth = exact_result_sets(records, queries, threshold)
    evaluations: dict[str, MethodEvaluation] = {}
    for name, builder in methods.items():
        built, construction_seconds = time_construction(builder)
        evaluations[name] = evaluate_search_method(
            name,
            built,
            queries,
            ground_truth,
            threshold,
            construction_seconds=construction_seconds,
        )
    return evaluations


def time_construction(builder: Callable[[], Searcher]) -> tuple[Searcher, float]:
    """Build an index and report the wall-clock construction time."""
    start = time.perf_counter()
    built = builder()
    elapsed = time.perf_counter() - start
    return built, elapsed
