"""Experiment harness: run a searcher over a workload and measure everything.

The benchmark modules in ``benchmarks/`` all follow the same recipe:

1. build (or load) a dataset,
2. sample a query workload and compute its exact ground truth,
3. build one index per method under the experiment's space setting,
4. run every query through every method, and
5. aggregate precision / recall / F_1 / F_0.5, per-query time, space used
   and construction time.

Steps 2–5 live here so the benchmark files stay declarative: they state
what the paper's figure varies and print the resulting rows.

Beyond the paper's static experiments, the harness replays *mixed
insert/delete/query streams*
(:class:`~repro.datasets.workload.DynamicWorkload`) against any searcher
exposing the dynamic API — :func:`evaluate_dynamic_stream` measures
accuracy against the per-instant exact ground truth plus separate
mutation and query throughput.

Every harness entry point drives searchers through the unified
:class:`repro.api.SimilarityIndex` protocol: what a backend supports is
read off its :class:`~repro.api.Capabilities` declaration (with a
duck-typing fallback for plain objects that merely quack like a
searcher), so there is no per-method special-casing anywhere below.
The historical :class:`Searcher` / :class:`BatchSearcher` /
:class:`DynamicSearcher` protocols remain as deprecated aliases for
callers that still type-check against them.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Callable, Iterable, Protocol, Sequence, runtime_checkable

import numpy as np

from repro._errors import ConfigurationError
from repro.api.interface import SimilarityIndex
from repro.evaluation.ground_truth import exact_result_sets
from repro.evaluation.metrics import ConfusionCounts


def supports_operation(searcher, operation: str) -> bool:
    """Whether a searcher supports an operation of the unified protocol.

    :class:`~repro.api.SimilarityIndex` backends answer from their
    declared :class:`~repro.api.Capabilities` — ``search`` and
    ``search_many`` are always available (the interface supplies generic
    fallbacks), mutations require ``dynamic``, snapshots ``persistent``
    and top-k ``scored``.  Anything else falls back to duck typing, so
    the harness keeps accepting plain searcher objects that never
    registered as backends.
    """
    if isinstance(searcher, SimilarityIndex):
        capabilities = searcher.capabilities
        if operation in ("insert", "insert_many", "delete", "update"):
            return capabilities.dynamic
        if operation in ("save", "load"):
            return capabilities.persistent
        if operation in ("top_k", "top_k_many"):
            return capabilities.scored
        return True
    return callable(getattr(searcher, operation, None))


@runtime_checkable
class Searcher(Protocol):
    """Deprecated alias: use :class:`repro.api.SimilarityIndex`.

    Anything with a ``search(query, threshold)`` method returning scored
    hits satisfies it; the harness no longer checks against it.
    """

    def search(self, query, threshold, query_size=None):  # pragma: no cover - protocol
        """Return hits with ``record_id`` attributes (or plain record ids)."""
        ...


@runtime_checkable
class BatchSearcher(Protocol):
    """Deprecated alias: use :class:`repro.api.SimilarityIndex` with
    :func:`supports_operation` (``search_many`` is always available there)."""

    def search(self, query, threshold, query_size=None):  # pragma: no cover - protocol
        """Return hits with ``record_id`` attributes (or plain record ids)."""
        ...

    def search_many(self, queries, threshold, query_sizes=None):  # pragma: no cover - protocol
        """Return one hit list per query, identical to looping ``search``."""
        ...


@dataclass(frozen=True)
class AccuracyReport:
    """Averaged accuracy of one method over one workload."""

    precision: float
    recall: float
    f1: float
    f05: float
    per_query_precision: tuple[float, ...]
    per_query_recall: tuple[float, ...]
    per_query_f1: tuple[float, ...]

    @property
    def f1_min(self) -> float:
        """Worst per-query F1 (Figure 14 reports min / avg / max)."""
        return min(self.per_query_f1) if self.per_query_f1 else 0.0

    @property
    def f1_max(self) -> float:
        """Best per-query F1."""
        return max(self.per_query_f1) if self.per_query_f1 else 0.0


@dataclass(frozen=True)
class MethodEvaluation:
    """Accuracy plus cost measurements of one method on one experiment point."""

    method: str
    accuracy: AccuracyReport
    avg_query_seconds: float
    space_in_values: float
    space_fraction: float
    construction_seconds: float


def _result_ids(hits: Iterable) -> set[int]:
    """Normalise a searcher's output to a set of record ids."""
    ids: set[int] = set()
    for hit in hits:
        record_id = getattr(hit, "record_id", hit)
        ids.add(int(record_id))
    return ids


def measure_accuracy(
    answers: Sequence[Iterable[int]],
    ground_truth: Sequence[Iterable[int]],
) -> AccuracyReport:
    """Average per-query precision / recall / F-scores over a workload."""
    if len(answers) != len(ground_truth):
        raise ConfigurationError("answers and ground_truth must have the same length")
    precisions: list[float] = []
    recalls: list[float] = []
    f1s: list[float] = []
    f05s: list[float] = []
    for answer, truth in zip(answers, ground_truth):
        counts = ConfusionCounts.from_sets(truth, answer)
        precisions.append(counts.precision)
        recalls.append(counts.recall)
        f1s.append(counts.f_score(1.0))
        f05s.append(counts.f_score(0.5))
    return AccuracyReport(
        precision=float(np.mean(precisions)) if precisions else 0.0,
        recall=float(np.mean(recalls)) if recalls else 0.0,
        f1=float(np.mean(f1s)) if f1s else 0.0,
        f05=float(np.mean(f05s)) if f05s else 0.0,
        per_query_precision=tuple(precisions),
        per_query_recall=tuple(recalls),
        per_query_f1=tuple(f1s),
    )


def evaluate_search_method(
    method_name: str,
    searcher: Searcher,
    queries: Sequence[Sequence[object]],
    ground_truth: Sequence[Iterable[int]],
    threshold: float,
    construction_seconds: float = 0.0,
    use_batched: bool = True,
) -> MethodEvaluation:
    """Run every query through a searcher and aggregate accuracy and timing.

    Searchers supporting ``search_many`` (every
    :class:`~repro.api.SimilarityIndex`, plus anything duck-typed with
    the method) are driven through it — one engine call for the whole
    workload — unless ``use_batched`` is false; everything else falls
    back to the per-query loop.  The two paths return identical hits, so
    accuracy numbers are unaffected — only the measured query time
    changes.
    """
    if len(queries) != len(ground_truth):
        raise ConfigurationError("queries and ground_truth must have the same length")
    batched = use_batched and supports_operation(searcher, "search_many")
    start = time.perf_counter()
    if batched:
        all_hits = searcher.search_many(queries, threshold)
    else:
        all_hits = [searcher.search(query, threshold) for query in queries]
    elapsed = time.perf_counter() - start
    answers = [_result_ids(hits) for hits in all_hits]
    accuracy = measure_accuracy(answers, ground_truth)

    space_in_values = float(getattr(searcher, "space_in_values", lambda: 0.0)())
    space_fraction = float(getattr(searcher, "space_fraction", lambda: 0.0)())
    return MethodEvaluation(
        method=method_name,
        accuracy=accuracy,
        avg_query_seconds=elapsed / max(len(queries), 1),
        space_in_values=space_in_values,
        space_fraction=space_fraction,
        construction_seconds=construction_seconds,
    )


@runtime_checkable
class DynamicSearcher(Protocol):
    """Deprecated alias: use :class:`repro.api.SimilarityIndex` with
    ``capabilities.dynamic`` — searchers that absorb inserts and deletes
    under stable record ids."""

    def search(self, query, threshold, query_size=None):  # pragma: no cover - protocol
        """Return hits with ``record_id`` attributes (or plain record ids)."""
        ...

    def insert(self, record):  # pragma: no cover - protocol
        """Insert a record, returning its new stable record id."""
        ...

    def delete(self, record_id):  # pragma: no cover - protocol
        """Remove a record; later searches must not return it."""
        ...


@dataclass(frozen=True)
class DynamicEvaluation:
    """Accuracy plus throughput of one method over one mixed stream."""

    method: str
    accuracy: AccuracyReport
    num_operations: int
    num_inserts: int
    num_deletes: int
    num_queries: int
    total_seconds: float
    avg_query_seconds: float
    avg_mutation_seconds: float
    space_in_values: float
    space_fraction: float


def evaluate_dynamic_stream(
    method_name: str,
    searcher: DynamicSearcher,
    workload,
    batch_inserts: bool = False,
    *,
    coalesce_writes: bool | None = None,
) -> DynamicEvaluation:
    """Replay a mixed insert/delete/query stream and measure everything.

    ``searcher`` must already hold ``workload.initial_records`` (build it
    on exactly those records so the stream's record ids line up with the
    searcher's sequential id assignment).  Each query is scored against
    the stream's per-instant exact ground truth; mutation and query time
    are accounted separately so insert-heavy and query-heavy mixes stay
    comparable.

    With ``coalesce_writes`` enabled, the replay rides the serving
    layer's write buffer
    (:class:`repro.serving.write_buffer.WriteCoalescer`): writes buffer
    in stream order with eagerly assigned (and validated) ids, every
    query flushes the buffer first — read-your-writes, so the
    per-instant ground truth stays exact — and runs of consecutive
    inserts reach the searcher as ``insert_many`` bulk ingests.  This is
    the same coalescing path :class:`repro.serving.SimilarityService`
    serves live traffic through; stream semantics are unchanged, only
    the measured mutation wall-clock drops.  Searchers without
    ``insert_many`` fall back to the per-operation replay.

    ``batch_inserts`` is the deprecated spelling of the same switch
    (it predates the shared write buffer); it warns and forwards.
    """
    if batch_inserts:
        warnings.warn(
            "batch_inserts is deprecated; use coalesce_writes=True (the "
            "replay now rides the serving layer's write buffer)",
            DeprecationWarning,
            stacklevel=2,
        )
    if coalesce_writes is None:
        coalesce_writes = bool(batch_inserts)
    if coalesce_writes and supports_operation(searcher, "insert_many"):
        return _evaluate_dynamic_stream_coalesced(method_name, searcher, workload)
    answers: list[set[int]] = []
    truths: list[frozenset[int]] = []
    num_inserts = num_deletes = 0
    mutation_seconds = query_seconds = 0.0
    operations = list(workload.operations)
    position = 0
    while position < len(operations):
        operation = operations[position]
        position += 1
        if operation.op == "insert":
            start = time.perf_counter()
            assigned = searcher.insert(list(operation.record))
            mutation_seconds += time.perf_counter() - start
            num_inserts += 1
            if int(assigned) != operation.record_id:
                raise ConfigurationError(
                    f"searcher assigned id {assigned} where the stream expected "
                    f"{operation.record_id}; build it on the workload's "
                    "initial_records"
                )
        elif operation.op == "delete":
            start = time.perf_counter()
            searcher.delete(operation.record_id)
            mutation_seconds += time.perf_counter() - start
            num_deletes += 1
        elif operation.op == "query":
            start = time.perf_counter()
            hits = searcher.search(list(operation.query), workload.threshold)
            query_seconds += time.perf_counter() - start
            answers.append(_result_ids(hits))
            truths.append(operation.ground_truth)
        else:
            raise ConfigurationError(f"unknown stream operation {operation.op!r}")
    return _assemble_dynamic_evaluation(
        method_name,
        searcher,
        workload,
        answers,
        truths,
        num_inserts=num_inserts,
        num_deletes=num_deletes,
        mutation_seconds=mutation_seconds,
        query_seconds=query_seconds,
    )


def _evaluate_dynamic_stream_coalesced(
    method_name: str, searcher: DynamicSearcher, workload
) -> DynamicEvaluation:
    """The coalesced replay: the stream through the serving write buffer.

    Writes enqueue (eager id assignment, validated against the stream's
    precomputed ids); every query flushes first so it sees exactly the
    stream-instant state the ground truth was computed at.  Flush time
    is mutation time — it is the deferred cost of the buffered writes.
    """
    from repro.serving.write_buffer import WriteCoalescer

    next_id = getattr(searcher, "next_record_id", None)
    if next_id is None:
        next_id = len(workload.initial_records)
    buffer = WriteCoalescer(searcher, next_record_id=next_id)
    answers: list[set[int]] = []
    truths: list[frozenset[int]] = []
    num_inserts = num_deletes = 0
    mutation_seconds = query_seconds = 0.0
    for operation in workload.operations:
        if operation.op == "insert":
            start = time.perf_counter()
            assigned = buffer.insert(list(operation.record))
            mutation_seconds += time.perf_counter() - start
            num_inserts += 1
            if assigned != operation.record_id:
                raise ConfigurationError(
                    f"write buffer assigned id {assigned} where the stream "
                    f"expected {operation.record_id}; build the searcher on "
                    "the workload's initial_records"
                )
        elif operation.op == "delete":
            start = time.perf_counter()
            buffer.delete(operation.record_id)
            mutation_seconds += time.perf_counter() - start
            num_deletes += 1
        elif operation.op == "query":
            start = time.perf_counter()
            buffer.flush()
            mutation_seconds += time.perf_counter() - start
            start = time.perf_counter()
            hits = searcher.search(list(operation.query), workload.threshold)
            query_seconds += time.perf_counter() - start
            answers.append(_result_ids(hits))
            truths.append(operation.ground_truth)
        else:
            raise ConfigurationError(f"unknown stream operation {operation.op!r}")
    start = time.perf_counter()
    buffer.flush()
    mutation_seconds += time.perf_counter() - start
    return _assemble_dynamic_evaluation(
        method_name,
        searcher,
        workload,
        answers,
        truths,
        num_inserts=num_inserts,
        num_deletes=num_deletes,
        mutation_seconds=mutation_seconds,
        query_seconds=query_seconds,
    )


def _assemble_dynamic_evaluation(
    method_name: str,
    searcher: DynamicSearcher,
    workload,
    answers: list[set[int]],
    truths: list[frozenset[int]],
    *,
    num_inserts: int,
    num_deletes: int,
    mutation_seconds: float,
    query_seconds: float,
) -> DynamicEvaluation:
    accuracy = measure_accuracy(answers, truths)
    num_queries = len(answers)
    num_mutations = num_inserts + num_deletes
    space_in_values = float(getattr(searcher, "space_in_values", lambda: 0.0)())
    space_fraction = float(getattr(searcher, "space_fraction", lambda: 0.0)())
    return DynamicEvaluation(
        method=method_name,
        accuracy=accuracy,
        num_operations=workload.num_operations,
        num_inserts=num_inserts,
        num_deletes=num_deletes,
        num_queries=num_queries,
        total_seconds=mutation_seconds + query_seconds,
        avg_query_seconds=query_seconds / max(num_queries, 1),
        avg_mutation_seconds=mutation_seconds / max(num_mutations, 1),
        space_in_values=space_in_values,
        space_fraction=space_fraction,
    )


def run_dynamic_experiment(
    workload,
    methods: dict[str, Callable[[Sequence[Sequence[object]]], DynamicSearcher]],
) -> dict[str, DynamicEvaluation]:
    """Build every method on the stream's initial records and replay it.

    ``methods`` maps a display name to a one-argument builder taking the
    initial records, mirroring :func:`run_experiment`.
    """
    evaluations: dict[str, DynamicEvaluation] = {}
    for name, builder in methods.items():
        searcher = builder(list(workload.initial_records))
        evaluations[name] = evaluate_dynamic_stream(name, searcher, workload)
    return evaluations


def run_experiment(
    records: Sequence[Sequence[object]],
    queries: Sequence[Sequence[object]],
    threshold: float,
    methods: dict[str, Callable[[], Searcher]],
) -> dict[str, MethodEvaluation]:
    """Build every method, evaluate it, and return the results keyed by name.

    ``methods`` maps a display name to a zero-argument builder so that the
    harness can time construction itself.
    """
    ground_truth = exact_result_sets(records, queries, threshold)
    evaluations: dict[str, MethodEvaluation] = {}
    for name, builder in methods.items():
        built, construction_seconds = time_construction(builder)
        evaluations[name] = evaluate_search_method(
            name,
            built,
            queries,
            ground_truth,
            threshold,
            construction_seconds=construction_seconds,
        )
    return evaluations


def time_construction(builder: Callable[[], Searcher]) -> tuple[Searcher, float]:
    """Build an index and report the wall-clock construction time."""
    start = time.perf_counter()
    built = builder()
    elapsed = time.perf_counter() - start
    return built, elapsed
