"""Accuracy metrics for containment similarity search (Section V-A).

Given the ground-truth result set ``T`` and the returned set ``A`` for a
query, the paper evaluates

* ``Precision = |T ∩ A| / |A|``,
* ``Recall    = |T ∩ A| / |T|``, and
* ``F_α = (1 + α²) · P · R / (α² · P + R)``         (Equation 35)

reporting both ``F_1`` and ``F_0.5`` (the latter because LSH-E favours
recall).  Edge cases follow the usual conventions: a query with an empty
ground truth and an empty answer is perfect; an empty answer against a
non-empty truth has recall 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Iterable

from repro._errors import ConfigurationError


@dataclass(frozen=True)
class ConfusionCounts:
    """True/false positive/negative counts of one query's result set."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @classmethod
    def from_sets(
        cls, truth: AbstractSet[int] | Iterable[int], answer: AbstractSet[int] | Iterable[int]
    ) -> "ConfusionCounts":
        """Build counts from a ground-truth set and an answer set."""
        truth_set = set(truth)
        answer_set = set(answer)
        true_positives = len(truth_set & answer_set)
        return cls(
            true_positives=true_positives,
            false_positives=len(answer_set) - true_positives,
            false_negatives=len(truth_set) - true_positives,
        )

    @property
    def precision(self) -> float:
        """``|T ∩ A| / |A|`` (1.0 when nothing was returned and nothing was expected)."""
        returned = self.true_positives + self.false_positives
        if returned == 0:
            return 1.0 if self.false_negatives == 0 else 0.0
        return self.true_positives / returned

    @property
    def recall(self) -> float:
        """``|T ∩ A| / |T|`` (1.0 when the ground truth is empty)."""
        expected = self.true_positives + self.false_negatives
        if expected == 0:
            return 1.0
        return self.true_positives / expected

    def f_score(self, alpha: float = 1.0) -> float:
        """The ``F_α`` score of Equation 35."""
        return f_score(self.precision, self.recall, alpha)


def precision_recall(
    truth: AbstractSet[int] | Iterable[int], answer: AbstractSet[int] | Iterable[int]
) -> tuple[float, float]:
    """Precision and recall of an answer set against the ground truth."""
    counts = ConfusionCounts.from_sets(truth, answer)
    return counts.precision, counts.recall


def f_score(precision: float, recall: float, alpha: float = 1.0) -> float:
    """Equation 35: ``F_α = (1 + α²) P R / (α² P + R)``.

    ``alpha = 1`` is the usual F1; ``alpha = 0.5`` weighs precision more
    heavily, the variant the paper adds because LSH-E favours recall.
    """
    if alpha <= 0:
        raise ConfigurationError("alpha must be positive")
    if not 0.0 <= precision <= 1.0 or not 0.0 <= recall <= 1.0:
        raise ConfigurationError("precision and recall must be in [0, 1]")
    denominator = alpha * alpha * precision + recall
    if denominator == 0:
        return 0.0
    return (1.0 + alpha * alpha) * precision * recall / denominator
