"""Exact ground-truth computation for accuracy experiments.

Every accuracy number in the paper compares a method's answer set against
the exact containment similarity search result ``T = {X : C(Q, X) >= t*}``.
The inverted-index searcher is the fastest exact oracle in this library,
so it backs the ground truth everywhere.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.exact.frequent_set import FrequentSetSearcher


def exact_result_sets(
    records: Sequence[Iterable[object]],
    queries: Sequence[Iterable[object]],
    threshold: float,
) -> list[frozenset[int]]:
    """Exact result set of every query at the given containment threshold."""
    oracle = FrequentSetSearcher(records)
    truth: list[frozenset[int]] = []
    for query in queries:
        hits = oracle.search(query, threshold)
        truth.append(frozenset(hit.record_id for hit in hits))
    return truth
