"""Plain-text reporting helpers for the benchmark harness.

The benchmarks print the same rows the paper's tables and figure series
contain; these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro._errors import ConfigurationError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.4f}",
) -> str:
    """Render rows as a fixed-width text table.

    Floats are formatted with ``float_format``; everything else with
    ``str``.  Column widths adapt to the content.
    """
    if not headers:
        raise ConfigurationError("headers must not be empty")
    rendered_rows: list[list[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {row!r} has {len(row)} cells but there are {len(headers)} headers"
            )
        rendered = [
            float_format.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        rendered_rows.append(rendered)
    widths = [
        max(len(str(header)), *(len(row[i]) for row in rendered_rows)) if rendered_rows else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = []
    header_line = "  ".join(str(header).ljust(width) for header, width in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def series_to_rows(series: Mapping[object, Mapping[str, float]], x_label: str = "x") -> tuple[list[str], list[list[object]]]:
    """Flatten a ``{x: {metric: value}}`` series into table headers and rows.

    Useful for figure-style benchmarks that sweep a parameter (space
    budget, threshold, buffer size) and record several metrics per point.
    """
    metric_names: list[str] = []
    for metrics in series.values():
        for name in metrics:
            if name not in metric_names:
                metric_names.append(name)
    headers = [x_label, *metric_names]
    rows = []
    for x_value, metrics in series.items():
        rows.append([x_value, *[metrics.get(name, float("nan")) for name in metric_names]])
    return headers, rows
