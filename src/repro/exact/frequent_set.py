"""Inverted-index exact containment search (FrequentSet-style ScanCount).

The exact baseline the paper calls *FrequentSet* (Agrawal, Arasu,
Kaushik; SIGMOD 2010) answers error-tolerant set containment lookups with
inverted lists over tokens.  The essential query-time behaviour is
ScanCount: probe the posting list of every query element, count per
record how many query elements it contains, and return records whose
count reaches ``⌈t* · |Q|⌉``.  Because every query token's posting list is
scanned, the cost grows with record frequency and query size — exactly
the behaviour Figure 19(b) contrasts with GB-KMV's size-independent
query time.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

import numpy as np

from repro._errors import ConfigurationError, EmptyDatasetError
from repro.core.index import SearchResult


class FrequentSetSearcher:
    """Exact containment search with per-element inverted lists."""

    def __init__(self, records: Sequence[Iterable[object]]) -> None:
        materialized = [frozenset(record) for record in records]
        if not materialized:
            raise EmptyDatasetError("cannot index an empty dataset")
        if any(len(record) == 0 for record in materialized):
            raise ConfigurationError("records must be non-empty sets of elements")
        self._record_sizes = np.array([len(r) for r in materialized], dtype=np.int64)
        postings: dict[object, list[int]] = defaultdict(list)
        for record_id, record in enumerate(materialized):
            for element in record:
                postings[element].append(record_id)
        self._postings: dict[object, np.ndarray] = {
            element: np.asarray(ids, dtype=np.int64) for element, ids in postings.items()
        }

    @property
    def num_records(self) -> int:
        """Number of indexed records."""
        return int(self._record_sizes.size)

    def __len__(self) -> int:
        return self.num_records

    @property
    def num_distinct_elements(self) -> int:
        """Number of distinct elements across the dataset."""
        return len(self._postings)

    def overlap_counts(self, query: Iterable[object]) -> np.ndarray:
        """Exact ``|Q ∩ X|`` for every record, via posting-list counting."""
        counts = np.zeros(self.num_records, dtype=np.int64)
        for element in set(query):
            postings = self._postings.get(element)
            if postings is not None:
                np.add.at(counts, postings, 1)
        return counts

    def search(
        self,
        query: Iterable[object],
        threshold: float,
        query_size: int | None = None,
    ) -> list[SearchResult]:
        """Return every record with exact containment similarity ``>= threshold``."""
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError("threshold must be in [0, 1]")
        query_set = set(query)
        if not query_set:
            raise ConfigurationError("query must contain at least one element")
        q = len(query_set) if query_size is None else int(query_size)
        counts = self.overlap_counts(query_set)
        theta = threshold * q
        hit_ids = (
            np.nonzero(counts >= theta * (1.0 - 1e-12))[0]
            if theta > 0
            else np.arange(self.num_records)
        )
        results = [
            SearchResult(record_id=int(record_id), score=float(counts[record_id] / q))
            for record_id in hit_ids
        ]
        results.sort(key=lambda result: (-result.score, result.record_id))
        return results
