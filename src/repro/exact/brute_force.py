"""Brute-force exact containment similarity search.

Scans every record and computes the exact containment similarity.  It is
the reference oracle: every other searcher — exact or approximate — is
measured against the result sets it produces.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro._errors import ConfigurationError, EmptyDatasetError
from repro.core.index import SearchResult
from repro.exact.similarity import containment_similarity


class BruteForceSearcher:
    """Exact containment search by exhaustive scan."""

    def __init__(self, records: Sequence[Iterable[object]]) -> None:
        self._records = [
            record if isinstance(record, frozenset) else frozenset(record)
            for record in records
        ]
        if not self._records:
            raise EmptyDatasetError("cannot search an empty dataset")
        if any(len(record) == 0 for record in self._records):
            raise ConfigurationError("records must be non-empty sets of elements")

    @property
    def num_records(self) -> int:
        """Number of records in the dataset."""
        return len(self._records)

    def __len__(self) -> int:
        return self.num_records

    def record(self, record_id: int) -> frozenset:
        """The record stored under ``record_id``."""
        return self._records[record_id]

    def search(
        self,
        query: Iterable[object],
        threshold: float,
        query_size: int | None = None,
    ) -> list[SearchResult]:
        """Return every record with exact containment similarity ``>= threshold``."""
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError("threshold must be in [0, 1]")
        query_set = frozenset(query)
        if not query_set:
            raise ConfigurationError("query must contain at least one element")
        results = []
        for record_id, record in enumerate(self._records):
            similarity = containment_similarity(query_set, record)
            if similarity >= threshold:
                results.append(SearchResult(record_id=record_id, score=similarity))
        results.sort(key=lambda result: (-result.score, result.record_id))
        return results
