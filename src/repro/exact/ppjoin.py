"""PPjoin*-style exact containment search with prefix filtering.

PPjoin* (Xiao et al., TODS 2011) is an exact set similarity join built on
the prefix-filter principle: order all tokens by a global canonical order
(least frequent first) and observe that two sets with overlap at least
``θ`` must share a token within each other's ``(size − θ + 1)``-prefix.

Adapted to containment *search* with threshold ``t*`` on the query, the
required overlap is ``θ = ⌈t* · |Q|⌉`` and depends only on the query, so
candidate generation probes the inverted index with the ``|Q| − θ + 1``
least-frequent query tokens only (instead of all of them, as the
ScanCount / FrequentSet searcher does).  Each candidate is then verified
by an exact overlap count with early termination — the positional /
suffix filtering spirit of PPjoin*.

This gives the exact comparison point used in Figure 19(b).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Iterable, Sequence

from repro._errors import ConfigurationError, EmptyDatasetError
from repro.core.index import SearchResult


class PPJoinSearcher:
    """Exact containment search with prefix-filter candidate generation."""

    def __init__(self, records: Sequence[Iterable[object]]) -> None:
        materialized = [frozenset(record) for record in records]
        if not materialized:
            raise EmptyDatasetError("cannot index an empty dataset")
        if any(len(record) == 0 for record in materialized):
            raise ConfigurationError("records must be non-empty sets of elements")
        frequencies: Counter = Counter()
        for record in materialized:
            frequencies.update(record)
        # Global canonical order: least frequent first, ties broken by repr
        # so the order is deterministic.
        self._token_rank: dict[object, int] = {
            token: rank
            for rank, (token, _count) in enumerate(
                sorted(frequencies.items(), key=lambda item: (item[1], repr(item[0])))
            )
        }
        # Records stored as token-rank lists sorted by the canonical order;
        # membership sets kept alongside for fast verification.
        self._records: list[frozenset] = materialized
        self._sorted_tokens: list[list[int]] = [
            sorted(self._token_rank[token] for token in record) for record in materialized
        ]
        postings: dict[int, list[int]] = defaultdict(list)
        for record_id, ranks in enumerate(self._sorted_tokens):
            for rank in ranks:
                postings[rank].append(record_id)
        self._postings = dict(postings)

    @property
    def num_records(self) -> int:
        """Number of indexed records."""
        return len(self._records)

    def __len__(self) -> int:
        return self.num_records

    def _query_prefix(self, query_ranks: list[int], required_overlap: int) -> list[int]:
        """The ``|Q| − θ + 1`` least-frequent query tokens (prefix filter)."""
        prefix_length = max(len(query_ranks) - required_overlap + 1, 1)
        return query_ranks[:prefix_length]

    def search(
        self,
        query: Iterable[object],
        threshold: float,
        query_size: int | None = None,
    ) -> list[SearchResult]:
        """Return every record with exact containment similarity ``>= threshold``."""
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError("threshold must be in [0, 1]")
        query_set = set(query)
        if not query_set:
            raise ConfigurationError("query must contain at least one element")
        q = len(query_set) if query_size is None else int(query_size)

        # Tokens never seen in the dataset cannot contribute to any overlap,
        # but they still count towards |Q| in the similarity denominator.
        known = [token for token in query_set if token in self._token_rank]
        query_ranks = sorted(self._token_rank[token] for token in known)

        # ceil(t* · q) with a guard against float noise (0.3 · 10 = 3.0000…4).
        required_overlap = (
            max(int(-(-(threshold * q * (1.0 - 1e-12)) // 1)), 1) if threshold > 0 else 0
        )
        if required_overlap > len(known):
            return []  # even a full match of known tokens cannot reach θ

        if required_overlap == 0:
            candidate_ids = set(range(self.num_records))
        else:
            prefix = self._query_prefix(query_ranks, required_overlap)
            candidate_ids = set()
            for rank in prefix:
                postings = self._postings.get(rank)
                if postings:
                    candidate_ids.update(postings)

        query_rank_set = set(query_ranks)
        results: list[SearchResult] = []
        for record_id in candidate_ids:
            overlap = self._verified_overlap(
                record_id, query_rank_set, required_overlap
            )
            if overlap is None:
                continue
            score = overlap / q
            if score >= threshold:
                results.append(SearchResult(record_id=record_id, score=score))
        results.sort(key=lambda result: (-result.score, result.record_id))
        return results

    def _verified_overlap(
        self, record_id: int, query_rank_set: set[int], required_overlap: int
    ) -> int | None:
        """Exact overlap with early termination (suffix-filter spirit).

        Returns ``None`` as soon as the remaining tokens cannot reach the
        required overlap, avoiding full verification of hopeless candidates.
        """
        ranks = self._sorted_tokens[record_id]
        overlap = 0
        remaining = len(ranks)
        for rank in ranks:
            if overlap + remaining < required_overlap:
                return None
            if rank in query_rank_set:
                overlap += 1
            remaining -= 1
        if overlap < required_overlap:
            return None
        return overlap
