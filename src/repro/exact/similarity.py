"""Exact set similarity functions (Definitions 1 and 2 of the paper)."""

from __future__ import annotations

from typing import Iterable

from repro._errors import ConfigurationError


def overlap_size(left: Iterable[object], right: Iterable[object]) -> int:
    """Exact intersection size ``|X ∩ Y|`` of two records."""
    left_set = left if isinstance(left, (set, frozenset)) else set(left)
    right_set = right if isinstance(right, (set, frozenset)) else set(right)
    if len(left_set) > len(right_set):
        left_set, right_set = right_set, left_set
    return sum(1 for element in left_set if element in right_set)


def jaccard_similarity(left: Iterable[object], right: Iterable[object]) -> float:
    """Exact Jaccard similarity ``|X ∩ Y| / |X ∪ Y|`` (Definition 1)."""
    left_set = left if isinstance(left, (set, frozenset)) else set(left)
    right_set = right if isinstance(right, (set, frozenset)) else set(right)
    if not left_set and not right_set:
        return 0.0
    intersection = overlap_size(left_set, right_set)
    union = len(left_set) + len(right_set) - intersection
    return intersection / union


def containment_similarity(query: Iterable[object], record: Iterable[object]) -> float:
    """Exact containment similarity ``C(Q, X) = |Q ∩ X| / |Q|`` (Definition 2).

    Raises
    ------
    ConfigurationError
        If the query is empty (the similarity is undefined).
    """
    query_set = query if isinstance(query, (set, frozenset)) else set(query)
    record_set = record if isinstance(record, (set, frozenset)) else set(record)
    if not query_set:
        raise ConfigurationError("containment similarity is undefined for an empty query")
    return overlap_size(query_set, record_set) / len(query_set)
