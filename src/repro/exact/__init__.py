"""Exact containment similarity search algorithms.

Used both as comparison points (Figure 19(b) compares GB-KMV against the
exact methods PPjoin* and FrequentSet) and as the ground-truth oracle for
every accuracy experiment.

``containment_similarity`` / ``jaccard_similarity``
    The exact set similarity functions of Definitions 1–2.
``BruteForceSearcher``
    Reference implementation that scans every record.
``FrequentSetSearcher``
    Inverted-index (ScanCount) searcher in the spirit of the FrequentSet
    baseline of Agrawal et al. — probes the posting list of *every* query
    element and counts overlaps.
``PPJoinSearcher``
    Prefix-filter searcher in the spirit of PPjoin*: probes only the
    query's prefix under a global infrequent-first token order and
    verifies the surviving candidates.
"""

from repro.exact.similarity import containment_similarity, jaccard_similarity, overlap_size
from repro.exact.brute_force import BruteForceSearcher
from repro.exact.frequent_set import FrequentSetSearcher
from repro.exact.ppjoin import PPJoinSearcher

__all__ = [
    "containment_similarity",
    "jaccard_similarity",
    "overlap_size",
    "BruteForceSearcher",
    "FrequentSetSearcher",
    "PPJoinSearcher",
]
