"""Core sketches: KMV, G-KMV and the paper's contribution GB-KMV.

The central objects are:

``KMVSketch``
    The classic k-minimum-values synopsis of Beyer et al. with the union /
    intersection estimators the paper builds on (Section II-C).
``GKMVSketch``
    A KMV sketch defined by a *global* hash-value threshold instead of a
    per-record ``k`` (Section IV-A(2)).
``FrequentElementBuffer`` and ``GBKMVSketch``
    The augmented sketch: an exact bitmap over the globally most frequent
    elements plus a G-KMV sketch over the residual elements
    (Section IV-A(3)).
``GBKMVIndex``
    Algorithm 1 (construction) and Algorithm 2 (containment similarity
    search) over a whole dataset, including the cost-model-driven choice
    of buffer size.
``ColumnarSketchStore``
    Flat columnar storage of every record's sketch state (CSR residual
    values, packed signature bitmaps, parallel size arrays) plus the
    vectorised kernels the batched query engine is built on.
``GKMVBatchEstimator`` / ``KMVBatchEstimator``
    Whole-candidate-set versions of the union / intersection /
    containment estimators, bitwise identical to the per-sketch methods.
"""

from repro.core.kmv import KMVSketch
from repro.core.gkmv import GKMVSketch
from repro.core.buffer import FrequentElementBuffer, FrequentElementVocabulary
from repro.core.gbkmv import GBKMVSketch
from repro.core.estimators import (
    IntersectionEstimate,
    estimate_containment,
    estimate_intersection,
    intersection_variance,
)
from repro.core.bulk import (
    BulkSketches,
    FingerprintCollisionError,
    FlatRecords,
    bulk_kmv_value_rows,
    bulk_sketch,
    flatten_records,
    select_vocabulary,
    slice_flat_records,
    vocabulary_lookup,
)
from repro.core.profiling import BuildProfile, BuildStage
from repro.core.cost_model import (
    BufferSizing,
    average_variance,
    choose_buffer_size,
    residual_threshold,
    residual_threshold_from_hashes,
)
from repro.core.store import ColumnarSketchStore
from repro.core.batched import (
    BatchEstimator,
    GKMVBatchEstimator,
    KMVBatchEstimator,
    containment_from_intersections,
    kmv_intersection_estimates,
    residual_intersection_estimates,
    residual_union_estimates,
)
from repro.core.index import (
    DEFAULT_ROW_BLOCK_SIZE,
    GBKMVIndex,
    IndexStatistics,
    SearchResult,
    WorkloadExecutionStats,
)

__all__ = [
    "BatchEstimator",
    "ColumnarSketchStore",
    "GKMVBatchEstimator",
    "KMVBatchEstimator",
    "containment_from_intersections",
    "kmv_intersection_estimates",
    "residual_intersection_estimates",
    "residual_union_estimates",
    "IndexStatistics",
    "KMVSketch",
    "GKMVSketch",
    "FrequentElementBuffer",
    "FrequentElementVocabulary",
    "GBKMVSketch",
    "IntersectionEstimate",
    "estimate_containment",
    "estimate_intersection",
    "intersection_variance",
    "BufferSizing",
    "BuildProfile",
    "BuildStage",
    "BulkSketches",
    "FingerprintCollisionError",
    "FlatRecords",
    "average_variance",
    "bulk_kmv_value_rows",
    "bulk_sketch",
    "choose_buffer_size",
    "flatten_records",
    "residual_threshold",
    "select_vocabulary",
    "slice_flat_records",
    "residual_threshold_from_hashes",
    "vocabulary_lookup",
    "GBKMVIndex",
    "SearchResult",
    "DEFAULT_ROW_BLOCK_SIZE",
    "WorkloadExecutionStats",
]
