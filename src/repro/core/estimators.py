"""Free-standing estimators and variance formulas shared by the sketches.

These are thin functional wrappers over the sketch methods plus the
analytical variance of the KMV intersection estimator (Equation 11),
packaged so that the evaluation harness and the theory module can reuse
them without caring which concrete sketch class produced the numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro._errors import ConfigurationError, EstimationError


@runtime_checkable
class SupportsIntersection(Protocol):
    """Anything that can estimate intersection size against its own kind."""

    def intersection_size_estimate(self, other: "SupportsIntersection") -> float:
        """Estimate the intersection size with another sketch."""
        ...  # pragma: no cover - protocol definition


@dataclass(frozen=True)
class IntersectionEstimate:
    """A point estimate of an intersection size together with its context.

    Attributes
    ----------
    intersection:
        Estimated ``|Q ∩ X|``.
    containment:
        Estimated ``C(Q, X)`` (``intersection / query_size``).
    query_size:
        The query size used for the containment normalisation.
    """

    intersection: float
    containment: float
    query_size: int


def estimate_intersection(query_sketch, record_sketch) -> float:
    """Estimate ``|Q ∩ X|`` from two compatible sketches."""
    return float(query_sketch.intersection_size_estimate(record_sketch))


def estimate_containment(query_sketch, record_sketch, query_size: int) -> IntersectionEstimate:
    """Estimate containment similarity ``C(Q, X)`` from two compatible sketches.

    Parameters
    ----------
    query_sketch, record_sketch:
        Sketches of the query and of the candidate record.  Any of the
        library's sketch types works as long as the two are of the same
        kind and compatible.
    query_size:
        The exact query size ``|Q|`` (assumed known, Remark 1 of the paper).
    """
    if query_size <= 0:
        raise ConfigurationError("query_size must be positive")
    intersection = estimate_intersection(query_sketch, record_sketch)
    return IntersectionEstimate(
        intersection=intersection,
        containment=intersection / float(query_size),
        query_size=int(query_size),
    )


def intersection_variance(
    intersection_size: float, union_size: float, k: int
) -> float:
    """Variance of the KMV intersection estimator (Equation 11).

    ``Var[D̂∩] = D∩ (k·D∪ − k² − D∪ + k + D∩) / (k (k − 2))``

    Parameters
    ----------
    intersection_size:
        True (or assumed) intersection size ``D∩``.
    union_size:
        True (or assumed) union size ``D∪``.
    k:
        Sketch size used by the estimator; must be at least 3 for the
        formula to be defined (the denominator contains ``k - 2``).

    Raises
    ------
    EstimationError
        If ``k < 3``.
    ConfigurationError
        If the sizes are negative or inconsistent
        (``D∩ > D∪``).
    """
    if k < 3:
        raise EstimationError(f"variance formula requires k >= 3, got {k}")
    if intersection_size < 0 or union_size < 0:
        raise ConfigurationError("sizes must be non-negative")
    if intersection_size > union_size + 1e-9:
        raise ConfigurationError("intersection size cannot exceed union size")
    d_cap = float(intersection_size)
    d_cup = float(union_size)
    numerator = d_cap * (k * d_cup - k * k - d_cup + k + d_cap)
    variance = numerator / (k * (k - 2))
    # Numerical noise can push a tiny-true-variance slightly negative.
    return max(variance, 0.0)


def containment_variance(
    intersection_size: float, union_size: float, k: int, query_size: int
) -> float:
    """Variance of the containment estimator ``D̂∩ / |Q|``."""
    if query_size <= 0:
        raise ConfigurationError("query_size must be positive")
    return intersection_variance(intersection_size, union_size, k) / float(query_size) ** 2
