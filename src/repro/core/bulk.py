"""Whole-dataset vectorised sketch construction (the bulk build pipeline).

Algorithm 1 used to run record-at-a-time through Python: one ``set`` per
record, a ``Counter`` loop for element frequencies, one ``hash_many`` +
``np.unique`` call per record, and one store append per row.  At ~20k
records/s that made construction three orders of magnitude slower than
the fused query engine it feeds.

This module replaces the per-record inner loops with whole-dataset array
passes:

* :func:`flatten_records` flattens the dataset into one CSR pair (record
  offsets + flat element column), fingerprints every element with a
  single :func:`~repro.hashing.fingerprint_many` pass, and derives the
  distinct-element universe — fingerprints, first-occurrence
  representatives, per-occurrence inverse and frequencies.  On the
  integer fast path one value-major lexsort yields *both* the
  per-record dedup and the unique universe (the flat column is sorted
  once, not once for the dedup and again inside ``np.unique``); the
  generic path keeps ``np.unique`` over the fingerprint column.  The
  per-unique ``counts`` column is exactly the ``Counter`` the old build
  looped for (each record's elements are distinct, so occurrences equal
  containing records).
* :func:`slice_flat_records` carves a per-record subset out of an
  already-flattened dataset — CSR gathers only, no re-hashing and no
  second frequency pass — which is how the sharded planner hands every
  shard its records after flattening the dataset exactly once.
* :func:`bulk_sketch` turns a flattened dataset into the flat sketch
  columns a :class:`~repro.core.store.ColumnarSketchStore` ingests in one
  :meth:`~repro.core.store.ColumnarSketchStore.append_bulk` call: the
  vocabulary buffer/residual split is one ``searchsorted`` membership
  lookup over fingerprints, signature bitmaps are packed for all records
  at once (segment-OR via ``bitwise_or.reduceat``), every unique
  fingerprint is hashed exactly once, and each record's kept residual
  hashes are selected with one global lexsort + segment-boundary
  reduction — no per-record ``np.unique``.

The pipeline is *bitwise identical* to the per-record path (same sets,
same hashes, same dedup, same packing) under the paper's standing
assumption that fingerprints are collision-free.  Where a collision
between *distinct* elements (e.g. ``"a"`` and ``b"a"``, which share an
FNV fold by construction) would break that identity:

* a collision *inside an existing vocabulary* is detected up front —
  :func:`vocabulary_lookup` raises :class:`FingerprintCollisionError`,
  and the pinned-parameter ingest paths (``from_parameters``,
  ``insert_many``) fall back to the exact per-record split;
* a collision *between dataset elements* during ``build`` merges the
  pair's frequency counts before the vocabulary is chosen, which can
  select a different vocabulary than the ``Counter`` path would.
  Detecting that case would require comparing elements across every
  occurrence of a hot fingerprint — the Python-level pass this module
  exists to remove — so it is documented as out of contract instead;
  ``method="per-record"`` remains available for data that mixes
  equal-content ``str`` and ``bytes`` elements.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import chain
from typing import Iterable, Sequence

import numpy as np

from repro._errors import ConfigurationError, EmptyDatasetError
from repro.core.buffer import FrequentElementVocabulary
from repro.core.profiling import BuildProfile
from repro.core.store import BITS_PER_WORD
from repro.hashing import UnitHash, fingerprint_many


def resolve_space_budget(
    total_elements: int, space_fraction: float, space_budget: float | None
) -> float:
    """The absolute space budget ``b`` from either specification.

    Shared construction policy of every builder (GB-KMV and the KMV /
    G-KMV baselines): an explicit ``space_budget`` wins, otherwise the
    budget is ``space_fraction`` of the dataset's total distinct-element
    volume — the measure the paper's evaluation uses throughout.
    """
    if space_budget is None:
        if not 0.0 < space_fraction <= 1.0:
            raise ConfigurationError("space_fraction must be in (0, 1]")
        return space_fraction * total_elements
    if space_budget <= 0:
        raise ConfigurationError("space_budget must be positive")
    return float(space_budget)


class FingerprintCollisionError(ConfigurationError):
    """Two distinct vocabulary elements share a 64-bit fingerprint.

    The bulk pipeline resolves vocabulary membership by fingerprint; a
    collision *within the vocabulary* would make that lookup ambiguous,
    so it is detected and reported instead of silently mis-splitting.
    Callers fall back to the per-record ``split_record`` path.
    """


@dataclass(frozen=True)
class FlatRecords:
    """A dataset flattened to CSR form with a parallel fingerprint column.

    ``elements[offsets[i]:offsets[i + 1]]`` are record ``i``'s *distinct*
    elements (Python ``set`` semantics, exactly what the per-record path
    materialises); ``fingerprints`` is parallel to ``elements``.  The
    unique-universe view (``unique_fingerprints`` sorted ascending,
    ``first_occurrence`` indices into ``elements``, per-occurrence
    ``inverse``, per-unique ``counts``) comes from one ``np.unique`` over
    the fingerprint column.

    ``elements`` is a Python list on the generic path and an integer
    ndarray on the dtype-aware fast path; use :meth:`element_at` /
    :meth:`record_elements` / :meth:`representatives` to get native
    Python elements either way (the within-record element *order* may
    differ between the two paths — the fast path sorts by value — but
    every downstream consumer reduces over records, so the resulting
    sketches are identical).
    """

    offsets: np.ndarray
    elements: list | np.ndarray
    fingerprints: np.ndarray
    unique_fingerprints: np.ndarray
    first_occurrence: np.ndarray
    inverse: np.ndarray
    counts: np.ndarray

    @property
    def num_records(self) -> int:
        """Number of records in the flattened dataset."""
        return self.offsets.size - 1

    @property
    def record_sizes(self) -> np.ndarray:
        """Distinct-element count of every record."""
        return np.diff(self.offsets)

    @property
    def total_elements(self) -> int:
        """Total distinct-per-record element occurrences."""
        return int(self.offsets[-1])

    def record_elements(self, position: int) -> list:
        """The distinct elements of one record (a slice of the flat column)."""
        start, stop = self.offsets[position], self.offsets[position + 1]
        piece = self.elements[start:stop]
        return piece.tolist() if isinstance(piece, np.ndarray) else piece

    def element_at(self, index: int) -> object:
        """One flat-column element as a native Python object.

        The fast integer path stores ``elements`` as an ndarray whose
        scalars ``repr`` differently from Python ints under numpy 2.x —
        anything feeding the vocabulary's ``(-count, repr)`` tie-break
        must come through here so both paths rank identically.
        """
        element = self.elements[index]
        return element.item() if isinstance(element, np.generic) else element

    def representatives(self) -> list:
        """One representative element per unique fingerprint.

        The first occurrence in flat order; with collision-free
        fingerprints this is *the* element, so frequency tables built on
        ``zip(representatives(), counts)`` match the per-record
        ``Counter`` exactly.
        """
        if isinstance(self.elements, np.ndarray):
            return self.elements[self.first_occurrence].tolist()
        return [self.elements[index] for index in self.first_occurrence.tolist()]


def _integer_occurrences(
    records: Sequence[Iterable[object]],
) -> tuple[np.ndarray, np.ndarray] | None:
    """Raw occurrence column + per-record lengths for integer datasets.

    The precondition of the dtype-aware dedup fast path: every record
    must be losslessly representable as one flat bool/int ndarray.  The
    probes mirror :func:`~repro.hashing.fingerprint_many` — mixed types,
    strings, ints outside 64 bits, and unsized records all return
    ``None``, sending the caller to the generic per-record ``set()``
    path.
    """
    num_records = len(records)
    if all(isinstance(record, np.ndarray) for record in records):
        for record in records:
            if record.ndim != 1 or record.dtype.kind not in "bui":
                return None
        lengths = np.fromiter(
            (record.size for record in records), dtype=np.int64, count=num_records
        )
        flat = np.concatenate(records) if num_records > 1 else records[0]
        # Mixed signed/unsigned 64-bit inputs promote to float64 on
        # concatenate — not lossless, so that combination falls back.
        if flat.ndim != 1 or flat.dtype.kind not in "bui":
            return None
        return np.ascontiguousarray(flat), lengths
    probe = next(
        (
            record[0]
            for record in records
            if isinstance(record, (list, tuple)) and len(record)
        ),
        None,
    )
    if not isinstance(probe, (bool, int, np.integer)):
        return None
    try:
        lengths = np.fromiter(
            (len(record) for record in records), dtype=np.int64, count=num_records
        )
        flat = np.asarray(list(chain.from_iterable(records)))
    except (TypeError, ValueError, OverflowError):
        return None
    if flat.ndim != 1 or flat.dtype.kind not in "bui":
        return None
    return flat, lengths


def _first_occurrences(inverse: np.ndarray, num_unique: int) -> np.ndarray:
    """First flat-column position of each unique fingerprint.

    A reverse scatter over the inverse column: later writes win, so
    writing positions in descending order leaves each unique its
    smallest occurrence index (``np.unique(return_index=True)`` would
    force a stable merge argsort to get the same answer).
    """
    first = np.empty(num_unique, dtype=np.int64)
    positions = np.arange(inverse.size - 1, -1, -1, dtype=np.int64)
    first[inverse[positions]] = positions
    return first


def _flatten_integer(
    flat_values: np.ndarray, raw_lengths: np.ndarray, num_records: int
) -> FlatRecords:
    """The sort-once integer fast path: one value-major lexsort does it all.

    The historical pipeline sorted the flat column twice — a
    (record, value) lexsort for the per-record dedup, then the
    comparison argsort inside ``np.unique`` for the universe.  Sorting
    the raw occurrences once in (fingerprint, record) order instead
    yields both: segment boundaries on the fingerprint key delimit the
    unique universe (ascending, with ``bincount`` frequencies), segment
    boundaries on either key delimit the per-record distinct survivors,
    and the CSR layout is recovered with one cheap O(n) radix argsort
    over the surviving record ids (``kind="stable"`` on int64), which
    preserves the within-record fingerprint order the lexsort
    established.  Bitwise identical universe, counts and inverse to the
    ``np.unique`` pipeline.
    """
    if not raw_lengths.all():
        raise ConfigurationError("records must be non-empty sets of elements")
    record_of = np.repeat(np.arange(num_records, dtype=np.int64), raw_lengths)
    # Integer elements fingerprint as their two's-complement uint64 bit
    # pattern — exactly element_fingerprint's ``& MAX_UINT64``.  The
    # sort must run in this domain: the universe is ordered by uint64
    # fingerprint, and signed order would disagree for negative values.
    flat_fingerprints = flat_values.astype(np.uint64)
    order = np.lexsort((record_of, flat_fingerprints))
    sorted_records = record_of[order]
    sorted_fingerprints = flat_fingerprints[order]
    new_value = np.empty(sorted_fingerprints.size, dtype=bool)
    new_value[0] = True
    new_value[1:] = sorted_fingerprints[1:] != sorted_fingerprints[:-1]
    keep = np.empty(sorted_fingerprints.size, dtype=bool)
    keep[0] = True
    keep[1:] = new_value[1:] | (sorted_records[1:] != sorted_records[:-1])
    kept_records = sorted_records[keep]
    kept_fingerprints = sorted_fingerprints[keep]
    group_starts = new_value[keep]
    group_of = np.cumsum(group_starts, dtype=np.int64) - 1
    unique = kept_fingerprints[group_starts]
    counts = np.bincount(group_of)
    csr_order = np.argsort(kept_records, kind="stable")
    fingerprints = kept_fingerprints[csr_order]
    inverse = group_of[csr_order]
    elements = flat_values[order[keep][csr_order]]
    sizes = np.bincount(kept_records, minlength=num_records)
    offsets = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(sizes, dtype=np.int64)]
    )
    return FlatRecords(
        offsets=offsets,
        elements=elements,
        fingerprints=fingerprints,
        unique_fingerprints=unique,
        first_occurrence=_first_occurrences(inverse, unique.size),
        inverse=inverse,
        counts=counts.astype(np.int64, copy=False),
    )


def flatten_records(
    records: Sequence[Iterable[object]], profile: BuildProfile | None = None
) -> FlatRecords:
    """Flatten a dataset into CSR form and fingerprint it in one pass.

    Per-record deduplication uses Python ``set`` semantics (the same
    dedup the per-record path applies).  Integer datasets take a
    dtype-aware fast path: the raw occurrences become one flat array and
    a single value-major lexsort produces the per-record dedup *and* the
    unique universe (:func:`_flatten_integer`) — no Python ``set`` per
    record and no second sort inside ``np.unique``.  Every other element
    type keeps the per-record loop plus ``np.unique``; both paths
    produce the same distinct-element multiset and the same universe, so
    downstream sketches are identical.

    ``profile`` records the pass as one ``"flatten"`` stage.

    Raises
    ------
    EmptyDatasetError
        If ``records`` is empty.
    ConfigurationError
        If any record is empty.
    """
    num_records = len(records)
    if num_records == 0:
        raise EmptyDatasetError("cannot build an index over an empty dataset")
    start = time.perf_counter()
    occurrences = _integer_occurrences(records)
    if occurrences is not None:
        flat_values, raw_lengths = occurrences
        result = _flatten_integer(flat_values, raw_lengths, num_records)
    else:
        flat: list = []
        sizes = np.empty(num_records, dtype=np.int64)
        for position, record in enumerate(records):
            distinct = set(record)
            if not distinct:
                raise ConfigurationError(
                    "records must be non-empty sets of elements"
                )
            sizes[position] = len(distinct)
            flat.extend(distinct)
        offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(sizes, dtype=np.int64)]
        )
        fingerprints = fingerprint_many(flat)
        unique, inverse, counts = np.unique(
            fingerprints, return_inverse=True, return_counts=True
        )
        inverse = np.ascontiguousarray(inverse, dtype=np.int64)
        result = FlatRecords(
            offsets=offsets,
            elements=flat,
            fingerprints=fingerprints,
            unique_fingerprints=unique,
            first_occurrence=_first_occurrences(inverse, unique.size),
            inverse=inverse,
            counts=counts.astype(np.int64, copy=False),
        )
    if profile is not None:
        profile.record(
            "flatten",
            time.perf_counter() - start,
            rows=num_records,
            nbytes=result.fingerprints.nbytes
            + result.inverse.nbytes
            + result.unique_fingerprints.nbytes,
        )
    return result


def slice_flat_records(flat: FlatRecords, positions: np.ndarray) -> FlatRecords:
    """A per-record subset of a flattened dataset, without re-flattening.

    ``positions`` selects records of ``flat`` (in the order given); the
    result is a :class:`FlatRecords` over exactly those records whose
    per-occurrence columns (``elements``, ``fingerprints``, ``inverse``)
    are CSR gathers of the parent's — no re-hashing, no second frequency
    pass.  The unique-universe columns are **shared with the parent**:
    ``unique_fingerprints`` / ``counts`` stay the *global* universe and
    ``inverse`` keeps indexing it, which is precisely what the
    pinned-parameter sketch kernels (:func:`bulk_sketch`,
    :func:`bulk_kmv_value_rows` with their ``unique_hashes`` argument)
    consume — a sharded build hashes the universe once and every shard
    gathers from it.

    Because the universe is the parent's, ``first_occurrence`` also
    still indexes the *parent's* flat column: do not call
    :meth:`FlatRecords.representatives` or :func:`select_vocabulary` on
    a slice — parameters are planned on the full dataset before slicing.
    """
    positions = np.ascontiguousarray(positions, dtype=np.int64)
    lengths = flat.record_sizes[positions]
    offsets = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(lengths, dtype=np.int64)]
    )
    starts = np.asarray(flat.offsets)[positions]
    gather = np.arange(int(offsets[-1]), dtype=np.int64) + np.repeat(
        starts - offsets[:-1], lengths
    )
    if isinstance(flat.elements, np.ndarray):
        elements = flat.elements[gather]
    else:
        elements = [flat.elements[index] for index in gather.tolist()]
    return FlatRecords(
        offsets=offsets,
        elements=elements,
        fingerprints=flat.fingerprints[gather],
        unique_fingerprints=flat.unique_fingerprints,
        first_occurrence=flat.first_occurrence,
        inverse=flat.inverse[gather],
        counts=flat.counts,
    )


def select_vocabulary(
    flat: FlatRecords, size: int, profile: BuildProfile | None = None
) -> FrequentElementVocabulary:
    """Top-``size`` frequent-element vocabulary straight from the flat counts.

    Exactly what ``FrequentElementVocabulary.from_frequencies`` selects
    from the per-record ``Counter`` — a count cutoff from one numpy
    partition over :attr:`FlatRecords.counts` narrows the universe to
    the handful of elements that can place, and the actual ranking (and
    its ``(-count, repr)`` tie-break) is delegated to
    ``from_frequencies`` over that subset, so the two build paths share
    one selection authority.

    ``profile`` records the pass as one ``"vocabulary"`` stage.
    """
    if size < 0:
        raise ConfigurationError("vocabulary size must be non-negative")
    start = time.perf_counter()
    counts = flat.counts
    num_unique = int(counts.size)
    if size == 0:
        vocabulary = FrequentElementVocabulary([])
    else:
        if size < num_unique:
            cutoff = np.partition(counts, num_unique - size)[num_unique - size]
            qualifying = np.nonzero(counts >= cutoff)[0]
        else:
            qualifying = np.arange(num_unique)
        frequencies = {
            flat.element_at(int(flat.first_occurrence[position])): int(
                counts[position]
            )
            for position in qualifying.tolist()
        }
        vocabulary = FrequentElementVocabulary.from_frequencies(frequencies, size)
    if profile is not None:
        profile.record(
            "vocabulary", time.perf_counter() - start, rows=num_unique
        )
    return vocabulary


@dataclass(frozen=True)
class VocabularyLookup:
    """The vocabulary's fingerprints, sorted, with parallel bit positions."""

    sorted_fingerprints: np.ndarray
    bit_positions: np.ndarray

    @property
    def size(self) -> int:
        return int(self.sorted_fingerprints.size)

    def member_mask(self, fingerprints: np.ndarray) -> np.ndarray:
        """Boolean vocabulary membership of each fingerprint (one searchsorted)."""
        if self.size == 0 or fingerprints.size == 0:
            return np.zeros(fingerprints.size, dtype=bool)
        slots = np.searchsorted(self.sorted_fingerprints, fingerprints)
        slots = np.minimum(slots, self.size - 1)
        return self.sorted_fingerprints[slots] == fingerprints

    def positions_of(self, fingerprints: np.ndarray) -> np.ndarray:
        """Bit positions of fingerprints known to be vocabulary members."""
        slots = np.searchsorted(self.sorted_fingerprints, fingerprints)
        return self.bit_positions[slots]


def vocabulary_lookup(vocabulary: FrequentElementVocabulary) -> VocabularyLookup:
    """Build the fingerprint-indexed view of a vocabulary.

    Raises
    ------
    FingerprintCollisionError
        If two distinct vocabulary elements share a fingerprint (lookup
        by fingerprint would be ambiguous).
    """
    fingerprints = fingerprint_many(list(vocabulary.elements))
    order = np.argsort(fingerprints, kind="stable")
    sorted_fingerprints = fingerprints[order]
    if sorted_fingerprints.size > 1 and np.any(
        sorted_fingerprints[1:] == sorted_fingerprints[:-1]
    ):
        raise FingerprintCollisionError(
            "two distinct vocabulary elements share a 64-bit fingerprint; "
            "bulk vocabulary lookup is ambiguous"
        )
    return VocabularyLookup(
        sorted_fingerprints=sorted_fingerprints,
        bit_positions=order.astype(np.int64, copy=False),
    )


@dataclass(frozen=True)
class BulkSketches:
    """Flat sketch columns for a batch of records, ready for bulk append.

    Exactly the per-row state ``GBKMVIndex._sketch_parts`` produces, as
    arrays: ``values[value_offsets[i]:value_offsets[i + 1]]`` are record
    ``i``'s kept residual hashes (sorted ascending, distinct),
    ``signatures`` is the packed ``(n, num_words)`` uint64 bitmap matrix,
    and the two size columns mirror the store's.
    """

    values: np.ndarray
    value_offsets: np.ndarray
    signatures: np.ndarray
    residual_record_sizes: np.ndarray
    record_sizes: np.ndarray

    @property
    def num_records(self) -> int:
        return int(self.record_sizes.size)

    @property
    def value_lengths(self) -> np.ndarray:
        """Kept residual values per record."""
        return np.diff(self.value_offsets)


def pack_signatures_bulk(
    record_index: np.ndarray,
    bit_positions: np.ndarray,
    num_records: int,
    num_words: int,
) -> np.ndarray:
    """Pack all records' signature bitmaps at once.

    ``(record_index[i], bit_positions[i])`` lists every set bit.  Bits
    are grouped by their destination word with one argsort and OR-reduced
    per segment (``bitwise_or.reduceat``), then scattered into the
    ``(num_records, num_words)`` matrix — bit-identical to packing each
    record's Python-integer mask through ``mask_to_words``.
    """
    signatures = np.zeros((num_records, num_words), dtype=np.uint64)
    if record_index.size == 0 or num_words == 0:
        return signatures
    word_keys = record_index * num_words + (bit_positions // BITS_PER_WORD)
    bits = np.uint64(1) << (bit_positions % BITS_PER_WORD).astype(np.uint64)
    order = np.argsort(word_keys, kind="stable")
    word_keys = word_keys[order]
    starts = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.nonzero(word_keys[1:] != word_keys[:-1])[0] + 1]
    )
    signatures.reshape(-1)[word_keys[starts]] = np.bitwise_or.reduceat(
        bits[order], starts
    )
    return signatures


def _sorted_distinct_per_record(
    records: np.ndarray, values: np.ndarray, num_records: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-record sorted distinct values from flat (record, value) pairs.

    One global lexsort orders the pairs by record then value; a
    segment-boundary reduction drops equal values within a record (hash
    collisions) — exactly what a per-record ``np.unique`` produces, as a
    single pass.  The one home of this selection for both the GB-KMV
    residual pipeline and the plain-KMV builder, so their dedup
    semantics cannot drift apart.  Returns ``(values, lengths,
    offsets)``: the surviving values in (record, value) order, the
    per-record survivor counts, and their CSR offsets.
    """
    order = np.lexsort((values, records))
    records = records[order]
    values = values[order]
    if values.size:
        first_of_group = np.empty(values.size, dtype=bool)
        first_of_group[0] = True
        first_of_group[1:] = (records[1:] != records[:-1]) | (
            values[1:] != values[:-1]
        )
        records = records[first_of_group]
        values = values[first_of_group]
    lengths = np.bincount(records, minlength=num_records)
    offsets = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(lengths, dtype=np.int64)]
    )
    return values, lengths, offsets


def bulk_sketch(
    flat: FlatRecords,
    lookup: VocabularyLookup,
    threshold: float,
    hasher: UnitHash,
    num_words: int,
    unique_hashes: np.ndarray | None = None,
    profile: BuildProfile | None = None,
) -> BulkSketches:
    """Sketch a flattened dataset under pinned parameters, all at once.

    One membership lookup splits every occurrence into buffer vs
    residual, every *unique* fingerprint is hashed exactly once (the
    per-record path re-hashes each occurrence), and the per-record
    sorted-distinct-kept selection is a single lexsort over the kept
    occurrences with a segment-boundary dedup — the result is bitwise
    identical to running ``_sketch_parts`` record by record.

    ``unique_hashes`` lets a caller that already hashed
    ``flat.unique_fingerprints`` (the build path hashes the residual
    universe for the threshold computation) hand the full array in and
    skip the redundant hashing pass.  ``profile`` records the pass as
    one ``"sketch"`` stage (per-shard recordings sum to dataset size).
    """
    start = time.perf_counter()
    num_records = flat.num_records
    record_of = np.repeat(
        np.arange(num_records, dtype=np.int64), flat.record_sizes
    )
    in_vocab = lookup.member_mask(flat.fingerprints)

    signatures = pack_signatures_bulk(
        record_of[in_vocab],
        lookup.positions_of(flat.fingerprints[in_vocab]),
        num_records,
        num_words,
    )

    residual_mask = ~in_vocab
    residual_records = record_of[residual_mask]
    residual_record_sizes = np.bincount(residual_records, minlength=num_records)

    # Hash each unique fingerprint once; occurrences gather by inverse.
    if unique_hashes is None:
        unique_hashes = hasher.hash_fingerprints(flat.unique_fingerprints)
    occurrence_hashes = unique_hashes[flat.inverse[residual_mask]]
    kept = occurrence_hashes <= threshold
    kept_values, _value_lengths, value_offsets = _sorted_distinct_per_record(
        residual_records[kept], occurrence_hashes[kept], num_records
    )
    sketches = BulkSketches(
        values=kept_values,
        value_offsets=value_offsets,
        signatures=signatures,
        residual_record_sizes=residual_record_sizes.astype(np.int64, copy=False),
        record_sizes=flat.record_sizes.astype(np.int64, copy=False),
    )
    if profile is not None:
        profile.record(
            "sketch",
            time.perf_counter() - start,
            rows=num_records,
            nbytes=sketches.values.nbytes + sketches.signatures.nbytes,
        )
    return sketches


def bulk_kmv_value_rows(
    flat: FlatRecords,
    hasher: UnitHash,
    k_per_record: int,
    unique_hashes: np.ndarray | None = None,
    profile: BuildProfile | None = None,
) -> list[np.ndarray]:
    """Each record's ``k`` smallest distinct hash values, selected in bulk.

    The plain-KMV counterpart of :func:`bulk_sketch`: hash every unique
    fingerprint once, lexsort the occurrences by (record, value), dedup
    equal values within a record at segment boundaries, and keep the
    first ``k`` survivors of each record's segment — bitwise identical to
    ``np.unique(hash_many(record))[:k]`` per record.

    ``unique_hashes`` lets a caller that already hashed
    ``flat.unique_fingerprints`` (the sharded planner hashes the global
    universe once for every shard) hand the array in; ``profile``
    records the pass as one ``"sketch"`` stage.
    """
    if k_per_record < 1:
        raise ConfigurationError("k_per_record must be positive")
    start = time.perf_counter()
    num_records = flat.num_records
    if num_records == 0:
        return []
    record_of = np.repeat(
        np.arange(num_records, dtype=np.int64), flat.record_sizes
    )
    if unique_hashes is None:
        unique_hashes = hasher.hash_fingerprints(flat.unique_fingerprints)
    values, lengths, offsets = _sorted_distinct_per_record(
        record_of, unique_hashes[flat.inverse], num_records
    )
    # Rank of each survivor within its record; keep the k smallest.
    ranks = np.arange(values.size, dtype=np.int64) - np.repeat(
        offsets[:-1], lengths
    )
    values = values[ranks < k_per_record]
    kept_lengths = np.minimum(lengths, k_per_record)
    splits = np.cumsum(kept_lengths, dtype=np.int64)[:-1]
    # Copies, not views: np.split views would all pin the whole batch
    # buffer through their .base, so one surviving row after heavy
    # deletes would keep the entire build's memory alive.
    rows = [row.copy() for row in np.split(values, splits)]
    if profile is not None:
        profile.record(
            "sketch",
            time.perf_counter() - start,
            rows=num_records,
            nbytes=values.nbytes,
        )
    return rows
