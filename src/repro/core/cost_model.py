"""Cost model for choosing the GB-KMV buffer size (Section IV-C6).

The buffer trades space between two uses: exact bits for the ``r`` most
frequent elements versus hash values for the residual G-KMV sketch.  The
paper derives the average variance of the GB-KMV containment estimator as
a function ``f(r, α1, α2, b)`` of the buffer size, the element-frequency
and record-size power-law exponents, and the space budget, and picks the
``r`` minimising it numerically (trying ``r = 0, 8, 16, 24, …``).

This module implements the same optimisation *data-dependently*: instead
of plugging power-law exponents into closed-form integrals, it evaluates
the quantities those integrals approximate directly from the observed
element frequencies and record sizes, under the paper's occurrence model
``Pr[e_i ∈ X_j] = min(f_i · x_j / N, 1)`` (the clamp keeps the model sane
for very hot elements, which the asymptotic analysis ignores).  For a
record pair ``(X_j, X_l)`` and a buffer of the ``r`` hottest elements:

* expected residual intersection   ``D∩(r) = Σ_{i>r} p_ij · p_il``
* expected residual union          ``D∪(r) = Σ_{i>r} p_ij + p_il − p_ij p_il``
* expected G-KMV sketch size       ``k(r)  = τ(r) · D∪(r)`` with
  ``τ(r) = (b − m·r/32) / Σ_{i>r} f_i``
* per-pair variance                Equation 11 on ``(D∩, D∪, k)``, divided
  by the query size squared.

The model average over record pairs is minimised over a grid of ``r``
values, exactly as in the paper's numerical procedure.  The module also
provides the exact computation of the global hash threshold ``τ`` for a
residual space budget (Algorithm 1, line 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro._errors import ConfigurationError, EmptyDatasetError
from repro.core.buffer import BITS_PER_SIGNATURE_UNIT
from repro.hashing import UnitHash

#: Variance reported for infeasible configurations (buffer alone exceeds budget).
INFEASIBLE_VARIANCE = float("inf")

#: Minimum sketch size for which the Equation-11 variance is defined.
_MIN_K = 3.0


@dataclass(frozen=True)
class BufferSizing:
    """Outcome of the buffer-size optimisation.

    Attributes
    ----------
    buffer_size:
        The chosen ``r`` (number of frequent elements kept exactly).
    estimated_variance:
        The model's average containment-estimator variance at that ``r``.
    curve:
        The full ``(r, variance)`` grid evaluated, useful for plots such as
        Figure 5 of the paper.
    """

    buffer_size: int
    estimated_variance: float
    curve: tuple[tuple[int, float], ...] = field(default_factory=tuple)


def _validate_inputs(
    record_sizes: Sequence[int] | np.ndarray,
    frequencies: Sequence[int] | np.ndarray,
    budget: float,
) -> tuple[np.ndarray, np.ndarray]:
    sizes = np.asarray(record_sizes, dtype=np.float64)
    freqs = np.asarray(frequencies, dtype=np.float64)
    if sizes.size == 0:
        raise EmptyDatasetError("record_sizes must not be empty")
    if freqs.size == 0:
        raise EmptyDatasetError("frequencies must not be empty")
    if np.any(sizes <= 0):
        raise ConfigurationError("record sizes must be positive")
    if np.any(freqs <= 0):
        raise ConfigurationError("element frequencies must be positive")
    if budget <= 0:
        raise ConfigurationError("space budget must be positive")
    # The model assumes frequencies sorted in decreasing order; sort defensively.
    freqs = np.sort(freqs)[::-1]
    return sizes, freqs


def _sample_pairs(
    sizes: np.ndarray, pair_sample: int, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """Deterministically sample record-size pairs for the model average."""
    rng = np.random.default_rng(seed)
    m = sizes.size
    n_pairs = max(min(int(pair_sample), m * m), 1)
    left = sizes[rng.integers(0, m, size=n_pairs)]
    right = sizes[rng.integers(0, m, size=n_pairs)]
    return left, right


def _pair_variance_grid(
    freqs: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
    budget: float,
    num_records: int,
    candidates: np.ndarray,
) -> np.ndarray:
    """Average model variance at every candidate ``r``.

    Returns an array aligned with ``candidates``; infeasible candidates
    (buffer alone over budget, or residual sketch too small for the
    variance formula on some pair) are ``inf``.

    The grid only ever reads prefix sums at candidate positions (all at
    most the largest candidate ``r``) plus whole-universe totals, so the
    work splits into a *head* region — the first ``max(candidates)``
    frequencies, where occurrence probabilities are materialised per
    distinct record size and prefix-summed exactly — and a *tail* that
    collapses to closed form: the clamp ``min(f·x/N, 1)`` is the
    identity beyond each size's clamp boundary ``c(x) = |{f ≥ N/x}|``
    (frequencies are sorted descending), so every tail total is a
    weighted suffix sum of ``f`` and ``f²``.  Cost is
    ``O(F + pairs · max(candidates))`` instead of the original
    ``O(pairs · F)`` Python pair loop.

    The regrouped float arithmetic is not bit-identical to the old
    sequential cumsums: grid variances carry low-order-bit differences,
    and a pair sitting exactly on the ``k ≈ _MIN_K`` branch boundary can
    flip sides of it.  That is accepted — the grid is a data-dependent
    *heuristic* for choosing ``r``, both construction paths share
    whatever it picks, and the identity guarantees of the bulk pipeline
    are unaffected.
    """
    total_elements = float(freqs.sum())
    num_freqs = int(freqs.size)
    # Suffix frequency mass left for the residual sketch at each candidate r.
    prefix_freq = np.concatenate([[0.0], np.cumsum(freqs)])
    prefix_freq_sq = np.concatenate([[0.0], np.cumsum(np.square(freqs))])
    residual_mass = total_elements - prefix_freq[candidates]

    buffer_cost = num_records * candidates / BITS_PER_SIGNATURE_UNIT
    residual_budget = budget - buffer_cost
    tau = np.where(
        residual_mass > 0,
        np.minimum(1.0, residual_budget / np.maximum(residual_mass, 1e-300)),
        1.0,
    )

    infeasible = residual_budget <= 0
    covered = residual_mass <= 0  # buffer holds every element: exact answer
    num_pairs = int(left.size)
    head = min(int(candidates.max()) if candidates.size else 0, num_freqs)

    # The model depends on a pair only through its two record sizes, and
    # sizes repeat heavily: tabulate per *distinct* size.
    unique_sizes, size_inverse = np.unique(
        np.concatenate([left, right]), return_inverse=True
    )
    left_index = size_inverse[:num_pairs]
    right_index = size_inverse[num_pairs:]
    # Clamp boundary per distinct size: elements with f >= N/x have
    # occurrence probability exactly 1.  Frequencies are descending, so
    # the boundary is one searchsorted against the ascending reversal.
    ascending = freqs[::-1]
    clamp_bound = num_freqs - np.searchsorted(
        ascending, total_elements / unique_sizes, side="left"
    )
    scale = unique_sizes / total_elements
    # Σ_j min(f_j·x/N, 1): the clamped ones count 1 each, the rest are a
    # suffix sum of f scaled by x/N.
    size_totals = clamp_bound + scale * (
        total_elements - prefix_freq[clamp_bound]
    )

    # Head region, exact: per-distinct-size probabilities over the first
    # ``head`` (hottest) frequencies, then per-pair prefix sums.
    head_probabilities = np.minimum(
        unique_sizes[:, np.newaxis] * freqs[np.newaxis, :head] / total_elements, 1.0
    )
    p_left = head_probabilities[left_index]
    p_right = head_probabilities[right_index]
    intersect = p_left * p_right
    union = p_left + p_right - intersect
    zero_column = np.zeros((num_pairs, 1), dtype=np.float64)
    prefix_intersect = np.concatenate(
        [zero_column, np.cumsum(intersect, axis=1)], axis=1
    )
    prefix_union = np.concatenate([zero_column, np.cumsum(union, axis=1)], axis=1)

    # Whole-universe intersection total in closed form.  With clamp
    # boundaries c_lo <= c_hi for the pair: below c_lo both sides clamp
    # (product 1), between them only the smaller-boundary side varies
    # (a suffix-sum of f scaled by its size), beyond c_hi the product is
    # f²·x_l·x_r/N² (a suffix sum of f²).
    bound_left = clamp_bound[left_index]
    bound_right = clamp_bound[right_index]
    bound_lo = np.minimum(bound_left, bound_right)
    bound_hi = np.maximum(bound_left, bound_right)
    scale_unclamped = np.where(
        bound_left < bound_right, scale[left_index], scale[right_index]
    )
    total_intersect = (
        bound_lo
        + scale_unclamped * (prefix_freq[bound_hi] - prefix_freq[bound_lo])
        + scale[left_index]
        * scale[right_index]
        * (prefix_freq_sq[num_freqs] - prefix_freq_sq[bound_hi])
    )
    total_union = (
        size_totals[left_index] + size_totals[right_index] - total_intersect
    )
    d_cap = total_intersect[:, np.newaxis] - prefix_intersect[:, candidates]
    d_cup = total_union[:, np.newaxis] - prefix_union[:, candidates]
    k = tau[np.newaxis, :] * d_cup

    variance = np.zeros((num_pairs, candidates.size), dtype=np.float64)
    usable = ~covered[np.newaxis, :] & (k >= _MIN_K)
    if np.any(usable):
        ku = k[usable]
        dc = d_cap[usable]
        du = d_cup[usable]
        numer = dc * (ku * du - ku * ku - du + ku + dc)
        variance[usable] = np.maximum(numer / (ku * (ku - 2.0)), 0.0)
    # When the residual sketch is too small for the Equation-11 formula
    # (k < 3), the estimator effectively misses the residual overlap; the
    # squared error of that miss, D∩², stands in as the variance so that
    # starving the G-KMV part of budget is penalised in proportion to the
    # overlap mass it would be blind to.
    starved = ~covered[np.newaxis, :] & (k < _MIN_K)
    if np.any(starved):
        variance[starved] = np.square(d_cap[starved])
    variance /= np.square(left)[:, np.newaxis]

    averaged = variance.sum(axis=0) / max(num_pairs, 1)
    averaged[infeasible] = INFEASIBLE_VARIANCE
    return averaged


def average_variance(
    record_sizes: Sequence[int] | np.ndarray,
    frequencies: Sequence[int] | np.ndarray,
    budget: float,
    buffer_size: int,
    pair_sample: int = 256,
    seed: int = 0,
) -> float:
    """Model-average variance of the GB-KMV containment estimator.

    Parameters
    ----------
    record_sizes:
        Distinct-element counts of the dataset's records (``x_1..x_m``).
    frequencies:
        Element frequencies (number of records containing each element);
        order does not matter, the model sorts them descending.
    budget:
        Total space budget ``b`` in signature-value units.
    buffer_size:
        Candidate buffer size ``r``.
    pair_sample:
        Number of record pairs sampled to average the per-pair variance;
        the full quadratic sum of the paper is replaced by a deterministic
        Monte-Carlo average which is indistinguishable at the scales used.
    seed:
        Seed for the pair sampling (results are deterministic).

    Returns
    -------
    float
        The estimated average variance, or ``inf`` when the configuration
        is infeasible (buffer alone exceeds the space budget, or the
        residual sketches become too small to estimate from).
    """
    sizes, freqs = _validate_inputs(record_sizes, frequencies, budget)
    if buffer_size < 0:
        raise ConfigurationError("buffer_size must be non-negative")
    r = min(int(buffer_size), int(freqs.size))
    left, right = _sample_pairs(sizes, pair_sample, seed)
    grid = _pair_variance_grid(
        freqs, left, right, budget, sizes.size, np.array([r], dtype=np.int64)
    )
    return float(grid[0])


def choose_buffer_size(
    record_sizes: Sequence[int] | np.ndarray,
    frequencies: Sequence[int] | np.ndarray,
    budget: float,
    step: int = 8,
    max_buffer_size: int | None = None,
    max_buffer_cost_fraction: float = 0.5,
    pair_sample: int = 256,
    seed: int = 0,
) -> BufferSizing:
    """Pick the buffer size minimising the model variance (Section IV-C6).

    The candidate grid is ``r = 0, step, 2·step, …`` up to
    ``max_buffer_size`` (default: bounded by the number of distinct
    elements and by the largest ``r`` whose buffer bits consume at most
    ``max_buffer_cost_fraction`` of the budget).  Because ``r = 0`` is
    always on the grid, the chosen configuration is never worse than plain
    G-KMV under the model, which is the paper's feasibility constraint
    ``V_Δ < 0``.

    ``max_buffer_cost_fraction`` keeps the residual G-KMV sketch from
    being starved: the pairwise-variance model is threshold-agnostic, and
    an index whose buffer eats the whole budget cannot recognise overlap
    among infrequent elements at all (which hurts badly at high search
    thresholds).  Reserving at least half the budget for hash values is
    the engineering guard-rail this reproduction applies on top of the
    paper's model.
    """
    sizes, freqs = _validate_inputs(record_sizes, frequencies, budget)
    if step < 1:
        raise ConfigurationError("step must be >= 1")
    if not 0.0 < max_buffer_cost_fraction <= 1.0:
        raise ConfigurationError("max_buffer_cost_fraction must be in (0, 1]")
    m = sizes.size
    # Largest r whose buffer cost stays within the allowed share of the
    # budget (and always leaves room for at least one hash value).
    allowed_buffer_budget = min(budget * max_buffer_cost_fraction, budget - 1)
    feasibility_cap = int(allowed_buffer_budget * BITS_PER_SIGNATURE_UNIT / m) if m else 0
    cap = int(freqs.size)
    if max_buffer_size is not None:
        cap = min(cap, int(max_buffer_size))
    cap = max(0, min(cap, max(feasibility_cap, 0)))

    candidate_list = list(range(0, cap + 1, step))
    if cap not in candidate_list:
        candidate_list.append(cap)
    candidates = np.array(candidate_list, dtype=np.int64)

    left, right = _sample_pairs(sizes, pair_sample, seed)
    variances = _pair_variance_grid(freqs, left, right, budget, m, candidates)

    best_index = int(np.argmin(variances))
    curve = tuple(
        (int(r), float(variance)) for r, variance in zip(candidates, variances)
    )
    return BufferSizing(
        buffer_size=int(candidates[best_index]),
        estimated_variance=float(variances[best_index]),
        curve=curve,
    )


def residual_threshold(
    residual_frequencies: Mapping[object, int],
    residual_budget: float,
    hasher: UnitHash,
) -> float:
    """Exact global threshold ``τ`` for a residual space budget.

    The number of stored hash values under threshold ``τ`` is the total
    frequency of the residual elements whose hash value is at most ``τ``
    (each occurrence of such an element stores one value).  We therefore
    sort the residual elements by hash value and pick the largest prefix
    whose cumulative frequency fits in the budget; ``τ`` is the hash value
    of the last element in that prefix.

    Parameters
    ----------
    residual_frequencies:
        Frequency (number of containing records) of each element *not* in
        the frequent vocabulary.
    residual_budget:
        Space, in signature values, available for the G-KMV part.
    hasher:
        The dataset's hash function.

    Returns
    -------
    float
        The threshold ``τ`` in ``(0, 1]``.  Returns ``1.0`` when the whole
        residual fits within the budget, and a value just below the
        smallest hash value (storing nothing) when even a single element's
        occurrences would overflow the budget.
    """
    if residual_budget < 0:
        raise ConfigurationError("residual budget must be non-negative")
    elements = list(residual_frequencies.keys())
    if not elements:
        return 1.0
    counts = np.array([residual_frequencies[e] for e in elements], dtype=np.float64)
    if np.any(counts <= 0):
        raise ConfigurationError("element frequencies must be positive")
    hashes = hasher.hash_many(elements)
    return residual_threshold_from_hashes(hashes, counts, residual_budget)


def residual_threshold_from_hashes(
    hashes: np.ndarray,
    counts: np.ndarray,
    residual_budget: float,
) -> float:
    """:func:`residual_threshold` on pre-computed per-element hash values.

    The bulk construction pipeline already holds every unique residual
    element's hash value and frequency as arrays; this entry point skips
    the mapping materialisation and re-hashing.  Semantics (and the
    returned ``τ``) are identical to :func:`residual_threshold`.
    """
    if residual_budget < 0:
        raise ConfigurationError("residual budget must be non-negative")
    hashes = np.asarray(hashes, dtype=np.float64)
    counts = np.asarray(counts, dtype=np.float64)
    if hashes.size == 0:
        return 1.0
    if np.any(counts <= 0):
        raise ConfigurationError("element frequencies must be positive")
    order = np.argsort(hashes, kind="stable")
    sorted_hashes = hashes[order]
    cumulative = np.cumsum(counts[order])
    within = cumulative <= residual_budget
    if not np.any(within):
        # Not even the first element fits: place τ just below its hash value.
        return float(max(sorted_hashes[0] * 0.5, np.finfo(np.float64).tiny))
    last = int(np.nonzero(within)[0][-1])
    if last == sorted_hashes.size - 1:
        return 1.0
    # τ halfway between the last included and the first excluded hash value
    # keeps the inclusion test (h <= τ) unambiguous under float round-off.
    return float((sorted_hashes[last] + sorted_hashes[last + 1]) / 2.0)
