"""GB-KMV: the augmented sketch combining a frequent-element buffer with G-KMV.

A GB-KMV sketch of a record ``X`` has two parts (Section IV-A(3), Fig. 4):

* ``H_X`` — an exact bitmap over the ``r`` globally most frequent elements
  (:class:`~repro.core.buffer.FrequentElementBuffer`);
* ``L_X`` — a G-KMV sketch (global threshold ``τ``) over the *residual*
  elements of ``X``, i.e. those not in the frequent vocabulary.

The intersection size with a query ``Q`` is estimated as

    |Q ∩ X|^ = |H_Q ∩ H_X|  +  D̂∩^GKMV            (Equation 27)

with the first term exact (bitwise AND) and the second the G-KMV
estimator over the residual sketches.  The containment similarity is then
``|Q ∩ X|^ / |Q|``.
"""

from __future__ import annotations

from typing import Iterable

from repro._errors import ConfigurationError, SketchCompatibilityError
from repro.core.buffer import FrequentElementBuffer, FrequentElementVocabulary
from repro.core.gkmv import GKMVSketch
from repro.hashing import UnitHash


class GBKMVSketch:
    """The augmented KMV sketch of one record (buffer + G-KMV residual)."""

    __slots__ = ("_buffer", "_residual", "_record_size")

    def __init__(
        self,
        buffer: FrequentElementBuffer,
        residual: GKMVSketch,
        record_size: int,
    ) -> None:
        if record_size < 0:
            raise ConfigurationError("record_size must be non-negative")
        if buffer.count + residual.record_size > record_size:
            raise ConfigurationError(
                "buffer count plus residual record size exceeds the declared record size"
            )
        self._buffer = buffer
        self._residual = residual
        self._record_size = int(record_size)

    # -- construction ------------------------------------------------------
    @classmethod
    def from_record(
        cls,
        record: Iterable[object],
        vocabulary: FrequentElementVocabulary,
        threshold: float,
        hasher: UnitHash | None = None,
    ) -> "GBKMVSketch":
        """Build the GB-KMV sketch of a record.

        Parameters
        ----------
        record:
            The record's elements (duplicates are collapsed).
        vocabulary:
            Shared top-``r`` frequent-element vocabulary (``E_H``).
        threshold:
            Global hash-value threshold ``τ`` for the residual G-KMV part.
        hasher:
            Hash function shared by all sketches of the dataset.
        """
        if hasher is None:
            hasher = UnitHash()
        distinct = set(record)
        buffer, residual_elements = vocabulary.split_record(distinct)
        residual = GKMVSketch.from_record(
            residual_elements, threshold=threshold, hasher=hasher
        )
        return cls(buffer=buffer, residual=residual, record_size=len(distinct))

    # -- introspection -----------------------------------------------------
    @property
    def buffer(self) -> FrequentElementBuffer:
        """Exact bitmap over the frequent elements (``H_X``)."""
        return self._buffer

    @property
    def residual(self) -> GKMVSketch:
        """G-KMV sketch over the record's infrequent elements (``L_X``)."""
        return self._residual

    @property
    def record_size(self) -> int:
        """Number of distinct elements in the sketched record."""
        return self._record_size

    @property
    def threshold(self) -> float:
        """Global hash-value threshold of the residual sketch."""
        return self._residual.threshold

    @property
    def vocabulary(self) -> FrequentElementVocabulary:
        """The shared frequent-element vocabulary."""
        return self._buffer.vocabulary

    @property
    def is_exact(self) -> bool:
        """True when the sketch captures the record exactly.

        This happens when every residual element's hash value fell below
        the global threshold; the buffer part is always exact.
        """
        return self._residual.is_exact

    def memory_in_values(self) -> float:
        """Space accounting in signature-value units (buffer bits count as r/32)."""
        return self._residual.size + self.vocabulary.buffer_cost_in_values()

    def __repr__(self) -> str:
        return (
            f"GBKMVSketch(record_size={self._record_size}, "
            f"buffer_count={self._buffer.count}, residual_size={self._residual.size})"
        )

    # -- estimation --------------------------------------------------------
    def _check_compatible(self, other: "GBKMVSketch") -> None:
        if self.vocabulary != other.vocabulary:
            raise SketchCompatibilityError(
                "GB-KMV sketches built over different frequent-element vocabularies"
            )

    def intersection_size_estimate(self, other: "GBKMVSketch") -> float:
        """Estimate ``|Q ∩ X|`` by Equation 27 (exact buffer + G-KMV residual)."""
        self._check_compatible(other)
        exact_part = self._buffer.intersection_count(other._buffer)
        estimated_part = self._residual.intersection_size_estimate(other._residual)
        return exact_part + estimated_part

    def union_size_estimate(self, other: "GBKMVSketch") -> float:
        """Estimate ``|Q ∪ X|`` (exact over the buffer, G-KMV over the residual)."""
        self._check_compatible(other)
        exact_part = self._buffer.union_count(other._buffer)
        if self._residual.size == 0 and other._residual.size == 0:
            # No residual information at all: the best available estimate is
            # the buffer union plus the known residual record sizes.
            return float(
                exact_part
                + self._residual.record_size
                + other._residual.record_size
            )
        estimated_part = self._residual.union_size_estimate(other._residual)
        return exact_part + estimated_part

    def containment_estimate(self, other: "GBKMVSketch", query_size: int | None = None) -> float:
        """Estimate ``C(Q, X) = |Q ∩ X| / |Q|`` with ``self`` as the query.

        Parameters
        ----------
        other:
            Sketch of the candidate record ``X``.
        query_size:
            Exact query size ``|Q|``.  Defaults to the sketched record
            size, which is exact because sketches record it at build time.
        """
        q = self._record_size if query_size is None else int(query_size)
        if q <= 0:
            raise ConfigurationError("query size must be positive")
        return self.intersection_size_estimate(other) / float(q)

    def jaccard_estimate(self, other: "GBKMVSketch") -> float:
        """Estimate the Jaccard similarity ``|Q ∩ X| / |Q ∪ X|``.

        Provided for completeness; the containment search path never needs
        it, but examples and baselines comparing similarity functions do.
        """
        union = self.union_size_estimate(other)
        if union <= 0:
            return 0.0
        return min(1.0, self.intersection_size_estimate(other) / union)
