"""The GB-KMV index: sketch construction and containment similarity search.

This module implements Algorithm 1 (index construction) and Algorithm 2
(containment similarity search) of the paper, together with the practical
machinery a user needs: budget accounting, a cost-model-driven buffer
size, an inverted index over sketch values so that queries only touch
records sharing sketch content with the query, and dynamic insertion.

Typical usage::

    from repro.core import GBKMVIndex

    index = GBKMVIndex.build(records, space_fraction=0.10)
    results = index.search(query, threshold=0.5)
    for hit in results:
        print(hit.record_id, hit.score)
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro._errors import ConfigurationError, EmptyDatasetError
from repro.core.buffer import (
    BITS_PER_SIGNATURE_UNIT,
    FrequentElementBuffer,
    FrequentElementVocabulary,
)
from repro.core.cost_model import choose_buffer_size, residual_threshold
from repro.core.gbkmv import GBKMVSketch
from repro.core.gkmv import GKMVSketch
from repro.hashing import UnitHash


@dataclass(frozen=True)
class SearchResult:
    """One hit of a containment similarity search.

    Attributes
    ----------
    record_id:
        Position of the record in the indexed dataset.
    score:
        Estimated containment similarity ``Ĉ(Q, X)``.
    """

    record_id: int
    score: float


@dataclass(frozen=True)
class IndexStatistics:
    """Summary of a built index, used by the space/time benchmarks."""

    num_records: int
    total_elements: int
    buffer_size: int
    threshold: float
    space_in_values: float
    space_fraction: float
    budget_in_values: float


class GBKMVIndex:
    """GB-KMV sketches plus an inverted index for containment search.

    Build with :meth:`build` (which chooses the buffer size via the cost
    model unless one is supplied) rather than calling ``__init__``
    directly.
    """

    def __init__(
        self,
        vocabulary: FrequentElementVocabulary,
        threshold: float,
        hasher: UnitHash,
        budget: float,
    ) -> None:
        self._vocabulary = vocabulary
        self._threshold = float(threshold)
        self._hasher = hasher
        self._budget = float(budget)

        # Per-record storage (parallel lists / arrays, index = record id).
        self._buffer_masks: list[int] = []
        self._residual_values: list[np.ndarray] = []
        self._residual_record_sizes: list[int] = []
        self._record_sizes: list[int] = []

        # Inverted indexes: sketch hash value -> record ids, and frequent
        # element bit position -> record ids.  Kept as growable lists and
        # converted to arrays lazily at query time.
        self._value_postings: dict[float, list[int]] = {}
        self._bit_postings: list[list[int]] = [[] for _ in range(vocabulary.size)]
        self._postings_finalized = False
        self._value_postings_arrays: dict[float, np.ndarray] = {}
        self._bit_postings_arrays: list[np.ndarray] = []

        # Cached per-record scalars for the vectorised search path.
        self._residual_sizes_arr: np.ndarray | None = None
        self._residual_max_arr: np.ndarray | None = None
        self._residual_exact_arr: np.ndarray | None = None

    # ------------------------------------------------------------------ build
    @classmethod
    def build(
        cls,
        records: Sequence[Iterable[object]],
        space_fraction: float = 0.10,
        space_budget: float | None = None,
        buffer_size: int | str = "auto",
        hasher: UnitHash | None = None,
        seed: int = 0,
        cost_model_pair_sample: int = 256,
    ) -> "GBKMVIndex":
        """Algorithm 1: construct the GB-KMV index of a dataset.

        Parameters
        ----------
        records:
            The dataset ``S``; each record is an iterable of elements.
        space_fraction:
            Space budget as a fraction of the dataset size (total number
            of per-record distinct elements), the measure used throughout
            the paper's evaluation.  Ignored when ``space_budget`` is given.
        space_budget:
            Absolute budget ``b`` in signature-value units.
        buffer_size:
            Either an explicit ``r`` or ``"auto"`` to let the cost model of
            Section IV-C6 choose it.
        hasher:
            Hash function shared by all sketches; defaults to a fixed-seed
            :class:`~repro.hashing.UnitHash` derived from ``seed``.
        seed:
            Seed for the default hasher and the cost model sampling.
        cost_model_pair_sample:
            Number of record pairs the cost model averages over.
        """
        materialized = [set(record) for record in records]
        if not materialized:
            raise EmptyDatasetError("cannot build an index over an empty dataset")
        if any(len(record) == 0 for record in materialized):
            raise ConfigurationError("records must be non-empty sets of elements")
        if hasher is None:
            hasher = UnitHash(seed=seed)

        record_sizes = np.array([len(r) for r in materialized], dtype=np.int64)
        total_elements = int(record_sizes.sum())
        if space_budget is None:
            if not 0.0 < space_fraction <= 1.0:
                raise ConfigurationError("space_fraction must be in (0, 1]")
            budget = space_fraction * total_elements
        else:
            if space_budget <= 0:
                raise ConfigurationError("space_budget must be positive")
            budget = float(space_budget)

        frequencies: Counter = Counter()
        for record in materialized:
            frequencies.update(record)

        if buffer_size == "auto":
            sizing = choose_buffer_size(
                record_sizes,
                np.array(list(frequencies.values()), dtype=np.float64),
                budget,
                pair_sample=cost_model_pair_sample,
                seed=seed,
            )
            chosen_r = sizing.buffer_size
        else:
            chosen_r = int(buffer_size)
            if chosen_r < 0:
                raise ConfigurationError("buffer_size must be non-negative")

        vocabulary = FrequentElementVocabulary.from_frequencies(frequencies, chosen_r)
        buffer_cost = len(materialized) * vocabulary.size / BITS_PER_SIGNATURE_UNIT
        residual_budget = max(budget - buffer_cost, 0.0)
        residual_frequencies = {
            element: count
            for element, count in frequencies.items()
            if element not in vocabulary
        }
        threshold = residual_threshold(residual_frequencies, residual_budget, hasher)

        index = cls(
            vocabulary=vocabulary,
            threshold=threshold,
            hasher=hasher,
            budget=budget,
        )
        for record in materialized:
            index._add_record(record)
        return index

    def _add_record(self, record: set) -> int:
        """Insert one record's sketch; returns its record id."""
        record_id = len(self._record_sizes)
        buffer, residual_elements = self._vocabulary.split_record(record)
        if residual_elements:
            hashes = np.unique(self._hasher.hash_many(residual_elements))
            kept = hashes[hashes <= self._threshold]
        else:
            kept = np.empty(0, dtype=np.float64)

        self._buffer_masks.append(buffer.mask)
        self._residual_values.append(kept)
        self._residual_record_sizes.append(len(residual_elements))
        self._record_sizes.append(len(record))

        for value in kept:
            self._value_postings.setdefault(float(value), []).append(record_id)
        mask = buffer.mask
        while mask:
            low_bit = mask & -mask
            position = low_bit.bit_length() - 1
            self._bit_postings[position].append(record_id)
            mask ^= low_bit
        self._postings_finalized = False
        self._residual_sizes_arr = None
        return record_id

    # ------------------------------------------------------------ introspection
    @property
    def num_records(self) -> int:
        """Number of records indexed."""
        return len(self._record_sizes)

    @property
    def vocabulary(self) -> FrequentElementVocabulary:
        """The frequent-element vocabulary shared by all sketches."""
        return self._vocabulary

    @property
    def buffer_size(self) -> int:
        """The buffer size ``r`` chosen or supplied at build time."""
        return self._vocabulary.size

    @property
    def threshold(self) -> float:
        """The global hash-value threshold ``τ``."""
        return self._threshold

    @property
    def hasher(self) -> UnitHash:
        """The hash function shared by all sketches."""
        return self._hasher

    @property
    def budget(self) -> float:
        """The space budget ``b`` in signature-value units."""
        return self._budget

    def __len__(self) -> int:
        return self.num_records

    def record_size(self, record_id: int) -> int:
        """Distinct-element count of an indexed record."""
        return self._record_sizes[record_id]

    def record_sizes(self) -> np.ndarray:
        """Distinct-element counts of every indexed record."""
        return np.asarray(self._record_sizes, dtype=np.int64)

    def space_in_values(self) -> float:
        """Actual space used, in signature-value units (values + r/32 per record)."""
        stored_values = sum(arr.size for arr in self._residual_values)
        buffer_cost = self.num_records * self._vocabulary.size / BITS_PER_SIGNATURE_UNIT
        return stored_values + buffer_cost

    def space_fraction(self) -> float:
        """Space used as a fraction of the dataset size."""
        total_elements = sum(self._record_sizes)
        if total_elements == 0:
            return 0.0
        return self.space_in_values() / total_elements

    def statistics(self) -> IndexStatistics:
        """Summary statistics of the built index."""
        return IndexStatistics(
            num_records=self.num_records,
            total_elements=int(sum(self._record_sizes)),
            buffer_size=self.buffer_size,
            threshold=self._threshold,
            space_in_values=self.space_in_values(),
            space_fraction=self.space_fraction(),
            budget_in_values=self._budget,
        )

    def sketch(self, record_id: int) -> GBKMVSketch:
        """Materialise the GB-KMV sketch of an indexed record."""
        buffer = FrequentElementBuffer(self._vocabulary, self._buffer_masks[record_id])
        residual = GKMVSketch(
            threshold=self._threshold,
            values=self._residual_values[record_id],
            record_size=self._residual_record_sizes[record_id],
            hasher=self._hasher,
        )
        return GBKMVSketch(
            buffer=buffer,
            residual=residual,
            record_size=self._record_sizes[record_id],
        )

    def sketches(self) -> Iterator[GBKMVSketch]:
        """Iterate over the sketches of all indexed records."""
        for record_id in range(self.num_records):
            yield self.sketch(record_id)

    # ---------------------------------------------------------------- updates
    def insert(self, record: Iterable[object]) -> int:
        """Insert a new record under the current vocabulary and threshold.

        Returns the new record id.  The global threshold is *not*
        recomputed automatically; call :meth:`refit_threshold` after a
        batch of insertions to shrink the sketches back into the budget
        (the dynamic-data procedure described at the end of Section IV-B).
        """
        materialized = set(record)
        if not materialized:
            raise ConfigurationError("cannot insert an empty record")
        return self._add_record(materialized)

    def refit_threshold(self) -> float:
        """Recompute ``τ`` so the index fits its budget again, shrinking sketches.

        Only lowers the threshold (hash values above the new ``τ`` are
        dropped); raising it would require access to the original records.
        Returns the new threshold.
        """
        buffer_cost = self.num_records * self._vocabulary.size / BITS_PER_SIGNATURE_UNIT
        residual_budget = max(self._budget - buffer_cost, 0.0)
        all_values = (
            np.concatenate(self._residual_values)
            if any(arr.size for arr in self._residual_values)
            else np.empty(0, dtype=np.float64)
        )
        if all_values.size == 0:
            return self._threshold
        if all_values.size <= residual_budget:
            return self._threshold
        # The same hash value is stored once per containing record, so pick
        # the largest distinct value whose cumulative occurrence count still
        # fits in the budget.
        unique_values, counts = np.unique(all_values, return_counts=True)
        cumulative = np.cumsum(counts)
        within = cumulative <= residual_budget
        if not np.any(within):
            new_threshold = float(np.finfo(np.float64).tiny)
        else:
            new_threshold = float(unique_values[np.nonzero(within)[0][-1]])
        if new_threshold >= self._threshold:
            return self._threshold
        self._threshold = new_threshold
        self._residual_values = [
            arr[arr <= new_threshold] for arr in self._residual_values
        ]
        # Rebuild the value postings from scratch (bit postings are unchanged).
        self._value_postings = {}
        for record_id, arr in enumerate(self._residual_values):
            for value in arr:
                self._value_postings.setdefault(float(value), []).append(record_id)
        self._postings_finalized = False
        self._residual_sizes_arr = None
        return self._threshold

    # ----------------------------------------------------------------- search
    def _finalize(self) -> None:
        """Convert posting lists and per-record scalars to numpy arrays."""
        if self._postings_finalized and self._residual_sizes_arr is not None:
            return
        self._value_postings_arrays = {
            value: np.asarray(ids, dtype=np.int64)
            for value, ids in self._value_postings.items()
        }
        self._bit_postings_arrays = [
            np.asarray(ids, dtype=np.int64) for ids in self._bit_postings
        ]
        sizes = np.array([arr.size for arr in self._residual_values], dtype=np.int64)
        maxima = np.array(
            [float(arr[-1]) if arr.size else 0.0 for arr in self._residual_values],
            dtype=np.float64,
        )
        exact = sizes >= np.asarray(self._residual_record_sizes, dtype=np.int64)
        self._residual_sizes_arr = sizes
        self._residual_max_arr = maxima
        self._residual_exact_arr = exact
        self._postings_finalized = True

    def query_sketch(self, query: Iterable[object]) -> GBKMVSketch:
        """Build the GB-KMV sketch of a query under the index's parameters."""
        return GBKMVSketch.from_record(
            query,
            vocabulary=self._vocabulary,
            threshold=self._threshold,
            hasher=self._hasher,
        )

    def estimate_containment(self, query: Iterable[object], record_id: int) -> float:
        """Estimate ``C(Q, X_record_id)`` for a single record."""
        query_sketch = self.query_sketch(query)
        return query_sketch.containment_estimate(self.sketch(record_id))

    def search(
        self,
        query: Iterable[object],
        threshold: float,
        query_size: int | None = None,
    ) -> list[SearchResult]:
        """Algorithm 2: return records with estimated containment ``>= threshold``.

        Parameters
        ----------
        query:
            The query record ``Q``.
        threshold:
            The containment similarity threshold ``t*`` in ``[0, 1]``.
        query_size:
            Exact query size ``|Q|``; defaults to the number of distinct
            elements in ``query`` (Remark 1: the query size is assumed
            known).

        Returns
        -------
        list[SearchResult]
            Hits sorted by decreasing estimated containment similarity.
        """
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError("threshold must be in [0, 1]")
        query_elements = set(query)
        if not query_elements:
            raise ConfigurationError("query must contain at least one element")
        q = len(query_elements) if query_size is None else int(query_size)
        if q <= 0:
            raise ConfigurationError("query_size must be positive")

        self._finalize()
        scores = self._score_all(query_elements)
        theta = threshold * q
        if theta <= 0.0:
            hit_ids = np.arange(self.num_records)
        else:
            # Relative tolerance so exact integer estimates survive the float
            # noise of ``threshold * q`` without admitting genuinely lower scores.
            hit_ids = np.nonzero(scores >= theta * (1.0 - 1e-12))[0]
        results = [
            SearchResult(record_id=int(record_id), score=float(scores[record_id] / q))
            for record_id in hit_ids
        ]
        results.sort(key=lambda result: (-result.score, result.record_id))
        return results

    def top_k(self, query: Iterable[object], k: int, query_size: int | None = None) -> list[SearchResult]:
        """Return the ``k`` records with the highest estimated containment.

        A convenience companion to threshold search, useful for the domain
        search example where the user wants the best few matches.
        """
        if k <= 0:
            raise ConfigurationError("k must be positive")
        query_elements = set(query)
        if not query_elements:
            raise ConfigurationError("query must contain at least one element")
        q = len(query_elements) if query_size is None else int(query_size)
        self._finalize()
        scores = self._score_all(query_elements) / q
        order = np.argsort(-scores, kind="stable")[:k]
        return [
            SearchResult(record_id=int(record_id), score=float(scores[record_id]))
            for record_id in order
        ]

    def _score_all(self, query_elements: set) -> np.ndarray:
        """Estimated intersection size of the query with every record.

        Records sharing no sketch content with the query score 0, so the
        inverted index only needs to touch posting lists of the query's
        own sketch values and buffer bits.
        """
        num_records = self.num_records
        query_sketch = self.query_sketch(query_elements)
        q_values = query_sketch.residual.values
        q_size = q_values.size
        q_max = float(q_values[-1]) if q_size else 0.0
        q_exact = query_sketch.residual.is_exact
        q_mask = query_sketch.buffer.mask

        buffer_overlap = np.zeros(num_records, dtype=np.float64)
        mask = q_mask
        while mask:
            low_bit = mask & -mask
            position = low_bit.bit_length() - 1
            postings = self._bit_postings_arrays[position]
            if postings.size:
                np.add.at(buffer_overlap, postings, 1.0)
            mask ^= low_bit

        k_cap = np.zeros(num_records, dtype=np.float64)
        for value in q_values:
            postings = self._value_postings_arrays.get(float(value))
            if postings is not None and postings.size:
                np.add.at(k_cap, postings, 1.0)

        sizes = self._residual_sizes_arr.astype(np.float64)
        maxima = self._residual_max_arr
        exact = self._residual_exact_arr

        # k of Equation 24: |L_Q ∪ L_X| = |L_Q| + |L_X| − K∩; U(k) is the
        # largest hash value in the union because all values are <= τ.
        k_union = q_size + sizes - k_cap
        u_k = np.maximum(maxima, q_max)

        residual_estimate = np.zeros(num_records, dtype=np.float64)
        both_exact = exact & q_exact
        residual_estimate[both_exact] = k_cap[both_exact]

        estimable = (~both_exact) & (k_union >= 2) & (u_k > 0.0)
        if np.any(estimable):
            ku = k_union[estimable]
            residual_estimate[estimable] = (
                (k_cap[estimable] / ku) * ((ku - 1.0) / u_k[estimable])
            )
        return buffer_overlap + residual_estimate
