"""The GB-KMV index: sketch construction and containment similarity search.

This module implements Algorithm 1 (index construction) and Algorithm 2
(containment similarity search) of the paper, together with the practical
machinery a user needs: budget accounting, a cost-model-driven buffer
size, and full dynamic maintenance — insert, delete, update — plus
snapshot persistence.

All per-record sketch state lives in a
:class:`~repro.core.store.ColumnarSketchStore` — a segmented columnar
layout (sealed base + mutable tail) of residual hash values with CSR
offsets, a packed uint64 signature matrix for the frequent-element
buffers, and parallel size columns — so a query is scored against
*every* record with a handful of vectorised kernels instead of a
per-record Python loop.  On top of the single-query
:meth:`GBKMVIndex.search`, :meth:`GBKMVIndex.search_many` evaluates a
whole workload at once through the store's value→record join index.
Inserts merge into the sealed segment incrementally (no wholesale
re-sort), deletes tombstone in O(1) and compact lazily, and
:meth:`GBKMVIndex.save` / :meth:`GBKMVIndex.load` round-trip the entire
index state — columns, vocabulary, threshold, hasher seed — through one
npz snapshot.

Typical usage::

    from repro.core import GBKMVIndex

    index = GBKMVIndex.build(records, space_fraction=0.10)
    results = index.search(query, threshold=0.5)
    for hit in results:
        print(hit.record_id, hit.score)

    all_results = index.search_many(queries, threshold=0.5)

    new_id = index.insert(new_record)
    index.delete(new_id)
    index.save("index.npz")
    restored = GBKMVIndex.load("index.npz")
"""

from __future__ import annotations

import base64
import json
import time
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro._errors import ConfigurationError, EmptyDatasetError, SnapshotFormatError
from repro.api.config import GBKMVConfig
from repro.api.interface import Capabilities, SimilarityIndex
from repro.api.registry import (
    SNAPSHOT_MANIFEST,
    directory_manifest,
    read_directory_manifest,
    snapshot_tag,
)
from repro.api.results import SearchResult
from repro.core.batched import residual_intersection_estimates
from repro.core.buffer import (
    BITS_PER_SIGNATURE_UNIT,
    FrequentElementBuffer,
    FrequentElementVocabulary,
)
from repro.core.bulk import (
    FingerprintCollisionError,
    FlatRecords,
    VocabularyLookup,
    bulk_sketch,
    flatten_records,
    resolve_space_budget,
    select_vocabulary,
    vocabulary_lookup,
)
from repro.core.cost_model import (
    choose_buffer_size,
    residual_threshold,
    residual_threshold_from_hashes,
)
from repro.core.gbkmv import GBKMVSketch
from repro.core.gkmv import GKMVSketch
from repro.core.profiling import BuildProfile
from repro.core.store import ColumnarSketchStore
from repro.hashing import UnitHash


@dataclass(frozen=True)
class IndexStatistics:
    """Summary of a built index, used by the space/time benchmarks.

    ``build_profile`` is the per-stage wall-clock breakdown of the build
    that produced the index (``None`` for indexes built per-record,
    loaded from a snapshot, or grown purely through inserts).
    """

    num_records: int
    total_elements: int
    buffer_size: int
    threshold: float
    space_in_values: float
    space_fraction: float
    budget_in_values: float
    build_profile: BuildProfile | None = None


#: Default number of physical rows a fused workload pass scores per block.
#: Peak intermediate memory of :meth:`GBKMVIndex.search_many` is
#: ``O(num_queries × row_block_size)`` — independent of the store size.
DEFAULT_ROW_BLOCK_SIZE = 4096


@dataclass(frozen=True)
class WorkloadExecutionStats:
    """Observed footprint of one fused workload pass (for benchmarks/tests).

    ``peak_block_cells`` is the largest ``(B, block)`` matrix the engine
    actually materialised; ``dense_cells`` is the ``(B, num_rows)`` matrix
    an unblocked engine would have allocated.  ``estimator_pairs`` counts
    the (query, row) pairs that reached the Equation-25 estimator after
    zero-count/zero-overlap candidate pruning; ``hit_pairs`` the pairs
    that were finally emitted as results.
    """

    num_queries: int
    num_rows: int
    row_block_size: int
    num_blocks: int
    peak_block_cells: int
    dense_cells: int
    estimator_pairs: int
    hit_pairs: int


@dataclass(frozen=True)
class PlannedParameters:
    """Algorithm 1's derived global parameters, before any ingest.

    Returned by :meth:`GBKMVIndex.plan_parameters`: everything the
    construction pinned over the full dataset — the frequent-element
    vocabulary, the residual threshold ``τ``, the shared hasher and the
    resolved space budget — plus the two derivation by-products
    (``lookup`` and ``unique_hashes``) that :meth:`GBKMVIndex.build`
    reuses so its single-pass ingest does not recompute them.
    """

    vocabulary: FrequentElementVocabulary
    threshold: float
    hasher: UnitHash
    budget: float
    lookup: VocabularyLookup
    unique_hashes: np.ndarray


def _resolve_row_block_size(row_block_size: int | None) -> int:
    if row_block_size is None:
        return DEFAULT_ROW_BLOCK_SIZE
    block = int(row_block_size)
    if block <= 0:
        raise ConfigurationError("row_block_size must be positive")
    return block


def _sorted_hits(hit_ids: np.ndarray, hit_scores: np.ndarray) -> list[SearchResult]:
    """Order hits by decreasing score, ties by increasing record id."""
    # Decreasing score, ties by increasing record id (lexsort's last key
    # is the primary one).  ``_make`` over zipped lists is the cheapest
    # way to materialise tens of thousands of result tuples.
    order = np.lexsort((hit_ids, -hit_scores))
    return list(
        map(
            SearchResult._make,
            zip(hit_ids[order].tolist(), hit_scores[order].tolist()),
        )
    )


def _assemble_workload_results(
    num_queries: int,
    query_chunks: Sequence[np.ndarray],
    id_chunks: Sequence[np.ndarray],
    score_chunks: Sequence[np.ndarray],
) -> list[list[SearchResult]]:
    """Group per-block hit chunks by query and order each query's hits.

    Chunks arrive in ascending physical-row order (the block sweep), so a
    stable grouping sort keeps each query's hits row-ordered — exactly
    the order the dense engine feeds :func:`_sorted_hits`, making the
    final per-query orderings identical.
    """
    if not query_chunks:
        return [[] for _ in range(num_queries)]
    query_ids = np.concatenate(query_chunks)
    hit_ids = np.concatenate(id_chunks)
    hit_scores = np.concatenate(score_chunks)
    # One global three-key sort realises every query's (decreasing score,
    # increasing id) order at once; record ids are unique per query, so
    # the order is total and identical to a per-query lexsort.
    order = np.lexsort((hit_ids, -hit_scores, query_ids))
    query_ids = query_ids[order]
    hits = list(
        map(
            SearchResult._make,
            zip(hit_ids[order].tolist(), hit_scores[order].tolist()),
        )
    )
    bounds = np.searchsorted(query_ids, np.arange(num_queries + 1)).tolist()
    return [hits[start:stop] for start, stop in zip(bounds[:-1], bounds[1:])]


def results_from_scores(
    scores: np.ndarray,
    threshold: float,
    query_size: int,
    row_ids: np.ndarray | None = None,
    alive: np.ndarray | None = None,
) -> list[SearchResult]:
    """Select, normalise and sort the hits of one query.

    The shared hit-selection policy of every searcher in the library
    (GB-KMV and the KMV/G-KMV baselines): a zero effective threshold
    keeps every record, otherwise hits need an intersection estimate of
    at least ``threshold * query_size`` up to a relative tolerance, and
    results are ordered by decreasing score with ties broken by record
    id.

    ``scores`` is indexed by physical store row; ``row_ids`` maps rows to
    stable record ids (identity when ``None``) and ``alive`` masks out
    tombstoned rows (all alive when ``None``) — the two halves of the
    segmented store's :meth:`~repro.core.store.ColumnarSketchStore.result_view`.
    """
    theta = threshold * query_size
    if theta <= 0.0:
        hit_rows = np.arange(scores.size) if alive is None else np.nonzero(alive)[0]
    else:
        # Relative tolerance so exact integer estimates survive the float
        # noise of ``threshold * q`` without admitting genuinely lower scores.
        hit_mask = scores >= theta * (1.0 - 1e-12)
        if alive is not None:
            hit_mask &= alive
        hit_rows = np.nonzero(hit_mask)[0]
    hit_scores = scores[hit_rows] / query_size
    hit_ids = hit_rows if row_ids is None else row_ids[hit_rows]
    return _sorted_hits(hit_ids, hit_scores)


def _encode_elements(elements: Sequence[object]) -> list[list[object]]:
    """JSON-safe tagged encoding of vocabulary elements (int/str/bytes/bool)."""
    encoded: list[list[object]] = []
    for element in elements:
        if isinstance(element, bool):
            encoded.append(["bool", bool(element)])
        elif isinstance(element, (int, np.integer)):
            encoded.append(["int", int(element)])
        elif isinstance(element, str):
            encoded.append(["str", element])
        elif isinstance(element, bytes):
            encoded.append(["bytes", base64.b64encode(element).decode("ascii")])
        else:
            raise ConfigurationError(
                f"cannot persist vocabulary element of type {type(element).__name__!r}; "
                "elements must be int, str, bytes or bool"
            )
    return encoded


def _decode_elements(encoded: Sequence[Sequence[object]]) -> list[object]:
    """Inverse of :func:`_encode_elements`."""
    decoded: list[object] = []
    for tag, payload in encoded:
        if tag == "bool":
            decoded.append(bool(payload))
        elif tag == "int":
            decoded.append(int(payload))
        elif tag == "str":
            decoded.append(str(payload))
        elif tag == "bytes":
            decoded.append(base64.b64decode(str(payload)))
        else:
            raise ConfigurationError(f"unknown vocabulary element tag {tag!r}")
    return decoded


@dataclass(frozen=True)
class _PreparedQuery:
    """A query reduced to the raw arrays the scoring kernels consume."""

    mask: int
    values: np.ndarray
    residual_size: int
    query_size: int

    @property
    def max_value(self) -> float:
        """Largest kept hash value (``0.0`` when none were kept)."""
        return float(self.values[-1]) if self.values.size else 0.0

    @property
    def exact(self) -> bool:
        """Whether every residual hash value survived the threshold."""
        return bool(self.values.size >= self.residual_size)


class GBKMVIndex(SimilarityIndex):
    """GB-KMV sketches in columnar storage plus a batched query engine.

    Build with :meth:`build` (which chooses the buffer size via the cost
    model unless one is supplied) or, through the unified
    :mod:`repro.api` surface, with :meth:`from_records` — rather than
    calling ``__init__`` directly.
    """

    backend_id = "gbkmv"
    config_type = GBKMVConfig
    capabilities = Capabilities(
        dynamic=True, batched=True, persistent=True, exact=False, scored=True
    )

    def __init__(
        self,
        vocabulary: FrequentElementVocabulary,
        threshold: float,
        hasher: UnitHash,
        budget: float,
    ) -> None:
        self._vocabulary = vocabulary
        self._threshold = float(threshold)
        self._hasher = hasher
        self._budget = float(budget)
        self._store = ColumnarSketchStore(signature_bits=vocabulary.size)
        #: Footprint of the most recent fused workload pass (``search_many``
        #: / ``top_k_many``), or ``None`` before the first one.
        self.last_workload_stats: WorkloadExecutionStats | None = None
        #: Per-stage wall-clock breakdown of the bulk build that produced
        #: this index, or ``None`` when no bulk build ran.
        self.last_build_profile: BuildProfile | None = None

    # ------------------------------------------------------------------ build
    @staticmethod
    def _check_build_method(method: str) -> None:
        if method not in ("bulk", "per-record"):
            raise ConfigurationError(
                f"unknown construction method {method!r}; use 'bulk' or 'per-record'"
            )

    @classmethod
    def build(
        cls,
        records: Sequence[Iterable[object]],
        space_fraction: float = 0.10,
        space_budget: float | None = None,
        buffer_size: int | str = "auto",
        hasher: UnitHash | None = None,
        seed: int = 0,
        cost_model_pair_sample: int = 256,
        method: str = "bulk",
    ) -> "GBKMVIndex":
        """Algorithm 1: construct the GB-KMV index of a dataset.

        Parameters
        ----------
        records:
            The dataset ``S``; each record is an iterable of elements.
        space_fraction:
            Space budget as a fraction of the dataset size (total number
            of per-record distinct elements), the measure used throughout
            the paper's evaluation.  Ignored when ``space_budget`` is given.
        space_budget:
            Absolute budget ``b`` in signature-value units.
        buffer_size:
            Either an explicit ``r`` or ``"auto"`` to let the cost model of
            Section IV-C6 choose it.
        hasher:
            Hash function shared by all sketches; defaults to a fixed-seed
            :class:`~repro.hashing.UnitHash` derived from ``seed``.
        seed:
            Seed for the default hasher and the cost model sampling.
        cost_model_pair_sample:
            Number of record pairs the cost model averages over.
        method:
            ``"bulk"`` (default) runs the vectorised whole-dataset
            pipeline of :mod:`repro.core.bulk` — one fingerprint pass,
            ``np.unique`` frequency counting, bulk signature packing and
            one staged-batch store append.  ``"per-record"`` is the
            historical record-at-a-time path, kept verbatim as the
            benchmark baseline; both produce bitwise-identical indexes.
        """
        cls._check_build_method(method)
        if method == "per-record":
            return cls._build_per_record(
                records,
                space_fraction=space_fraction,
                space_budget=space_budget,
                buffer_size=buffer_size,
                hasher=hasher,
                seed=seed,
                cost_model_pair_sample=cost_model_pair_sample,
            )
        profile = BuildProfile()
        flat = flatten_records(records, profile=profile)
        params = cls.plan_parameters(
            flat,
            space_fraction=space_fraction,
            space_budget=space_budget,
            buffer_size=buffer_size,
            hasher=hasher,
            seed=seed,
            cost_model_pair_sample=cost_model_pair_sample,
            profile=profile,
        )
        index = cls(
            vocabulary=params.vocabulary,
            threshold=params.threshold,
            hasher=params.hasher,
            budget=params.budget,
        )
        index._ingest_bulk(
            flat,
            lookup=params.lookup,
            unique_hashes=params.unique_hashes,
            profile=profile,
        )
        index.last_build_profile = profile
        return index

    @classmethod
    def plan_parameters(
        cls,
        flat: FlatRecords,
        space_fraction: float = 0.10,
        space_budget: float | None = None,
        buffer_size: int | str = "auto",
        hasher: UnitHash | None = None,
        seed: int = 0,
        cost_model_pair_sample: int = 256,
        profile: BuildProfile | None = None,
    ) -> "PlannedParameters":
        """Algorithm 1's parameter derivation, without the ingest.

        Runs the global derivation — space budget, cost-model buffer
        sizing, vocabulary selection, residual threshold ``τ`` — over an
        already-flattened dataset and returns the pinned parameters
        instead of a built index.  :meth:`build` is exactly this followed
        by one bulk ingest; the sharded backend runs it once over the
        *full* dataset and then sketches every shard with
        :meth:`from_parameters`, which is what makes per-shard sketches
        (and merged search results) bitwise identical to the unsharded
        index.
        """
        if hasher is None:
            hasher = UnitHash(seed=seed)
        budget = resolve_space_budget(
            flat.total_elements, space_fraction, space_budget
        )

        # np.unique over the per-record-distinct fingerprint column *is*
        # the Counter of the per-record path: each unique fingerprint's
        # occurrence count equals its containing-record count.
        counts = flat.counts
        if buffer_size == "auto":
            # The pair-sampled buffer sizing is the one planning stage that
            # is pure Python + small-array work; time it as its own stage
            # so the profile accounts for the full build wall clock.
            start = time.perf_counter()
            sizing = choose_buffer_size(
                flat.record_sizes,
                counts.astype(np.float64),
                budget,
                pair_sample=cost_model_pair_sample,
                seed=seed,
            )
            if profile is not None:
                profile.record(
                    "cost_model",
                    time.perf_counter() - start,
                    rows=flat.num_records,
                )
            chosen_r = sizing.buffer_size
        else:
            chosen_r = int(buffer_size)
            if chosen_r < 0:
                raise ConfigurationError("buffer_size must be non-negative")

        vocabulary = select_vocabulary(flat, chosen_r, profile=profile)
        buffer_cost = flat.num_records * vocabulary.size / BITS_PER_SIGNATURE_UNIT
        residual_budget = max(budget - buffer_cost, 0.0)
        # The vocabulary's elements are exactly representatives of unique
        # fingerprints, so the residual split over uniques is a
        # fingerprint-membership mask — no mapping materialisation.
        lookup = vocabulary_lookup(vocabulary)
        residual_unique = ~lookup.member_mask(flat.unique_fingerprints)
        unique_hashes = hasher.hash_fingerprints(flat.unique_fingerprints)
        threshold = residual_threshold_from_hashes(
            unique_hashes[residual_unique],
            counts[residual_unique].astype(np.float64),
            residual_budget,
        )
        return PlannedParameters(
            vocabulary=vocabulary,
            threshold=threshold,
            hasher=hasher,
            budget=budget,
            lookup=lookup,
            unique_hashes=unique_hashes,
        )

    @classmethod
    def from_records(
        cls,
        records: Sequence[Iterable[object]],
        config: GBKMVConfig | None = None,
    ) -> "GBKMVIndex":
        """:mod:`repro.api` entry point: :meth:`build` under a typed config."""
        config = cls.resolve_config(config)
        return cls.build(
            records,
            space_fraction=config.space_fraction,
            space_budget=config.space_budget,
            buffer_size=config.buffer_size,
            seed=config.seed,
            cost_model_pair_sample=config.cost_model_pair_sample,
            method=config.method,
        )

    @classmethod
    def _build_per_record(
        cls,
        records: Sequence[Iterable[object]],
        space_fraction: float,
        space_budget: float | None,
        buffer_size: int | str,
        hasher: UnitHash | None,
        seed: int,
        cost_model_pair_sample: int,
    ) -> "GBKMVIndex":
        """The historical record-at-a-time Algorithm 1 (benchmark baseline).

        Kept verbatim so ``BENCH_bulk_build`` measures the bulk pipeline
        against the real pre-bulk construction cost, and so the bitwise
        identity of the two paths stays testable.
        """
        materialized = [set(record) for record in records]
        if not materialized:
            raise EmptyDatasetError("cannot build an index over an empty dataset")
        if any(len(record) == 0 for record in materialized):
            raise ConfigurationError("records must be non-empty sets of elements")
        if hasher is None:
            hasher = UnitHash(seed=seed)

        record_sizes = np.array([len(r) for r in materialized], dtype=np.int64)
        budget = resolve_space_budget(
            int(record_sizes.sum()), space_fraction, space_budget
        )

        frequencies: Counter = Counter()
        for record in materialized:
            frequencies.update(record)

        if buffer_size == "auto":
            sizing = choose_buffer_size(
                record_sizes,
                np.array(list(frequencies.values()), dtype=np.float64),
                budget,
                pair_sample=cost_model_pair_sample,
                seed=seed,
            )
            chosen_r = sizing.buffer_size
        else:
            chosen_r = int(buffer_size)
            if chosen_r < 0:
                raise ConfigurationError("buffer_size must be non-negative")

        vocabulary = FrequentElementVocabulary.from_frequencies(frequencies, chosen_r)
        buffer_cost = len(materialized) * vocabulary.size / BITS_PER_SIGNATURE_UNIT
        residual_budget = max(budget - buffer_cost, 0.0)
        residual_frequencies = {
            element: count
            for element, count in frequencies.items()
            if element not in vocabulary
        }
        threshold = residual_threshold(residual_frequencies, residual_budget, hasher)

        index = cls(
            vocabulary=vocabulary,
            threshold=threshold,
            hasher=hasher,
            budget=budget,
        )
        for record in materialized:
            index._add_record(record)
        return index

    @classmethod
    def from_parameters(
        cls,
        records: Sequence[Iterable[object]],
        vocabulary: FrequentElementVocabulary,
        threshold: float,
        hasher: UnitHash,
        budget: float,
        method: str = "bulk",
    ) -> "GBKMVIndex":
        """Sketch a dataset under *pinned* parameters (no cost model).

        The rebuild primitive of the dynamic-data story: given the
        vocabulary, threshold and hasher of an existing index, produce a
        freshly constructed index whose sketches — and therefore search
        results — are bitwise identical to what incremental maintenance
        of the original index yields.  Also the baseline the
        ``test_dynamic_store`` benchmark charges for rebuilding from
        scratch on every batch of insertions; ``method`` picks the bulk
        pipeline (default) or the historical per-record loop.
        """
        cls._check_build_method(method)
        index = cls(
            vocabulary=vocabulary, threshold=threshold, hasher=hasher, budget=budget
        )
        if method == "bulk":
            profile = BuildProfile()
            index._ingest_bulk(
                flatten_records(records, profile=profile), profile=profile
            )
            index.last_build_profile = profile
        else:
            for record in records:
                materialized = set(record)
                if not materialized:
                    raise ConfigurationError(
                        "records must be non-empty sets of elements"
                    )
                index._add_record(materialized)
        return index

    @classmethod
    def from_flat(
        cls,
        flat: FlatRecords,
        vocabulary: FrequentElementVocabulary,
        threshold: float,
        hasher: UnitHash,
        budget: float,
        lookup: VocabularyLookup | None = None,
        unique_hashes: np.ndarray | None = None,
        profile: BuildProfile | None = None,
    ) -> "GBKMVIndex":
        """Sketch an already-flattened dataset under pinned parameters.

        The flatten-once rebuild primitive: :meth:`from_parameters`
        without the re-flatten.  The sharded planner flattens (and
        fingerprints) the full dataset exactly once, slices per-shard
        :func:`~repro.core.bulk.slice_flat_records` views out of it, and
        hands each view here together with the once-planned ``lookup``
        and ``unique_hashes`` — so neither hashing nor the frequency
        pass ever runs twice.  ``flat`` may be such a slice: only its
        per-occurrence columns and ``inverse``-into-``unique_hashes``
        contract are consumed.
        """
        index = cls(
            vocabulary=vocabulary, threshold=threshold, hasher=hasher, budget=budget
        )
        index._ingest_bulk(
            flat, lookup=lookup, unique_hashes=unique_hashes, profile=profile
        )
        index.last_build_profile = profile
        return index

    def _sketch_parts(self, record: set) -> tuple[int, np.ndarray, int]:
        """Split a record into (buffer mask, kept residual values, residual size)."""
        buffer, residual_elements = self._vocabulary.split_record(record)
        if residual_elements:
            hashes = np.unique(self._hasher.hash_many(residual_elements))
            kept = hashes[hashes <= self._threshold]
        else:
            kept = np.empty(0, dtype=np.float64)
        return buffer.mask, kept, len(residual_elements)

    def _add_record(self, record: set) -> int:
        """Insert one record's sketch row; returns its record id."""
        mask, kept, residual_size = self._sketch_parts(record)
        return self._store.append(
            values=kept,
            mask=mask,
            residual_record_size=residual_size,
            record_size=len(record),
        )

    def _ingest_bulk(
        self,
        flat: FlatRecords,
        lookup=None,
        unique_hashes=None,
        profile: BuildProfile | None = None,
    ) -> np.ndarray:
        """Sketch a flattened batch in bulk and append it in one staged merge.

        Returns the assigned record ids.  Falls back to the per-record
        path when the vocabulary has an internal fingerprint collision
        (the one case the bulk membership lookup cannot resolve).
        """
        if lookup is None:
            try:
                lookup = vocabulary_lookup(self._vocabulary)
            except FingerprintCollisionError:
                ids = [
                    self._add_record(set(flat.record_elements(position)))
                    for position in range(flat.num_records)
                ]
                return np.asarray(ids, dtype=np.int64)
        sketches = bulk_sketch(
            flat,
            lookup,
            self._threshold,
            self._hasher,
            self._store.num_words,
            unique_hashes=unique_hashes,
            profile=profile,
        )
        return self._store.append_bulk(
            values=sketches.values,
            value_lengths=sketches.value_lengths,
            signatures=sketches.signatures,
            residual_record_sizes=sketches.residual_record_sizes,
            record_sizes=sketches.record_sizes,
            profile=profile,
        )

    # ------------------------------------------------------------ introspection
    @property
    def num_records(self) -> int:
        """Number of live records indexed (deleted records excluded)."""
        return self._store.num_records

    @property
    def next_record_id(self) -> int:
        """The id the next :meth:`insert` will assign (sequential, never reused)."""
        return self._store.next_id

    @property
    def vocabulary(self) -> FrequentElementVocabulary:
        """The frequent-element vocabulary shared by all sketches."""
        return self._vocabulary

    @property
    def buffer_size(self) -> int:
        """The buffer size ``r`` chosen or supplied at build time."""
        return self._vocabulary.size

    @property
    def threshold(self) -> float:
        """The global hash-value threshold ``τ``."""
        return self._threshold

    @property
    def hasher(self) -> UnitHash:
        """The hash function shared by all sketches."""
        return self._hasher

    @property
    def budget(self) -> float:
        """The space budget ``b`` in signature-value units."""
        return self._budget

    @property
    def store(self) -> ColumnarSketchStore:
        """The columnar sketch store backing this index."""
        return self._store

    def __len__(self) -> int:
        return self.num_records

    def record_size(self, record_id: int) -> int:
        """Distinct-element count of an indexed record."""
        return self._store.record_size(record_id)

    def record_sizes(self) -> np.ndarray:
        """Distinct-element counts of every live indexed record."""
        return self._store.live_record_sizes().copy()

    def space_in_values(self) -> float:
        """Actual space used, in signature-value units (values + r/32 per record).

        Live sketch content only: tombstoned rows stop counting the
        moment they are deleted (compaction reclaims their memory later).
        """
        buffer_cost = self.num_records * self._vocabulary.size / BITS_PER_SIGNATURE_UNIT
        return self._store.total_values + buffer_cost

    def space_fraction(self) -> float:
        """Space used as a fraction of the (live) dataset size."""
        total_elements = int(self._store.live_record_sizes().sum())
        if total_elements == 0:
            return 0.0
        return self.space_in_values() / total_elements

    def statistics(self) -> IndexStatistics:
        """Summary statistics of the built index."""
        return IndexStatistics(
            num_records=self.num_records,
            total_elements=int(self._store.live_record_sizes().sum()),
            buffer_size=self.buffer_size,
            threshold=self._threshold,
            space_in_values=self.space_in_values(),
            space_fraction=self.space_fraction(),
            budget_in_values=self._budget,
            build_profile=self.last_build_profile,
        )

    def sketch(self, record_id: int) -> GBKMVSketch:
        """Materialise the GB-KMV sketch of an indexed record."""
        buffer = FrequentElementBuffer(
            self._vocabulary, self._store.mask_int(record_id)
        )
        residual = GKMVSketch(
            threshold=self._threshold,
            values=self._store.row_values(record_id),
            record_size=self._store.residual_record_size(record_id),
            hasher=self._hasher,
        )
        return GBKMVSketch(
            buffer=buffer,
            residual=residual,
            record_size=self._store.record_size(record_id),
        )

    def sketches(self) -> Iterator[GBKMVSketch]:
        """Iterate over the sketches of all live indexed records."""
        for record_id in self._store.live_record_ids().tolist():
            yield self.sketch(record_id)

    # ---------------------------------------------------------------- updates
    def insert(self, record: Iterable[object]) -> int:
        """Insert a new record under the current vocabulary and threshold.

        Returns the new record id.  The record lands in the store's
        mutable tail segment and is merged into the sealed columns
        incrementally on the next search — no wholesale re-sort — so the
        insert is visible immediately and insert/search interleaving
        stays cheap.  The global threshold is *not* recomputed
        automatically; call :meth:`refit_threshold` after a batch of
        insertions to shrink the sketches back into the budget (the
        dynamic-data procedure described at the end of Section IV-B).
        """
        materialized = set(record)
        if not materialized:
            raise ConfigurationError("cannot insert an empty record")
        return self._add_record(materialized)

    def insert_many(self, records: Sequence[Iterable[object]]) -> list[int]:
        """Batched ingest: insert a whole batch of records in one bulk pass.

        The batch is sketched with the vectorised pipeline of
        :mod:`repro.core.bulk` (one fingerprint pass, one unique-hash
        pass, bulk signature packing) and lands in the segmented store
        through one staged-batch merge — the value→record join index
        absorbs the whole batch with a single two-run merge.  Record ids,
        store state and every later search result are identical to
        looping :meth:`insert` over the batch; the wall-clock cost is
        what :func:`~repro.core.bulk` removes.

        Returns the assigned record ids, in batch order.  An empty batch
        is a no-op returning ``[]``.
        """
        if len(records) == 0:
            return []
        flat = flatten_records(records)
        return self._ingest_bulk(flat).tolist()

    def delete(self, record_id: int) -> None:
        """Delete a record: an O(1) tombstone, invisible to every later search.

        Physical space is reclaimed lazily — once the tombstoned fraction
        crosses the store's ``compact_ratio``, the next search compacts
        the columns.  Record ids of surviving records never change.

        Raises
        ------
        ConfigurationError
            If ``record_id`` is unknown or already deleted.
        """
        self._store.delete(int(record_id))

    def update(self, record_id: int, record: Iterable[object]) -> int:
        """Replace a record's content in place, keeping its record id.

        The new version is sketched under the current vocabulary and
        threshold (tombstone the old row + append the new one); returns
        the unchanged record id.
        """
        materialized = set(record)
        if not materialized:
            raise ConfigurationError("cannot update a record to be empty")
        mask, kept, residual_size = self._sketch_parts(materialized)
        return self._store.replace(
            int(record_id),
            values=kept,
            mask=mask,
            residual_record_size=residual_size,
            record_size=len(materialized),
        )

    def refit_threshold(self) -> float:
        """Recompute ``τ`` so the index fits its budget again, shrinking sketches.

        Only lowers the threshold (hash values above the new ``τ`` are
        dropped); raising it would require access to the original records.
        Returns the new threshold.

        The refit is incremental: the store's O(1) ``total_values``
        tracker answers the common post-``insert_many`` case — batch
        landed, still under budget — without touching the value column
        at all, and when the budget *is* exceeded the new ``τ`` comes
        from a prefix cut of the incrementally merged value→record join
        index (:meth:`~repro.core.store.ColumnarSketchStore.threshold_for_value_budget`)
        instead of gathering and re-sorting every live value.  The
        chosen threshold is identical to the historical full re-derive:
        the largest distinct value whose cumulative live occurrence
        count fits the residual budget.
        """
        buffer_cost = self.num_records * self._vocabulary.size / BITS_PER_SIGNATURE_UNIT
        residual_budget = max(self._budget - buffer_cost, 0.0)
        total_values = self._store.total_values
        if total_values == 0 or total_values <= residual_budget:
            return self._threshold
        new_threshold = self._store.threshold_for_value_budget(residual_budget)
        if new_threshold >= self._threshold:
            return self._threshold
        self._threshold = new_threshold
        self._store.truncate_values(new_threshold)
        return self._threshold

    # ------------------------------------------------------------ persistence
    SNAPSHOT_FORMAT_VERSION = 1

    #: Store columns worth memory-mapping: the two large payloads.  The
    #: bookkeeping columns stay eagerly loaded (and therefore writable) —
    #: in particular ``tombstones``, which ``delete`` flips in place.
    _MMAP_COLUMNS = frozenset({"values", "signatures"})

    def save(self, path, backend_id: str | None = None, layout: str = "npz") -> None:
        """Snapshot the full index state to one self-describing snapshot.

        Everything :meth:`load` needs to answer queries identically is
        written: the store's columns (CSR values, signatures, size
        columns, row ids, tombstones), the frequent-element vocabulary,
        the global threshold ``τ``, the space budget and the hasher seed
        — plus the format tag :func:`repro.api.open_index` dispatches
        on.  ``backend_id`` overrides the tag's backend for wrappers
        that persist through this index (the G-KMV baseline).

        ``layout`` picks the on-disk shape: ``"npz"`` (default) writes a
        single compressed archive; ``"dir"`` writes a directory of raw
        per-column ``.npy`` files plus a ``manifest.json``, which is the
        only layout :meth:`load` can memory-map.
        """
        meta = {
            "format_version": self.SNAPSHOT_FORMAT_VERSION,
            "threshold": self._threshold,
            "budget": self._budget,
            "hasher_seed": self._hasher.seed,
            "vocabulary": _encode_elements(self._vocabulary.elements),
        }
        if layout == "dir":
            self._save_directory(path, backend_id or self.backend_id, meta)
            return
        if layout != "npz":
            raise ConfigurationError(
                f"unknown snapshot layout {layout!r}; use 'npz' or 'dir'"
            )
        np.savez_compressed(
            path,
            api_meta=snapshot_tag(
                backend_id or self.backend_id, self.SNAPSHOT_FORMAT_VERSION
            ),
            index_meta=np.array(json.dumps(meta)),
            **self._store.state_arrays(),
        )

    def _save_directory(self, path, backend_id: str, meta: dict) -> None:
        """Write the ``layout="dir"`` snapshot: manifest + per-column .npy."""
        directory = Path(path)
        if directory.exists() and not directory.is_dir():
            raise ConfigurationError(
                f"cannot write a directory snapshot over the file {str(path)!r}"
            )
        directory.mkdir(parents=True, exist_ok=True)
        arrays = self._store.state_arrays()
        for name, array in arrays.items():
            np.save(directory / f"{name}.npy", np.ascontiguousarray(array))
        manifest = directory_manifest(
            backend_id,
            self.SNAPSHOT_FORMAT_VERSION,
            index_meta=meta,
            arrays=sorted(arrays),
        )
        (directory / SNAPSHOT_MANIFEST).write_text(
            json.dumps(manifest), encoding="utf-8"
        )

    @classmethod
    def _load_directory(cls, path, mmap: bool) -> tuple[dict, dict]:
        """Read a ``layout="dir"`` snapshot back into (meta, arrays)."""
        directory = Path(path)
        manifest = read_directory_manifest(directory)
        meta = manifest.get("index_meta")
        if not isinstance(meta, dict):
            raise SnapshotFormatError(
                f"{str(path)!r} is not a GB-KMV index snapshot (no index_meta "
                "in its manifest); use repro.api.open_index for other backends"
            )
        arrays = {}
        for name in manifest.get("arrays", []):
            column = directory / f"{name}.npy"
            try:
                if mmap and name in cls._MMAP_COLUMNS:
                    arrays[name] = np.load(column, mmap_mode="r")
                else:
                    arrays[name] = np.load(column)
            except (OSError, ValueError) as error:
                raise SnapshotFormatError(
                    f"cannot read snapshot column {name!r} "
                    f"from {str(path)!r}: {error}"
                ) from error
        return meta, arrays

    @classmethod
    def load(cls, path, mmap: bool = False) -> "GBKMVIndex":
        """Restore an index saved with :meth:`save` (either layout).

        The restored index answers :meth:`search` / :meth:`search_many`
        with bitwise-identical scores (same values, same vocabulary, same
        hasher seed ⇒ same estimator arithmetic) and keeps every dynamic
        capability — insert, delete, update, refit — of the original.

        With ``mmap=True`` (directory snapshots only) the value and
        signature columns are memory-mapped read-only instead of read
        into RAM; queries page in only what they touch, and any mutation
        materialises fresh private arrays, so dynamic operations still
        work on a mapped index.

        Raises
        ------
        SnapshotFormatError
            If the path is not a GB-KMV snapshot or was written by an
            unsupported format version.
        ConfigurationError
            If ``mmap=True`` on an npz snapshot (compressed archives
            cannot be mapped).
        """
        if Path(path).is_dir():
            meta, arrays = cls._load_directory(path, mmap=mmap)
        else:
            if mmap:
                raise ConfigurationError(
                    "memory-mapped loading requires a directory snapshot "
                    "(written with save(..., layout='dir')); npz archives "
                    "store compressed members and cannot be mapped"
                )
            with np.load(path) as data:
                if "index_meta" not in data.files:
                    raise SnapshotFormatError(
                        f"{path!r} is not a GB-KMV index snapshot (no "
                        "index_meta payload); use repro.api.open_index "
                        "for other backends"
                    )
                try:
                    meta = json.loads(str(data["index_meta"][()]))
                except json.JSONDecodeError as error:
                    raise SnapshotFormatError(
                        f"malformed GB-KMV snapshot metadata: {error}"
                    ) from error
                arrays = {
                    name: data[name]
                    for name in data.files
                    if name not in ("index_meta", "api_meta")
                }
        version = meta.get("format_version")
        if version != cls.SNAPSHOT_FORMAT_VERSION:
            raise SnapshotFormatError(
                f"unsupported index snapshot version {version!r} "
                f"(this build reads version {cls.SNAPSHOT_FORMAT_VERSION})"
            )
        vocabulary = FrequentElementVocabulary(_decode_elements(meta["vocabulary"]))
        index = cls(
            vocabulary=vocabulary,
            threshold=float(meta["threshold"]),
            hasher=UnitHash(seed=int(meta["hasher_seed"])),
            budget=float(meta["budget"]),
        )
        try:
            index._store = ColumnarSketchStore.from_state(arrays)
        except KeyError as error:
            raise SnapshotFormatError(
                f"GB-KMV snapshot is missing store column {error}; "
                "the payload is truncated or from an unsupported layout"
            ) from error
        if index._store.signature_bits != vocabulary.size:
            raise ConfigurationError(
                "snapshot signature width does not match its vocabulary size"
            )
        return index

    # ----------------------------------------------------------------- search
    def query_sketch(self, query: Iterable[object]) -> GBKMVSketch:
        """Build the GB-KMV sketch of a query under the index's parameters."""
        return GBKMVSketch.from_record(
            query,
            vocabulary=self._vocabulary,
            threshold=self._threshold,
            hasher=self._hasher,
        )

    def estimate_containment(self, query: Iterable[object], record_id: int) -> float:
        """Estimate ``C(Q, X_record_id)`` for a single record."""
        query_sketch = self.query_sketch(query)
        return query_sketch.containment_estimate(self.sketch(record_id))

    def _prepare_query(
        self, query: Iterable[object], query_size: int | None
    ) -> _PreparedQuery:
        """Reduce a query to the arrays the scoring kernels consume."""
        query_elements = set(query)
        if not query_elements:
            raise ConfigurationError("query must contain at least one element")
        q = len(query_elements) if query_size is None else int(query_size)
        if q <= 0:
            raise ConfigurationError("query_size must be positive")
        mask, kept, residual_size = self._sketch_parts(query_elements)
        return _PreparedQuery(
            mask=mask, values=kept, residual_size=residual_size, query_size=q
        )

    def _prepare_workload(
        self,
        queries: Sequence[Iterable[object]],
        query_sizes: Sequence[int] | None,
    ) -> list[_PreparedQuery]:
        """Prepare a whole workload, batching the residual hashing.

        Per query this produces exactly what :meth:`_prepare_query` does
        (hashes are per-element, so hashing all residuals in one call and
        slicing is value-identical), but the workload pays one
        ``hash_many`` call instead of one per query.
        """
        masks: list[int] = []
        residuals: list[list[object]] = []
        sizes: list[int] = []
        for position, query in enumerate(queries):
            query_elements = set(query)
            if not query_elements:
                raise ConfigurationError("query must contain at least one element")
            q = (
                len(query_elements)
                if query_sizes is None
                else int(query_sizes[position])
            )
            if q <= 0:
                raise ConfigurationError("query_size must be positive")
            buffer, residual = self._vocabulary.split_record(query_elements)
            masks.append(buffer.mask)
            residuals.append(residual)
            sizes.append(q)
        flat = [element for residual in residuals for element in residual]
        hashes = (
            self._hasher.hash_many(flat) if flat else np.empty(0, dtype=np.float64)
        )
        prepared: list[_PreparedQuery] = []
        offset = 0
        for mask, residual, q in zip(masks, residuals, sizes):
            if residual:
                values = np.unique(hashes[offset : offset + len(residual)])
                kept = values[values <= self._threshold]
                offset += len(residual)
            else:
                kept = np.empty(0, dtype=np.float64)
            prepared.append(
                _PreparedQuery(
                    mask=mask, values=kept, residual_size=len(residual), query_size=q
                )
            )
        return prepared

    def _score_prepared(self, prepared: _PreparedQuery) -> np.ndarray:
        """Estimated intersection size of one prepared query with every record.

        One pass over the store's value→record join index for the
        residual counts (touching only occurrences shared with the
        query), one popcount pass for the buffer overlap, then the
        batched Equation-25 estimator — no per-record Python work.
        """
        store = self._store
        counts = store.intersection_counts_join(prepared.values)
        buffer_overlap = store.signature_overlap(prepared.mask).astype(np.float64)
        residual_estimate = residual_intersection_estimates(
            counts,
            store.row_sizes,
            store.row_max,
            store.row_exact,
            prepared.values.size,
            prepared.max_value,
            prepared.exact,
        )
        return buffer_overlap + residual_estimate

    def search(
        self,
        query: Iterable[object],
        threshold: float,
        query_size: int | None = None,
    ) -> list[SearchResult]:
        """Algorithm 2: return records with estimated containment ``>= threshold``.

        Parameters
        ----------
        query:
            The query record ``Q``.
        threshold:
            The containment similarity threshold ``t*`` in ``[0, 1]``.
        query_size:
            Exact query size ``|Q|``; defaults to the number of distinct
            elements in ``query`` (Remark 1: the query size is assumed
            known).

        Returns
        -------
        list[SearchResult]
            Hits sorted by decreasing estimated containment similarity.
        """
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError("threshold must be in [0, 1]")
        prepared = self._prepare_query(query, query_size)
        scores = self._score_prepared(prepared)
        row_ids, alive = self._store.result_view()
        return results_from_scores(
            scores, threshold, prepared.query_size, row_ids=row_ids, alive=alive
        )

    def search_many(
        self,
        queries: Sequence[Iterable[object]],
        threshold: float,
        query_sizes: Sequence[int] | None = None,
        row_block_size: int | None = None,
        kernels: str = "fused",
    ) -> list[list[SearchResult]]:
        """Batched Algorithm 2: answer a whole workload in one fused pass.

        Produces exactly the same hits, scores and ordering as calling
        :meth:`search` once per query.  The default engine is *fused and
        blocked*: the whole workload's query values are resolved against
        the store's value→record join index in one ``searchsorted`` +
        flat-``bincount`` pass, all signature masks are packed into one
        ``(B, num_words)`` matrix, and the physical rows are swept in
        blocks of ``row_block_size`` — peak memory is
        ``O(B × row_block_size)``, never the dense ``(B, num_rows)``
        score matrix.  Within each block, (query, row) pairs whose
        signature overlap *and* residual value intersection are both
        zero are pruned before the Equation-25 estimator pass (their
        score is provably exactly ``0.0``, so with a positive threshold
        they can never be hits).

        Parameters
        ----------
        queries:
            The query records.
        threshold:
            The containment similarity threshold ``t*`` in ``[0, 1]``,
            shared by the whole workload.
        query_sizes:
            Optional exact query sizes, parallel to ``queries``.
        row_block_size:
            Rows scored per block (default
            :data:`DEFAULT_ROW_BLOCK_SIZE`).  Purely an execution knob:
            results are bitwise identical for every value.
        kernels:
            ``"fused"`` (default) or ``"per-query"`` — the latter runs
            the historical per-query store kernels over a dense
            ``(B, num_rows)`` matrix, kept as the benchmark baseline.

        Returns
        -------
        list[list[SearchResult]]
            One result list per query, each sorted as in :meth:`search`.
        """
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError("threshold must be in [0, 1]")
        if query_sizes is not None and len(query_sizes) != len(queries):
            raise ConfigurationError("query_sizes must be parallel to queries")
        if kernels not in ("fused", "per-query"):
            raise ConfigurationError(
                f"unknown kernels mode {kernels!r}; use 'fused' or 'per-query'"
            )
        prepared = self._prepare_workload(queries, query_sizes)
        if not prepared:
            return []
        if kernels == "per-query":
            return self._search_many_per_query_kernels(prepared, threshold)
        return self._search_many_fused(prepared, threshold, row_block_size)

    def _search_many_per_query_kernels(
        self, prepared: Sequence[_PreparedQuery], threshold: float
    ) -> list[list[SearchResult]]:
        """The pre-fusion engine: per-query kernels, dense score matrix.

        Kept verbatim as the benchmark baseline the fused engine is
        measured (and identity-tested) against.
        """
        store = self._store
        store.finalize()
        counts = store.intersection_counts_many([p.values for p in prepared])
        overlaps = store.signature_overlap_many([p.mask for p in prepared])
        num_values = np.array([[p.values.size] for p in prepared], dtype=np.int64)
        max_values = np.array([[p.max_value] for p in prepared], dtype=np.float64)
        exact = np.array([[p.exact] for p in prepared], dtype=bool)
        residual_estimates = residual_intersection_estimates(
            counts,
            store.row_sizes,
            store.row_max,
            store.row_exact,
            num_values,
            max_values,
            exact,
        )
        scores = overlaps.astype(np.float64) + residual_estimates
        row_ids, alive = store.result_view()
        return [
            results_from_scores(
                scores[row], threshold, p.query_size, row_ids=row_ids, alive=alive
            )
            for row, p in enumerate(prepared)
        ]

    def _workload_arrays(self, prepared: Sequence[_PreparedQuery]):
        """Fused-pass inputs: matched occurrences, packed masks, query columns."""
        store = self._store
        store.finalize()
        matches = store.match_workload([p.values for p in prepared])
        query_words = store.pack_signature_masks([p.mask for p in prepared])
        num_values = np.array([p.values.size for p in prepared], dtype=np.int64)
        max_values = np.array([p.max_value for p in prepared], dtype=np.float64)
        exact = np.array([p.exact for p in prepared], dtype=bool)
        sizes = np.array([p.query_size for p in prepared], dtype=np.float64)
        return matches, query_words, num_values, max_values, exact, sizes

    def _sparse_block_estimates(
        self,
        matches,
        num_values: np.ndarray,
        max_values: np.ndarray,
        exact: np.ndarray,
        alive_block: np.ndarray | None,
        row_lo: int,
        row_hi: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sparse Equation-25 pass for one block of physical rows.

        Returns ``(query_idx, col_idx, estimates)`` for exactly the live
        (query, row) pairs with a nonzero residual value intersection —
        the candidate pruning of the fused engine: pairs with ``K∩ = 0``
        estimate to exactly ``0.0`` down every branch of Eq. 25, so
        skipping them is bit-identical to the unpruned dense pass.  This
        is the single home of the estimator invocation both fused entry
        points (``search_many``, ``top_k_many``) share.
        """
        store = self._store
        query_idx, col_idx, counts = store.match_counts_block(matches, row_lo, row_hi)
        if alive_block is not None and query_idx.size:
            keep = alive_block[col_idx]
            query_idx, col_idx, counts = query_idx[keep], col_idx[keep], counts[keep]
        if not query_idx.size:
            return query_idx, col_idx, np.empty(0, dtype=np.float64)
        rows = col_idx + row_lo
        estimates = residual_intersection_estimates(
            counts,
            store.row_sizes[rows],
            store.row_max[rows],
            store.row_exact[rows],
            num_values[query_idx],
            max_values[query_idx],
            exact[query_idx],
        )
        return query_idx, col_idx, estimates

    def _block_scores(
        self,
        matches,
        query_words: np.ndarray,
        num_values: np.ndarray,
        max_values: np.ndarray,
        exact: np.ndarray,
        alive_block: np.ndarray | None,
        row_lo: int,
        row_hi: int,
    ) -> tuple[np.ndarray, int]:
        """Dense scores of every (query, row) pair in one block of rows.

        Returns ``(scores, estimator_pairs)``: ``scores`` is the
        ``(B, block)`` float matrix, bit-identical to the dense engine's
        slice (popcount overlaps reduced straight into float64 plus the
        sparse Equation-25 estimates scattered on top), and
        ``estimator_pairs`` counts the pairs the estimator was actually
        evaluated on.
        """
        scores = self._store.signature_overlap_block(
            query_words, row_lo, row_hi, dtype=np.float64
        )
        query_idx, col_idx, estimates = self._sparse_block_estimates(
            matches, num_values, max_values, exact, alive_block, row_lo, row_hi
        )
        if query_idx.size:
            scores[query_idx, col_idx] += estimates
        return scores, int(query_idx.size)

    def _search_many_fused(
        self,
        prepared: Sequence[_PreparedQuery],
        threshold: float,
        row_block_size: int | None,
    ) -> list[list[SearchResult]]:
        """The fused, blocked, pruned workload engine behind :meth:`search_many`."""
        store = self._store
        block = _resolve_row_block_size(row_block_size)
        matches, query_words, num_values, max_values, exact, sizes = (
            self._workload_arrays(prepared)
        )
        num_queries = len(prepared)
        num_rows = store.num_rows
        row_ids, alive = store.result_view()
        theta = threshold * sizes

        hit_query_chunks: list[np.ndarray] = []
        hit_id_chunks: list[np.ndarray] = []
        hit_score_chunks: list[np.ndarray] = []
        num_blocks = 0
        peak_block = 0
        estimator_pairs = 0
        hit_pairs = 0
        # Integer hit floor: a pair with no residual intersection scores
        # exactly float(overlap), and overlap is an integer, so the float
        # test `overlap >= θ·(1 − 1e-12)` is equivalent to the integer
        # test `overlap >= ceil(θ·(1 − 1e-12))` — which keeps the dense
        # per-block pass entirely in small integers.  Overlaps never
        # exceed 64·num_words, so floors are clamped just above it (a
        # clamped floor means "no signature-only hit possible") and the
        # narrowest sufficient integer dtype is used.
        max_overlap = 64 * store.signatures.shape[1]
        overlap_dtype = np.uint8 if max_overlap + 1 <= 255 else np.int32
        overlap_floor = np.minimum(
            np.ceil(theta * (1.0 - 1e-12)), float(max_overlap + 1)
        ).astype(overlap_dtype)
        for row_lo in range(0, num_rows, block):
            row_hi = min(row_lo + block, num_rows)
            block_width = row_hi - row_lo
            num_blocks += 1
            peak_block = max(peak_block, block_width)
            alive_block = None if alive is None else alive[row_lo:row_hi]

            if threshold > 0.0:
                # Sparse Equation-25 pass: only pairs sharing a stored value.
                query_idx, col_idx, estimates = self._sparse_block_estimates(
                    matches, num_values, max_values, exact,
                    alive_block, row_lo, row_hi,
                )
                estimator_pairs += int(query_idx.size)
                overlap = store.signature_overlap_block(
                    query_words, row_lo, row_hi, dtype=overlap_dtype
                )
                pair_scores = overlap[query_idx, col_idx].astype(np.float64)
                pair_scores += estimates
                hits = overlap >= overlap_floor[:, np.newaxis]
                if alive_block is not None:
                    hits &= alive_block[np.newaxis, :]
                # Estimator pairs get the exact float test on their full
                # score, overriding the integer floor.
                pair_hit = pair_scores >= theta[query_idx] * (1.0 - 1e-12)
                hits[query_idx, col_idx] = pair_hit
                hit_queries, hit_cols = np.nonzero(hits)
                if not hit_queries.size:
                    continue
                hit_scores = overlap[hit_queries, hit_cols].astype(np.float64)
                if np.any(pair_hit):
                    # np.nonzero is row-major, so the flat hit indices are
                    # ascending — locate each estimator hit by bisection
                    # and patch in its full (overlap + estimate) score.
                    flat_hits = hit_queries * block_width + hit_cols
                    pair_flat = (
                        query_idx[pair_hit] * block_width + col_idx[pair_hit]
                    )
                    positions = np.searchsorted(flat_hits, pair_flat)
                    hit_scores[positions] = pair_scores[pair_hit]
            else:
                # θ = 0 keeps every live pair, so every score is needed:
                # materialise the block's dense float scores directly.
                scores, block_estimator_pairs = self._block_scores(
                    matches, query_words, num_values, max_values, exact,
                    alive_block, row_lo, row_hi,
                )
                estimator_pairs += block_estimator_pairs
                if alive_block is None:
                    hits = np.ones(scores.shape, dtype=bool)
                else:
                    hits = np.repeat(
                        alive_block[np.newaxis, :], num_queries, axis=0
                    )
                hit_queries, hit_cols = np.nonzero(hits)
                if not hit_queries.size:
                    continue
                hit_scores = scores[hit_queries, hit_cols]
            hit_pairs += int(hit_queries.size)
            rows = hit_cols + row_lo
            hit_query_chunks.append(hit_queries)
            hit_id_chunks.append(rows if row_ids is None else row_ids[rows])
            hit_score_chunks.append(hit_scores / sizes[hit_queries])

        self.last_workload_stats = WorkloadExecutionStats(
            num_queries=num_queries,
            num_rows=num_rows,
            row_block_size=block,
            num_blocks=num_blocks,
            peak_block_cells=num_queries * peak_block,
            dense_cells=num_queries * num_rows,
            estimator_pairs=estimator_pairs,
            hit_pairs=hit_pairs,
        )
        return _assemble_workload_results(
            num_queries, hit_query_chunks, hit_id_chunks, hit_score_chunks
        )

    def top_k(self, query: Iterable[object], k: int, query_size: int | None = None) -> list[SearchResult]:
        """Return the ``k`` records with the highest estimated containment.

        A convenience companion to threshold search, useful for the domain
        search example where the user wants the best few matches.
        """
        if k <= 0:
            raise ConfigurationError("k must be positive")
        prepared = self._prepare_query(query, query_size)
        scores = self._score_prepared(prepared) / prepared.query_size
        row_ids, alive = self._store.result_view()
        rows = np.arange(scores.size) if alive is None else np.nonzero(alive)[0]
        candidate_scores = scores[rows]
        ids = rows if row_ids is None else row_ids[rows]
        # Same tie policy as results_from_scores: decreasing score, ties by
        # increasing record id (not physical row, which updates can reorder).
        order = np.lexsort((ids, -candidate_scores))[:k]
        return [
            SearchResult(record_id=int(ids[position]), score=float(candidate_scores[position]))
            for position in order.tolist()
        ]

    def top_k_many(
        self,
        queries: Sequence[Iterable[object]],
        k: int,
        query_sizes: Sequence[int] | None = None,
        row_block_size: int | None = None,
    ) -> list[list[SearchResult]]:
        """Workload variant of :meth:`top_k` on the fused blocked engine.

        Returns exactly what calling :meth:`top_k` once per query would,
        but sweeps the rows in blocks of ``row_block_size`` and carries a
        per-query running top-``k`` (a tournament merge) between blocks —
        peak memory is ``O(B × (row_block_size + k))``, never the dense
        ``(B, num_rows)`` score matrix.
        """
        if k <= 0:
            raise ConfigurationError("k must be positive")
        if query_sizes is not None and len(query_sizes) != len(queries):
            raise ConfigurationError("query_sizes must be parallel to queries")
        prepared = self._prepare_workload(queries, query_sizes)
        if not prepared:
            return []
        store = self._store
        block = _resolve_row_block_size(row_block_size)
        matches, query_words, num_values, max_values, exact, sizes = (
            self._workload_arrays(prepared)
        )
        num_queries = len(prepared)
        num_rows = store.num_rows
        row_ids, alive = store.result_view()

        # Running top-k per query, maintained in final order (decreasing
        # score, ties by increasing id).  NaN scores mark tombstoned rows;
        # they sort last and are dropped at the end.
        running_scores = np.empty((num_queries, 0), dtype=np.float64)
        running_ids = np.empty((num_queries, 0), dtype=np.int64)
        num_blocks = 0
        peak_block = 0
        estimator_pairs = 0
        for row_lo in range(0, num_rows, block):
            row_hi = min(row_lo + block, num_rows)
            num_blocks += 1
            peak_block = max(peak_block, row_hi - row_lo)
            alive_block = None if alive is None else alive[row_lo:row_hi]
            scores, block_estimator_pairs = self._block_scores(
                matches, query_words, num_values, max_values, exact,
                alive_block, row_lo, row_hi,
            )
            estimator_pairs += block_estimator_pairs
            scores /= sizes[:, np.newaxis]
            rows = np.arange(row_lo, row_hi, dtype=np.int64)
            column_ids = rows if row_ids is None else row_ids[rows]
            if alive_block is not None:
                scores[:, ~alive_block] = np.nan
            merged_scores = np.concatenate([running_scores, scores], axis=1)
            merged_ids = np.concatenate(
                [running_ids, np.broadcast_to(column_ids, scores.shape)], axis=1
            )
            # Two stable axis-1 argsorts realise the (decreasing score,
            # increasing id) order row-wise: ids first, then scores — NaNs
            # (dead rows, empty slots) sort to the back of every row.
            id_order = np.argsort(merged_ids, axis=1, kind="stable")
            merged_scores = np.take_along_axis(merged_scores, id_order, axis=1)
            merged_ids = np.take_along_axis(merged_ids, id_order, axis=1)
            score_order = np.argsort(-merged_scores, axis=1, kind="stable")[:, :k]
            running_scores = np.take_along_axis(merged_scores, score_order, axis=1)
            running_ids = np.take_along_axis(merged_ids, score_order, axis=1)

        self.last_workload_stats = WorkloadExecutionStats(
            num_queries=num_queries,
            num_rows=num_rows,
            row_block_size=block,
            num_blocks=num_blocks,
            peak_block_cells=num_queries * peak_block,
            dense_cells=num_queries * num_rows,
            estimator_pairs=estimator_pairs,
            hit_pairs=int(np.count_nonzero(~np.isnan(running_scores))),
        )
        results: list[list[SearchResult]] = []
        for position in range(num_queries):
            hits = [
                SearchResult(record_id=int(record_id), score=float(score))
                for record_id, score in zip(
                    running_ids[position].tolist(), running_scores[position].tolist()
                )
                if score == score
            ]
            results.append(hits)
        return results
