"""Segmented columnar storage of per-record GB-KMV sketch state.

Historically :class:`~repro.core.index.GBKMVIndex` kept one Python object
per record (``list[np.ndarray]`` of residual hash values, ``list[int]``
of buffer masks and sizes).  Scoring a query then meant walking those
lists record by record, so query time was dominated by interpreter
overhead rather than by the estimator arithmetic the paper analyses.

:class:`ColumnarSketchStore` consolidates the same state into a handful
of flat NumPy arrays, organised LSM-style into two segments:

*base segment*
    The sealed columns — all residual hash values concatenated into a
    single sorted-per-row float64 array with CSR-style row offsets
    (``values[offsets[i]:offsets[i + 1]]`` is physical row ``i``), a
    packed ``uint64`` signature matrix (64 bits per word), parallel
    int64 size columns, a ``row_ids`` column mapping physical rows to
    stable record ids, and a boolean tombstone mask.
*tail segment*
    Freshly appended rows, staged in small Python lists.  The tail is
    absorbed into the base lazily; crucially the derived query-time
    caches are *merged*, not rebuilt: the value→record join index (every
    stored occurrence sorted by value) is maintained with a sorted
    two-run merge — ``O(T + S log S)`` for ``S`` staged values over
    ``T`` stored ones — instead of the wholesale ``O(T log T)`` re-sort
    a full invalidation would pay.

Mutations beyond ``append`` are first-class: :meth:`delete` tombstones a
record in O(1) (searches skip it immediately), :meth:`replace` swaps a
record's sketch under the same id, and once the tombstoned fraction
crosses ``compact_ratio`` the next :meth:`finalize` physically compacts
the columns, filtering (never re-sorting) the derived caches.  The full
segment state round-trips through npz snapshots via :meth:`save` /
:meth:`load`.

On top of the columns the store offers the vectorised kernels the
batched query engine is built from: whole-dataset intersection counts
against a sorted query array (a vectorised merge over the CSR arrays),
popcount-based signature overlaps, and multi-query variants built on the
value→record join index that touch only the occurrences a query actually
shares with the dataset.  The multi-query kernels come in two flavours:
the historical per-query loops (:meth:`intersection_counts_many`,
:meth:`signature_overlap_many`, kept as the benchmark baseline) and the
*fused whole-workload* kernels — :meth:`match_workload` resolves every
query's values against the join index in one ``searchsorted`` pass, and
:meth:`intersection_counts_block` / :meth:`signature_overlap_block`
extract ``(B, block)`` count and overlap matrices for any row range, so
an engine can sweep a workload over the rows in blocks without ever
materialising a dense ``(B, num_rows)`` intermediate.  Kernels are
indexed by *physical row*; use :meth:`result_view` (or :attr:`row_ids` /
:attr:`alive_rows`) to map kernel outputs back to record ids when the
store has seen deletes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro._errors import ConfigurationError
from repro.core.profiling import BuildProfile

#: Bits per packed signature word.
BITS_PER_WORD = 64

_WORD_MASK = (1 << BITS_PER_WORD) - 1

#: Tombstoned-row fraction above which :meth:`ColumnarSketchStore.finalize`
#: physically compacts the columns.
DEFAULT_COMPACT_RATIO = 0.25

#: Version tag written into snapshots so future layout changes can refuse
#: (or migrate) old files instead of misreading them.
SNAPSHOT_VERSION = 1

#: How far an explicitly pinned record id may run ahead of the ids handed
#: out so far.  The id→row map is a dense int64 column (one vectorised
#: scatter to rebuild), so wildly sparse ids would silently allocate
#: id-space-sized memory; :meth:`ColumnarSketchStore.append` rejects them
#: past this generous margin instead.
_MAX_ID_GAP = 1 << 20


def mask_to_words(mask: int, num_words: int) -> np.ndarray:
    """Pack a Python-integer bitmap into little-endian uint64 words."""
    if mask < 0:
        raise ConfigurationError("bitmap mask must be non-negative")
    if mask >> (num_words * BITS_PER_WORD):
        raise ConfigurationError("bitmap mask has bits beyond the signature width")
    words = np.zeros(num_words, dtype=np.uint64)
    for word in range(num_words):
        words[word] = (mask >> (word * BITS_PER_WORD)) & _WORD_MASK
    return words


def words_to_mask(words: np.ndarray) -> int:
    """Inverse of :func:`mask_to_words`."""
    mask = 0
    for word, value in enumerate(np.asarray(words, dtype=np.uint64)):
        mask |= int(value) << (word * BITS_PER_WORD)
    return mask


@dataclass(frozen=True)
class WorkloadMatches:
    """All (query, stored occurrence) value matches of a workload, row-sorted.

    Produced by :meth:`ColumnarSketchStore.match_workload` in one fused
    pass over the value→record join index; consumed by
    :meth:`ColumnarSketchStore.intersection_counts_block`, which slices
    the run by physical-row range — ``rows`` is sorted ascending, so a
    block is one ``searchsorted`` pair away.
    """

    #: Number of queries ``B`` in the workload.
    num_queries: int
    #: Physical row of each matched occurrence, sorted ascending.
    rows: np.ndarray
    #: Query id of each matched occurrence, parallel to ``rows``.
    query_ids: np.ndarray

    @property
    def num_matches(self) -> int:
        """Total matched occurrences across the whole workload."""
        return int(self.rows.size)


class ColumnarSketchStore:
    """Segmented columnar arrays holding every record's GB-KMV sketch state.

    Parameters
    ----------
    signature_bits:
        Width ``r`` of the frequent-element bitmap.  ``0`` disables the
        signature columns (the G-KMV special case).
    compact_ratio:
        Tombstoned-row fraction that triggers physical compaction on the
        next :meth:`finalize`, in ``(0, 1]``.
    incremental_merge:
        When true (the default), absorbing the tail merges the derived
        join index with a sorted two-run merge; when false, every absorb
        drops the derived caches and the next :meth:`finalize` rebuilds
        them from scratch (the pre-segmented behaviour, kept as the
        benchmark baseline).
    """

    def __init__(
        self,
        signature_bits: int,
        compact_ratio: float = DEFAULT_COMPACT_RATIO,
        incremental_merge: bool = True,
    ) -> None:
        if signature_bits < 0:
            raise ConfigurationError("signature_bits must be non-negative")
        if not 0.0 < compact_ratio <= 1.0:
            raise ConfigurationError("compact_ratio must be in (0, 1]")
        self._signature_bits = int(signature_bits)
        self._num_words = -(-self._signature_bits // BITS_PER_WORD) if signature_bits else 0
        self._compact_ratio = float(compact_ratio)
        self.incremental_merge = bool(incremental_merge)

        # Base segment (sealed columns; row-major CSR + parallel arrays).
        self._values = np.empty(0, dtype=np.float64)
        self._offsets = np.zeros(1, dtype=np.int64)
        self._signatures = np.zeros((0, self._num_words), dtype=np.uint64)
        self._record_sizes = np.empty(0, dtype=np.int64)
        self._residual_record_sizes = np.empty(0, dtype=np.int64)
        self._row_ids = np.empty(0, dtype=np.int64)
        self._tombstones = np.zeros(0, dtype=bool)

        # Tail segment (staged rows not yet absorbed into the base).
        self._pending_values: list[np.ndarray] = []
        self._pending_masks: list[int] = []
        self._pending_record_sizes: list[int] = []
        self._pending_residual_sizes: list[int] = []
        self._pending_ids: list[int] = []
        self._pending_dead: list[bool] = []

        # Record-id bookkeeping: a dense id→physical-row column (``-1``
        # marks absent/deleted ids).  Ids are assigned sequentially and
        # never reused, so the column stays as dense as the store itself
        # and every rebuild (compaction, snapshot load) is one vectorised
        # scatter instead of an O(n) Python dict comprehension.
        self._id_rows = np.full(0, -1, dtype=np.int64)
        self._next_id = 0
        self._num_dead = 0
        self._dead_values = 0
        self._ids_identity = True  # row_ids[i] == i for every physical row

        # Derived query-time caches (maintained incrementally where possible).
        self._finalized = False
        self._row_max: np.ndarray | None = None
        self._row_exact: np.ndarray | None = None
        self._sorted_values: np.ndarray | None = None
        self._sorted_rows: np.ndarray | None = None

    # ------------------------------------------------------------- mutation
    def append(
        self,
        values: np.ndarray,
        mask: int,
        residual_record_size: int,
        record_size: int,
        record_id: int | None = None,
    ) -> int:
        """Stage one record's sketch row in the tail; returns its record id.

        ``values`` must be sorted ascending and distinct (the natural
        output of ``np.unique`` over kept hash values).  ``record_id``
        pins an explicit id (used by :meth:`replace`); by default ids are
        assigned sequentially and never reused.  Ids index a dense
        id→row column, so they must stay reasonably dense: an explicit id
        far beyond the ids handed out so far is rejected rather than
        silently allocating id-space-sized memory.
        """
        if record_id is None:
            record_id = self._next_id
        else:
            record_id = int(record_id)
            if record_id < 0:
                raise ConfigurationError("record ids must be non-negative")
            if record_id > max(self._next_id, self.num_rows) + _MAX_ID_GAP:
                raise ConfigurationError(
                    f"record id {record_id} is too sparse for the dense id map "
                    f"(next sequential id is {self._next_id}; ids may run at "
                    f"most {_MAX_ID_GAP} ahead of it)"
                )
            if self._lookup_row(record_id) is not None:
                raise ConfigurationError(f"record id {record_id} is already live")
        row = self.num_rows
        self._ids_identity = self._ids_identity and record_id == row
        self._pending_values.append(np.asarray(values, dtype=np.float64))
        self._pending_masks.append(int(mask))
        self._pending_residual_sizes.append(int(residual_record_size))
        self._pending_record_sizes.append(int(record_size))
        self._pending_ids.append(record_id)
        self._pending_dead.append(False)
        if record_id >= self._id_rows.size:
            grown = np.full(
                max(2 * self._id_rows.size, record_id + 1, 16), -1, dtype=np.int64
            )
            grown[: self._id_rows.size] = self._id_rows
            self._id_rows = grown
        self._id_rows[record_id] = row
        self._next_id = max(self._next_id, record_id + 1)
        self._finalized = False
        return record_id

    def delete(self, record_id: int) -> None:
        """Tombstone a record in O(1); it disappears from search immediately.

        The row stays in the columns (masked out of results) until the
        tombstoned fraction crosses ``compact_ratio`` and the next
        :meth:`finalize` physically compacts it away.

        Raises
        ------
        ConfigurationError
            If ``record_id`` is unknown or already deleted.
        """
        record_id = int(record_id)
        row = self._lookup_row(record_id)
        if row is None:
            raise ConfigurationError(f"unknown or deleted record id {record_id}")
        self._id_rows[record_id] = -1
        base_rows = int(self._record_sizes.size)
        if row < base_rows:
            self._tombstones[row] = True
            self._dead_values += int(self._offsets[row + 1] - self._offsets[row])
        else:
            position = row - base_rows
            self._pending_dead[position] = True
            self._dead_values += int(self._pending_values[position].size)
        self._num_dead += 1
        if self._num_dead >= self._compact_ratio * self.num_rows:
            self._finalized = False  # the next finalize compacts

    def replace(
        self,
        record_id: int,
        values: np.ndarray,
        mask: int,
        residual_record_size: int,
        record_size: int,
    ) -> int:
        """Swap a record's sketch row under the same record id (an update)."""
        self.delete(record_id)
        return self.append(
            values=values,
            mask=mask,
            residual_record_size=residual_record_size,
            record_size=record_size,
            record_id=record_id,
        )

    def append_bulk(
        self,
        values: np.ndarray,
        value_lengths: np.ndarray,
        signatures: np.ndarray,
        residual_record_sizes: np.ndarray,
        record_sizes: np.ndarray,
        profile: BuildProfile | None = None,
    ) -> np.ndarray:
        """Append a whole batch of rows in one staged-batch merge.

        The bulk counterpart of ``N`` :meth:`append` calls followed by a
        tail absorb — one column concatenation and (when the derived
        caches exist) one two-run join-index merge for the entire batch,
        instead of ``N`` Python-level stagings.  The resulting store
        state is bitwise identical to the looped path.

        ``values`` is the CSR-flattened residual hash column
        (sorted ascending and distinct within each row), ``value_lengths``
        the per-row value counts, and ``signatures`` the packed
        ``(n, num_words)`` uint64 bitmap matrix.  Record ids are assigned
        sequentially; the batch's ids are returned as an int64 array.
        ``profile`` records the merge as one ``"append"`` stage.
        """
        start = time.perf_counter()
        value_lengths = np.ascontiguousarray(value_lengths, dtype=np.int64)
        num_new = int(value_lengths.size)
        record_sizes = np.ascontiguousarray(record_sizes, dtype=np.int64)
        residual_record_sizes = np.ascontiguousarray(
            residual_record_sizes, dtype=np.int64
        )
        values = np.ascontiguousarray(values, dtype=np.float64)
        signatures = np.ascontiguousarray(signatures, dtype=np.uint64)
        if (
            record_sizes.size != num_new
            or residual_record_sizes.size != num_new
            or signatures.shape != (num_new, self._num_words)
        ):
            raise ConfigurationError("bulk append columns must be parallel")
        if int(value_lengths.sum()) != values.size:
            raise ConfigurationError("value_lengths must sum to the value count")
        if num_new == 0:
            return np.empty(0, dtype=np.int64)
        # Absorb staged single appends first so physical row order matches
        # the order the looped path would have produced.
        self._absorb_tail()
        base_rows = self.num_rows
        ids = np.arange(self._next_id, self._next_id + num_new, dtype=np.int64)
        self._ids_identity = self._ids_identity and self._next_id == base_rows
        if int(ids[-1]) >= self._id_rows.size:
            grown = np.full(
                max(2 * self._id_rows.size, int(ids[-1]) + 1, 16), -1, dtype=np.int64
            )
            grown[: self._id_rows.size] = self._id_rows
            self._id_rows = grown
        self._id_rows[ids] = np.arange(base_rows, base_rows + num_new, dtype=np.int64)
        self._next_id += num_new
        self._extend_base(
            values,
            value_lengths,
            signatures,
            record_sizes,
            residual_record_sizes,
            ids,
            np.zeros(num_new, dtype=bool),
        )
        self._finalized = False
        if profile is not None:
            profile.record(
                "append",
                time.perf_counter() - start,
                rows=num_new,
                nbytes=values.nbytes + signatures.nbytes,
            )
        return ids

    def _absorb_tail(self) -> None:
        """Merge staged tail rows into the base columns.

        With ``incremental_merge`` enabled the derived caches are extended
        in place: the per-row maxima/exactness columns grow by ``O(S)``
        and the value→record join index is merged as two sorted runs —
        sort the ``S`` staged values (``O(S log S)``), then one
        ``searchsorted`` against the sealed run plus a scatter
        (``O(T + S)``).  Without it the caches are dropped and the next
        :meth:`finalize` re-sorts everything (``O(T log T)``).
        """
        if not self._pending_values:
            return
        pending_values = self._pending_values
        lengths = np.fromiter(
            (arr.size for arr in pending_values), dtype=np.int64, count=len(pending_values)
        )
        tail_values = (
            np.concatenate(pending_values) if lengths.sum() else np.empty(0, dtype=np.float64)
        )
        if self._num_words:
            extra = np.zeros((len(pending_values), self._num_words), dtype=np.uint64)
            for row, mask in enumerate(self._pending_masks):
                extra[row] = mask_to_words(mask, self._num_words)
        else:
            extra = np.zeros((len(pending_values), 0), dtype=np.uint64)
        record_sizes = np.asarray(self._pending_record_sizes, dtype=np.int64)
        residual_sizes = np.asarray(self._pending_residual_sizes, dtype=np.int64)
        row_ids = np.asarray(self._pending_ids, dtype=np.int64)
        dead = np.asarray(self._pending_dead, dtype=bool)

        self._pending_values = []
        self._pending_masks = []
        self._pending_record_sizes = []
        self._pending_residual_sizes = []
        self._pending_ids = []
        self._pending_dead = []
        self._extend_base(
            tail_values, lengths, extra, record_sizes, residual_sizes, row_ids, dead
        )

    def _extend_base(
        self,
        flat_values: np.ndarray,
        lengths: np.ndarray,
        signature_words: np.ndarray,
        record_sizes: np.ndarray,
        residual_sizes: np.ndarray,
        row_ids: np.ndarray,
        dead: np.ndarray,
    ) -> None:
        """Seal a batch of rows into the base columns, merging derived caches.

        The single home of base-segment growth, shared by the tail absorb
        (one small batch of staged singles) and :meth:`append_bulk` (a
        whole construction batch): column concatenation plus — under
        ``incremental_merge`` with warm caches — an ``O(S)`` extension of
        the per-row maxima/exactness columns and one two-run merge of the
        value→record join index.
        """
        base_rows = int(self._record_sizes.size)
        num_new = int(lengths.size)
        self._values = np.concatenate([self._values, flat_values])
        new_offsets = self._offsets[-1] + np.cumsum(lengths)
        self._offsets = np.concatenate([self._offsets, new_offsets])
        self._signatures = np.vstack([self._signatures, signature_words])
        self._record_sizes = np.concatenate([self._record_sizes, record_sizes])
        self._residual_record_sizes = np.concatenate(
            [self._residual_record_sizes, residual_sizes]
        )
        self._row_ids = np.concatenate([self._row_ids, row_ids])
        self._tombstones = np.concatenate([self._tombstones, dead])

        if self.incremental_merge:
            if self._row_max is not None:
                tail_max = np.zeros(num_new, dtype=np.float64)
                nonempty = lengths > 0
                last = self._offsets[base_rows + 1 :] - 1
                tail_max[nonempty] = self._values[last[nonempty]]
                self._row_max = np.concatenate([self._row_max, tail_max])
                self._row_exact = np.concatenate(
                    [self._row_exact, lengths >= residual_sizes]
                )
            if self._sorted_values is not None:
                tail_rows = np.repeat(
                    np.arange(base_rows, base_rows + num_new, dtype=np.int64),
                    lengths,
                )
                order = np.argsort(flat_values, kind="stable")
                self._sorted_values, self._sorted_rows = _merge_sorted_runs(
                    self._sorted_values,
                    self._sorted_rows,
                    flat_values[order],
                    tail_rows[order],
                )
        else:
            self._row_max = None
            self._row_exact = None
            self._sorted_values = None
            self._sorted_rows = None

    def finalize(self) -> None:
        """Absorb the tail, compact if due, and ensure the derived caches exist."""
        if self._finalized:
            return
        if self._num_dead and self._num_dead >= self._compact_ratio * self.num_rows:
            self.compact_tombstones()
        self._absorb_tail()
        if self._row_max is None or self._row_exact is None:
            sizes = np.diff(self._offsets)
            last = self._offsets[1:] - 1
            maxima = np.zeros(self._record_sizes.size, dtype=np.float64)
            nonempty = sizes > 0
            maxima[nonempty] = self._values[last[nonempty]]
            self._row_max = maxima
            self._row_exact = sizes >= self._residual_record_sizes
        if self._sorted_values is None or self._sorted_rows is None:
            # Value → record join index built from scratch: every stored
            # occurrence sorted by value, so a query's values can be
            # matched with one searchsorted each.
            order = np.argsort(self._values, kind="stable")
            self._sorted_values = self._values[order]
            rows = np.repeat(
                np.arange(self._record_sizes.size, dtype=np.int64),
                np.diff(self._offsets),
            )
            self._sorted_rows = rows[order]
        self._finalized = True

    def compact_tombstones(self) -> None:
        """Physically drop tombstoned rows from the columns.

        Record ids are stable: surviving rows keep their ids through the
        ``row_ids`` column, only their physical positions shift.  Derived
        caches are *filtered* (order-preserving), never re-sorted.
        """
        self._absorb_tail()
        if self._num_dead == 0:
            return
        alive = ~self._tombstones
        row_sizes = np.diff(self._offsets)
        self._values = self._values[np.repeat(alive, row_sizes)]
        kept_sizes = row_sizes[alive]
        self._offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(kept_sizes, dtype=np.int64)]
        )
        self._signatures = self._signatures[alive]
        self._record_sizes = self._record_sizes[alive]
        self._residual_record_sizes = self._residual_record_sizes[alive]
        self._row_ids = self._row_ids[alive]
        new_row = np.cumsum(alive, dtype=np.int64) - 1
        if self._sorted_values is not None and self._sorted_rows is not None:
            entry_alive = alive[self._sorted_rows]
            self._sorted_values = self._sorted_values[entry_alive]
            self._sorted_rows = new_row[self._sorted_rows[entry_alive]]
        if self._row_max is not None and self._row_exact is not None:
            self._row_max = self._row_max[alive]
            self._row_exact = self._row_exact[alive]
        self._tombstones = np.zeros(int(alive.sum()), dtype=bool)
        self._num_dead = 0
        self._dead_values = 0
        # Vectorised id→row rebuild: every surviving row is live, so one
        # fill plus one scatter replaces the old per-row dict comprehension.
        self._id_rows = np.full(max(self._next_id, 16), -1, dtype=np.int64)
        self._id_rows[self._row_ids] = np.arange(self._row_ids.size, dtype=np.int64)
        self._ids_identity = bool(
            np.array_equal(self._row_ids, np.arange(self._row_ids.size, dtype=np.int64))
        )

    def truncate_values(self, threshold: float) -> None:
        """Drop every stored value above ``threshold`` (per-row prefixes survive).

        The join index is value-sorted, so the survivors are exactly its
        prefix up to ``threshold`` — no re-sort is needed; only the
        per-row maxima/exactness columns are rebuilt on the next
        :meth:`finalize`.
        """
        self._absorb_tail()
        keep = self._values <= threshold
        kept_cumulative = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(keep, dtype=np.int64)]
        )
        self._values = self._values[keep]
        self._offsets = kept_cumulative[self._offsets]
        if self._num_dead:
            self._dead_values = int(np.diff(self._offsets)[self._tombstones].sum())
        if self._sorted_values is not None and self._sorted_rows is not None:
            cut = int(np.searchsorted(self._sorted_values, threshold, side="right"))
            self._sorted_values = self._sorted_values[:cut].copy()
            self._sorted_rows = self._sorted_rows[:cut].copy()
        self._row_max = None
        self._row_exact = None
        self._finalized = False

    def threshold_for_value_budget(self, budget: float) -> float:
        """Largest threshold whose kept live-value count fits in ``budget``.

        The incremental-refit primitive: the value→record join index is
        already value-sorted (and absorbed batches merge into it with
        two-run merges, never a full re-sort), so the answer is a prefix
        inspection — no live-value gather and no ``np.unique`` pass over
        the whole column.  A value either fits with *all* of its stored
        occurrences or not at all, exactly the cumulative-count
        semantics of re-deriving τ from scratch.

        Callers should consult :attr:`total_values` (the O(1) running
        tracker of stored live values) first and skip the call entirely
        when the store already fits its budget.
        """
        self.finalize()
        values = self._sorted_values
        if self._num_dead:
            # Below-ratio tombstones survive finalize(): filter their
            # occurrences out of the prefix (a boolean gather, still no
            # sort).
            values = values[~self._tombstones[self._sorted_rows]]
        if values.size == 0:
            return float(np.finfo(np.float64).tiny)
        allowed = int(budget)
        if allowed >= values.size:
            return float(values[-1])
        if allowed == 0:
            return float(np.finfo(np.float64).tiny)
        # values[allowed] is the first occurrence that cannot fit; the
        # answer is the largest distinct value strictly below it.
        bound = values[allowed]
        cut = int(np.searchsorted(values, bound, side="left"))
        if cut == 0:
            return float(np.finfo(np.float64).tiny)
        return float(values[cut - 1])

    # ------------------------------------------------------------ snapshots
    def state_arrays(self) -> dict[str, np.ndarray]:
        """The full segment state as named arrays (tail absorbed first)."""
        self._absorb_tail()
        return {
            "values": self._values,
            "offsets": self._offsets,
            "signatures": self._signatures,
            "record_sizes": self._record_sizes,
            "residual_record_sizes": self._residual_record_sizes,
            "row_ids": self._row_ids,
            "tombstones": self._tombstones,
            "store_meta": np.array(
                [SNAPSHOT_VERSION, self._signature_bits, self._next_id], dtype=np.int64
            ),
        }

    def save(self, path) -> None:
        """Snapshot the store to an npz file (see :meth:`load`)."""
        np.savez_compressed(path, **self.state_arrays())

    @classmethod
    def from_state(
        cls,
        arrays: Mapping[str, np.ndarray],
        compact_ratio: float = DEFAULT_COMPACT_RATIO,
        incremental_merge: bool = True,
    ) -> "ColumnarSketchStore":
        """Rebuild a store from :meth:`state_arrays` output."""
        meta = np.asarray(arrays["store_meta"], dtype=np.int64)
        version, signature_bits, next_id = (int(x) for x in meta)
        if version != SNAPSHOT_VERSION:
            raise ConfigurationError(
                f"unsupported store snapshot version {version} "
                f"(this build reads version {SNAPSHOT_VERSION})"
            )
        store = cls(
            signature_bits=signature_bits,
            compact_ratio=compact_ratio,
            incremental_merge=incremental_merge,
        )
        store._values = np.asarray(arrays["values"], dtype=np.float64)
        store._offsets = np.asarray(arrays["offsets"], dtype=np.int64)
        num_rows = int(np.asarray(arrays["record_sizes"]).size)
        signatures = np.asarray(arrays["signatures"], dtype=np.uint64)
        store._signatures = signatures.reshape(num_rows, store._num_words)
        store._record_sizes = np.asarray(arrays["record_sizes"], dtype=np.int64)
        store._residual_record_sizes = np.asarray(
            arrays["residual_record_sizes"], dtype=np.int64
        )
        store._row_ids = np.asarray(arrays["row_ids"], dtype=np.int64)
        store._tombstones = np.asarray(arrays["tombstones"], dtype=bool)
        store._next_id = next_id
        store._num_dead = int(store._tombstones.sum())
        if store._num_dead:
            store._dead_values = int(
                np.diff(store._offsets)[store._tombstones].sum()
            )
        store._id_rows = np.full(max(next_id, 16), -1, dtype=np.int64)
        live = ~store._tombstones
        store._id_rows[store._row_ids[live]] = np.nonzero(live)[0]
        store._ids_identity = bool(
            np.array_equal(
                store._row_ids, np.arange(store._row_ids.size, dtype=np.int64)
            )
        )
        return store

    @classmethod
    def load(cls, path) -> "ColumnarSketchStore":
        """Inverse of :meth:`save`."""
        with np.load(path) as data:
            arrays = {name: data[name] for name in data.files}
        return cls.from_state(arrays)

    # -------------------------------------------------------- introspection
    @property
    def signature_bits(self) -> int:
        """Bitmap width ``r`` shared by every signature row."""
        return self._signature_bits

    @property
    def num_words(self) -> int:
        """Packed uint64 words per signature row (``ceil(r / 64)``)."""
        return self._num_words

    @property
    def compact_ratio(self) -> float:
        """Tombstoned-row fraction that triggers compaction at finalize."""
        return self._compact_ratio

    @property
    def num_rows(self) -> int:
        """Number of physical rows (tombstoned and staged rows included)."""
        return int(self._record_sizes.size) + len(self._pending_values)

    @property
    def num_records(self) -> int:
        """Number of live records (physical rows minus tombstones)."""
        return self.num_rows - self._num_dead

    @property
    def num_dead(self) -> int:
        """Number of tombstoned rows awaiting compaction."""
        return self._num_dead

    @property
    def next_id(self) -> int:
        """The record id the next default-id :meth:`append` will assign."""
        return self._next_id

    def __len__(self) -> int:
        return self.num_records

    def __contains__(self, record_id: object) -> bool:
        try:
            candidate = int(record_id)  # type: ignore[call-overload]
        except (TypeError, ValueError):
            return False
        return candidate == record_id and self._lookup_row(candidate) is not None

    @property
    def total_values(self) -> int:
        """Total stored residual hash values across all *live* rows."""
        staged = sum(arr.size for arr in self._pending_values)
        return int(self._values.size) + int(staged) - self._dead_values

    @property
    def values(self) -> np.ndarray:
        """The concatenated residual values (absorbs staged rows first)."""
        self._absorb_tail()
        return self._values

    @property
    def offsets(self) -> np.ndarray:
        """CSR row offsets into :attr:`values`."""
        self._absorb_tail()
        return self._offsets

    @property
    def signatures(self) -> np.ndarray:
        """Packed uint64 signature matrix of shape ``(num_rows, words)``."""
        self._absorb_tail()
        return self._signatures

    @property
    def record_sizes(self) -> np.ndarray:
        """Distinct-element count of every physical row."""
        self._absorb_tail()
        return self._record_sizes

    @property
    def residual_record_sizes(self) -> np.ndarray:
        """Distinct residual (non-frequent) element count of every physical row."""
        self._absorb_tail()
        return self._residual_record_sizes

    @property
    def row_sizes(self) -> np.ndarray:
        """Number of stored values per physical row."""
        self._absorb_tail()
        return np.diff(self._offsets)

    @property
    def row_ids(self) -> np.ndarray:
        """Record id of every physical row (stable across compaction)."""
        self._absorb_tail()
        return self._row_ids

    @property
    def alive_rows(self) -> np.ndarray:
        """Boolean mask over physical rows: ``True`` where not tombstoned."""
        self._absorb_tail()
        return ~self._tombstones

    def result_view(self) -> tuple[np.ndarray | None, np.ndarray | None]:
        """``(row_ids, alive)`` for mapping kernel outputs to record ids.

        Both are ``None`` while the mapping is trivial (ids equal physical
        rows, nothing tombstoned), which lets the static search path skip
        the extra indexing entirely.
        """
        self._absorb_tail()
        row_ids = None if self._ids_identity else self._row_ids
        alive = None if self._num_dead == 0 else ~self._tombstones
        return row_ids, alive

    def live_record_ids(self) -> np.ndarray:
        """Record ids of every live row, in physical-row order."""
        self._absorb_tail()
        if self._num_dead == 0:
            return self._row_ids.copy()
        return self._row_ids[~self._tombstones]

    def live_record_sizes(self) -> np.ndarray:
        """Distinct-element counts of live rows, in physical-row order."""
        self._absorb_tail()
        if self._num_dead == 0:
            return self._record_sizes
        return self._record_sizes[~self._tombstones]

    def live_values(self) -> np.ndarray:
        """Concatenated residual values of live rows only."""
        self._absorb_tail()
        if self._num_dead == 0:
            return self._values
        return self._values[np.repeat(~self._tombstones, np.diff(self._offsets))]

    @property
    def row_max(self) -> np.ndarray:
        """Largest stored value per physical row (``0.0`` for empty rows)."""
        self.finalize()
        assert self._row_max is not None
        return self._row_max

    @property
    def row_exact(self) -> np.ndarray:
        """Whether each physical row retains every hash value of its residual."""
        self.finalize()
        assert self._row_exact is not None
        return self._row_exact

    def _lookup_row(self, record_id: int) -> int | None:
        """Physical row of a live record id, or ``None`` when absent."""
        if not 0 <= record_id < self._id_rows.size:
            return None
        row = int(self._id_rows[record_id])
        return None if row < 0 else row

    def _row_of(self, record_id: int) -> int:
        row = self._lookup_row(int(record_id))
        if row is None:
            raise ConfigurationError(f"unknown or deleted record id {record_id}")
        return row

    def row_values(self, record_id: int) -> np.ndarray:
        """One live record's stored values (a view into the CSR array)."""
        row = self._row_of(record_id)
        base_rows = int(self._record_sizes.size)
        if row < base_rows:
            start, stop = self._offsets[row], self._offsets[row + 1]
            return self._values[start:stop]
        return self._pending_values[row - base_rows]

    def mask_int(self, record_id: int) -> int:
        """One live record's signature bitmap as a Python integer."""
        row = self._row_of(record_id)
        base_rows = int(self._record_sizes.size)
        if row < base_rows:
            return words_to_mask(self._signatures[row])
        return self._pending_masks[row - base_rows]

    def record_size(self, record_id: int) -> int:
        """Distinct-element count of one live record."""
        row = self._row_of(record_id)
        base_rows = int(self._record_sizes.size)
        if row < base_rows:
            return int(self._record_sizes[row])
        return self._pending_record_sizes[row - base_rows]

    def residual_record_size(self, record_id: int) -> int:
        """Distinct residual element count of one live record."""
        row = self._row_of(record_id)
        base_rows = int(self._record_sizes.size)
        if row < base_rows:
            return int(self._residual_record_sizes[row])
        return self._pending_residual_sizes[row - base_rows]

    # -------------------------------------------------------------- kernels
    def intersection_counts(self, query_values: np.ndarray) -> np.ndarray:
        """``|L_Q ∩ L_X|`` for *every* physical row at once (vectorised CSR merge).

        ``query_values`` must be sorted ascending and distinct.  The merge
        is one ``searchsorted`` of all stored values against the query
        followed by a per-row segment sum — no per-record Python work.
        Tombstoned rows are counted like any other; mask them with
        :attr:`alive_rows` downstream.
        """
        self.finalize()
        query_values = np.asarray(query_values, dtype=np.float64)
        if query_values.size == 0 or self._values.size == 0:
            return np.zeros(self.num_rows, dtype=np.int64)
        positions = np.searchsorted(query_values, self._values)
        member = np.zeros(self._values.size, dtype=np.int64)
        in_range = positions < query_values.size
        member[in_range] = (
            query_values[positions[in_range]] == self._values[in_range]
        )
        cumulative = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(member)])
        return cumulative[self._offsets[1:]] - cumulative[self._offsets[:-1]]

    def intersection_counts_join(self, query_values: np.ndarray) -> np.ndarray:
        """Same counts as :meth:`intersection_counts` via the value join index.

        Cost is ``O(|Q| log T + matches)`` instead of ``O(T log |Q|)``
        (``T`` = stored occurrences), which is what makes scoring a whole
        workload cheap: only occurrences actually shared with the query
        are touched.
        """
        self.finalize()
        assert self._sorted_values is not None and self._sorted_rows is not None
        counts = np.zeros(self.num_rows, dtype=np.int64)
        query_values = np.asarray(query_values, dtype=np.float64)
        if query_values.size == 0 or self._sorted_values.size == 0:
            return counts
        starts = np.searchsorted(self._sorted_values, query_values, side="left")
        stops = np.searchsorted(self._sorted_values, query_values, side="right")
        matched = _gather_ranges(starts, stops)
        if matched.size:
            counts += np.bincount(
                self._sorted_rows[matched], minlength=self.num_rows
            )
        return counts

    def signature_overlap(self, mask: int) -> np.ndarray:
        """``|H_Q ∩ H_X|`` for every physical row (popcount of a bitwise AND)."""
        self.finalize()
        if self._num_words == 0 or mask == 0:
            return np.zeros(self.num_rows, dtype=np.int64)
        query_words = mask_to_words(mask, self._num_words)
        overlap = np.bitwise_count(self._signatures & query_words[np.newaxis, :])
        return overlap.sum(axis=1, dtype=np.int64)

    def signature_overlap_many(self, masks: Sequence[int]) -> np.ndarray:
        """``|H_Q ∩ H_X|`` for a whole workload at once, shape ``(B, num_rows)``.

        One popcount pass per query over the packed signature matrix —
        measurably faster than an unpacked bit-matrix product at
        realistic workload sizes, and without materialising a 32×-larger
        per-bit expansion of the signatures.
        """
        self.finalize()
        num_queries = len(masks)
        overlaps = np.zeros((num_queries, self.num_rows), dtype=np.int64)
        for row, mask in enumerate(masks):
            overlaps[row] = self.signature_overlap(mask)
        return overlaps

    def intersection_counts_many(
        self, queries_values: Sequence[np.ndarray]
    ) -> np.ndarray:
        """``|L_Q ∩ L_X|`` for every (query, row) pair, shape ``(B, num_rows)``.

        Per-query loop over :meth:`intersection_counts_join`; kept as the
        benchmark baseline for the fused :meth:`match_workload` /
        :meth:`intersection_counts_block` pair.
        """
        self.finalize()
        counts = np.zeros((len(queries_values), self.num_rows), dtype=np.int64)
        for row, query_values in enumerate(queries_values):
            counts[row] = self.intersection_counts_join(query_values)
        return counts

    # ------------------------------------------------- fused workload kernels
    def match_workload(self, queries_values: Sequence[np.ndarray]) -> WorkloadMatches:
        """Resolve a whole workload against the value→record join index at once.

        All queries' sorted values are concatenated into one run carrying
        a query-id column; a single pair of ``searchsorted`` calls against
        the join index finds every matched occurrence, and the resulting
        (query id, physical row) pairs are returned sorted by row so
        :meth:`intersection_counts_block` can slice any row range without
        rescanning.  No per-query Python iteration anywhere.
        """
        self.finalize()
        assert self._sorted_values is not None and self._sorted_rows is not None
        match_qids, match_rows, _values = match_sorted_run(
            self._sorted_values, self._sorted_rows, queries_values
        )
        return WorkloadMatches(len(queries_values), match_rows, match_qids)

    def intersection_counts_block(
        self,
        matches: WorkloadMatches,
        row_lo: int = 0,
        row_hi: int | None = None,
    ) -> np.ndarray:
        """``(B, block)`` intersection counts for physical rows ``[row_lo, row_hi)``.

        One flat ``bincount`` over the row-range slice of the matched
        pairs; with ``row_hi - row_lo`` bounded, peak memory for a whole
        workload sweep is ``O(B × block)`` regardless of ``num_rows``.
        Counts are bit-identical to :meth:`intersection_counts_join` per
        query (both count the same matched occurrences).
        """
        if row_hi is None:
            row_hi = self.num_rows
        block = row_hi - row_lo
        lo = int(np.searchsorted(matches.rows, row_lo, side="left"))
        hi = int(np.searchsorted(matches.rows, row_hi, side="left"))
        if hi == lo:
            return np.zeros((matches.num_queries, block), dtype=np.int64)
        flat = matches.query_ids[lo:hi] * block + (matches.rows[lo:hi] - row_lo)
        counts = np.bincount(flat, minlength=matches.num_queries * block)
        return counts.reshape(matches.num_queries, block).astype(np.int64, copy=False)

    def intersection_counts_fused(
        self, queries_values: Sequence[np.ndarray]
    ) -> np.ndarray:
        """Fused ``(B, num_rows)`` counts: :meth:`match_workload` + one block."""
        self.finalize()
        return self.intersection_counts_block(self.match_workload(queries_values))

    def match_counts_block(
        self,
        matches: WorkloadMatches,
        row_lo: int = 0,
        row_hi: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sparse intersection counts for rows ``[row_lo, row_hi)``.

        The COO form of :meth:`intersection_counts_block`: returns
        ``(query_ids, columns, counts)`` for exactly the (query, row)
        pairs with a nonzero count — columns are block-relative.  Cost is
        ``O(matches in range)``; nothing dense is touched, which is what
        lets the engine skip zero-count pairs before the estimator pass.
        """
        if row_hi is None:
            row_hi = self.num_rows
        block = row_hi - row_lo
        lo = int(np.searchsorted(matches.rows, row_lo, side="left"))
        hi = int(np.searchsorted(matches.rows, row_hi, side="left"))
        empty = np.empty(0, dtype=np.int64)
        if hi == lo:
            return empty, empty, empty
        flat = matches.query_ids[lo:hi] * block + (matches.rows[lo:hi] - row_lo)
        pairs, counts = np.unique(flat, return_counts=True)
        return pairs // block, pairs % block, counts.astype(np.int64, copy=False)

    def pack_signature_masks(self, masks: Sequence[int]) -> np.ndarray:
        """Pack a workload's signature bitmaps into one ``(B, num_words)`` matrix."""
        words = np.zeros((len(masks), self._num_words), dtype=np.uint64)
        for row, mask in enumerate(masks):
            if self._num_words:
                words[row] = mask_to_words(mask, self._num_words)
            elif mask:
                raise ConfigurationError(
                    "bitmap mask has bits beyond the signature width"
                )
        return words

    def signature_overlap_block(
        self,
        query_words: np.ndarray,
        row_lo: int = 0,
        row_hi: int | None = None,
        dtype: np.dtype | type = np.int64,
    ) -> np.ndarray:
        """``(B, block)`` signature overlaps for physical rows ``[row_lo, row_hi)``.

        One broadcast AND + ``bitwise_count`` reduction over the packed
        matrices; the ``(B, block, num_words)`` intermediate is why
        callers sweep the rows in blocks.  Overlaps are bit-identical to
        :meth:`signature_overlap` per query (integer popcount sums; every
        value is at most ``64 × num_words``, so reducing straight into
        ``float64`` — what the scoring engine asks for — is exact too).
        """
        self.finalize()
        if row_hi is None:
            row_hi = self.num_rows
        num_queries = int(query_words.shape[0])
        if self._num_words == 0:
            return np.zeros((num_queries, row_hi - row_lo), dtype=dtype)
        block = self._signatures[row_lo:row_hi]
        if self._num_words == 1:
            # Single-word signatures (r <= 64): skip the 3-D intermediate,
            # and hand back the popcount's native uint8 untouched when the
            # caller asked for it (the engine's integer hit test does).
            overlap = np.bitwise_count(
                block[:, 0][np.newaxis, :] & query_words[:, 0][:, np.newaxis]
            )
            return overlap.astype(dtype, copy=False)
        overlap = np.bitwise_count(block[np.newaxis, :, :] & query_words[:, np.newaxis, :])
        return overlap.sum(axis=2, dtype=dtype)


def _merge_sorted_runs(
    base_values: np.ndarray,
    base_rows: np.ndarray,
    tail_values: np.ndarray,
    tail_rows: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge two sorted (value, row) runs into one, stably, in linear time.

    Equal values keep base entries before tail entries and preserve each
    run's internal order — exactly the order a stable argsort over the
    concatenated columns would produce, so incremental maintenance is
    indistinguishable from a from-scratch rebuild.
    """
    if tail_values.size == 0:
        return base_values, base_rows
    if base_values.size == 0:
        return tail_values, tail_rows
    total = base_values.size + tail_values.size
    destinations = np.searchsorted(base_values, tail_values, side="right")
    destinations += np.arange(tail_values.size, dtype=np.int64)
    merged_values = np.empty(total, dtype=np.float64)
    merged_rows = np.empty(total, dtype=np.int64)
    base_mask = np.ones(total, dtype=bool)
    base_mask[destinations] = False
    merged_values[destinations] = tail_values
    merged_rows[destinations] = tail_rows
    merged_values[base_mask] = base_values
    merged_rows[base_mask] = base_rows
    return merged_values, merged_rows


def match_sorted_run(
    join_values: np.ndarray,
    join_rows: np.ndarray,
    queries_values: Sequence[np.ndarray],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Match every query's sorted values against a value→row join index.

    The shared fused match pass: all queries' values are concatenated
    into one run carrying a query-id column, resolved with a single pair
    of ``searchsorted`` calls, and the matched occurrences are returned
    as row-sorted parallel ``(query_ids, rows, values)`` arrays.  Both
    the columnar store's workload kernels and the plain-KMV baseline's
    fused Equation-10 path are built on this one helper, so their match
    semantics cannot drift apart.
    """
    empty = np.empty(0, dtype=np.int64)
    empty_values = np.empty(0, dtype=np.float64)
    num_queries = len(queries_values)
    if num_queries == 0 or join_values.size == 0:
        return empty, empty, empty_values
    arrays = [np.asarray(values, dtype=np.float64) for values in queries_values]
    lengths = np.fromiter(
        (values.size for values in arrays), dtype=np.int64, count=num_queries
    )
    if not lengths.sum():
        return empty, empty, empty_values
    all_values = np.concatenate(arrays)
    value_qids = np.repeat(np.arange(num_queries, dtype=np.int64), lengths)
    starts = np.searchsorted(join_values, all_values, side="left")
    stops = np.searchsorted(join_values, all_values, side="right")
    matched = _gather_ranges(starts, stops)
    if not matched.size:
        return empty, empty, empty_values
    match_qids = np.repeat(value_qids, stops - starts)
    match_rows = join_rows[matched]
    match_values = join_values[matched]
    order = np.argsort(match_rows, kind="stable")
    return match_qids[order], match_rows[order], match_values[order]


def _gather_ranges(starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[i], stops[i])`` for all i, vectorised.

    ``repeat`` scatters each range's start (rebased so a global ``arange``
    supplies the within-range offsets) — one pass over the output, no
    per-position binary search.
    """
    lengths = stops - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    range_starts = np.zeros(lengths.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=range_starts[1:])
    return np.repeat(starts - range_starts, lengths) + np.arange(total, dtype=np.int64)
