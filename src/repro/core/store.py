"""Columnar storage of per-record GB-KMV sketch state.

Historically :class:`~repro.core.index.GBKMVIndex` kept one Python object
per record (``list[np.ndarray]`` of residual hash values, ``list[int]``
of buffer masks and sizes).  Scoring a query then meant walking those
lists record by record, so query time was dominated by interpreter
overhead rather than by the estimator arithmetic the paper analyses.

:class:`ColumnarSketchStore` consolidates the same state into a handful
of flat NumPy arrays:

``values`` / ``offsets``
    All residual hash values of all records concatenated into a single
    sorted-per-row float64 array with CSR-style row offsets
    (``values[offsets[i]:offsets[i + 1]]`` is record ``i``).
``signatures``
    The frequent-element buffer bitmaps, packed into a ``uint64`` matrix
    of shape ``(num_records, words)`` with 64 bits per word.
``record_sizes`` / ``residual_record_sizes``
    Parallel int64 arrays of per-record distinct-element counts.

On top of the columns the store offers the vectorised kernels the
batched query engine is built from: whole-dataset intersection counts
against a sorted query array (a vectorised merge over the CSR arrays),
popcount-based signature overlaps, and multi-query variants built on a
value→record join index that touches only the occurrences a query
actually shares with the dataset.

Rows are appended into a small staging area and *compacted* into the
flat columns lazily, so dynamic insertion stays cheap; every mutation
invalidates the derived query-time caches, which are rebuilt by
:meth:`finalize` on the next search.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._errors import ConfigurationError

#: Bits per packed signature word.
BITS_PER_WORD = 64

_WORD_MASK = (1 << BITS_PER_WORD) - 1


def mask_to_words(mask: int, num_words: int) -> np.ndarray:
    """Pack a Python-integer bitmap into little-endian uint64 words."""
    if mask < 0:
        raise ConfigurationError("bitmap mask must be non-negative")
    if mask >> (num_words * BITS_PER_WORD):
        raise ConfigurationError("bitmap mask has bits beyond the signature width")
    words = np.zeros(num_words, dtype=np.uint64)
    for word in range(num_words):
        words[word] = (mask >> (word * BITS_PER_WORD)) & _WORD_MASK
    return words


def words_to_mask(words: np.ndarray) -> int:
    """Inverse of :func:`mask_to_words`."""
    mask = 0
    for word, value in enumerate(np.asarray(words, dtype=np.uint64)):
        mask |= int(value) << (word * BITS_PER_WORD)
    return mask


class ColumnarSketchStore:
    """Flat columnar arrays holding every record's GB-KMV sketch state.

    Parameters
    ----------
    signature_bits:
        Width ``r`` of the frequent-element bitmap.  ``0`` disables the
        signature columns (the G-KMV special case).
    """

    def __init__(self, signature_bits: int) -> None:
        if signature_bits < 0:
            raise ConfigurationError("signature_bits must be non-negative")
        self._signature_bits = int(signature_bits)
        self._num_words = -(-self._signature_bits // BITS_PER_WORD) if signature_bits else 0

        # Compacted columns (row-major CSR + parallel arrays).
        self._values = np.empty(0, dtype=np.float64)
        self._offsets = np.zeros(1, dtype=np.int64)
        self._signatures = np.zeros((0, self._num_words), dtype=np.uint64)
        self._record_sizes = np.empty(0, dtype=np.int64)
        self._residual_record_sizes = np.empty(0, dtype=np.int64)

        # Staged rows not yet merged into the columns.
        self._pending_values: list[np.ndarray] = []
        self._pending_masks: list[int] = []
        self._pending_record_sizes: list[int] = []
        self._pending_residual_sizes: list[int] = []

        # Derived query-time caches (built by finalize, dropped on mutation).
        self._finalized = False
        self._row_max: np.ndarray | None = None
        self._row_exact: np.ndarray | None = None
        self._sorted_values: np.ndarray | None = None
        self._sorted_record_ids: np.ndarray | None = None

    # ------------------------------------------------------------- mutation
    def append(
        self,
        values: np.ndarray,
        mask: int,
        residual_record_size: int,
        record_size: int,
    ) -> int:
        """Stage one record's sketch row; returns its record id.

        ``values`` must be sorted ascending and distinct (the natural
        output of ``np.unique`` over kept hash values).
        """
        record_id = self.num_records
        self._pending_values.append(np.asarray(values, dtype=np.float64))
        self._pending_masks.append(int(mask))
        self._pending_residual_sizes.append(int(residual_record_size))
        self._pending_record_sizes.append(int(record_size))
        self._invalidate()
        return record_id

    def _invalidate(self) -> None:
        """Drop every derived cache; the next finalize rebuilds them.

        Rebuilding the value→record join index is O(T log T) over all
        stored occurrences, so a workload alternating single inserts
        with searches pays the full re-sort each time; batch the inserts
        (or merge staged rows incrementally, a future optimisation) if
        that pattern matters.
        """
        self._finalized = False
        self._row_max = None
        self._row_exact = None
        self._sorted_values = None
        self._sorted_record_ids = None

    def _compact(self) -> None:
        """Merge staged rows into the flat columns."""
        if not self._pending_values:
            return
        pending_values = self._pending_values
        lengths = np.fromiter(
            (arr.size for arr in pending_values), dtype=np.int64, count=len(pending_values)
        )
        self._values = np.concatenate([self._values, *pending_values])
        new_offsets = self._offsets[-1] + np.cumsum(lengths)
        self._offsets = np.concatenate([self._offsets, new_offsets])
        if self._num_words:
            extra = np.zeros((len(pending_values), self._num_words), dtype=np.uint64)
            for row, mask in enumerate(self._pending_masks):
                extra[row] = mask_to_words(mask, self._num_words)
            self._signatures = np.vstack([self._signatures, extra])
        else:
            self._signatures = np.zeros(
                (self._signatures.shape[0] + len(pending_values), 0), dtype=np.uint64
            )
        self._record_sizes = np.concatenate(
            [self._record_sizes, np.asarray(self._pending_record_sizes, dtype=np.int64)]
        )
        self._residual_record_sizes = np.concatenate(
            [
                self._residual_record_sizes,
                np.asarray(self._pending_residual_sizes, dtype=np.int64),
            ]
        )
        self._pending_values = []
        self._pending_masks = []
        self._pending_record_sizes = []
        self._pending_residual_sizes = []

    def finalize(self) -> None:
        """Compact staged rows and (re)build the derived query-time caches."""
        if self._finalized:
            return
        self._compact()
        sizes = self.row_sizes
        last = self._offsets[1:] - 1
        maxima = np.zeros(self.num_records, dtype=np.float64)
        nonempty = sizes > 0
        maxima[nonempty] = self._values[last[nonempty]]
        self._row_max = maxima
        self._row_exact = sizes >= self._residual_record_sizes
        # Value → record join index: every stored occurrence sorted by value,
        # so a query's values can be matched with one searchsorted each.
        order = np.argsort(self._values, kind="stable")
        self._sorted_values = self._values[order]
        record_ids = np.repeat(
            np.arange(self.num_records, dtype=np.int64), np.diff(self._offsets)
        )
        self._sorted_record_ids = record_ids[order]
        self._finalized = True

    def truncate_values(self, threshold: float) -> None:
        """Drop every stored value above ``threshold`` (per-row prefixes survive)."""
        self._compact()
        keep = self._values <= threshold
        kept_cumulative = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(keep, dtype=np.int64)]
        )
        self._values = self._values[keep]
        self._offsets = kept_cumulative[self._offsets]
        self._invalidate()

    # -------------------------------------------------------- introspection
    @property
    def signature_bits(self) -> int:
        """Bitmap width ``r`` shared by every signature row."""
        return self._signature_bits

    @property
    def num_records(self) -> int:
        """Number of rows, staged rows included."""
        return int(self._record_sizes.size) + len(self._pending_values)

    def __len__(self) -> int:
        return self.num_records

    @property
    def total_values(self) -> int:
        """Total number of stored residual hash values across all rows."""
        staged = sum(arr.size for arr in self._pending_values)
        return int(self._values.size) + int(staged)

    @property
    def values(self) -> np.ndarray:
        """The concatenated residual values (compacts staged rows first)."""
        self._compact()
        return self._values

    @property
    def offsets(self) -> np.ndarray:
        """CSR row offsets into :attr:`values`."""
        self._compact()
        return self._offsets

    @property
    def signatures(self) -> np.ndarray:
        """Packed uint64 signature matrix of shape ``(num_records, words)``."""
        self._compact()
        return self._signatures

    @property
    def record_sizes(self) -> np.ndarray:
        """Distinct-element count of every record."""
        self._compact()
        return self._record_sizes

    @property
    def residual_record_sizes(self) -> np.ndarray:
        """Distinct residual (non-frequent) element count of every record."""
        self._compact()
        return self._residual_record_sizes

    @property
    def row_sizes(self) -> np.ndarray:
        """Number of stored values per row."""
        self._compact()
        return np.diff(self._offsets)

    @property
    def row_max(self) -> np.ndarray:
        """Largest stored value per row (``0.0`` for empty rows)."""
        self.finalize()
        assert self._row_max is not None
        return self._row_max

    @property
    def row_exact(self) -> np.ndarray:
        """Whether each row retains every hash value of its residual."""
        self.finalize()
        assert self._row_exact is not None
        return self._row_exact

    def row_values(self, record_id: int) -> np.ndarray:
        """One record's stored values (a view into the CSR array)."""
        compacted = int(self._record_sizes.size)
        if record_id < compacted:
            start, stop = self._offsets[record_id], self._offsets[record_id + 1]
            return self._values[start:stop]
        return self._pending_values[record_id - compacted]

    def mask_int(self, record_id: int) -> int:
        """One record's signature bitmap as a Python integer."""
        compacted = int(self._record_sizes.size)
        if record_id < compacted:
            return words_to_mask(self._signatures[record_id])
        return self._pending_masks[record_id - compacted]

    def record_size(self, record_id: int) -> int:
        """Distinct-element count of one record."""
        compacted = int(self._record_sizes.size)
        if record_id < compacted:
            return int(self._record_sizes[record_id])
        return self._pending_record_sizes[record_id - compacted]

    def residual_record_size(self, record_id: int) -> int:
        """Distinct residual element count of one record."""
        compacted = int(self._record_sizes.size)
        if record_id < compacted:
            return int(self._residual_record_sizes[record_id])
        return self._pending_residual_sizes[record_id - compacted]

    # -------------------------------------------------------------- kernels
    def intersection_counts(self, query_values: np.ndarray) -> np.ndarray:
        """``|L_Q ∩ L_X|`` for *every* record at once (vectorised CSR merge).

        ``query_values`` must be sorted ascending and distinct.  The merge
        is one ``searchsorted`` of all stored values against the query
        followed by a per-row segment sum — no per-record Python work.
        """
        self.finalize()
        query_values = np.asarray(query_values, dtype=np.float64)
        if query_values.size == 0 or self._values.size == 0:
            return np.zeros(self.num_records, dtype=np.int64)
        positions = np.searchsorted(query_values, self._values)
        member = np.zeros(self._values.size, dtype=np.int64)
        in_range = positions < query_values.size
        member[in_range] = (
            query_values[positions[in_range]] == self._values[in_range]
        )
        cumulative = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(member)])
        return cumulative[self._offsets[1:]] - cumulative[self._offsets[:-1]]

    def intersection_counts_join(self, query_values: np.ndarray) -> np.ndarray:
        """Same counts as :meth:`intersection_counts` via the value join index.

        Cost is ``O(|Q| log T + matches)`` instead of ``O(T log |Q|)``
        (``T`` = stored occurrences), which is what makes scoring a whole
        workload cheap: only occurrences actually shared with the query
        are touched.
        """
        self.finalize()
        assert self._sorted_values is not None and self._sorted_record_ids is not None
        counts = np.zeros(self.num_records, dtype=np.int64)
        query_values = np.asarray(query_values, dtype=np.float64)
        if query_values.size == 0 or self._sorted_values.size == 0:
            return counts
        starts = np.searchsorted(self._sorted_values, query_values, side="left")
        stops = np.searchsorted(self._sorted_values, query_values, side="right")
        matched = _gather_ranges(starts, stops)
        if matched.size:
            counts += np.bincount(
                self._sorted_record_ids[matched], minlength=self.num_records
            )
        return counts

    def signature_overlap(self, mask: int) -> np.ndarray:
        """``|H_Q ∩ H_X|`` for every record (popcount of a bitwise AND)."""
        self.finalize()
        if self._num_words == 0 or mask == 0:
            return np.zeros(self.num_records, dtype=np.int64)
        query_words = mask_to_words(mask, self._num_words)
        overlap = np.bitwise_count(self._signatures & query_words[np.newaxis, :])
        return overlap.sum(axis=1, dtype=np.int64)

    def signature_overlap_many(self, masks: Sequence[int]) -> np.ndarray:
        """``|H_Q ∩ H_X|`` for a whole workload at once, shape ``(B, n)``.

        One popcount pass per query over the packed signature matrix —
        measurably faster than an unpacked bit-matrix product at
        realistic workload sizes, and without materialising a 32×-larger
        per-bit expansion of the signatures.
        """
        self.finalize()
        num_queries = len(masks)
        overlaps = np.zeros((num_queries, self.num_records), dtype=np.int64)
        for row, mask in enumerate(masks):
            overlaps[row] = self.signature_overlap(mask)
        return overlaps

    def intersection_counts_many(
        self, queries_values: Sequence[np.ndarray]
    ) -> np.ndarray:
        """``|L_Q ∩ L_X|`` for every (query, record) pair, shape ``(B, n)``."""
        self.finalize()
        counts = np.zeros((len(queries_values), self.num_records), dtype=np.int64)
        for row, query_values in enumerate(queries_values):
            counts[row] = self.intersection_counts_join(query_values)
        return counts


def _gather_ranges(starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[i], stops[i])`` for all i, vectorised."""
    lengths = stops - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    cumulative = np.cumsum(lengths)
    positions = np.arange(total, dtype=np.int64)
    owner = np.searchsorted(cumulative, positions, side="right")
    within = positions - (cumulative[owner] - lengths[owner])
    return starts[owner] + within
