"""The k-minimum-values (KMV) sketch of Beyer et al. (SIGMOD 2007).

A KMV synopsis of a record ``X`` under a hash function ``h`` is the set of
the ``k`` smallest distinct hash values of the elements of ``X``.  From it
the number of distinct elements is estimated as ``(k - 1) / U(k)`` where
``U(k)`` is the k-th smallest kept hash value (Equation 9 of the paper).

Two synopses combine with the ``⊕`` operator — keep the ``k`` smallest
values of the union where ``k = min(k_X, k_Y)`` (Equation 8) — giving
union and intersection size estimators (Equations 9–10) whose variance is
Equation 11.  These estimators are what both the plain-KMV baseline and
the G-KMV / GB-KMV sketches are built on.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro._errors import ConfigurationError, EstimationError, SketchCompatibilityError
from repro.hashing import UnitHash


class KMVSketch:
    """A k-minimum-values synopsis of one record.

    Instances are immutable once built.  The sketch remembers whether it is
    *exact*, i.e. whether the underlying record had at most ``k`` distinct
    elements so that every hash value of the record is present; exact
    sketches short-circuit the estimators to exact answers.

    Parameters
    ----------
    k:
        Capacity — the maximum number of minimum hash values retained.
    values:
        Sorted (ascending) distinct hash values actually retained, at most
        ``k`` of them.
    record_size:
        Number of distinct elements in the original record.
    hasher:
        The hash function the values came from; combining sketches built
        with different hashers is rejected.
    """

    __slots__ = ("_k", "_values", "_record_size", "_hasher")

    def __init__(
        self,
        k: int,
        values: np.ndarray,
        record_size: int,
        hasher: UnitHash,
    ) -> None:
        if k < 1:
            raise ConfigurationError(f"KMV capacity k must be >= 1, got {k}")
        if record_size < 0:
            raise ConfigurationError("record_size must be non-negative")
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1:
            raise ConfigurationError("values must be a one-dimensional array")
        if arr.size > k:
            raise ConfigurationError(
                f"sketch holds {arr.size} values but capacity is only {k}"
            )
        if arr.size and (arr.min() < 0.0 or arr.max() >= 1.0):
            raise ConfigurationError("hash values must lie in [0, 1)")
        if arr.size > 1 and not np.all(np.diff(arr) > 0):
            raise ConfigurationError("values must be strictly increasing (sorted, distinct)")
        self._k = int(k)
        self._values = arr
        self._record_size = int(record_size)
        self._hasher = hasher

    # -- construction ------------------------------------------------------
    @classmethod
    def from_record(
        cls, record: Iterable[object], k: int, hasher: UnitHash | None = None
    ) -> "KMVSketch":
        """Build the size-``k`` KMV sketch of a record.

        Duplicate elements in ``record`` are collapsed (the sketch is a
        synopsis of the *set* of elements).
        """
        if hasher is None:
            hasher = UnitHash()
        distinct = set(record)
        hashes = hasher.hash_many(list(distinct))
        hashes = np.unique(hashes)  # sorted ascending, collision-collapsed
        kept = hashes[: int(k)] if k >= 1 else hashes[:0]
        return cls(k=k, values=kept, record_size=len(distinct), hasher=hasher)

    @classmethod
    def from_hash_values(
        cls,
        hash_values: Sequence[float] | np.ndarray,
        k: int,
        record_size: int | None = None,
        hasher: UnitHash | None = None,
    ) -> "KMVSketch":
        """Build a sketch directly from pre-computed hash values.

        Useful in tests and in higher-level sketches that hash once and
        reuse the values.
        """
        if hasher is None:
            hasher = UnitHash()
        arr = np.unique(np.asarray(hash_values, dtype=np.float64))
        size = int(record_size) if record_size is not None else int(arr.size)
        return cls(k=k, values=arr[: int(k)], record_size=size, hasher=hasher)

    # -- introspection -----------------------------------------------------
    @property
    def k(self) -> int:
        """Capacity of the sketch."""
        return self._k

    @property
    def values(self) -> np.ndarray:
        """Retained hash values, sorted ascending (read-only view)."""
        view = self._values.view()
        view.setflags(write=False)
        return view

    @property
    def size(self) -> int:
        """Number of hash values actually retained (``<= k``)."""
        return int(self._values.size)

    @property
    def record_size(self) -> int:
        """Number of distinct elements in the sketched record."""
        return self._record_size

    @property
    def hasher(self) -> UnitHash:
        """Hash function used to build the sketch."""
        return self._hasher

    @property
    def is_exact(self) -> bool:
        """True when the sketch holds every hash value of the record."""
        return self.size >= self._record_size

    @property
    def kth_value(self) -> float:
        """The largest retained hash value ``U(k)``.

        Raises
        ------
        EstimationError
            If the sketch is empty.
        """
        if self.size == 0:
            raise EstimationError("empty KMV sketch has no k-th value")
        return float(self._values[-1])

    def memory_in_values(self) -> int:
        """Space accounting: number of stored signature values."""
        return self.size

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return (
            f"KMVSketch(k={self._k}, size={self.size}, "
            f"record_size={self._record_size}, exact={self.is_exact})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KMVSketch):
            return NotImplemented
        return (
            self._k == other._k
            and self._record_size == other._record_size
            and self._hasher == other._hasher
            and np.array_equal(self._values, other._values)
        )

    # -- estimation --------------------------------------------------------
    def _check_compatible(self, other: "KMVSketch") -> None:
        if self._hasher != other._hasher:
            raise SketchCompatibilityError(
                "cannot combine KMV sketches built with different hash functions"
            )

    def distinct_value_estimate(self) -> float:
        """Estimate the number of distinct elements in the record.

        Uses the unbiased estimator ``(k - 1) / U(k)`` when the sketch is
        saturated, and the exact count when the sketch retains every hash
        value of the record.
        """
        if self.is_exact:
            return float(self._record_size)
        if self.size < 2:
            raise EstimationError(
                "cannot estimate distinct values from a sketch with fewer than 2 values"
            )
        return (self.size - 1) / self.kth_value

    def merge(self, other: "KMVSketch") -> "KMVSketch":
        """The ``⊕`` operator: KMV sketch of the union of the two records.

        Follows Equation 8: the result keeps the ``min(k_X, k_Y)`` smallest
        hash values of ``L_X ∪ L_Y``.  When both inputs are exact the
        result is exact as well (it is simply the union of hash values,
        capacity permitting).
        """
        self._check_compatible(other)
        union_values = np.union1d(self._values, other._values)
        if self.is_exact and other.is_exact:
            # The union of two complete hash sets is the complete hash set of
            # the set union; keep as many as the combined capacity allows.
            k = self._k + other._k
            union_size = int(union_values.size)
            return KMVSketch(
                k=max(k, union_size),
                values=union_values,
                record_size=union_size,
                hasher=self._hasher,
            )
        k = min(self.size, other.size) if min(self.size, other.size) > 0 else 0
        kept = union_values[:k]
        # Union record size is unknown in general; record the best lower bound.
        union_record_size = max(self._record_size, other._record_size)
        return KMVSketch(
            k=max(k, 1),
            values=kept,
            record_size=max(union_record_size, int(kept.size)),
            hasher=self._hasher,
        )

    def union_size_estimate(self, other: "KMVSketch") -> float:
        """Estimate ``|X ∪ Y|`` (Equation 9)."""
        self._check_compatible(other)
        if self.is_exact and other.is_exact:
            return float(np.union1d(self._values, other._values).size)
        k = min(self.size, other.size)
        if k < 2:
            raise EstimationError("need at least 2 shared sketch slots to estimate union size")
        union_values = np.union1d(self._values, other._values)[:k]
        u_k = float(union_values[-1])
        return (k - 1) / u_k

    def intersection_size_estimate(self, other: "KMVSketch") -> float:
        """Estimate ``|X ∩ Y|`` (Equation 10)."""
        self._check_compatible(other)
        if self.is_exact and other.is_exact:
            return float(np.intersect1d(self._values, other._values).size)
        k = min(self.size, other.size)
        if k < 2:
            raise EstimationError(
                "need at least 2 shared sketch slots to estimate intersection size"
            )
        union_values = np.union1d(self._values, other._values)[:k]
        u_k = float(union_values[-1])
        common = np.intersect1d(self._values, other._values, assume_unique=True)
        k_cap = int(np.searchsorted(common, u_k, side="right"))
        return (k_cap / k) * ((k - 1) / u_k)

    def containment_estimate(self, other: "KMVSketch", query_size: int) -> float:
        """Estimate ``C(Q, X) = |Q ∩ X| / |Q|`` with ``self`` as the query.

        Parameters
        ----------
        other:
            Sketch of the candidate record ``X``.
        query_size:
            Exact size of the query record (assumed known, as in the paper).
        """
        if query_size <= 0:
            raise ConfigurationError("query_size must be positive")
        return self.intersection_size_estimate(other) / float(query_size)
