"""G-KMV: a KMV sketch defined by a global hash-value threshold.

Instead of keeping a fixed number ``k`` of minimum hash values per record,
a G-KMV sketch keeps *every* hash value below a single dataset-wide
threshold ``τ`` (Section IV-A(2)).  Because the same threshold applies to
all records, the union of two sketches ``L_Q ∪ L_X`` is itself a valid
KMV synopsis of ``Q ∪ X`` with ``k = |L_Q ∪ L_X|`` (Theorem 2), which is
at least as large as the ``min(k_Q, k_X)`` of plain KMV and therefore has
lower variance (Lemma 2, Theorem 3).

Estimators (Equations 24–26):

* ``k = |L_Q ∪ L_X|``, ``K∩ = |L_Q ∩ L_X|``, ``U(k)`` the largest value in
  the union;
* ``D̂∩ = (K∩ / k) · (k − 1) / U(k)``;
* ``Ĉ(Q, X) = D̂∩ / |Q|``.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro._errors import ConfigurationError, EstimationError, SketchCompatibilityError
from repro.core.kmv import KMVSketch
from repro.hashing import UnitHash


class GKMVSketch:
    """Global-threshold KMV sketch of one record.

    Parameters
    ----------
    threshold:
        The global hash-value threshold ``τ`` in ``(0, 1]``.  All hash
        values ``h(e) <= τ`` of the record are retained.
    values:
        Sorted distinct retained hash values.
    record_size:
        Number of distinct elements in the sketched record.
    hasher:
        Hash function used; sketches with different hashers or thresholds
        cannot be combined.
    """

    __slots__ = ("_threshold", "_values", "_record_size", "_hasher")

    def __init__(
        self,
        threshold: float,
        values: np.ndarray,
        record_size: int,
        hasher: UnitHash,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ConfigurationError(
                f"global threshold must be in (0, 1], got {threshold}"
            )
        if record_size < 0:
            raise ConfigurationError("record_size must be non-negative")
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1:
            raise ConfigurationError("values must be a one-dimensional array")
        if arr.size and (arr.min() < 0.0 or arr.max() > threshold):
            raise ConfigurationError(
                "all retained hash values must lie in [0, threshold]"
            )
        if arr.size > 1 and not np.all(np.diff(arr) > 0):
            raise ConfigurationError("values must be strictly increasing (sorted, distinct)")
        self._threshold = float(threshold)
        self._values = arr
        self._record_size = int(record_size)
        self._hasher = hasher

    # -- construction ------------------------------------------------------
    @classmethod
    def from_record(
        cls,
        record: Iterable[object],
        threshold: float,
        hasher: UnitHash | None = None,
    ) -> "GKMVSketch":
        """Build the G-KMV sketch of a record under global threshold ``τ``."""
        if hasher is None:
            hasher = UnitHash()
        distinct = set(record)
        hashes = np.unique(hasher.hash_many(list(distinct)))
        kept = hashes[hashes <= threshold]
        return cls(
            threshold=threshold,
            values=kept,
            record_size=len(distinct),
            hasher=hasher,
        )

    @classmethod
    def from_hash_values(
        cls,
        hash_values: np.ndarray,
        threshold: float,
        record_size: int,
        hasher: UnitHash | None = None,
    ) -> "GKMVSketch":
        """Build a sketch from pre-computed hash values of a record."""
        if hasher is None:
            hasher = UnitHash()
        arr = np.unique(np.asarray(hash_values, dtype=np.float64))
        kept = arr[arr <= threshold]
        return cls(
            threshold=threshold,
            values=kept,
            record_size=record_size,
            hasher=hasher,
        )

    # -- introspection -----------------------------------------------------
    @property
    def threshold(self) -> float:
        """The global hash-value threshold ``τ``."""
        return self._threshold

    @property
    def values(self) -> np.ndarray:
        """Retained hash values, sorted ascending (read-only view)."""
        view = self._values.view()
        view.setflags(write=False)
        return view

    @property
    def size(self) -> int:
        """Number of retained hash values."""
        return int(self._values.size)

    @property
    def record_size(self) -> int:
        """Number of distinct elements in the sketched record."""
        return self._record_size

    @property
    def hasher(self) -> UnitHash:
        """Hash function used to build the sketch."""
        return self._hasher

    @property
    def is_exact(self) -> bool:
        """True when the sketch holds every hash value of the record."""
        return self.size >= self._record_size

    def memory_in_values(self) -> int:
        """Space accounting: number of stored signature values."""
        return self.size

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return (
            f"GKMVSketch(threshold={self._threshold:.6g}, size={self.size}, "
            f"record_size={self._record_size})"
        )

    # -- conversion --------------------------------------------------------
    def as_kmv(self) -> KMVSketch:
        """View this sketch as a plain KMV sketch with ``k = size``.

        Theorem 2 guarantees the retained values are exactly the ``size``
        smallest hash values of the record, so the conversion is lossless.
        """
        k = max(self.size, 1)
        return KMVSketch(
            k=k,
            values=self._values,
            record_size=self._record_size,
            hasher=self._hasher,
        )

    # -- estimation --------------------------------------------------------
    def _check_compatible(self, other: "GKMVSketch") -> None:
        if self._hasher != other._hasher:
            raise SketchCompatibilityError(
                "cannot combine G-KMV sketches built with different hash functions"
            )
        if not np.isclose(self._threshold, other._threshold):
            raise SketchCompatibilityError(
                "cannot combine G-KMV sketches with different global thresholds "
                f"({self._threshold} vs {other._threshold})"
            )

    def distinct_value_estimate(self) -> float:
        """Estimate the number of distinct elements of the record."""
        if self.is_exact:
            return float(self._record_size)
        if self.size < 2:
            raise EstimationError(
                "cannot estimate distinct values from a G-KMV sketch with fewer than 2 values"
            )
        return (self.size - 1) / float(self._values[-1])

    def union_size_estimate(self, other: "GKMVSketch") -> float:
        """Estimate ``|Q ∪ X|`` using the enlarged k of Equation 24."""
        self._check_compatible(other)
        if self.is_exact and other.is_exact:
            return float(np.union1d(self._values, other._values).size)
        union_values = np.union1d(self._values, other._values)
        k = int(union_values.size)
        if k < 2:
            raise EstimationError("need at least 2 retained values to estimate union size")
        return (k - 1) / float(union_values[-1])

    def intersection_size_estimate(self, other: "GKMVSketch") -> float:
        """Estimate ``|Q ∩ X|`` (Equation 25)."""
        self._check_compatible(other)
        if self.is_exact and other.is_exact:
            return float(np.intersect1d(self._values, other._values).size)
        union_values = np.union1d(self._values, other._values)
        k = int(union_values.size)
        if k < 2:
            # With fewer than two observed values there is no information;
            # report zero overlap rather than failing the whole search.
            return 0.0
        u_k = float(union_values[-1])
        k_cap = int(np.intersect1d(self._values, other._values, assume_unique=True).size)
        return (k_cap / k) * ((k - 1) / u_k)

    def containment_estimate(self, other: "GKMVSketch", query_size: int) -> float:
        """Estimate ``C(Q, X) = |Q ∩ X| / |Q|`` with ``self`` as the query (Eq. 26)."""
        if query_size <= 0:
            raise ConfigurationError("query_size must be positive")
        return self.intersection_size_estimate(other) / float(query_size)
