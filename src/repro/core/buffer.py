"""Exact bitmap buffer over the globally most frequent elements.

GB-KMV augments the G-KMV sketch with a per-record bitmap of size ``r``
that tracks, exactly, which of the ``r`` globally most frequent elements
(``E_H`` in the paper) the record contains.  Intersections over this part
are exact bitwise ANDs; the G-KMV estimator only has to cover the
residual, low-frequency elements (Section IV-A(3)).

Two classes:

``FrequentElementVocabulary``
    The shared mapping from the top-``r`` frequent elements to bit
    positions.  Built once per dataset, shared by every record buffer and
    by query buffers.
``FrequentElementBuffer``
    A single record's bitmap, stored as a Python integer bit mask (fast
    AND + ``bit_count``) plus the element count.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro._errors import ConfigurationError, SketchCompatibilityError

#: The paper accounts buffer space as ``r / 32`` "signature units" per
#: record, i.e. one stored hash value is worth 32 buffer bits.
BITS_PER_SIGNATURE_UNIT = 32


class FrequentElementVocabulary:
    """Mapping from the top-``r`` most frequent elements to bit positions.

    Parameters
    ----------
    elements:
        The frequent elements, ordered by decreasing frequency.  Position
        ``i`` of this sequence becomes bit ``i`` of every buffer.
    """

    __slots__ = ("_positions", "_elements")

    def __init__(self, elements: Sequence[object]) -> None:
        self._elements: tuple[object, ...] = tuple(elements)
        self._positions: dict[object, int] = {}
        for position, element in enumerate(self._elements):
            if element in self._positions:
                raise ConfigurationError(
                    f"duplicate frequent element {element!r} in vocabulary"
                )
            self._positions[element] = position

    @classmethod
    def from_frequencies(
        cls, frequencies: Mapping[object, int] | Counter, size: int
    ) -> "FrequentElementVocabulary":
        """Select the ``size`` most frequent elements from a frequency table.

        Ties are broken deterministically by the element representation so
        that vocabulary construction is reproducible.  Only the elements
        that can actually place (count at least the ``size``-th largest,
        found with one numpy partition) enter the Python comparison sort,
        so selection stays cheap even over large element universes —
        while producing exactly the ranking a full sort would.
        """
        if size < 0:
            raise ConfigurationError("vocabulary size must be non-negative")
        items = list(frequencies.items())
        if 0 < size < len(items):
            counts = np.fromiter(
                (count for _element, count in items),
                dtype=np.float64,
                count=len(items),
            )
            # The size-th largest count: anything strictly below it can
            # never rank in the top ``size``; ties at the cutoff stay in
            # and are resolved by the exact comparison sort below.
            cutoff = np.partition(counts, len(items) - size)[len(items) - size]
            items = [item for item in items if item[1] >= cutoff]
        ranked = sorted(items, key=lambda item: (-item[1], repr(item[0])))
        return cls([element for element, _count in ranked[:size]])

    @classmethod
    def from_records(
        cls, records: Iterable[Iterable[object]], size: int
    ) -> "FrequentElementVocabulary":
        """Count element frequencies over a dataset and keep the top ``size``."""
        counts: Counter = Counter()
        for record in records:
            counts.update(set(record))
        return cls.from_frequencies(counts, size)

    # -- introspection -----------------------------------------------------
    @property
    def size(self) -> int:
        """Number of frequent elements (bitmap width ``r``)."""
        return len(self._elements)

    @property
    def elements(self) -> tuple[object, ...]:
        """The frequent elements, ordered by bit position."""
        return self._elements

    def __len__(self) -> int:
        return self.size

    def __contains__(self, element: object) -> bool:
        return element in self._positions

    def __iter__(self) -> Iterator[object]:
        return iter(self._elements)

    def position(self, element: object) -> int:
        """Bit position of a frequent element.

        Raises
        ------
        KeyError
            If the element is not part of the vocabulary.
        """
        return self._positions[element]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FrequentElementVocabulary):
            return NotImplemented
        return self._elements == other._elements

    def __hash__(self) -> int:
        return hash(self._elements)

    def __repr__(self) -> str:
        return f"FrequentElementVocabulary(size={self.size})"

    # -- space accounting --------------------------------------------------
    def buffer_cost_in_values(self) -> float:
        """Per-record space cost of a buffer, in signature-value units.

        The paper charges ``r / 32`` units per record (one 32-bit word can
        hold 32 bitmap bits, whereas one signature value occupies a word).
        """
        return self.size / BITS_PER_SIGNATURE_UNIT

    # -- buffer construction -----------------------------------------------
    def buffer_for(self, record: Iterable[object]) -> "FrequentElementBuffer":
        """Build the bitmap buffer of a record under this vocabulary."""
        mask = 0
        for element in set(record):
            position = self._positions.get(element)
            if position is not None:
                mask |= 1 << position
        return FrequentElementBuffer(vocabulary=self, mask=mask)

    def split_record(
        self, record: Iterable[object]
    ) -> tuple["FrequentElementBuffer", list[object]]:
        """Split a record into its buffer and its residual (infrequent) elements."""
        mask = 0
        residual: list[object] = []
        for element in set(record):
            position = self._positions.get(element)
            if position is None:
                residual.append(element)
            else:
                mask |= 1 << position
        return FrequentElementBuffer(vocabulary=self, mask=mask), residual


class FrequentElementBuffer:
    """Bitmap over the frequent-element vocabulary for one record."""

    __slots__ = ("_vocabulary", "_mask")

    def __init__(self, vocabulary: FrequentElementVocabulary, mask: int = 0) -> None:
        if mask < 0:
            raise ConfigurationError("bitmap mask must be non-negative")
        if mask >> vocabulary.size:
            raise ConfigurationError(
                "bitmap mask has bits set beyond the vocabulary size"
            )
        self._vocabulary = vocabulary
        self._mask = int(mask)

    # -- introspection -----------------------------------------------------
    @property
    def vocabulary(self) -> FrequentElementVocabulary:
        """The shared vocabulary this buffer is defined over."""
        return self._vocabulary

    @property
    def mask(self) -> int:
        """Raw integer bit mask."""
        return self._mask

    @property
    def count(self) -> int:
        """Number of frequent elements present in the record."""
        return self._mask.bit_count()

    def __len__(self) -> int:
        return self.count

    def __contains__(self, element: object) -> bool:
        try:
            position = self._vocabulary.position(element)
        except KeyError:
            return False
        return bool((self._mask >> position) & 1)

    def elements(self) -> list[object]:
        """The frequent elements present in the record."""
        return [
            element
            for position, element in enumerate(self._vocabulary.elements)
            if (self._mask >> position) & 1
        ]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FrequentElementBuffer):
            return NotImplemented
        return self._vocabulary == other._vocabulary and self._mask == other._mask

    def __repr__(self) -> str:
        return f"FrequentElementBuffer(count={self.count}, width={self._vocabulary.size})"

    # -- set operations ----------------------------------------------------
    def _check_compatible(self, other: "FrequentElementBuffer") -> None:
        if self._vocabulary is not other._vocabulary and self._vocabulary != other._vocabulary:
            raise SketchCompatibilityError(
                "buffers built over different frequent-element vocabularies"
            )

    def intersection_count(self, other: "FrequentElementBuffer") -> int:
        """Exact ``|H_Q ∩ H_X|`` — number of shared frequent elements."""
        self._check_compatible(other)
        return (self._mask & other._mask).bit_count()

    def union_count(self, other: "FrequentElementBuffer") -> int:
        """Exact number of frequent elements present in either record."""
        self._check_compatible(other)
        return (self._mask | other._mask).bit_count()

    def difference_count(self, other: "FrequentElementBuffer") -> int:
        """Exact number of frequent elements in ``self`` but not ``other``."""
        self._check_compatible(other)
        return (self._mask & ~other._mask).bit_count()
