"""Batched sketch estimators: whole-candidate-set versions of Eqs. 9–10 and 24–26.

The per-sketch estimator methods (:class:`~repro.core.kmv.KMVSketch`,
:class:`~repro.core.gkmv.GKMVSketch`, :class:`~repro.core.gbkmv.GBKMVSketch`)
score one ``(query, record)`` pair per call.  The functions here evaluate
the *same* formulas for one query against every record of a columnar
store at once, using vectorised merges instead of per-pair Python calls.
They are the estimator layer the batched query engine
(:meth:`~repro.core.index.GBKMVIndex.search_many` and the baselines in
:mod:`repro.baselines.kmv_search`) is built on.  For whole workloads,
:class:`KMVBatchEstimator` additionally offers a *fused* multi-query
Equation-10 path (:meth:`KMVBatchEstimator.match_workload` +
:meth:`KMVBatchEstimator.intersection_workload_block`) mirroring the
columnar store's fused kernels: one join-index pass for every query at
once, blocked over record rows.

Bitwise fidelity is a hard requirement, not an aspiration: every function
reproduces the corresponding scalar estimator's branch structure (exact
short-circuits, degenerate ``k < 2`` cases) and evaluates the arithmetic
in the same order, so the batched scores are equal — as floating-point
bit patterns — to what a per-record loop over sketch objects produces.
The test suite asserts this identity.

Conventions
-----------
* Query hash values are sorted ascending and distinct.
* ``*_exact`` flags say whether a sketch retains *every* hash value of
  its record, enabling the exact short-circuit of the scalar estimators.
* Union estimates that the scalar API would refuse (fewer than two
  retained values and not exact) are reported as ``nan``.
* Rows of the segmented store are *physical* rows; tombstoned rows (in
  the sealed base or the mutable tail) are skipped — ``0.0``
  intersection, ``nan`` union — via the optional ``alive_rows`` mask.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro._errors import ConfigurationError
from repro.core.store import ColumnarSketchStore, match_sorted_run


@runtime_checkable
class BatchEstimator(Protocol):
    """Estimators that score one query against every stored record at once."""

    def intersection_many(
        self, query_values: np.ndarray, query_record_size: int
    ) -> np.ndarray:  # pragma: no cover - protocol
        """Estimated ``|Q ∩ X|`` for every record."""
        ...

    def containment_many(
        self, query_values: np.ndarray, query_record_size: int, query_size: int
    ) -> np.ndarray:  # pragma: no cover - protocol
        """Estimated ``C(Q, X)`` for every record."""
        ...


def residual_intersection_estimates(
    intersection_counts: np.ndarray,
    row_sizes: np.ndarray,
    row_max: np.ndarray,
    row_exact: np.ndarray,
    query_num_values,
    query_max,
    query_exact,
    alive_rows: np.ndarray | None = None,
) -> np.ndarray:
    """G-KMV intersection estimates (Equation 25) for whole candidate sets.

    Accepts either one query (scalar query parameters, 1-D counts) or a
    workload (``(B, n)`` counts with ``(B, 1)`` query parameter columns);
    everything broadcasts.

    Parameters
    ----------
    intersection_counts:
        ``K∩ = |L_Q ∩ L_X|`` per record (int), from a store kernel.
    row_sizes, row_max, row_exact:
        Per-record stored-value counts, largest stored values, and
        exactness flags (the store's derived columns).
    query_num_values, query_max, query_exact:
        The query sketch's value count, largest value (``0.0`` when
        empty) and exactness flag.
    alive_rows:
        Optional liveness mask over rows (the segmented store's
        tombstone complement); tombstoned rows report ``0.0``.  ``None``
        skips the masking pass entirely, keeping the static path
        bit-identical to the scalar estimators.
    """
    sizes = np.asarray(row_sizes, dtype=np.float64)
    k_cap = np.asarray(intersection_counts, dtype=np.float64)
    # k of Equation 24: |L_Q ∪ L_X| = |L_Q| + |L_X| − K∩; U(k) is the
    # largest hash value in the union because all values are <= τ.
    k_union = query_num_values + sizes - k_cap
    u_k = np.maximum(row_max, query_max)

    both_exact = row_exact & query_exact
    estimable = (~both_exact) & (k_union >= 2) & (u_k > 0.0)
    # Branchless evaluation: compute the formula everywhere (divisions by
    # zero are discarded by the selects below), then pick per element.
    # Elementwise, the selected values are bit-identical to what masked
    # assignment would produce, and no gather/scatter passes are needed.
    with np.errstate(divide="ignore", invalid="ignore"):
        formula = (k_cap / k_union) * ((k_union - 1.0) / u_k)
    estimates = np.where(both_exact, k_cap, np.where(estimable, formula, 0.0))
    if alive_rows is not None:
        estimates = np.where(alive_rows, estimates, 0.0)
    return estimates


def residual_union_estimates(
    intersection_counts: np.ndarray,
    row_sizes: np.ndarray,
    row_max: np.ndarray,
    row_exact: np.ndarray,
    query_num_values,
    query_max,
    query_exact,
    alive_rows: np.ndarray | None = None,
) -> np.ndarray:
    """G-KMV union-size estimates (Equation 24) for whole candidate sets.

    Exact pairs report the exact union of their hash sets; estimable
    pairs report ``(k − 1) / U(k)``; degenerate pairs (union of fewer
    than two observed values, not exact) report ``nan`` — the batch
    analogue of the scalar API's :class:`~repro._errors.EstimationError`.
    Tombstoned rows (``alive_rows`` false) also report ``nan``: a union
    with a deleted record is as unanswerable as a degenerate one.
    """
    sizes = np.asarray(row_sizes, dtype=np.float64)
    k_cap = np.asarray(intersection_counts, dtype=np.float64)
    k_union = query_num_values + sizes - k_cap
    u_k = np.maximum(row_max, query_max)

    both_exact = row_exact & query_exact
    estimable = (~both_exact) & (k_union >= 2) & (u_k > 0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        formula = (k_union - 1.0) / u_k
    estimates = np.where(both_exact, k_union, np.where(estimable, formula, np.nan))
    if alive_rows is not None:
        estimates = np.where(alive_rows, estimates, np.nan)
    return estimates


def kmv_intersection_estimates(
    query_values: np.ndarray,
    query_exact: bool,
    record_matrix: np.ndarray,
    row_counts: np.ndarray,
    record_sizes: np.ndarray,
) -> np.ndarray:
    """Plain-KMV intersection estimates (Equation 10) for whole candidate sets.

    Parameters
    ----------
    query_values:
        The query sketch's values, sorted ascending and distinct.
    query_exact:
        Whether the query sketch retains every hash value of the query.
    record_matrix:
        Dense ``(n, k)`` matrix of per-record sketch values, each row
        sorted ascending and padded with ``+inf``.
    row_counts:
        Number of real (non-padding) values per row.
    record_sizes:
        Distinct-element count of each sketched record.

    The per-pair ``k`` is ``min(|L_Q|, |L_X|)`` and ``U(k)`` is the k-th
    smallest *distinct* value of ``L_Q ∪ L_X``, found by sorting the
    row-wise concatenation of the two value sets — one ``np.sort`` call
    for the whole candidate set.
    """
    matrix = np.asarray(record_matrix, dtype=np.float64)
    num_records = matrix.shape[0]
    query_values = np.asarray(query_values, dtype=np.float64)
    query_count = int(query_values.size)
    estimates = np.zeros(num_records, dtype=np.float64)
    if num_records == 0 or query_count == 0:
        return estimates

    positions = np.searchsorted(query_values, matrix)
    member = np.zeros(matrix.shape, dtype=bool)
    in_range = positions < query_count
    member[in_range] = query_values[positions[in_range]] == matrix[in_range]
    common = member.sum(axis=1, dtype=np.int64)

    k = np.minimum(row_counts, query_count).astype(np.int64)
    record_exact = row_counts >= record_sizes
    use_common = (query_exact & record_exact) | (k < 2)
    estimates[use_common] = common[use_common]

    needs_formula = ~use_common
    if np.any(needs_formula):
        rows = np.nonzero(needs_formula)[0]
        combined = np.concatenate(
            [matrix[rows], np.broadcast_to(query_values, (rows.size, query_count))],
            axis=1,
        )
        merged = np.sort(combined, axis=1)
        distinct = np.ones(merged.shape, dtype=bool)
        distinct[:, 1:] = merged[:, 1:] != merged[:, :-1]
        distinct &= np.isfinite(merged)
        ranks = np.cumsum(distinct, axis=1)
        k_rows = k[rows]
        # First column whose distinct-rank reaches k = the k-th smallest
        # distinct union value U(k).
        column = (ranks < k_rows[:, np.newaxis]).sum(axis=1)
        u_k = merged[np.arange(rows.size), column]
        k_cap = (member[rows] & (matrix[rows] <= u_k[:, np.newaxis])).sum(
            axis=1, dtype=np.int64
        )
        k_f = k_rows.astype(np.float64)
        estimates[rows] = (k_cap / k_f) * ((k_f - 1.0) / u_k)
    return estimates


def containment_from_intersections(
    intersections: np.ndarray, query_size: int
) -> np.ndarray:
    """Turn intersection estimates into containment estimates ``D̂∩ / |Q|``."""
    if query_size <= 0:
        raise ConfigurationError("query_size must be positive")
    return np.asarray(intersections, dtype=np.float64) / float(query_size)


class GKMVBatchEstimator:
    """Batched G-KMV estimators over a columnar store of residual sketches.

    The store's rows are the candidate sketches; each call scores one
    query (given by its kept hash values and its residual record size)
    against every *physical* row at once.  Tombstoned rows in either
    segment of the store are skipped (``0.0`` intersection, ``nan``
    union); map rows to record ids with the store's
    :meth:`~repro.core.store.ColumnarSketchStore.result_view`.
    """

    def __init__(self, store: ColumnarSketchStore) -> None:
        self._store = store

    @property
    def store(self) -> ColumnarSketchStore:
        """The underlying columnar store."""
        return self._store

    def _query_parts(self, query_values: np.ndarray, query_record_size: int):
        query_values = np.asarray(query_values, dtype=np.float64)
        query_max = float(query_values[-1]) if query_values.size else 0.0
        query_exact = bool(query_values.size >= query_record_size)
        return query_values, query_max, query_exact

    def _alive(self) -> np.ndarray | None:
        _row_ids, alive = self._store.result_view()
        return alive

    def intersection_many(
        self, query_values: np.ndarray, query_record_size: int
    ) -> np.ndarray:
        """Equation 25 against every stored row (``0.0`` for tombstones)."""
        store = self._store
        query_values, query_max, query_exact = self._query_parts(
            query_values, query_record_size
        )
        counts = store.intersection_counts(query_values)
        return residual_intersection_estimates(
            counts,
            store.row_sizes,
            store.row_max,
            store.row_exact,
            query_values.size,
            query_max,
            query_exact,
            alive_rows=self._alive(),
        )

    def union_many(
        self, query_values: np.ndarray, query_record_size: int
    ) -> np.ndarray:
        """Equation 24 against every stored row (``nan`` where degenerate or dead)."""
        store = self._store
        query_values, query_max, query_exact = self._query_parts(
            query_values, query_record_size
        )
        counts = store.intersection_counts(query_values)
        return residual_union_estimates(
            counts,
            store.row_sizes,
            store.row_max,
            store.row_exact,
            query_values.size,
            query_max,
            query_exact,
            alive_rows=self._alive(),
        )

    def containment_many(
        self, query_values: np.ndarray, query_record_size: int, query_size: int
    ) -> np.ndarray:
        """Equation 26 against every stored record."""
        return containment_from_intersections(
            self.intersection_many(query_values, query_record_size), query_size
        )


@dataclass(frozen=True)
class KMVWorkloadMatches:
    """All (query, stored sketch value) matches of a KMV workload, row-sorted.

    The plain-KMV analogue of the columnar store's
    :class:`~repro.core.store.WorkloadMatches`, with the matched values
    carried along (Equation 10 needs them for the ``U(k)`` cut-off).
    """

    #: Number of queries ``B`` in the workload.
    num_queries: int
    #: Record row of each matched occurrence, sorted ascending.
    rows: np.ndarray
    #: Query id of each matched occurrence, parallel to ``rows``.
    query_ids: np.ndarray
    #: Matched sketch value of each occurrence, parallel to ``rows``.
    values: np.ndarray


class KMVBatchEstimator:
    """Batched plain-KMV estimators over a dense padded value matrix."""

    def __init__(
        self,
        record_matrix: np.ndarray,
        row_counts: np.ndarray,
        record_sizes: np.ndarray,
    ) -> None:
        self._matrix = np.asarray(record_matrix, dtype=np.float64)
        self._row_counts = np.asarray(row_counts, dtype=np.int64)
        self._record_sizes = np.asarray(record_sizes, dtype=np.int64)
        # Value→record join index over the finite matrix entries, built
        # lazily for the fused multi-query path.
        self._join_values: np.ndarray | None = None
        self._join_rows: np.ndarray | None = None

    @classmethod
    def from_value_rows(
        cls, rows: Sequence[np.ndarray], record_sizes: Sequence[int], k: int
    ) -> "KMVBatchEstimator":
        """Pack per-record sorted value arrays into the padded matrix."""
        num_records = len(rows)
        matrix = np.full((num_records, max(int(k), 1)), np.inf, dtype=np.float64)
        counts = np.zeros(num_records, dtype=np.int64)
        for row_id, values in enumerate(rows):
            counts[row_id] = values.size
            matrix[row_id, : values.size] = values
        return cls(matrix, counts, np.asarray(record_sizes, dtype=np.int64))

    @property
    def num_records(self) -> int:
        """Number of candidate rows."""
        return int(self._matrix.shape[0])

    @property
    def record_sizes(self) -> np.ndarray:
        """Distinct-element count of each sketched record."""
        return self._record_sizes

    def intersection_one(
        self, query_values: np.ndarray, query_exact: bool, record_id: int
    ) -> float:
        """Equation 10 against a single record (single-row slice of the batch)."""
        estimates = kmv_intersection_estimates(
            np.asarray(query_values, dtype=np.float64),
            bool(query_exact),
            self._matrix[record_id : record_id + 1],
            self._row_counts[record_id : record_id + 1],
            self._record_sizes[record_id : record_id + 1],
        )
        return float(estimates[0])

    def intersection_many(
        self, query_values: np.ndarray, query_record_size: int
    ) -> np.ndarray:
        """Equation 10 against every stored record."""
        query_values = np.asarray(query_values, dtype=np.float64)
        query_exact = bool(query_values.size >= query_record_size)
        return kmv_intersection_estimates(
            query_values,
            query_exact,
            self._matrix,
            self._row_counts,
            self._record_sizes,
        )

    def containment_many(
        self, query_values: np.ndarray, query_record_size: int, query_size: int
    ) -> np.ndarray:
        """Containment from Equation 10 against every stored record."""
        return containment_from_intersections(
            self.intersection_many(query_values, query_record_size), query_size
        )

    # ------------------------------------------------- fused workload kernels
    def _join_index(self) -> tuple[np.ndarray, np.ndarray]:
        """Every finite sketch value, sorted, with its record row alongside."""
        if self._join_values is None or self._join_rows is None:
            finite = np.isfinite(self._matrix)
            values = self._matrix[finite]
            rows = np.repeat(
                np.arange(self._matrix.shape[0], dtype=np.int64),
                finite.sum(axis=1),
            )
            order = np.argsort(values, kind="stable")
            self._join_values = values[order]
            self._join_rows = rows[order]
        return self._join_values, self._join_rows

    def match_workload(
        self, queries_values: Sequence[np.ndarray]
    ) -> KMVWorkloadMatches:
        """Resolve every query's values against all sketches in one fused pass.

        One concatenated ``searchsorted`` run over the join index — no
        per-query Python iteration — returning the (query, row, value)
        matches sorted by row so :meth:`intersection_workload_block` can
        slice any row range.  Shares
        :func:`~repro.core.store.match_sorted_run` with the columnar
        store's workload kernels.
        """
        join_values, join_rows = self._join_index()
        match_qids, match_rows, match_values = match_sorted_run(
            join_values, join_rows, queries_values
        )
        return KMVWorkloadMatches(
            len(queries_values), match_rows, match_qids, match_values
        )

    def intersection_workload_block(
        self,
        query_matrix: np.ndarray,
        query_counts: np.ndarray,
        query_exact: np.ndarray,
        matches: KMVWorkloadMatches,
        row_lo: int = 0,
        row_hi: int | None = None,
    ) -> np.ndarray:
        """Equation 10 for every (query, record) pair in a block of rows.

        The fused multi-query counterpart of
        :func:`kmv_intersection_estimates`: estimates are bit-identical
        per pair, but the common counts come from the precomputed match
        run (one flat ``bincount``) and the union sort covers the whole
        block's formula pairs at once.  Pairs with no shared value
        estimate to exactly ``0.0`` down both branches, so they skip the
        union sort entirely.

        Parameters
        ----------
        query_matrix:
            Dense ``(B, q_max)`` matrix of per-query sketch values, each
            row sorted ascending and padded with ``+inf``.
        query_counts:
            Number of real (non-padding) values per query.
        query_exact:
            Whether each query sketch retains every hash value of its
            query.
        matches:
            Output of :meth:`match_workload` for the same workload.
        row_lo, row_hi:
            The block of record rows to score (defaults to all rows).
        """
        if row_hi is None:
            row_hi = int(self._matrix.shape[0])
        block = row_hi - row_lo
        num_queries = matches.num_queries
        lo = int(np.searchsorted(matches.rows, row_lo, side="left"))
        hi = int(np.searchsorted(matches.rows, row_hi, side="left"))
        common = np.zeros((num_queries, block), dtype=np.int64)
        if hi > lo:
            flat = matches.query_ids[lo:hi] * block + (matches.rows[lo:hi] - row_lo)
            common = (
                np.bincount(flat, minlength=num_queries * block)
                .reshape(num_queries, block)
                .astype(np.int64, copy=False)
            )
        row_counts = self._row_counts[row_lo:row_hi]
        record_sizes = self._record_sizes[row_lo:row_hi]
        query_counts = np.asarray(query_counts, dtype=np.int64)
        k = np.minimum(row_counts[np.newaxis, :], query_counts[:, np.newaxis])
        record_exact = row_counts >= record_sizes
        use_common = (
            np.asarray(query_exact, dtype=bool)[:, np.newaxis]
            & record_exact[np.newaxis, :]
        ) | (k < 2)
        estimates = np.zeros((num_queries, block), dtype=np.float64)
        estimates[use_common] = common[use_common]

        needs_formula = ~use_common & (common > 0)
        if np.any(needs_formula):
            pair_queries, pair_cols = np.nonzero(needs_formula)
            num_pairs = pair_queries.size
            combined = np.concatenate(
                [
                    self._matrix[row_lo:row_hi][pair_cols],
                    np.asarray(query_matrix, dtype=np.float64)[pair_queries],
                ],
                axis=1,
            )
            merged = np.sort(combined, axis=1)
            distinct = np.ones(merged.shape, dtype=bool)
            distinct[:, 1:] = merged[:, 1:] != merged[:, :-1]
            distinct &= np.isfinite(merged)
            ranks = np.cumsum(distinct, axis=1)
            k_pairs = k[pair_queries, pair_cols]
            column = (ranks < k_pairs[:, np.newaxis]).sum(axis=1)
            u_k = merged[np.arange(num_pairs), column]
            # K∩ = shared values at or below U(k), counted straight off the
            # match run: scatter each pair to its position, then bincount
            # the occurrences that survive the cut-off.
            pair_position = np.full((num_queries, block), -1, dtype=np.int64)
            pair_position[pair_queries, pair_cols] = np.arange(
                num_pairs, dtype=np.int64
            )
            positions = pair_position[
                matches.query_ids[lo:hi], matches.rows[lo:hi] - row_lo
            ]
            in_formula = positions >= 0
            positions = positions[in_formula]
            within = matches.values[lo:hi][in_formula] <= u_k[positions]
            k_cap = np.bincount(positions[within], minlength=num_pairs).astype(
                np.float64
            )
            k_f = k_pairs.astype(np.float64)
            estimates[pair_queries, pair_cols] = (k_cap / k_f) * ((k_f - 1.0) / u_k)
        return estimates
