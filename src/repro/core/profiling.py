"""Build-stage wall-clock profiling for the bulk construction pipeline.

Construction of a GB-KMV index is a handful of whole-dataset array
passes — flatten/dedup, vocabulary selection, sketching, the store
append — and which of them dominates shifts as the pipeline evolves
(the lexsort dedup rewrite, the sharded fan-out).  A
:class:`BuildProfile` records each stage's wall time plus the rows and
bytes it processed, so benchmarks can report *where* a build spends its
time instead of one opaque total.

The profile is threaded through the pipeline as an optional argument
(``profile=None`` keeps every path zero-overhead) and is shared across
threads during a parallel sharded build, so :meth:`BuildProfile.record`
takes a lock.  The aggregated view — :meth:`BuildProfile.stage_seconds`
summing every recording of a stage name — is what lands in the
``BENCH_*`` payloads via :meth:`BuildProfile.as_dict`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass


@dataclass(frozen=True)
class BuildStage:
    """One recorded pipeline stage: wall time plus work-size metadata.

    ``rows`` is the number of records the stage processed (per-shard
    recordings of the same stage sum to the dataset size) and ``nbytes``
    the payload volume it produced or moved — both informational, both
    zero when a stage has no natural measure.
    """

    name: str
    seconds: float
    rows: int = 0
    nbytes: int = 0


class BuildProfile:
    """Thread-safe accumulator of :class:`BuildStage` recordings.

    One profile instance covers one logical build: the unsharded
    pipeline records each stage once, a sharded build records the shared
    stages (flatten, vocabulary) once and the per-shard stages (sketch,
    append) once per shard — possibly concurrently from executor
    threads, hence the lock.
    """

    def __init__(self) -> None:
        self._stages: list[BuildStage] = []
        self._lock = threading.Lock()

    def record(
        self, name: str, seconds: float, rows: int = 0, nbytes: int = 0
    ) -> None:
        """Append one stage recording (thread-safe)."""
        stage = BuildStage(
            name=str(name), seconds=float(seconds), rows=int(rows), nbytes=int(nbytes)
        )
        with self._lock:
            self._stages.append(stage)

    @contextmanager
    def stage(self, name: str, rows: int = 0, nbytes: int = 0):
        """Time a ``with`` block as one recording of ``name``."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.record(name, time.perf_counter() - start, rows=rows, nbytes=nbytes)

    @property
    def stages(self) -> tuple[BuildStage, ...]:
        """Every recording, in completion order."""
        with self._lock:
            return tuple(self._stages)

    def stage_seconds(self) -> dict[str, float]:
        """Total wall time per stage name (parallel recordings sum)."""
        totals: dict[str, float] = {}
        for stage in self.stages:
            totals[stage.name] = totals.get(stage.name, 0.0) + stage.seconds
        return totals

    def stage_rows(self) -> dict[str, int]:
        """Total rows per stage name."""
        totals: dict[str, int] = {}
        for stage in self.stages:
            totals[stage.name] = totals.get(stage.name, 0) + stage.rows
        return totals

    def total_seconds(self) -> float:
        """Sum of every recording (counts overlapped parallel stages twice)."""
        return float(sum(stage.seconds for stage in self.stages))

    def as_dict(self) -> dict:
        """JSON-ready summary for the ``BENCH_*`` payloads."""
        return {
            "stage_seconds": {
                name: round(seconds, 4)
                for name, seconds in self.stage_seconds().items()
            },
            "stage_rows": self.stage_rows(),
            "stages": [
                {
                    "name": stage.name,
                    "seconds": round(stage.seconds, 4),
                    "rows": stage.rows,
                    "nbytes": stage.nbytes,
                }
                for stage in self.stages
            ],
        }
