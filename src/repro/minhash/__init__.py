"""MinHash substrate: signatures, banded LSH and LSH Forest.

The LSH Ensemble baseline (Section III-A) is built from three pieces that
live here:

``MinHashSignature``
    Per-record minwise-hashing signature with the Jaccard estimator of
    Equation 5 and the containment transformation of Equation 14.
``MinHashLSH``
    Classic banded LSH index with ``(b, r)`` parameters and the standard
    candidate-probability model ``1 − (1 − s^r)^b``.
``LSHForest``
    Prefix-tree variant supporting variable match depth at query time,
    which is what lets LSH Ensemble tune its parameters per query.
``optimal_lsh_params``
    Numerical minimisation of expected false positives + false negatives
    over feasible ``(b, r)`` pairs for a Jaccard threshold.
"""

from repro.minhash.signature import MinHashSignature
from repro.minhash.lsh import MinHashLSH, candidate_probability, optimal_lsh_params
from repro.minhash.lsh_forest import LSHForest

__all__ = [
    "MinHashSignature",
    "MinHashLSH",
    "LSHForest",
    "candidate_probability",
    "optimal_lsh_params",
]
