"""LSH Forest (Bawa, Condie, Ganesan; WWW 2005) over MinHash signatures.

A banded LSH index fixes the number of rows per band at build time; an
LSH Forest instead stores, for each of ``num_trees`` trees, the whole
per-tree slice of the signature as a sorted key and answers queries at
*any* prefix depth ``r`` at query time.  This is the indexing structure
LSH Ensemble relies on so that the ``(b, r)`` trade-off can be tuned per
query and per partition without rebuilding the index.

The implementation keeps, per tree, a dictionary from key prefixes of
every depth to the records holding them.  This trades memory for very
simple and fast queries, which is the right trade-off at the scales of
the reproduction benchmarks.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable

import numpy as np

from repro._errors import ConfigurationError
from repro.minhash.signature import MinHashSignature


class LSHForest:
    """A forest of prefix-indexed MinHash trees with query-time depth.

    Parameters
    ----------
    num_trees:
        Number of trees ``l``; the signature is split into ``l``
        consecutive slices of ``depth`` values each.
    depth:
        Maximum prefix depth per tree (number of signature values a tree
        consumes).  ``num_trees * depth`` must not exceed the signature
        length of inserted records.
    """

    def __init__(self, num_trees: int, depth: int) -> None:
        if num_trees < 1 or depth < 1:
            raise ConfigurationError("num_trees and depth must be >= 1")
        self._num_trees = int(num_trees)
        self._depth = int(depth)
        # _tables[tree][prefix_len][prefix_bytes] -> list of keys
        self._tables: list[list[dict[bytes, list[Hashable]]]] = [
            [defaultdict(list) for _ in range(self._depth + 1)]
            for _ in range(self._num_trees)
        ]
        self._keys: set[Hashable] = set()

    @property
    def num_trees(self) -> int:
        """Number of trees ``l``."""
        return self._num_trees

    @property
    def depth(self) -> int:
        """Maximum prefix depth per tree."""
        return self._depth

    @property
    def num_perm_required(self) -> int:
        """Minimum signature length required by this forest."""
        return self._num_trees * self._depth

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._keys

    def _tree_slices(self, signature: MinHashSignature) -> list[np.ndarray]:
        if signature.size < self.num_perm_required:
            raise ConfigurationError(
                f"signature of length {signature.size} is too short for a forest "
                f"requiring {self.num_perm_required} values"
            )
        values = signature.values
        return [
            values[tree * self._depth : (tree + 1) * self._depth]
            for tree in range(self._num_trees)
        ]

    def insert(self, key: Hashable, signature: MinHashSignature) -> None:
        """Insert a keyed signature, registering every prefix of every tree."""
        if key in self._keys:
            raise ConfigurationError(f"key {key!r} already inserted")
        for tree, chunk in enumerate(self._tree_slices(signature)):
            for prefix_len in range(1, self._depth + 1):
                prefix = chunk[:prefix_len].tobytes()
                self._tables[tree][prefix_len][prefix].append(key)
        self._keys.add(key)

    def query(self, signature: MinHashSignature, depth: int) -> set[Hashable]:
        """Keys sharing a prefix of length ``depth`` with the query in any tree.

        ``depth`` plays the role of ``r`` (rows per band) and the number
        of trees the role of ``b`` (bands): smaller depths cast a wider,
        higher-recall net.
        """
        if not 1 <= depth <= self._depth:
            raise ConfigurationError(f"depth must be in [1, {self._depth}], got {depth}")
        candidates: set[Hashable] = set()
        for tree, chunk in enumerate(self._tree_slices(signature)):
            prefix = chunk[:depth].tobytes()
            bucket = self._tables[tree][depth].get(prefix)
            if bucket:
                candidates.update(bucket)
        return candidates

    def keys(self) -> set[Hashable]:
        """All keys currently indexed."""
        return set(self._keys)
