"""Minwise hashing signatures (Broder 1997).

A MinHash signature of a record ``X`` under ``k`` independent hash
functions is the vector of per-function minimum hash values.  The
fraction of positions where two signatures agree is an unbiased estimator
of the Jaccard similarity (Equations 4–7 of the paper), and containment
similarity follows through the transformation of Equation 14:

    t̂ = (x/q + 1) · ŝ / (1 + ŝ)

where ``x`` is the record size and ``q`` the query size.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro._errors import ConfigurationError, SketchCompatibilityError
from repro.hashing import HashFamily


class MinHashSignature:
    """MinHash signature of one record.

    Parameters
    ----------
    values:
        The per-function minimum hash values (length = family size).
    record_size:
        Number of distinct elements in the record.
    family:
        The hash family used; signatures from different families cannot be
        compared.
    """

    __slots__ = ("_values", "_record_size", "_family")

    def __init__(self, values: np.ndarray, record_size: int, family: HashFamily) -> None:
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1:
            raise ConfigurationError("signature values must be a one-dimensional array")
        if arr.size != family.size:
            raise ConfigurationError(
                f"signature has {arr.size} values but the family has {family.size} functions"
            )
        if record_size <= 0:
            raise ConfigurationError("record_size must be positive")
        self._values = arr
        self._record_size = int(record_size)
        self._family = family

    @classmethod
    def from_record(
        cls, record: Iterable[object], family: HashFamily
    ) -> "MinHashSignature":
        """Compute the signature of a record under a hash family."""
        distinct = list(set(record))
        if not distinct:
            raise ConfigurationError("cannot MinHash an empty record")
        values = family.min_hashes(distinct)
        return cls(values=values, record_size=len(distinct), family=family)

    # -- introspection -----------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """The signature values (read-only view)."""
        view = self._values.view()
        view.setflags(write=False)
        return view

    @property
    def size(self) -> int:
        """Number of hash functions (signature length ``k``)."""
        return int(self._values.size)

    @property
    def record_size(self) -> int:
        """Number of distinct elements in the sketched record."""
        return self._record_size

    @property
    def family(self) -> HashFamily:
        """The hash family the signature was computed with."""
        return self._family

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return f"MinHashSignature(size={self.size}, record_size={self._record_size})"

    def memory_in_values(self) -> int:
        """Space accounting: number of stored signature values."""
        return self.size

    # -- estimation --------------------------------------------------------
    def _check_compatible(self, other: "MinHashSignature") -> None:
        if self._family != other._family:
            raise SketchCompatibilityError(
                "cannot compare MinHash signatures from different hash families"
            )

    def jaccard_estimate(self, other: "MinHashSignature") -> float:
        """Estimate the Jaccard similarity (Equation 5)."""
        self._check_compatible(other)
        return float(np.mean(self._values == other._values))

    def containment_estimate(
        self, other: "MinHashSignature", query_size: int | None = None
    ) -> float:
        """Estimate ``C(Q, X)`` with ``self`` as the query via Equation 14.

        Parameters
        ----------
        other:
            Signature of the candidate record ``X``.
        query_size:
            Exact query size ``|Q|``; defaults to this signature's record
            size.
        """
        q = self._record_size if query_size is None else int(query_size)
        if q <= 0:
            raise ConfigurationError("query size must be positive")
        s_hat = self.jaccard_estimate(other)
        x = other.record_size
        estimate = (x / q + 1.0) * s_hat / (1.0 + s_hat)
        return float(min(estimate, 1.0))

    def band_hashes(self, num_bands: int, rows_per_band: int) -> list[bytes]:
        """Digest the signature into per-band byte keys for banded LSH.

        Band ``i`` covers signature positions ``[i*r, (i+1)*r)``.  The
        caller must ensure ``num_bands * rows_per_band <= size``.
        """
        if num_bands < 1 or rows_per_band < 1:
            raise ConfigurationError("num_bands and rows_per_band must be >= 1")
        if num_bands * rows_per_band > self.size:
            raise ConfigurationError(
                "num_bands * rows_per_band exceeds the signature length"
            )
        keys = []
        for band in range(num_bands):
            start = band * rows_per_band
            chunk = self._values[start : start + rows_per_band]
            keys.append(chunk.tobytes())
        return keys
