"""Banded MinHash LSH and optimal parameter selection.

A banded LSH index with parameters ``(b, r)`` (``b`` bands of ``r`` rows)
reports a record as a candidate for a query when at least one band of the
two signatures matches exactly.  For true Jaccard similarity ``s`` the
candidate probability is the classic S-curve ``1 − (1 − s^r)^b``.

``optimal_lsh_params`` chooses ``(b, r)`` for a Jaccard threshold by
minimising the weighted sum of expected false positives and false
negatives obtained by integrating the S-curve below and above the
threshold — the same criterion LSH Ensemble uses per partition and per
query.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable, Iterable

import numpy as np

from repro._errors import ConfigurationError
from repro.minhash.signature import MinHashSignature


def candidate_probability(similarity: float, num_bands: int, rows_per_band: int) -> float:
    """Probability that banded LSH reports a pair with Jaccard ``similarity``."""
    if not 0.0 <= similarity <= 1.0:
        raise ConfigurationError("similarity must be in [0, 1]")
    return 1.0 - (1.0 - similarity**rows_per_band) ** num_bands


def false_positive_area(threshold: float, num_bands: int, rows_per_band: int, resolution: int = 200) -> float:
    """Integral of the S-curve below the threshold (expected false-positive mass)."""
    xs = np.linspace(0.0, threshold, resolution)
    ys = 1.0 - (1.0 - xs**rows_per_band) ** num_bands
    return float(np.trapezoid(ys, xs))


def false_negative_area(threshold: float, num_bands: int, rows_per_band: int, resolution: int = 200) -> float:
    """Integral of ``1 − S-curve`` above the threshold (expected false-negative mass)."""
    xs = np.linspace(threshold, 1.0, resolution)
    ys = 1.0 - (1.0 - (1.0 - xs**rows_per_band) ** num_bands)
    return float(np.trapezoid(ys, xs))


def optimal_lsh_params(
    threshold: float,
    num_perm: int,
    false_positive_weight: float = 0.5,
    false_negative_weight: float = 0.5,
    resolution: int = 200,
    rows_candidates: Iterable[int] | None = None,
) -> tuple[int, int]:
    """Choose ``(num_bands, rows_per_band)`` for a Jaccard threshold.

    Scans every ``(b, r)`` pair with ``b * r <= num_perm`` (optionally
    restricting ``r`` to ``rows_candidates``) and returns the pair
    minimising
    ``false_positive_weight · FP_area + false_negative_weight · FN_area``.

    Parameters
    ----------
    threshold:
        The Jaccard similarity threshold the index should discriminate at.
    num_perm:
        Total number of hash functions available in the signatures.
    false_positive_weight, false_negative_weight:
        Relative costs of the two error types; LSH Ensemble leans towards
        recall by down-weighting false positives.
    resolution:
        Number of integration points per area.
    rows_candidates:
        Restrict the rows-per-band values considered, e.g. to the values
        an ensemble has materialised tables for.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ConfigurationError("threshold must be in [0, 1]")
    if num_perm < 1:
        raise ConfigurationError("num_perm must be >= 1")
    if rows_candidates is None:
        rows_values = range(1, num_perm + 1)
    else:
        rows_values = sorted({int(rows) for rows in rows_candidates if 1 <= int(rows) <= num_perm})
        if not rows_values:
            raise ConfigurationError("rows_candidates contains no feasible value")

    best: tuple[int, int] | None = None
    best_error = float("inf")
    xs_low = np.linspace(0.0, threshold, resolution)
    xs_high = np.linspace(threshold, 1.0, resolution)
    for rows in rows_values:
        max_bands = num_perm // rows
        if max_bands < 1:
            continue
        bands_array = np.arange(1, max_bands + 1, dtype=np.float64)
        base_low = 1.0 - xs_low**rows  # shape (resolution,)
        base_high = 1.0 - xs_high**rows
        # S-curve for every band count at once: shape (resolution, max_bands).
        curve_low = 1.0 - base_low[:, None] ** bands_array[None, :]
        curve_high = base_high[:, None] ** bands_array[None, :]
        fp = np.trapezoid(curve_low, xs_low, axis=0)
        fn = np.trapezoid(curve_high, xs_high, axis=0)
        errors = false_positive_weight * fp + false_negative_weight * fn
        index = int(np.argmin(errors))
        if errors[index] < best_error:
            best_error = float(errors[index])
            best = (index + 1, rows)
    assert best is not None  # at least one feasible (b, r) always exists
    return best


class MinHashLSH:
    """A banded MinHash LSH index over keyed records.

    Parameters
    ----------
    num_bands, rows_per_band:
        The banding parameters ``(b, r)``.  ``num_bands * rows_per_band``
        must not exceed the signature length of inserted records.
    """

    def __init__(self, num_bands: int, rows_per_band: int) -> None:
        if num_bands < 1 or rows_per_band < 1:
            raise ConfigurationError("num_bands and rows_per_band must be >= 1")
        self._num_bands = int(num_bands)
        self._rows_per_band = int(rows_per_band)
        self._tables: list[dict[bytes, list[Hashable]]] = [
            defaultdict(list) for _ in range(self._num_bands)
        ]
        self._keys: set[Hashable] = set()

    @property
    def num_bands(self) -> int:
        """Number of bands ``b``."""
        return self._num_bands

    @property
    def rows_per_band(self) -> int:
        """Rows per band ``r``."""
        return self._rows_per_band

    @property
    def num_perm_required(self) -> int:
        """Minimum signature length required by this index."""
        return self._num_bands * self._rows_per_band

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._keys

    def insert(self, key: Hashable, signature: MinHashSignature) -> None:
        """Insert a keyed signature into every band table."""
        if key in self._keys:
            raise ConfigurationError(f"key {key!r} already inserted")
        band_keys = signature.band_hashes(self._num_bands, self._rows_per_band)
        for table, band_key in zip(self._tables, band_keys):
            table[band_key].append(key)
        self._keys.add(key)

    def query(
        self, signature: MinHashSignature, max_bands: int | None = None
    ) -> set[Hashable]:
        """Return keys sharing at least one band with the query signature.

        Parameters
        ----------
        signature:
            The query's MinHash signature.
        max_bands:
            Probe only the first ``max_bands`` bands.  LSH Ensemble uses
            this to query with a query-specific ``b`` that is smaller than
            the number of bands the table was built with.
        """
        bands_to_probe = self._num_bands if max_bands is None else int(max_bands)
        if not 1 <= bands_to_probe <= self._num_bands:
            raise ConfigurationError(
                f"max_bands must be in [1, {self._num_bands}], got {max_bands}"
            )
        band_keys = signature.band_hashes(self._num_bands, self._rows_per_band)
        candidates: set[Hashable] = set()
        for table, band_key in zip(self._tables[:bands_to_probe], band_keys):
            bucket = table.get(band_key)
            if bucket:
                candidates.update(bucket)
        return candidates

    def remove(self, key: Hashable, signature: MinHashSignature) -> None:
        """Remove a previously inserted keyed signature."""
        if key not in self._keys:
            raise ConfigurationError(f"key {key!r} was never inserted")
        band_keys = signature.band_hashes(self._num_bands, self._rows_per_band)
        for table, band_key in zip(self._tables, band_keys):
            bucket = table.get(band_key)
            if bucket and key in bucket:
                bucket.remove(key)
        self._keys.discard(key)

    def keys(self) -> Iterable[Hashable]:
        """All keys currently indexed."""
        return set(self._keys)
