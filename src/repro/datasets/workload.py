"""Query workloads for the containment similarity search experiments.

The paper evaluates every method with 200 queries drawn uniformly at
random from the dataset itself (Section V-A, "the query Q is randomly
chosen from the records").  :func:`sample_queries` reproduces that and
:class:`QueryWorkload` bundles the queries with their exact ground-truth
result sets so accuracy metrics can be computed for any searcher.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._errors import ConfigurationError, EmptyDatasetError
from repro.exact.frequent_set import FrequentSetSearcher


@dataclass(frozen=True)
class QueryWorkload:
    """Queries plus exact ground truth at a fixed containment threshold.

    Attributes
    ----------
    queries:
        The query records (each a list of elements).
    query_record_ids:
        For queries drawn from the dataset, the id of the source record
        (``-1`` for external queries).
    threshold:
        The containment similarity threshold the ground truth was
        computed at.
    ground_truth:
        For each query, the set of record ids whose exact containment
        similarity is at least the threshold.
    """

    queries: tuple[tuple[object, ...], ...]
    query_record_ids: tuple[int, ...]
    threshold: float
    ground_truth: tuple[frozenset[int], ...]

    @property
    def num_queries(self) -> int:
        """Number of queries in the workload."""
        return len(self.queries)


def sample_queries(
    records: Sequence[Sequence[object]],
    num_queries: int = 200,
    seed: int = 13,
) -> tuple[list[list[object]], list[int]]:
    """Draw queries uniformly at random from the dataset's records.

    Returns the queries and the ids of the records they were drawn from.
    Sampling is with replacement when ``num_queries`` exceeds the dataset
    size, matching the paper's setup of 200 random queries.
    """
    if not records:
        raise EmptyDatasetError("cannot sample queries from an empty dataset")
    if num_queries < 1:
        raise ConfigurationError("num_queries must be >= 1")
    rng = np.random.default_rng(seed)
    replace = num_queries > len(records)
    ids = rng.choice(len(records), size=num_queries, replace=replace)
    queries = [list(records[int(record_id)]) for record_id in ids]
    return queries, [int(record_id) for record_id in ids]


def build_workload(
    records: Sequence[Sequence[object]],
    threshold: float,
    num_queries: int = 200,
    seed: int = 13,
) -> QueryWorkload:
    """Sample queries and compute their exact ground-truth result sets."""
    if not 0.0 <= threshold <= 1.0:
        raise ConfigurationError("threshold must be in [0, 1]")
    queries, query_ids = sample_queries(records, num_queries=num_queries, seed=seed)
    oracle = FrequentSetSearcher(records)
    truth = []
    for query in queries:
        hits = oracle.search(query, threshold)
        truth.append(frozenset(hit.record_id for hit in hits))
    return QueryWorkload(
        queries=tuple(tuple(query) for query in queries),
        query_record_ids=tuple(query_ids),
        threshold=float(threshold),
        ground_truth=tuple(truth),
    )
