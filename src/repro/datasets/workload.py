"""Query workloads for the containment similarity search experiments.

The paper evaluates every method with 200 queries drawn uniformly at
random from the dataset itself (Section V-A, "the query Q is randomly
chosen from the records").  :func:`sample_queries` reproduces that and
:class:`QueryWorkload` bundles the queries with their exact ground-truth
result sets so accuracy metrics can be computed for any searcher.

Beyond the paper's static setup, :func:`build_dynamic_workload` generates
*mixed streams* — interleaved inserts, deletes and queries with exact
ground truth computed against the live record set at each query — the
workload shape a search service with mutable data actually faces.  The
evaluation path for these streams lives in
:func:`repro.evaluation.harness.evaluate_dynamic_stream`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro._errors import ConfigurationError, EmptyDatasetError
from repro.exact.frequent_set import FrequentSetSearcher


@dataclass(frozen=True)
class QueryWorkload:
    """Queries plus exact ground truth at a fixed containment threshold.

    Attributes
    ----------
    queries:
        The query records (each a list of elements).
    query_record_ids:
        For queries drawn from the dataset, the id of the source record
        (``-1`` for external queries).
    threshold:
        The containment similarity threshold the ground truth was
        computed at.
    ground_truth:
        For each query, the set of record ids whose exact containment
        similarity is at least the threshold.
    """

    queries: tuple[tuple[object, ...], ...]
    query_record_ids: tuple[int, ...]
    threshold: float
    ground_truth: tuple[frozenset[int], ...]

    @property
    def num_queries(self) -> int:
        """Number of queries in the workload."""
        return len(self.queries)


def sample_queries(
    records: Sequence[Sequence[object]],
    num_queries: int = 200,
    seed: int = 13,
) -> tuple[list[list[object]], list[int]]:
    """Draw queries uniformly at random from the dataset's records.

    Returns the queries and the ids of the records they were drawn from.
    Sampling is with replacement when ``num_queries`` exceeds the dataset
    size, matching the paper's setup of 200 random queries.
    """
    if not records:
        raise EmptyDatasetError("cannot sample queries from an empty dataset")
    if num_queries < 1:
        raise ConfigurationError("num_queries must be >= 1")
    rng = np.random.default_rng(seed)
    replace = num_queries > len(records)
    ids = rng.choice(len(records), size=num_queries, replace=replace)
    queries = [list(records[int(record_id)]) for record_id in ids]
    return queries, [int(record_id) for record_id in ids]


def build_workload(
    records: Sequence[Sequence[object]],
    threshold: float,
    num_queries: int = 200,
    seed: int = 13,
) -> QueryWorkload:
    """Sample queries and compute their exact ground-truth result sets."""
    if not 0.0 <= threshold <= 1.0:
        raise ConfigurationError("threshold must be in [0, 1]")
    queries, query_ids = sample_queries(records, num_queries=num_queries, seed=seed)
    oracle = FrequentSetSearcher(records)
    truth = []
    for query in queries:
        hits = oracle.search(query, threshold)
        truth.append(frozenset(hit.record_id for hit in hits))
    return QueryWorkload(
        queries=tuple(tuple(query) for query in queries),
        query_record_ids=tuple(query_ids),
        threshold=float(threshold),
        ground_truth=tuple(truth),
    )


@dataclass(frozen=True)
class StreamOperation:
    """One step of a mixed insert/delete/query stream.

    Attributes
    ----------
    op:
        ``"insert"``, ``"delete"`` or ``"query"``.
    record:
        The record to insert (``insert`` only).
    record_id:
        The id the searcher will assign to this insert, or the id to
        delete; ``-1`` for queries.  Ids follow the library's dynamic
        indexes: sequential assignment starting after the initial
        dataset, never reused.
    query:
        The query record (``query`` only).
    ground_truth:
        Exact record ids whose containment similarity reaches the
        workload threshold *against the live set at this point of the
        stream* (``query`` only).
    """

    op: str
    record: tuple[object, ...] | None = None
    record_id: int = -1
    query: tuple[object, ...] | None = None
    ground_truth: frozenset[int] | None = field(default=None, hash=False)


@dataclass(frozen=True)
class DynamicWorkload:
    """An initial dataset plus a mixed insert/delete/query stream.

    Build one with :func:`build_dynamic_workload`; replay it against any
    dynamic searcher with
    :func:`repro.evaluation.harness.evaluate_dynamic_stream`.
    """

    initial_records: tuple[tuple[object, ...], ...]
    threshold: float
    operations: tuple[StreamOperation, ...]

    @property
    def num_operations(self) -> int:
        """Number of stream operations (inserts + deletes + queries)."""
        return len(self.operations)

    def operation_counts(self) -> dict[str, int]:
        """How many operations of each kind the stream contains."""
        counts = {"insert": 0, "delete": 0, "query": 0}
        for operation in self.operations:
            counts[operation.op] += 1
        return counts


def _exact_live_hits(
    query_elements: frozenset, live: dict[int, frozenset], threshold: float
) -> frozenset[int]:
    """Record ids of the live set whose exact containment reaches the threshold.

    Uses the same relative tolerance as the searchers' hit-selection
    policy (:func:`repro.core.index.results_from_scores`), so a sketch
    that estimates exactly can reach perfect F1 on the stream.
    """
    theta = threshold * len(query_elements)
    return frozenset(
        record_id
        for record_id, elements in live.items()
        if len(query_elements & elements) >= theta * (1.0 - 1e-12)
    )


def build_dynamic_workload(
    records: Sequence[Sequence[object]],
    threshold: float,
    num_initial: int | None = None,
    num_operations: int = 300,
    insert_fraction: float = 0.4,
    delete_fraction: float = 0.2,
    seed: int = 13,
) -> DynamicWorkload:
    """Generate a mixed insert/delete/query stream with exact ground truth.

    The first ``num_initial`` records (half the dataset by default) form
    the initial corpus; later records are fed in as inserts (cycling with
    random re-draws once exhausted).  Deletes pick a uniformly random
    live record; queries are drawn uniformly from the live set, matching
    the paper's queries-from-the-dataset setup, and carry the exact
    result set computed against the records alive at that instant.

    Parameters
    ----------
    records:
        The record pool; must be non-empty.
    threshold:
        Containment similarity threshold shared by every query.
    num_initial:
        Size of the initial corpus (default ``len(records) // 2``, at
        least 1).
    num_operations:
        Length of the stream.
    insert_fraction, delete_fraction:
        Expected operation mix; the remainder are queries.  Deletes that
        would empty the corpus are re-drawn as queries.
    seed:
        Seed for the operation-kind, delete-target and query draws.
    """
    if not records:
        raise EmptyDatasetError("cannot build a dynamic workload from no records")
    if not 0.0 <= threshold <= 1.0:
        raise ConfigurationError("threshold must be in [0, 1]")
    if num_operations < 1:
        raise ConfigurationError("num_operations must be >= 1")
    if insert_fraction < 0.0 or delete_fraction < 0.0:
        raise ConfigurationError("operation fractions must be non-negative")
    if insert_fraction + delete_fraction > 1.0:
        raise ConfigurationError("insert_fraction + delete_fraction must be <= 1")
    if num_initial is None:
        num_initial = max(len(records) // 2, 1)
    if not 1 <= num_initial <= len(records):
        raise ConfigurationError("num_initial must be in [1, len(records)]")

    rng = np.random.default_rng(seed)
    initial = [tuple(record) for record in records[:num_initial]]
    insert_pool = [tuple(record) for record in records[num_initial:]]
    live: dict[int, frozenset] = {
        record_id: frozenset(record) for record_id, record in enumerate(initial)
    }
    # Parallel list of live ids with swap-and-pop removal, so drawing a
    # uniform delete/query target is O(1) instead of sorting the dict.
    live_ids: list[int] = list(live)
    live_positions: dict[int, int] = {
        record_id: position for position, record_id in enumerate(live_ids)
    }

    def draw_live_id() -> int:
        return live_ids[int(rng.integers(0, len(live_ids)))]

    def drop_live_id(record_id: int) -> None:
        position = live_positions.pop(record_id)
        last = live_ids.pop()
        if last != record_id:
            live_ids[position] = last
            live_positions[last] = position

    next_id = len(initial)
    next_pool = 0

    query_fraction = 1.0 - insert_fraction - delete_fraction
    kinds = rng.choice(
        3, size=num_operations, p=[insert_fraction, delete_fraction, query_fraction]
    )
    operations: list[StreamOperation] = []
    for kind in kinds.tolist():
        if kind == 1 and len(live) <= 1:
            kind = 2  # never delete the last record; query instead
        if kind == 0:
            if next_pool < len(insert_pool):
                record = insert_pool[next_pool]
                next_pool += 1
            else:
                record = tuple(records[int(rng.integers(0, len(records)))])
            operations.append(
                StreamOperation(op="insert", record=record, record_id=next_id)
            )
            live[next_id] = frozenset(record)
            live_ids.append(next_id)
            live_positions[next_id] = len(live_ids) - 1
            next_id += 1
        elif kind == 1:
            target = draw_live_id()
            operations.append(StreamOperation(op="delete", record_id=target))
            del live[target]
            drop_live_id(target)
        else:
            source = draw_live_id()
            query = tuple(sorted(live[source], key=repr))
            operations.append(
                StreamOperation(
                    op="query",
                    query=query,
                    ground_truth=_exact_live_hits(live[source], live, threshold),
                )
            )
    return DynamicWorkload(
        initial_records=tuple(initial),
        threshold=float(threshold),
        operations=tuple(operations),
    )
