"""Power-law (Zipf) utilities: sampling, probabilities and exponent fitting.

The paper's analysis (Section IV-C1) and its Table II both revolve around
two power-law distributions: element frequency ``p1(x) = c1 x^{-α1}`` and
record size ``p2(x) = c2 x^{-α2}``.  This module provides the forward
direction (sampling record sizes and element probabilities with given
exponents) and the inverse direction (estimating the exponents of an
observed dataset with the discrete maximum-likelihood estimator of
Clauset, Shalizi & Newman 2009, the method the paper cites).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

import numpy as np

from repro._errors import ConfigurationError, EmptyDatasetError


def zipf_probabilities(universe_size: int, exponent: float) -> np.ndarray:
    """Element-selection probabilities under a Zipf law with the given exponent.

    Element rank ``i`` (1-based) gets probability proportional to
    ``i^{-exponent}``.  ``exponent = 0`` gives the uniform distribution.
    """
    if universe_size < 1:
        raise ConfigurationError("universe_size must be >= 1")
    if exponent < 0:
        raise ConfigurationError("exponent must be non-negative")
    ranks = np.arange(1, universe_size + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def zipf_sizes(
    num_records: int,
    min_size: int,
    max_size: int,
    exponent: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample record sizes from a bounded discrete power law.

    Sizes ``s`` in ``[min_size, max_size]`` are drawn with probability
    proportional to ``s^{-exponent}``; ``exponent = 0`` is uniform.
    """
    if num_records < 1:
        raise ConfigurationError("num_records must be >= 1")
    if min_size < 1 or max_size < min_size:
        raise ConfigurationError("need 1 <= min_size <= max_size")
    support = np.arange(min_size, max_size + 1, dtype=np.float64)
    weights = support**-float(exponent)
    probabilities = weights / weights.sum()
    return rng.choice(
        np.arange(min_size, max_size + 1), size=num_records, p=probabilities
    ).astype(np.int64)


def element_frequencies(records: Iterable[Iterable[object]]) -> Counter:
    """Frequency (number of containing records) of each distinct element."""
    counts: Counter = Counter()
    for record in records:
        counts.update(set(record))
    return counts


def record_sizes(records: Iterable[Iterable[object]]) -> np.ndarray:
    """Distinct-element count of every record."""
    return np.array([len(set(record)) for record in records], dtype=np.int64)


def fit_power_law_exponent(
    values: Sequence[int] | np.ndarray, x_min: float | None = None
) -> float:
    """Maximum-likelihood power-law exponent of positive observations.

    Uses the continuous approximation of the Clauset–Shalizi–Newman MLE,

        α̂ = 1 + n / Σ ln(x_i / (x_min − 1/2)) ,

    which is the standard estimator for discrete data such as element
    frequencies and record sizes.  Observations below ``x_min`` are
    discarded (default ``x_min``: the smallest observation).

    Raises
    ------
    EmptyDatasetError
        If no observations remain after applying ``x_min``.
    """
    arr = np.asarray(values, dtype=np.float64)
    arr = arr[arr > 0]
    if arr.size == 0:
        raise EmptyDatasetError("no positive observations to fit")
    minimum = float(arr.min()) if x_min is None else float(x_min)
    if minimum <= 0:
        raise ConfigurationError("x_min must be positive")
    tail = arr[arr >= minimum]
    if tail.size == 0:
        raise EmptyDatasetError("no observations at or above x_min")
    shifted_min = max(minimum - 0.5, np.finfo(np.float64).tiny)
    log_ratios = np.log(tail / shifted_min)
    total = float(log_ratios.sum())
    if total <= 0:
        # Degenerate sample (all observations equal x_min): the exponent is
        # unidentifiable; report a large value meaning "extremely peaked".
        return float("inf")
    return 1.0 + tail.size / total
