"""Reading and writing set-valued datasets as plain text.

One record per line, elements separated by whitespace.  Integer-looking
tokens are loaded back as integers so round-tripping the synthetic
datasets is lossless; everything else stays a string.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro._errors import DatasetFormatError


def save_records(records: Sequence[Iterable[object]], path: str | Path) -> None:
    """Write records to a text file, one whitespace-separated record per line."""
    destination = Path(path)
    with destination.open("w", encoding="utf-8") as handle:
        for record in records:
            tokens = [str(element) for element in record]
            for token in tokens:
                if any(ch.isspace() for ch in token):
                    raise DatasetFormatError(
                        f"element {token!r} contains whitespace and cannot be serialised"
                    )
            handle.write(" ".join(tokens))
            handle.write("\n")


def _parse_token(token: str) -> object:
    if token.lstrip("-").isdigit():
        return int(token)
    return token


def load_records(
    path: str | Path, min_record_size: int = 1, skip_empty: bool = True
) -> list[list[object]]:
    """Read records from a text file written by :func:`save_records`.

    Parameters
    ----------
    path:
        File to read.
    min_record_size:
        Records with fewer distinct elements are discarded (the paper
        drops records with fewer than 10 elements).
    skip_empty:
        Silently skip blank lines instead of raising.
    """
    source = Path(path)
    if not source.exists():
        raise DatasetFormatError(f"dataset file {source} does not exist")
    records: list[list[object]] = []
    with source.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            tokens = line.split()
            if not tokens:
                if skip_empty:
                    continue
                raise DatasetFormatError(f"empty record on line {line_number} of {source}")
            record = [_parse_token(token) for token in tokens]
            if len(set(record)) >= min_record_size:
                records.append(record)
    return records
