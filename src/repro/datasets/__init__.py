"""Dataset substrate: synthetic generators, power-law tools, proxies and workloads.

The paper evaluates on seven real-life set-valued datasets (Table II).
Those corpora are not redistributable here, so the benchmarks run on
*proxy* datasets: synthetic corpora whose record-size and
element-frequency distributions match the power-law exponents the paper
reports for each real dataset (α1 for element frequency, α2 for record
size), at laptop scale.  Section IV-C1 of the paper models the data with
exactly these two distributions, so the proxies exercise the same regime
the analysis and the real experiments cover.

Public API
----------
``generate_zipf_dataset`` / ``generate_uniform_dataset``
    Synthetic corpora with power-law or uniform record sizes and element
    frequencies.
``DatasetProfile`` / ``DATASET_PROFILES`` / ``load_proxy``
    Named proxies for the paper's seven datasets.
``fit_power_law_exponent`` / ``element_frequencies`` / ``record_sizes``
    The statistics Table II reports, computed from any dataset.
``sample_queries`` / ``QueryWorkload`` / ``build_workload``
    Query workloads drawn from the dataset (the paper draws 200 random
    records as queries).
``build_dynamic_workload`` / ``DynamicWorkload`` / ``StreamOperation``
    Mixed insert/delete/query streams with per-instant exact ground
    truth, for evaluating dynamic index maintenance.
``save_records`` / ``load_records``
    Simple whitespace-token text format for persisting datasets.
"""

from repro.datasets.generators import (
    generate_uniform_dataset,
    generate_zipf_dataset,
)
from repro.datasets.powerlaw import (
    element_frequencies,
    fit_power_law_exponent,
    record_sizes,
    zipf_probabilities,
    zipf_sizes,
)
from repro.datasets.proxies import (
    DATASET_PROFILES,
    DatasetProfile,
    dataset_characteristics,
    load_proxy,
)
from repro.datasets.workload import (
    DynamicWorkload,
    QueryWorkload,
    StreamOperation,
    build_dynamic_workload,
    build_workload,
    sample_queries,
)
from repro.datasets.loaders import load_records, save_records

__all__ = [
    "generate_zipf_dataset",
    "generate_uniform_dataset",
    "element_frequencies",
    "record_sizes",
    "fit_power_law_exponent",
    "zipf_probabilities",
    "zipf_sizes",
    "DatasetProfile",
    "DATASET_PROFILES",
    "dataset_characteristics",
    "load_proxy",
    "QueryWorkload",
    "DynamicWorkload",
    "StreamOperation",
    "build_workload",
    "build_dynamic_workload",
    "sample_queries",
    "save_records",
    "load_records",
]
