"""Named proxy datasets mirroring Table II of the paper.

The paper evaluates on seven real corpora.  They are not available
offline, so every benchmark in this repository runs on a *proxy*: a
synthetic dataset whose record-size exponent (α2), element-frequency
exponent (α1) and average record length match the values the paper
reports in Table II, scaled down to laptop-friendly record counts.  The
scaling factor is recorded in the profile so the benchmark output can
state exactly what was run.

GB-KMV's and LSH-E's relative behaviour depends on the data only through
these two distributions (the paper's own modelling assumption in
Section IV-C1), so the proxies preserve the comparisons the figures make
even though absolute dataset sizes are smaller.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._errors import ConfigurationError
from repro.datasets.generators import Record, generate_zipf_dataset
from repro.datasets.powerlaw import (
    element_frequencies,
    fit_power_law_exponent,
    record_sizes,
)


@dataclass(frozen=True)
class DatasetProfile:
    """Shape parameters of one of the paper's datasets and its proxy scale.

    Attributes
    ----------
    name:
        Dataset name as used in the paper (e.g. ``"NETFLIX"``).
    paper_num_records:
        Number of records in the real corpus (Table II).
    proxy_num_records:
        Number of records the proxy generates.
    avg_record_size:
        Average record length reported in Table II; the proxy's size
        distribution is tuned to land near it.
    universe_size:
        Number of distinct elements available to the proxy.
    element_exponent:
        α1 — element-frequency power-law exponent (Table II).
    size_exponent:
        α2 — record-size power-law exponent (Table II).
    min_record_size, max_record_size:
        Support of the proxy's record-size distribution.
    """

    name: str
    paper_num_records: int
    proxy_num_records: int
    avg_record_size: float
    universe_size: int
    element_exponent: float
    size_exponent: float
    min_record_size: int
    max_record_size: int


# Proxy profiles for the seven datasets of Table II.  The α1/α2 exponents
# come straight from the table; record counts and universes are scaled
# down to laptop scale, and the record-size supports are chosen so the
# proxy's mean record length lands near the paper's average length under
# the published exponent (for the two huge-record corpora, COD and
# WEBSPAM, the proxy average is additionally scaled down — what matters
# for the comparisons is that their records stay much longer than the
# 256-value LSH-E signatures, which they do).
DATASET_PROFILES: dict[str, DatasetProfile] = {
    "NETFLIX": DatasetProfile(
        name="NETFLIX",
        paper_num_records=480_189,
        proxy_num_records=3_000,
        avg_record_size=209.25,
        universe_size=17_770,
        element_exponent=1.14,
        size_exponent=4.95,
        min_record_size=150,
        max_record_size=2_000,
    ),
    "DELIC": DatasetProfile(
        name="DELIC",
        paper_num_records=833_081,
        proxy_num_records=3_000,
        avg_record_size=98.42,
        universe_size=45_000,
        element_exponent=1.14,
        size_exponent=3.05,
        min_record_size=50,
        max_record_size=2_000,
    ),
    "COD": DatasetProfile(
        name="COD",
        paper_num_records=65_553,
        proxy_num_records=800,
        avg_record_size=6_284,
        universe_size=120_000,
        element_exponent=1.09,
        size_exponent=1.81,
        min_record_size=400,
        max_record_size=8_000,
    ),
    "ENRON": DatasetProfile(
        name="ENRON",
        paper_num_records=517_431,
        proxy_num_records=3_000,
        avg_record_size=133.57,
        universe_size=60_000,
        element_exponent=1.16,
        size_exponent=3.10,
        min_record_size=70,
        max_record_size=2_000,
    ),
    "REUTERS": DatasetProfile(
        name="REUTERS",
        paper_num_records=833_081,
        proxy_num_records=3_000,
        avg_record_size=77.6,
        universe_size=28_000,
        element_exponent=1.32,
        size_exponent=6.61,
        min_record_size=64,
        max_record_size=1_000,
    ),
    "WEBSPAM": DatasetProfile(
        name="WEBSPAM",
        paper_num_records=350_000,
        proxy_num_records=800,
        avg_record_size=3_728,
        universe_size=100_000,
        element_exponent=1.33,
        size_exponent=9.34,
        min_record_size=800,
        max_record_size=6_000,
    ),
    "WDC": DatasetProfile(
        name="WDC",
        paper_num_records=262_893_406,
        proxy_num_records=4_000,
        avg_record_size=29.2,
        universe_size=80_000,
        element_exponent=1.08,
        size_exponent=2.4,
        min_record_size=10,
        max_record_size=300,
    ),
}


def load_proxy(name: str, scale: float = 1.0, seed: int = 7) -> list[Record]:
    """Generate the proxy dataset for one of the paper's corpora.

    Parameters
    ----------
    name:
        One of the keys of :data:`DATASET_PROFILES` (case-insensitive).
    scale:
        Multiplier on the proxy record count, so quick tests can use
        ``scale=0.1`` and thorough runs ``scale=2.0``.
    seed:
        Generator seed; the default yields the corpora the benchmarks use.
    """
    profile = DATASET_PROFILES.get(name.upper())
    if profile is None:
        known = ", ".join(sorted(DATASET_PROFILES))
        raise ConfigurationError(f"unknown dataset {name!r}; known proxies: {known}")
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    num_records = max(int(profile.proxy_num_records * scale), 10)
    return generate_zipf_dataset(
        num_records=num_records,
        universe_size=profile.universe_size,
        element_exponent=profile.element_exponent,
        size_exponent=profile.size_exponent,
        min_record_size=profile.min_record_size,
        max_record_size=profile.max_record_size,
        seed=seed,
    )


def dataset_characteristics(records: list[Record]) -> dict[str, float]:
    """Compute the Table II statistics of a dataset.

    Returns a mapping with the number of records, average record length,
    number of distinct elements, and the fitted power-law exponents of
    the element-frequency and record-size distributions.
    """
    sizes = record_sizes(records)
    frequencies = element_frequencies(records)
    freq_values = np.array(list(frequencies.values()), dtype=np.float64)
    return {
        "num_records": float(len(records)),
        "avg_record_size": float(sizes.mean()) if sizes.size else 0.0,
        "num_distinct_elements": float(len(frequencies)),
        "alpha_element_frequency": fit_power_law_exponent(freq_values)
        if freq_values.size
        else float("nan"),
        "alpha_record_size": fit_power_law_exponent(sizes) if sizes.size else float("nan"),
    }
