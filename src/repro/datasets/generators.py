"""Synthetic set-valued dataset generators.

Two generators cover the regimes the paper evaluates:

``generate_zipf_dataset``
    Record sizes follow a bounded power law with exponent ``α2`` and each
    record's elements are drawn from a Zipf-distributed universe with
    exponent ``α1`` — the model of Section IV-C1 and the synthetic
    datasets of Figure 16.
``generate_uniform_dataset``
    Record sizes uniform in a range and elements uniform over the
    universe — the uniform-distribution experiment of Figure 19(a).

Records are returned as lists of integer element identifiers
(``0 .. universe_size − 1``); integers keep hashing fast and memory low
without changing any behaviour relative to string tokens.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro._errors import ConfigurationError
from repro.datasets.powerlaw import zipf_probabilities, zipf_sizes

Record = List[int]


def _sample_record(
    size: int,
    universe_size: int,
    cumulative: np.ndarray | None,
    rng: np.random.Generator,
) -> Record:
    """Sample one record of ``size`` distinct elements.

    Sampling without replacement from a skewed distribution is done by
    oversampling with replacement (inverse-CDF draws against a shared
    cumulative table) and deduplicating in draw order, topping up until
    the requested size is reached.
    """
    target = min(size, universe_size)
    chosen: dict[int, None] = {}
    while len(chosen) < target:
        needed = target - len(chosen)
        batch = max(2 * needed, 8)
        if cumulative is None:
            draw = rng.integers(0, universe_size, size=batch)
        else:
            draw = np.searchsorted(cumulative, rng.random(batch), side="right")
            draw = np.minimum(draw, universe_size - 1)
        for element in draw:
            if len(chosen) >= target:
                break
            chosen.setdefault(int(element), None)
    return sorted(chosen)


def generate_zipf_dataset(
    num_records: int,
    universe_size: int,
    element_exponent: float = 1.1,
    size_exponent: float = 2.5,
    min_record_size: int = 10,
    max_record_size: int = 500,
    seed: int = 0,
) -> list[Record]:
    """Generate a dataset with power-law record sizes and element frequencies.

    Parameters
    ----------
    num_records:
        Number of records ``m``.
    universe_size:
        Number of distinct elements ``n`` available.
    element_exponent:
        Zipf exponent ``α1`` of the element-selection distribution
        (``0`` = uniform; the paper's real datasets have α1 ≈ 1.1–1.3).
    size_exponent:
        Power-law exponent ``α2`` of the record-size distribution
        (the paper's datasets range from ≈ 1.8 to ≈ 9.3).
    min_record_size, max_record_size:
        Support of the record-size distribution.  The paper discards
        records smaller than 10 elements, hence the default minimum.
    seed:
        Seed controlling both sizes and element draws.
    """
    if num_records < 1:
        raise ConfigurationError("num_records must be >= 1")
    if universe_size < max_record_size:
        raise ConfigurationError(
            "universe_size must be at least max_record_size so records can be filled"
        )
    rng = np.random.default_rng(seed)
    sizes = zipf_sizes(
        num_records, min_record_size, max_record_size, size_exponent, rng
    )
    if element_exponent == 0:
        cumulative = None
    else:
        probabilities = zipf_probabilities(universe_size, element_exponent)
        cumulative = np.cumsum(probabilities)
    return [
        _sample_record(int(size), universe_size, cumulative, rng) for size in sizes
    ]


def generate_uniform_dataset(
    num_records: int,
    universe_size: int,
    min_record_size: int = 10,
    max_record_size: int = 500,
    seed: int = 0,
) -> list[Record]:
    """Generate a dataset with uniform record sizes and element frequencies.

    This is the α1 = α2 = 0 configuration used by the supplementary
    experiment of Figure 19(a).
    """
    return generate_zipf_dataset(
        num_records=num_records,
        universe_size=universe_size,
        element_exponent=0.0,
        size_exponent=0.0,
        min_record_size=min_record_size,
        max_record_size=max_record_size,
        seed=seed,
    )
