"""Building the per-shard inner indexes under globally pinned parameters.

The point of the planner is *bitwise identity*: a sharded index must
return exactly the results of its unsharded inner backend, or sharding
would silently change the numbers a benchmark reports.  Every per-record
sketch in the native backends depends only on the record's content and
the *global* construction parameters — the frequent-element vocabulary,
the residual threshold ``τ``, the hasher, and KMV's per-record ``k`` —
never on which other records share its store.  So the planner derives
those parameters once over the **full** dataset (exactly as the
unsharded construction would) and then sketches each shard's records
under the pinned values:

- ``gbkmv`` / ``gkmv``: :meth:`~repro.core.index.GBKMVIndex.plan_parameters`
  over the full dataset, then
  :meth:`~repro.core.index.GBKMVIndex.from_parameters` per shard
  (``gkmv`` pins ``buffer_size=0`` and wraps the shards).
- ``kmv``: the Theorem-1 allocation ``k = ⌊b / m⌋`` with the *global*
  ``b`` and ``m``, then one bulk ``insert_many`` per shard.

Other dynamic backends shard through their ordinary ``from_records``;
they still answer every query (each shard sees all queries and the merge
is order-exact), but their per-shard parameters are derived per shard,
so results may differ from the unsharded build — and an empty shard is
an error, since there is no pinned-parameter way to construct one.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro._errors import ConfigurationError
from repro.api.config import IndexConfig
from repro.api.interface import SimilarityIndex
from repro.api.registry import get_backend
from repro.baselines.kmv_search import GKMVSearchIndex, KMVSearchIndex
from repro.core.bulk import flatten_records, resolve_space_budget
from repro.core.index import GBKMVIndex
from repro.hashing import UnitHash


def build_shards(
    records: Sequence[Iterable[object]],
    shard_records: Sequence[Sequence[Iterable[object]]],
    inner_backend: str,
    inner_config: IndexConfig | None,
) -> list[SimilarityIndex]:
    """Build one inner index per shard.

    ``records`` is the full dataset in global-id order and
    ``shard_records[s]`` the subset routed to shard ``s`` (also in
    global-id order, which is what makes inner local ids line up with
    arrival ranks).  ``inner_config`` is validated against the inner
    backend's ``config_type``.
    """
    if inner_backend == "gbkmv":
        return _gbkmv_shards(records, shard_records, inner_config)
    if inner_backend == "gkmv":
        return _gkmv_shards(records, shard_records, inner_config)
    if inner_backend == "kmv":
        return _kmv_shards(records, shard_records, inner_config)
    return _generic_shards(shard_records, inner_backend, inner_config)


def _gbkmv_shards(records, shard_records, inner_config):
    config = GBKMVIndex.resolve_config(inner_config)
    GBKMVIndex._check_build_method(config.method)
    params = GBKMVIndex.plan_parameters(
        flatten_records(records),
        space_fraction=config.space_fraction,
        space_budget=config.space_budget,
        buffer_size=config.buffer_size,
        seed=config.seed,
        cost_model_pair_sample=config.cost_model_pair_sample,
    )
    # Each shard carries an equal slice of the global budget; the budget
    # only feeds per-shard bookkeeping (refit headroom, statistics) —
    # sketch content is fully determined by the pinned parameters.
    share = params.budget / len(shard_records)
    return [
        GBKMVIndex.from_parameters(
            shard,
            vocabulary=params.vocabulary,
            threshold=params.threshold,
            hasher=params.hasher,
            budget=share,
            method=config.method,
        )
        if shard
        else GBKMVIndex(
            vocabulary=params.vocabulary,
            threshold=params.threshold,
            hasher=params.hasher,
            budget=share,
        )
        for shard in shard_records
    ]


def _gkmv_shards(records, shard_records, inner_config):
    config = GKMVSearchIndex.resolve_config(inner_config)
    GBKMVIndex._check_build_method(config.method)
    params = GBKMVIndex.plan_parameters(
        flatten_records(records),
        space_fraction=config.space_fraction,
        space_budget=config.space_budget,
        buffer_size=0,
        seed=config.seed,
    )
    share = params.budget / len(shard_records)
    shards = []
    for shard in shard_records:
        inner = (
            GBKMVIndex.from_parameters(
                shard,
                vocabulary=params.vocabulary,
                threshold=params.threshold,
                hasher=params.hasher,
                budget=share,
                method=config.method,
            )
            if shard
            else GBKMVIndex(
                vocabulary=params.vocabulary,
                threshold=params.threshold,
                hasher=params.hasher,
                budget=share,
            )
        )
        shards.append(GKMVSearchIndex(inner))
    return shards


def _kmv_shards(records, shard_records, inner_config):
    config = KMVSearchIndex.resolve_config(inner_config)
    flat = flatten_records(records)
    budget = resolve_space_budget(
        flat.total_elements, config.space_fraction, config.space_budget
    )
    # Theorem 1's equal allocation under the *global* budget and record
    # count — the same k every record gets in the unsharded build.
    k = max(int(budget // flat.num_records), 1)
    hasher = UnitHash(seed=config.seed)
    share = budget / len(shard_records)
    shards = []
    for shard in shard_records:
        index = KMVSearchIndex(hasher=hasher, k_per_record=k, budget=share)
        index.insert_many(shard)
        shards.append(index)
    return shards


def _generic_shards(shard_records, inner_backend, inner_config):
    inner_cls = get_backend(inner_backend)
    config = inner_cls.resolve_config(inner_config)
    shards = []
    for position, shard in enumerate(shard_records):
        if not shard:
            raise ConfigurationError(
                f"shard {position} of {len(shard_records)} is empty; backend "
                f"{inner_backend!r} has no pinned-parameter construction and "
                "cannot build an empty shard — use fewer shards or a native "
                "sketch backend (gbkmv/gkmv/kmv)"
            )
        shards.append(inner_cls.from_records(shard, config=config))
    return shards
