"""Building the per-shard inner indexes under globally pinned parameters.

The point of the planner is *bitwise identity*: a sharded index must
return exactly the results of its unsharded inner backend, or sharding
would silently change the numbers a benchmark reports.  Every per-record
sketch in the native backends depends only on the record's content and
the *global* construction parameters — the frequent-element vocabulary,
the residual threshold ``τ``, the hasher, and KMV's per-record ``k`` —
never on which other records share its store.  So the planner derives
those parameters once over the **full** dataset (exactly as the
unsharded construction would) and then sketches each shard's records
under the pinned values.

For the native sketch backends the whole pipeline is *flatten once,
plan once, sketch shards concurrently*:

- the dataset is flattened and fingerprinted exactly once
  (:func:`~repro.core.bulk.flatten_records`); each shard's view is a
  CSR gather out of that one pass
  (:func:`~repro.core.bulk.slice_flat_records`) — no per-shard
  re-hashing and no second frequency pass;
- ``gbkmv`` / ``gkmv`` pin parameters via
  :meth:`~repro.core.index.GBKMVIndex.plan_parameters` and sketch each
  slice with :meth:`~repro.core.index.GBKMVIndex.from_flat` (``gkmv``
  pins ``buffer_size=0`` and wraps the shards); ``kmv`` applies the
  Theorem-1 allocation ``k = ⌊b / m⌋`` with the *global* ``b`` and
  ``m``, hashes the unique universe once, and bulk-selects each slice's
  rows;
- the per-shard sketch kernels fan out on a
  :class:`~repro.sharding.executor.ShardExecutor` sized by
  ``build_workers`` — threads by default (the kernels release the GIL),
  or a process pool (``build_executor="process"``) whose module-level
  workers receive plain arrays and return sketch columns.

Other dynamic backends shard through their ordinary ``from_records``;
they still answer every query (each shard sees all queries and the merge
is order-exact), but their per-shard parameters are derived per shard,
so results may differ from the unsharded build — and an empty shard is
an error, since there is no pinned-parameter way to construct one.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

import numpy as np

from repro._errors import ConfigurationError
from repro.api.config import IndexConfig
from repro.api.interface import SimilarityIndex
from repro.api.registry import get_backend
from repro.baselines.kmv_search import GKMVSearchIndex, KMVSearchIndex
from repro.core.bulk import (
    FlatRecords,
    VocabularyLookup,
    bulk_kmv_value_rows,
    bulk_sketch,
    flatten_records,
    resolve_space_budget,
    slice_flat_records,
)
from repro.core.index import GBKMVIndex
from repro.core.profiling import BuildProfile
from repro.hashing import UnitHash
from repro.sharding.executor import EXECUTOR_KINDS, ShardExecutor

_EMPTY_U64 = np.empty(0, dtype=np.uint64)
_EMPTY_I64 = np.empty(0, dtype=np.int64)


def build_shards(
    records: Sequence[Iterable[object]],
    groups: Sequence[np.ndarray],
    inner_backend: str,
    inner_config: IndexConfig | None,
    build_workers: int | None = None,
    build_executor: str = "thread",
    profile: BuildProfile | None = None,
) -> list[SimilarityIndex]:
    """Build one inner index per shard.

    ``records`` is the full dataset in global-id order and ``groups[s]``
    the ascending positions (int64) of the records routed to shard ``s``
    — ascending order is what makes inner local ids line up with arrival
    ranks.  ``inner_config`` is validated against the inner backend's
    ``config_type``.

    ``build_workers`` sizes the construction fan-out (``None`` means one
    worker per core, capped at the shard count; an explicit value below
    the shard count is an oversubscription guard) and ``build_executor``
    picks threads or processes for it; both only apply to the native
    sketch backends' bulk pipeline.  ``profile`` collects the per-stage
    build breakdown.
    """
    if build_executor not in EXECUTOR_KINDS:
        raise ConfigurationError(
            f"unknown executor kind {build_executor!r}; use 'thread' or 'process'"
        )
    if inner_backend == "gbkmv":
        return _gbkmv_shards(
            records, groups, inner_config, build_workers, build_executor, profile
        )
    if inner_backend == "gkmv":
        return _gkmv_shards(
            records, groups, inner_config, build_workers, build_executor, profile
        )
    if inner_backend == "kmv":
        return _kmv_shards(
            records, groups, inner_config, build_workers, build_executor, profile
        )
    return _generic_shards(records, groups, inner_backend, inner_config)


def _records_of(records, group: np.ndarray) -> list:
    """Materialise one shard's records as a Python list (fallback paths)."""
    return [records[position] for position in group.tolist()]


def _sketch_shard_arrays(payload):
    """Process-pool worker: bulk-sketch one shard's sliced columns.

    Runs in a child process, so it receives plain picklable arrays
    rather than the parent's :class:`FlatRecords`/index objects, and
    returns the sketch columns plus its own wall time for the parent to
    record.  The reconstructed ``FlatRecords`` carries empty
    universe columns — :func:`bulk_sketch` never reads them when
    ``unique_hashes`` is supplied (and never reads ``elements`` at all).
    """
    (
        offsets,
        fingerprints,
        inverse,
        sorted_fingerprints,
        bit_positions,
        threshold,
        hasher,
        num_words,
        unique_hashes,
    ) = payload
    start = time.perf_counter()
    flat = FlatRecords(
        offsets=offsets,
        elements=fingerprints,
        fingerprints=fingerprints,
        unique_fingerprints=_EMPTY_U64,
        first_occurrence=_EMPTY_I64,
        inverse=inverse,
        counts=_EMPTY_I64,
    )
    lookup = VocabularyLookup(
        sorted_fingerprints=sorted_fingerprints, bit_positions=bit_positions
    )
    sketches = bulk_sketch(
        flat, lookup, threshold, hasher, num_words, unique_hashes=unique_hashes
    )
    return sketches, time.perf_counter() - start


def _kmv_shard_rows(payload):
    """Process-pool worker: one shard's k-smallest KMV value rows."""
    offsets, inverse, hasher, k_per_record, unique_hashes = payload
    start = time.perf_counter()
    flat = FlatRecords(
        offsets=offsets,
        elements=inverse,
        fingerprints=_EMPTY_U64,
        unique_fingerprints=_EMPTY_U64,
        first_occurrence=_EMPTY_I64,
        inverse=inverse,
        counts=_EMPTY_I64,
    )
    rows = bulk_kmv_value_rows(
        flat, hasher, k_per_record, unique_hashes=unique_hashes
    )
    return rows, time.perf_counter() - start


def _pinned_gbkmv_shards(
    records,
    groups,
    method: str,
    plan_kwargs: dict,
    build_workers,
    build_executor,
    profile,
) -> list[GBKMVIndex]:
    """Flatten once, plan once, sketch every shard under the pinned params."""
    flat = flatten_records(records, profile=profile)
    params = GBKMVIndex.plan_parameters(flat, profile=profile, **plan_kwargs)
    # Each shard carries an equal slice of the global budget; the budget
    # only feeds per-shard bookkeeping (refit headroom, statistics) —
    # sketch content is fully determined by the pinned parameters.
    share = params.budget / len(groups)
    if method == "per-record":
        # The historical baseline sketches record-at-a-time from the raw
        # records; it stays serial (and re-materialises shard lists).
        return [
            GBKMVIndex.from_parameters(
                _records_of(records, group),
                vocabulary=params.vocabulary,
                threshold=params.threshold,
                hasher=params.hasher,
                budget=share,
                method="per-record",
            )
            if group.size
            else GBKMVIndex(
                vocabulary=params.vocabulary,
                threshold=params.threshold,
                hasher=params.hasher,
                budget=share,
            )
            for group in groups
        ]

    pieces = [slice_flat_records(flat, group) for group in groups]
    executor = ShardExecutor(len(groups), build_workers, kind=build_executor)
    try:
        if build_executor == "process":
            shards = [
                GBKMVIndex(
                    vocabulary=params.vocabulary,
                    threshold=params.threshold,
                    hasher=params.hasher,
                    budget=share,
                )
                for _ in groups
            ]
            occupied = [
                position for position, piece in enumerate(pieces) if piece.num_records
            ]
            payloads = [
                (
                    pieces[position].offsets,
                    pieces[position].fingerprints,
                    pieces[position].inverse,
                    params.lookup.sorted_fingerprints,
                    params.lookup.bit_positions,
                    params.threshold,
                    params.hasher,
                    shards[position].store.num_words,
                    params.unique_hashes,
                )
                for position in occupied
            ]
            results = executor.map(_sketch_shard_arrays, payloads)
            for position, (sketches, seconds) in zip(occupied, results):
                if profile is not None:
                    profile.record(
                        "sketch",
                        seconds,
                        rows=sketches.num_records,
                        nbytes=sketches.values.nbytes + sketches.signatures.nbytes,
                    )
                shards[position].store.append_bulk(
                    values=sketches.values,
                    value_lengths=sketches.value_lengths,
                    signatures=sketches.signatures,
                    residual_record_sizes=sketches.residual_record_sizes,
                    record_sizes=sketches.record_sizes,
                    profile=profile,
                )
                shards[position].last_build_profile = profile
            return shards

        def build_one(piece: FlatRecords) -> GBKMVIndex:
            if piece.num_records == 0:
                return GBKMVIndex(
                    vocabulary=params.vocabulary,
                    threshold=params.threshold,
                    hasher=params.hasher,
                    budget=share,
                )
            return GBKMVIndex.from_flat(
                piece,
                vocabulary=params.vocabulary,
                threshold=params.threshold,
                hasher=params.hasher,
                budget=share,
                lookup=params.lookup,
                unique_hashes=params.unique_hashes,
                profile=profile,
            )

        return executor.map(build_one, pieces)
    finally:
        executor.close()


def _gbkmv_shards(
    records, groups, inner_config, build_workers, build_executor, profile
):
    config = GBKMVIndex.resolve_config(inner_config)
    GBKMVIndex._check_build_method(config.method)
    return _pinned_gbkmv_shards(
        records,
        groups,
        config.method,
        dict(
            space_fraction=config.space_fraction,
            space_budget=config.space_budget,
            buffer_size=config.buffer_size,
            seed=config.seed,
            cost_model_pair_sample=config.cost_model_pair_sample,
        ),
        build_workers,
        build_executor,
        profile,
    )


def _gkmv_shards(
    records, groups, inner_config, build_workers, build_executor, profile
):
    config = GKMVSearchIndex.resolve_config(inner_config)
    GBKMVIndex._check_build_method(config.method)
    inners = _pinned_gbkmv_shards(
        records,
        groups,
        config.method,
        dict(
            space_fraction=config.space_fraction,
            space_budget=config.space_budget,
            buffer_size=0,
            seed=config.seed,
        ),
        build_workers,
        build_executor,
        profile,
    )
    return [GKMVSearchIndex(inner) for inner in inners]


def _kmv_shards(
    records, groups, inner_config, build_workers, build_executor, profile
):
    config = KMVSearchIndex.resolve_config(inner_config)
    flat = flatten_records(records, profile=profile)
    budget = resolve_space_budget(
        flat.total_elements, config.space_fraction, config.space_budget
    )
    # Theorem 1's equal allocation under the *global* budget and record
    # count — the same k every record gets in the unsharded build.
    k = max(int(budget // flat.num_records), 1)
    hasher = UnitHash(seed=config.seed)
    share = budget / len(groups)
    # Hash the unique universe once for every shard: a fingerprint's
    # hash does not depend on which records carry it, so per-shard rows
    # under the global hash column equal per-shard re-hashing.
    unique_hashes = hasher.hash_fingerprints(flat.unique_fingerprints)
    pieces = [slice_flat_records(flat, group) for group in groups]
    executor = ShardExecutor(len(groups), build_workers, kind=build_executor)
    try:
        if build_executor == "process":
            payloads = [
                (piece.offsets, piece.inverse, hasher, k, unique_hashes)
                for piece in pieces
            ]
            results = executor.map(_kmv_shard_rows, payloads)
            shards = []
            for piece, (rows, seconds) in zip(pieces, results):
                if profile is not None:
                    profile.record("sketch", seconds, rows=piece.num_records)
                index = KMVSearchIndex(hasher=hasher, k_per_record=k, budget=share)
                index._extend_rows(rows, piece.record_sizes.tolist())
                shards.append(index)
            return shards

        def build_one(piece: FlatRecords) -> KMVSearchIndex:
            index = KMVSearchIndex(hasher=hasher, k_per_record=k, budget=share)
            rows = bulk_kmv_value_rows(
                piece, hasher, k, unique_hashes=unique_hashes, profile=profile
            )
            index._extend_rows(rows, piece.record_sizes.tolist())
            return index

        return executor.map(build_one, pieces)
    finally:
        executor.close()


def _generic_shards(records, groups, inner_backend, inner_config):
    inner_cls = get_backend(inner_backend)
    config = inner_cls.resolve_config(inner_config)
    shards = []
    for position, group in enumerate(groups):
        if group.size == 0:
            raise ConfigurationError(
                f"shard {position} of {len(groups)} is empty; backend "
                f"{inner_backend!r} has no pinned-parameter construction and "
                "cannot build an empty shard — use fewer shards or a native "
                "sketch backend (gbkmv/gkmv/kmv)"
            )
        shards.append(
            inner_cls.from_records(_records_of(records, group), config=config)
        )
    return shards
