"""Sharded multi-core execution of the similarity-search backends.

The ``"sharded"`` backend partitions a dataset by record-id hash across
``S`` independent inner indexes (any dynamic registered backend — GB-KMV
by default) and implements the full
:class:`~repro.api.interface.SimilarityIndex` protocol on top of them:
queries fan out to every shard on a thread pool (the numpy kernels
release the GIL, so shards genuinely overlap on multi-core machines) and
the per-shard hits are merged back into exactly the result lists the
unsharded index returns.

Package layout
--------------
``partitioner``
    Deterministic record-id → shard routing (SplitMix64 over the id) and
    the reconstruction of the full routing tables from a record count.
``executor``
    The order-preserving thread-pool fan-out primitive.
``merge``
    Local-id → global-id remapping and the global result-order merge.
``planner``
    Builds the per-shard inner indexes under globally pinned parameters,
    which is what makes sharded search results bitwise identical to the
    unsharded backend for the native sketch backends.
``persistence``
    The directory-of-shard-snapshots format behind ``save``/``load``.
``backend``
    :class:`ShardedIndex`, the registered ``SimilarityIndex``.
"""

from repro.sharding.backend import ShardedIndex

__all__ = ["ShardedIndex"]
