"""The sharded snapshot format: a directory of per-shard snapshots.

Layout::

    index/                      # the path handed to save()
      manifest.json             # format tag + routing + shard file list
      shard-00000/              # inner directory snapshot (mmap-able), or
      shard-00001.npz           # inner npz snapshot, per inner support

The manifest carries everything the backend needs besides the shards
themselves: the inner backend id, the shard count, ``next_global_id``
(from which the full id routing is reconstructed — see
:mod:`repro.sharding.partitioner`) and the configured pool width.  Each
shard is saved through its own backend's ``save``, preferring the
mmap-able directory layout when the inner backend offers one, so
:func:`repro.api.open_index` with ``mmap=True`` maps every shard's large
columns instead of reading them.
"""

from __future__ import annotations

import inspect
import json
from pathlib import Path
from typing import Sequence

from repro._errors import ConfigurationError, SnapshotFormatError
from repro.api.interface import SimilarityIndex
from repro.api.registry import (
    SNAPSHOT_MANIFEST,
    directory_manifest,
    get_backend,
    read_directory_manifest,
)

#: Format version of the sharded directory snapshot.
SHARDED_SNAPSHOT_VERSION = 1


def _shard_name(position: int, directory_layout: bool) -> str:
    base = f"shard-{position:05d}"
    return base if directory_layout else f"{base}.npz"


def save_sharded(
    path,
    shards: Sequence[SimilarityIndex],
    inner_backend: str,
    next_global_id: int,
    max_workers: int | None,
) -> None:
    """Write the sharded snapshot directory (manifest + one file per shard)."""
    directory = Path(path)
    if directory.exists() and not directory.is_dir():
        raise ConfigurationError(
            f"cannot write a sharded snapshot over the file {str(path)!r}"
        )
    directory.mkdir(parents=True, exist_ok=True)
    names = []
    for position, shard in enumerate(shards):
        directory_layout = "layout" in inspect.signature(shard.save).parameters
        name = _shard_name(position, directory_layout)
        if directory_layout:
            shard.save(directory / name, layout="dir")
        else:
            shard.save(directory / name)
        names.append(name)
    manifest = directory_manifest(
        "sharded",
        SHARDED_SNAPSHOT_VERSION,
        inner_backend=str(inner_backend),
        num_shards=len(names),
        next_global_id=int(next_global_id),
        max_workers=None if max_workers is None else int(max_workers),
        shards=names,
    )
    (directory / SNAPSHOT_MANIFEST).write_text(
        json.dumps(manifest), encoding="utf-8"
    )


def load_sharded(path, mmap: bool = False) -> tuple[list[SimilarityIndex], dict]:
    """Restore the per-shard indexes and the validated manifest.

    Raises
    ------
    SnapshotFormatError
        If the directory is not a sharded snapshot, is from an
        unsupported format version, or its manifest is incomplete.
    ConfigurationError
        If ``mmap=True`` but the inner backend cannot memory-map.
    """
    manifest = read_directory_manifest(path)
    if manifest.get("backend") != "sharded":
        raise SnapshotFormatError(
            f"{str(path)!r} is not a sharded index snapshot "
            f"(its manifest names backend {manifest.get('backend')!r})"
        )
    version = manifest.get("version")
    if version != SHARDED_SNAPSHOT_VERSION:
        raise SnapshotFormatError(
            f"unsupported sharded snapshot version {version!r} "
            f"(this build reads version {SHARDED_SNAPSHOT_VERSION})"
        )
    inner_backend = manifest.get("inner_backend")
    names = manifest.get("shards")
    if not isinstance(inner_backend, str) or not isinstance(names, list):
        raise SnapshotFormatError(
            f"sharded snapshot manifest in {str(path)!r} is incomplete "
            "(missing inner_backend or shard list)"
        )
    if len(names) != manifest.get("num_shards"):
        raise SnapshotFormatError(
            f"sharded snapshot manifest in {str(path)!r} is inconsistent: "
            f"{len(names)} shard files for num_shards={manifest.get('num_shards')!r}"
        )
    inner_cls = get_backend(inner_backend)
    supports_mmap = "mmap" in inspect.signature(inner_cls.load).parameters
    if mmap and not supports_mmap:
        raise ConfigurationError(
            f"inner backend {inner_backend!r} does not support "
            "memory-mapped loading"
        )
    shards = [
        inner_cls.load(Path(path) / name, mmap=True)
        if mmap
        else inner_cls.load(Path(path) / name)
        for name in names
    ]
    return shards, manifest
