"""Order-preserving thread-pool fan-out over shards.

A thread pool (not processes) is the right executor here: every
per-shard search kernel bottoms out in numpy ufuncs and BLAS-free array
reductions that release the GIL, so shards genuinely run in parallel on
multi-core machines, while the shard indexes themselves stay plain
shared-memory objects — no pickling, no copies.

The pool is created lazily and sized ``min(max_workers or cpu_count,
num_shards)``; single-worker configurations (or single-item fan-outs)
run inline so a 1-core machine pays zero threading overhead.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro._errors import ConfigurationError

_Item = TypeVar("_Item")
_Result = TypeVar("_Result")


class ShardExecutor:
    """Fan a callable across shard-parallel work items, preserving order."""

    def __init__(self, num_shards: int, max_workers: int | None = None) -> None:
        if int(num_shards) < 1:
            raise ConfigurationError("num_shards must be at least 1")
        if max_workers is not None and int(max_workers) < 1:
            raise ConfigurationError("max_workers must be at least 1")
        limit = (os.cpu_count() or 1) if max_workers is None else int(max_workers)
        self._workers = max(1, min(limit, int(num_shards)))
        self._pool: ThreadPoolExecutor | None = None

    @property
    def workers(self) -> int:
        """Resolved pool width (1 means every fan-out runs inline)."""
        return self._workers

    def map(
        self,
        fn: Callable[[_Item], _Result],
        items: Iterable[_Item] | Sequence[_Item],
    ) -> list[_Result]:
        """Apply ``fn`` to every item, returning results in item order.

        Runs inline when the pool is single-worker or there is at most
        one item; otherwise on the lazily created thread pool.  Like
        ``ThreadPoolExecutor.map``, the first exception propagates.
        """
        items = list(items)
        if self._workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._workers, thread_name_prefix="repro-shard"
            )
        return list(self._pool.map(fn, items))

    def close(self) -> None:
        """Shut the pool down (idempotent; the executor stays usable inline)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
