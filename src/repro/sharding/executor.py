"""Order-preserving executor fan-out over shards (threads or processes).

A thread pool (the default) is the right executor for both search and
build: every per-shard kernel bottoms out in numpy ufuncs and BLAS-free
array reductions that release the GIL, so shards genuinely run in
parallel on multi-core machines, while the shard indexes themselves stay
plain shared-memory objects — no pickling, no copies.

``kind="process"`` swaps in a :class:`~concurrent.futures.ProcessPoolExecutor`
for workloads whose Python-level overhead does not release the GIL.  It
demands more of the callable — ``fn`` and every item must be picklable
(module-level functions over plain arrays, not closures over index
objects) — so only the build pipeline's pure array stages opt into it.

The pool is created lazily and sized ``min(max_workers or cpu_count,
num_shards)``; single-worker configurations (or single-item fan-outs)
run inline so a 1-core machine pays zero pool overhead.  An explicit
``max_workers`` below the shard count is honoured as an
oversubscription guard: a build fanning 16 shards across 4 cores can
pin the pool at 4 workers.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro._errors import ConfigurationError

_Item = TypeVar("_Item")
_Result = TypeVar("_Result")

#: Executor kinds :class:`ShardExecutor` accepts.
EXECUTOR_KINDS = ("thread", "process")


class ShardExecutor:
    """Fan a callable across shard-parallel work items, preserving order."""

    def __init__(
        self,
        num_shards: int,
        max_workers: int | None = None,
        kind: str = "thread",
    ) -> None:
        if int(num_shards) < 1:
            raise ConfigurationError("num_shards must be at least 1")
        if max_workers is not None and int(max_workers) < 1:
            raise ConfigurationError("max_workers must be at least 1")
        if kind not in EXECUTOR_KINDS:
            raise ConfigurationError(
                f"unknown executor kind {kind!r}; use 'thread' or 'process'"
            )
        limit = (os.cpu_count() or 1) if max_workers is None else int(max_workers)
        self._workers = max(1, min(limit, int(num_shards)))
        self._kind = kind
        self._pool: Executor | None = None

    @property
    def workers(self) -> int:
        """Resolved pool width (1 means every fan-out runs inline)."""
        return self._workers

    @property
    def kind(self) -> str:
        """``"thread"`` or ``"process"``."""
        return self._kind

    def map(
        self,
        fn: Callable[[_Item], _Result],
        items: Iterable[_Item] | Sequence[_Item],
    ) -> list[_Result]:
        """Apply ``fn`` to every item, returning results in item order.

        Runs inline when the pool is single-worker or there is at most
        one item; otherwise on the lazily created pool.  Like
        ``Executor.map``, the first exception propagates.
        """
        items = list(items)
        if self._workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        if self._pool is None:
            if self._kind == "process":
                self._pool = ProcessPoolExecutor(max_workers=self._workers)
            else:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._workers, thread_name_prefix="repro-shard"
                )
        return list(self._pool.map(fn, items))

    def close(self) -> None:
        """Shut the pool down (idempotent; the executor stays usable inline)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
