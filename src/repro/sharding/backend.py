""":class:`ShardedIndex` — the registered ``"sharded"`` backend.

A thin but complete :class:`~repro.api.interface.SimilarityIndex` over
``S`` independent inner indexes:

- **Routing.**  A record's shard is ``mix64(global_id) % S``; its local
  id inside the shard is its arrival rank there.  Both directions of the
  mapping are O(1) at runtime and reconstructable from nothing but
  ``next_global_id`` at load time.
- **Search.**  Every query fans out to all shards on a thread pool (the
  sketch kernels release the GIL) and the per-shard hits merge back into
  the exact global result order; for the native sketch backends the
  merged lists are bitwise identical to the unsharded index
  (see :mod:`repro.sharding.planner`).
- **Mutation.**  ``insert``/``insert_many`` assign sequential global ids
  and route by id hash (batches are grouped per shard and ingested
  through the inner bulk pipelines, in parallel); ``delete``/``update``
  route through the id mapping.
- **Persistence.**  ``save`` writes a directory of per-shard snapshots
  plus a manifest; :func:`repro.api.open_index` reopens it — with
  ``mmap=True`` mapping every shard's large columns — without the
  caller naming the backend.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro._errors import ConfigurationError, EmptyDatasetError
from repro.api.config import IndexConfig, ShardedConfig
from repro.core.profiling import BuildProfile
from repro.api.interface import Capabilities, SimilarityIndex
from repro.api.registry import get_backend
from repro.api.results import SearchResult
from repro.sharding.executor import ShardExecutor
from repro.sharding.merge import merge_query_hits, merge_workload_hits
from repro.sharding.partitioner import routing_tables, shard_of, shards_of
from repro.sharding.persistence import load_sharded, save_sharded
from repro.sharding.planner import build_shards

_REUSABLE_RECORD_TYPES = (list, tuple, set, frozenset, np.ndarray)


def _materialize_record(record: Iterable[object]):
    """A record as a re-iterable container (fan-out reads it S times)."""
    return record if isinstance(record, _REUSABLE_RECORD_TYPES) else list(record)


def _materialize_records(records: Sequence[Iterable[object]]) -> list:
    return [_materialize_record(record) for record in records]


class ShardedIndex(SimilarityIndex):
    """Record-id–hash partitioned fan-out over independent inner indexes."""

    backend_id = "sharded"
    config_type = ShardedConfig
    capabilities = Capabilities(
        dynamic=True, batched=True, persistent=True, exact=False, scored=True
    )

    def __init__(
        self,
        shards: Sequence[SimilarityIndex],
        inner_backend: str,
        next_global_id: int,
        max_workers: int | None = None,
    ) -> None:
        if not shards:
            raise ConfigurationError("a sharded index needs at least one shard")
        self._shards = list(shards)
        self._num_shards = len(self._shards)
        self._inner_backend = str(inner_backend)
        self._max_workers = None if max_workers is None else int(max_workers)
        self._executor = ShardExecutor(self._num_shards, self._max_workers)
        #: Per-stage wall-clock breakdown of the build that produced this
        #: index, or ``None`` (loads, hand-assembled shard lists).
        self.last_build_profile: BuildProfile | None = None
        # Bidirectional id routing, reconstructed from the id count: the
        # mapping is a pure function of (next_global_id, num_shards).
        local_ids, shard_globals = routing_tables(
            int(next_global_id), self._num_shards
        )
        self._next_global_id = int(next_global_id)
        self._local_ids: list[int] = local_ids.tolist()
        self._shard_globals: list[list[int]] = [
            globals_.tolist() for globals_ in shard_globals
        ]
        self._globals_cache: list[np.ndarray | None] = [None] * self._num_shards
        # What this index really supports is what its inner backend
        # supports; batched is always true (the fan-out *is* the engine).
        inner_caps = self._shards[0].capabilities
        self.capabilities = Capabilities(
            dynamic=inner_caps.dynamic,
            batched=True,
            persistent=inner_caps.persistent,
            exact=inner_caps.exact,
            scored=inner_caps.scored,
        )

    # ------------------------------------------------------------------ build
    @classmethod
    def from_records(
        cls,
        records: Sequence[Iterable[object]],
        config: IndexConfig | None = None,
    ) -> "ShardedIndex":
        """Partition a dataset by record-id hash and build every shard."""
        config = cls.resolve_config(config)
        num_shards = int(config.num_shards)
        if num_shards < 1:
            raise ConfigurationError("num_shards must be at least 1")
        if config.inner_backend == cls.backend_id:
            raise ConfigurationError("the sharded backend cannot nest itself")
        inner_cls = get_backend(config.inner_backend)
        if not inner_cls.capabilities.dynamic:
            raise ConfigurationError(
                f"inner backend {config.inner_backend!r} is not dynamic; "
                "sharded routing requires insert/delete support"
            )
        materialized = _materialize_records(records)
        if not materialized:
            raise EmptyDatasetError("cannot build an index over an empty dataset")
        assignments = shards_of(
            np.arange(len(materialized), dtype=np.uint64), num_shards
        )
        groups = [
            np.nonzero(assignments == shard)[0] for shard in range(num_shards)
        ]
        profile = BuildProfile()
        shards = build_shards(
            materialized,
            groups,
            config.inner_backend,
            config.inner_config,
            build_workers=config.build_workers,
            build_executor=config.build_executor,
            profile=profile,
        )
        index = cls(
            shards,
            config.inner_backend,
            next_global_id=len(materialized),
            max_workers=config.max_workers,
        )
        index.last_build_profile = profile
        return index

    # ---------------------------------------------------------------- search
    def search(
        self,
        query: Iterable[object],
        threshold: float,
        query_size: int | None = None,
    ) -> list[SearchResult]:
        """Fan one query across all shards; merge into the global order."""
        materialized = _materialize_record(query)
        per_shard = self._executor.map(
            lambda shard: shard.search(materialized, threshold, query_size=query_size),
            self._shards,
        )
        return merge_query_hits(per_shard, self._globals())

    def search_many(
        self,
        queries: Sequence[Iterable[object]],
        threshold: float,
        query_sizes: Sequence[int] | None = None,
    ) -> list[list[SearchResult]]:
        """Run the whole workload on every shard in parallel and merge.

        Each shard answers *all* queries through its own (possibly
        fused) ``search_many`` engine — records are partitioned, queries
        are not — so the per-shard passes overlap on the pool.
        """
        if query_sizes is not None and len(query_sizes) != len(queries):
            raise ConfigurationError("query_sizes must be parallel to queries")
        materialized = _materialize_records(queries)
        per_shard = self._executor.map(
            lambda shard: shard.search_many(
                materialized, threshold, query_sizes=query_sizes
            ),
            self._shards,
        )
        return merge_workload_hits(per_shard, self._globals(), len(materialized))

    def top_k(
        self, query: Iterable[object], k: int, query_size: int | None = None
    ) -> list[SearchResult]:
        """Exact fan-out top-k: merge per-shard top-k lists, truncate to k."""
        if not self.capabilities.scored:
            raise self._unsupported("top_k", "does not produce meaningful scores")
        if k <= 0:
            raise ConfigurationError("k must be positive")
        materialized = _materialize_record(query)
        per_shard = self._executor.map(
            lambda shard: shard.top_k(materialized, k, query_size=query_size),
            self._shards,
        )
        return merge_query_hits(per_shard, self._globals(), limit=k)

    def top_k_many(
        self,
        queries: Sequence[Iterable[object]],
        k: int,
        query_sizes: Sequence[int] | None = None,
    ) -> list[list[SearchResult]]:
        """Workload variant of :meth:`top_k` (parallel across shards)."""
        if not self.capabilities.scored:
            raise self._unsupported(
                "top_k_many", "does not produce meaningful scores"
            )
        if k <= 0:
            raise ConfigurationError("k must be positive")
        if query_sizes is not None and len(query_sizes) != len(queries):
            raise ConfigurationError("query_sizes must be parallel to queries")
        materialized = _materialize_records(queries)
        per_shard = self._executor.map(
            lambda shard: shard.top_k_many(materialized, k, query_sizes=query_sizes),
            self._shards,
        )
        return merge_workload_hits(
            per_shard, self._globals(), len(materialized), limit=k
        )

    # --------------------------------------------------------------- updates
    def insert(self, record: Iterable[object]) -> int:
        """Insert one record; its global id picks the shard."""
        if not self.capabilities.dynamic:
            raise self._unsupported("insert", "is not dynamic")
        global_id = self._next_global_id
        shard = shard_of(global_id, self._num_shards)
        local = self._shards[shard].insert(record)
        self._commit_insert(shard, global_id, int(local))
        return global_id

    def insert_many(self, records: Sequence[Iterable[object]]) -> list[int]:
        """Batch insert: group by destination shard, ingest in parallel.

        Each destination shard receives its sub-batch through the inner
        backend's bulk ``insert_many``; ids come back in batch order and
        continue the global sequence, exactly as looping :meth:`insert`
        would assign them.
        """
        if not self.capabilities.dynamic:
            raise self._unsupported("insert_many", "is not dynamic")
        materialized = _materialize_records(records)
        if not materialized:
            return []
        # Validate the whole batch before touching any shard, so a bad
        # record cannot leave some shards mutated and others not.
        for record in materialized:
            if isinstance(record, np.ndarray):
                if record.size == 0:
                    raise ConfigurationError("cannot insert an empty record")
            elif not record:
                raise ConfigurationError("cannot insert an empty record")
        count = len(materialized)
        global_ids = np.arange(
            self._next_global_id, self._next_global_id + count, dtype=np.uint64
        )
        assignments = shards_of(global_ids, self._num_shards)
        groups = [
            np.nonzero(assignments == shard)[0] for shard in range(self._num_shards)
        ]

        def ingest(shard: int) -> list[int]:
            positions = groups[shard]
            if positions.size == 0:
                return []
            return self._shards[shard].insert_many(
                [materialized[position] for position in positions.tolist()]
            )

        per_shard_locals = self._executor.map(ingest, range(self._num_shards))
        for shard, locals_ in enumerate(per_shard_locals):
            expected = len(self._shard_globals[shard])
            for offset, local in enumerate(locals_):
                self._check_sequential(shard, int(local), expected + offset)
        # Commit the routing tables only after every shard succeeded.
        local_of = np.empty(count, dtype=np.int64)
        for shard, locals_ in enumerate(per_shard_locals):
            positions = groups[shard]
            if positions.size:
                local_of[positions] = np.asarray(locals_, dtype=np.int64)
                self._shard_globals[shard].extend(
                    global_ids[positions].astype(np.int64).tolist()
                )
                self._globals_cache[shard] = None
        self._local_ids.extend(local_of.tolist())
        self._next_global_id += count
        return global_ids.astype(np.int64).tolist()

    def delete(self, record_id: int) -> None:
        """Route the delete to the record's shard."""
        if not self.capabilities.dynamic:
            raise self._unsupported("delete", "is not dynamic")
        _, shard, local = self._route(record_id)
        try:
            self._shards[shard].delete(local)
        except ConfigurationError as error:
            # The inner error names the local id; re-raise under the
            # global id the caller actually used.
            raise ConfigurationError(
                f"unknown or deleted record id {record_id}"
            ) from error

    def update(self, record_id: int, record: Iterable[object]) -> int:
        """Route the in-place replace to the record's shard."""
        if not self.capabilities.dynamic:
            raise self._unsupported("update", "is not dynamic")
        global_id, shard, local = self._route(record_id)
        materialized = _materialize_record(record)
        if len(materialized) == 0:
            raise ConfigurationError("cannot update a record to be empty")
        try:
            self._shards[shard].update(local, materialized)
        except ConfigurationError as error:
            raise ConfigurationError(
                f"unknown or deleted record id {record_id}"
            ) from error
        return global_id

    def _route(self, record_id: int) -> tuple[int, int, int]:
        """Resolve a global id to ``(global_id, shard, local_id)``."""
        global_id = int(record_id)
        if global_id < 0 or global_id >= self._next_global_id:
            raise ConfigurationError(f"unknown or deleted record id {record_id}")
        return (
            global_id,
            shard_of(global_id, self._num_shards),
            self._local_ids[global_id],
        )

    def _check_sequential(self, shard: int, local: int, expected: int) -> None:
        if local != expected:
            raise ConfigurationError(
                f"inner backend {self._inner_backend!r} assigned record id "
                f"{local} where {expected} was expected; sharded routing "
                "requires sequential inner record ids"
            )

    def _commit_insert(self, shard: int, global_id: int, local: int) -> None:
        self._check_sequential(shard, local, len(self._shard_globals[shard]))
        self._local_ids.append(local)
        self._shard_globals[shard].append(global_id)
        self._globals_cache[shard] = None
        self._next_global_id = global_id + 1

    # ------------------------------------------------------------ persistence
    def save(self, path) -> None:
        """Write the directory-of-shard-snapshots format (plus manifest)."""
        if not self.capabilities.persistent:
            raise self._unsupported("save", "is not persistent")
        save_sharded(
            path,
            self._shards,
            self._inner_backend,
            self._next_global_id,
            self._max_workers,
        )

    @classmethod
    def load(cls, path, mmap: bool = False) -> "ShardedIndex":
        """Restore a sharded snapshot directory written by :meth:`save`.

        ``mmap=True`` memory-maps every shard's large columns (inner
        backends that support directory snapshots only).
        """
        shards, manifest = load_sharded(path, mmap=mmap)
        return cls(
            shards,
            manifest["inner_backend"],
            next_global_id=int(manifest["next_global_id"]),
            max_workers=manifest.get("max_workers"),
        )

    # ------------------------------------------------------------ introspection
    @property
    def num_records(self) -> int:
        """Live records across all shards."""
        return sum(shard.num_records for shard in self._shards)

    @property
    def next_record_id(self) -> int:
        """The global id the next :meth:`insert` will assign (sequential)."""
        return self._next_global_id

    @property
    def num_shards(self) -> int:
        """Number of shards the dataset is partitioned across."""
        return self._num_shards

    @property
    def shards(self) -> tuple[SimilarityIndex, ...]:
        """The inner per-shard indexes (read-only view)."""
        return tuple(self._shards)

    @property
    def inner_backend(self) -> str:
        """Registry id of the backend each shard runs."""
        return self._inner_backend

    def space_in_values(self) -> float:
        """Total sketch space across shards, in signature-value units."""
        return float(sum(shard.space_in_values() for shard in self._shards))

    def space_fraction(self) -> float:
        """Space used as a fraction of the (live) dataset size.

        Aggregated from the shards: each shard's live element count is
        recovered as ``space / fraction``, so the global fraction is the
        space-weighted harmonic combination of the per-shard ones.
        """
        total_space = 0.0
        total_elements = 0.0
        for shard in self._shards:
            space = float(shard.space_in_values())
            fraction = float(shard.space_fraction())
            total_space += space
            if fraction > 0.0:
                total_elements += space / fraction
        if total_elements == 0.0:
            return 0.0
        return total_space / total_elements

    # ------------------------------------------------------------------ misc
    def _globals(self) -> list[np.ndarray]:
        """Per-shard local→global id arrays (cached between mutations)."""
        for shard in range(self._num_shards):
            if self._globals_cache[shard] is None:
                self._globals_cache[shard] = np.asarray(
                    self._shard_globals[shard], dtype=np.int64
                )
        return self._globals_cache

    def close(self) -> None:
        """Release the fan-out pool and every shard's resources, deterministically.

        Overrides the interface's no-op: the :class:`ShardExecutor` pool
        is joined (not abandoned to GC) and ``close`` is forwarded to
        every inner shard.  Idempotent; the index stays usable for
        in-memory operations — the next fan-out lazily recreates the
        pool.  The serving layer's ``drain``/``close`` path relies on
        this to shut a wrapped sharded index down cleanly.
        """
        self._executor.close()
        for shard in self._shards:
            shard.close()
