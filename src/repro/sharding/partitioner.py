"""Deterministic record-id → shard routing.

A record's shard is a pure function of its *global record id*:
``mix64(id) % num_shards``.  Hashing the id rather than taking
``id % num_shards`` keeps shards balanced under any insertion pattern
(round-robin would do that too, but the hash also decorrelates shard
membership from dataset order, so power-law datasets spread their heavy
records evenly), and makes the routing reconstructable from nothing but
the number of ids ever assigned — which is all the sharded snapshot
manifest has to persist.

Within a shard, a record's *local* id is its arrival rank: the inner
backends assign sequential ids from 0, and global ids are themselves
assigned sequentially, so the ``k``-th global id routed to a shard is
exactly the shard's local id ``k``.  :func:`routing_tables` rebuilds the
full bidirectional mapping from ``next_global_id`` alone in one
vectorised pass.
"""

from __future__ import annotations

import numpy as np

from repro.hashing import mix64, mix64_many


def shard_of(record_id: int, num_shards: int) -> int:
    """The shard a single global record id routes to."""
    return int(mix64(int(record_id)) % num_shards)


def shards_of(record_ids: np.ndarray, num_shards: int) -> np.ndarray:
    """Vectorised :func:`shard_of` over an id column (int64 result)."""
    return (mix64_many(record_ids) % np.uint64(num_shards)).astype(np.int64)


def routing_tables(
    next_global_id: int, num_shards: int
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Rebuild the routing of every id ever assigned, from the count alone.

    Returns ``(local_ids, shard_globals)`` where ``local_ids[g]`` is the
    local id of global id ``g`` inside its shard, and
    ``shard_globals[s]`` lists the global ids routed to shard ``s`` in
    local-id order (an increasing sequence — the property the result
    merge's tie-breaking relies on).
    """
    count = int(next_global_id)
    shards = shards_of(np.arange(count, dtype=np.uint64), num_shards)
    # Stable sort groups ids by shard while keeping each group in global
    # (= arrival) order; a group's offsets are then exactly local ids.
    order = np.argsort(shards, kind="stable")
    counts = np.bincount(shards, minlength=num_shards)
    starts = np.zeros(num_shards + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    local_ids = np.empty(count, dtype=np.int64)
    local_ids[order] = np.arange(count, dtype=np.int64) - np.repeat(
        starts[:-1], counts
    )
    shard_globals = [
        order[starts[shard] : starts[shard + 1]].astype(np.int64, copy=False)
        for shard in range(num_shards)
    ]
    return local_ids, shard_globals
